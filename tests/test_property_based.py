"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from busytime.algorithms import (
    auto_schedule,
    best_fit,
    bounded_length,
    first_fit,
    next_fit_by_start,
    proper_greedy,
)
from busytime.core.bounds import best_lower_bound, combined_bound
from busytime.core.instance import Instance, connected_components
from busytime.core.intervals import (
    Interval,
    max_point_load,
    span,
    total_length,
    union_intervals,
)
from busytime.exact import exact_optimal_cost
from busytime.graphs.interval_graph import (
    chromatic_number,
    clique_number,
    partition_into_independent_sets,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

finite = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False, width=32
)


@st.composite
def intervals(draw):
    start = draw(finite)
    length = draw(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False, width=32)
    )
    return Interval(float(start), float(start + length))


@st.composite
def instances(draw, max_jobs=20, min_jobs=0, max_g=5):
    ivs = draw(st.lists(intervals(), min_size=min_jobs, max_size=max_jobs))
    g = draw(st.integers(min_value=1, max_value=max_g))
    return Instance.from_intervals(ivs, g=g)


@st.composite
def small_instances(draw):
    """Instances small enough for the exact solver."""
    ivs = draw(st.lists(intervals(), min_size=1, max_size=8))
    g = draw(st.integers(min_value=1, max_value=3))
    return Instance.from_intervals(ivs, g=g)


ALGORITHMS = {
    "first_fit": first_fit,
    "proper_greedy": proper_greedy,
    "next_fit_by_start": next_fit_by_start,
    "best_fit": best_fit,
    "auto": auto_schedule,
    "bounded_length": bounded_length,
}

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


# ---------------------------------------------------------------------------
# Interval-level invariants (Definitions 1.1 / 1.2)
# ---------------------------------------------------------------------------


class TestIntervalInvariants:
    @given(st.lists(intervals(), max_size=30))
    @RELAXED
    def test_span_le_total_length(self, ivs):
        assert span(ivs) <= total_length(ivs) + 1e-6

    @given(st.lists(intervals(), max_size=30))
    @RELAXED
    def test_union_is_disjoint_and_sorted(self, ivs):
        merged = union_intervals(ivs)
        for a, b in zip(merged, merged[1:]):
            assert a.end < b.start

    @given(st.lists(intervals(), max_size=30))
    @RELAXED
    def test_union_preserves_measure_of_each_interval(self, ivs):
        merged = union_intervals(ivs)
        for iv in ivs:
            assert any(m.start <= iv.start and iv.end <= m.end for m in merged) or (
                iv.length == 0
            )

    @given(st.lists(intervals(), min_size=1, max_size=25))
    @RELAXED
    def test_max_point_load_bounds(self, ivs):
        load = max_point_load(ivs)
        assert 1 <= load <= len(ivs)

    @given(st.lists(intervals(), min_size=2, max_size=20))
    @RELAXED
    def test_disjoint_iff_span_equals_length(self, ivs):
        # Only test the forward direction with positive-length intervals:
        # span == len  =>  no two intervals overlap on positive measure.
        assume(all(iv.length > 0 for iv in ivs))
        if math.isclose(span(ivs), total_length(ivs), rel_tol=1e-9, abs_tol=1e-9):
            # span == len (up to fp tolerance) implies every pairwise overlap
            # has (near-)zero measure: len - span integrates the multiplicity
            # excess, which dominates each pairwise overlap's length.
            for i, a in enumerate(ivs):
                for b in ivs[i + 1 :]:
                    inter = a.intersection(b)
                    assert inter is None or inter.length <= 1e-6


# ---------------------------------------------------------------------------
# Graph-level invariants
# ---------------------------------------------------------------------------


class TestGraphInvariants:
    @given(instances(max_jobs=25))
    @RELAXED
    def test_interval_graphs_are_perfect(self, inst):
        jobs = list(inst.jobs)
        assert chromatic_number(jobs) == clique_number(jobs)

    @given(instances(max_jobs=20, min_jobs=1))
    @RELAXED
    def test_independent_set_partition_valid(self, inst):
        threads = partition_into_independent_sets(list(inst.jobs))
        assert sum(len(t) for t in threads) == inst.n
        for thread in threads:
            assert max_point_load(thread) <= 1

    @given(instances(max_jobs=20))
    @RELAXED
    def test_components_partition_jobs(self, inst):
        comps = connected_components(inst)
        ids = sorted(j.id for c in comps for j in c.jobs)
        assert ids == sorted(inst.job_ids)
        assert sum(c.span for c in comps) == pytest.approx(inst.span, rel=1e-6)


# ---------------------------------------------------------------------------
# Schedule-level invariants: every algorithm, arbitrary instances
# ---------------------------------------------------------------------------


class TestScheduleInvariants:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @given(inst=instances(max_jobs=18))
    @RELAXED
    def test_feasible_and_bounded_below(self, name, inst):
        sched = ALGORITHMS[name](inst)
        sched.validate()  # every job exactly once, parallelism respected
        assert sched.total_busy_time >= best_lower_bound(inst) - 1e-6
        # cost accounting: total == sum of machine spans
        assert sched.total_busy_time == pytest.approx(
            sum(span(m.jobs) for m in sched.machines), rel=1e-9
        )
        # no algorithm can beat the span bound per component
        assert sched.num_machines <= inst.n

    @given(inst=instances(max_jobs=14, max_g=3))
    @RELAXED
    def test_auto_never_worse_than_first_fit(self, inst):
        assert (
            auto_schedule(inst).total_busy_time
            <= first_fit(inst).total_busy_time + 1e-6
        )

    @given(inst=small_instances())
    @RELAXED
    def test_firstfit_within_4_opt(self, inst):
        ff = first_fit(inst)
        opt = exact_optimal_cost(inst, initial_upper_bound=ff.total_busy_time)
        assert ff.total_busy_time <= 4.0 * opt + 1e-6

    @given(inst=small_instances())
    @RELAXED
    def test_exact_is_lower_than_heuristics_and_above_lb(self, inst):
        opt = exact_optimal_cost(inst)
        assert combined_bound(inst) - 1e-6 <= opt
        assert opt <= first_fit(inst).total_busy_time + 1e-6
        assert opt <= best_fit(inst).total_busy_time + 1e-6

    @given(inst=instances(max_jobs=16, max_g=4))
    @RELAXED
    def test_proper_greedy_theorem_on_proper_instances(self, inst):
        assume(inst.is_proper())
        sched = proper_greedy(inst)
        # ALG <= LB + span is implied by ALG <= OPT + span (Theorem 3.1 proof)
        # only through OPT >= LB -- too weak to assert; instead check the
        # machine-count claim M^A_t <= ceil(N_t / g) + 1 at all breakpoints.
        from busytime.core.events import breakpoints

        for t in breakpoints(list(inst.jobs)):
            nt = inst.load_at(t)
            assert sched.machines_active_at(t) <= math.ceil(nt / inst.g) + 1


# ---------------------------------------------------------------------------
# Optical reduction invariants
# ---------------------------------------------------------------------------


@st.composite
def traffics(draw):
    from busytime.optical import PathNetwork, Traffic

    num_nodes = draw(st.integers(min_value=3, max_value=25))
    n = draw(st.integers(min_value=1, max_value=25))
    g = draw(st.integers(min_value=1, max_value=4))
    pairs = []
    for _ in range(n):
        a = draw(st.integers(min_value=0, max_value=num_nodes - 2))
        b = draw(st.integers(min_value=a + 1, max_value=num_nodes - 1))
        pairs.append((a, b))
    return Traffic.from_pairs(PathNetwork(num_nodes), pairs, g=g)


class TestOpticalInvariants:
    @given(traffic=traffics())
    @RELAXED
    def test_reduction_cost_preservation(self, traffic):
        from busytime.optical import schedule_to_assignment, traffic_to_instance

        inst = traffic_to_instance(traffic)
        sched = first_fit(inst)
        assignment = schedule_to_assignment(traffic, sched)
        assignment.validate()
        assert assignment.regenerators() == pytest.approx(
            sched.total_busy_time, abs=1e-6
        )

    @given(traffic=traffics())
    @RELAXED
    def test_round_trip(self, traffic):
        from busytime.optical import instance_to_traffic, traffic_to_instance

        back = instance_to_traffic(
            traffic_to_instance(traffic), network=traffic.network
        )
        assert [(p.a, p.b) for p in back] == [(p.a, p.b) for p in traffic]
