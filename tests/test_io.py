"""Tests for serialization (busytime.io)."""

import json

import pytest

from busytime import Instance, first_fit
from busytime.generators import uniform_random_instance, uniform_traffic
from busytime.io import (
    instance_from_dict,
    instance_to_dict,
    jobs_from_csv,
    jobs_to_csv,
    load_instance,
    load_schedule,
    load_traffic,
    save_instance,
    save_schedule,
    save_traffic,
    schedule_from_dict,
    schedule_to_dict,
    traffic_from_dict,
    traffic_to_dict,
)


class TestInstanceSerialization:
    def test_dict_round_trip(self):
        inst = uniform_random_instance(12, g=3, seed=1)
        back = instance_from_dict(instance_to_dict(inst))
        assert back.g == inst.g
        assert back.name == inst.name
        assert [(j.id, j.start, j.end) for j in back.jobs] == [
            (j.id, j.start, j.end) for j in inst.jobs
        ]

    def test_file_round_trip(self, tmp_path):
        inst = uniform_random_instance(8, g=2, seed=2)
        path = tmp_path / "inst.json"
        save_instance(inst, path)
        back = load_instance(path)
        assert back.n == inst.n
        assert json.loads(path.read_text())["format"] == "busytime-instance"

    def test_preserves_tags_and_weights(self):
        from busytime.core.intervals import Interval, Job

        inst = Instance(
            jobs=(Job(id=3, interval=Interval(0, 2), weight=2.5, tag="x"),), g=1
        )
        back = instance_from_dict(instance_to_dict(inst))
        assert back.jobs[0].weight == 2.5
        assert back.jobs[0].tag == "x"

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            instance_from_dict({"format": "something-else"})


class TestScheduleSerialization:
    def test_round_trip_revalidates(self, tmp_path):
        inst = uniform_random_instance(15, g=2, seed=3)
        sched = first_fit(inst)
        path = tmp_path / "sched.json"
        save_schedule(sched, path)
        back = load_schedule(path)
        assert back.total_busy_time == pytest.approx(sched.total_busy_time)
        assert back.num_machines == sched.num_machines
        assert back.algorithm == "first_fit"
        assert back.assignment() == sched.assignment()

    def test_corrupted_partition_rejected(self):
        inst = uniform_random_instance(5, g=2, seed=4)
        sched = first_fit(inst)
        data = schedule_to_dict(sched)
        data["machines"][0]["job_ids"].append(data["machines"][0]["job_ids"][0])
        with pytest.raises(Exception):
            schedule_from_dict(data)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            schedule_from_dict({"format": "nope"})


class TestTrafficSerialization:
    def test_round_trip(self, tmp_path):
        traffic = uniform_traffic(20, 30, g=3, seed=5)
        path = tmp_path / "traffic.json"
        save_traffic(traffic, path)
        back = load_traffic(path)
        assert back.g == traffic.g
        assert back.network.num_nodes == traffic.network.num_nodes
        assert [(p.a, p.b) for p in back] == [(p.a, p.b) for p in traffic]

    def test_dict_round_trip(self):
        traffic = uniform_traffic(10, 12, g=2, seed=6)
        assert traffic_from_dict(traffic_to_dict(traffic)).n == traffic.n

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            traffic_from_dict({"format": "nope"})


class TestVersionValidation:
    """Loaders validate the ``version`` header they write (forward safety:
    a future format revision fails loudly instead of being half-parsed)."""

    def _documents(self):
        inst = uniform_random_instance(6, g=2, seed=3)
        sched = first_fit(inst)
        from busytime import Engine, SolveRequest
        from busytime.io import solve_report_from_dict, solve_report_to_dict

        report = Engine().solve(SolveRequest(instance=inst))
        traffic = uniform_traffic(10, 12, g=2, seed=3)
        return [
            (instance_to_dict(inst), instance_from_dict),
            (schedule_to_dict(sched), schedule_from_dict),
            (solve_report_to_dict(report), solve_report_from_dict),
            (traffic_to_dict(traffic), traffic_from_dict),
        ]

    def test_current_version_accepted(self):
        from busytime.io import _SUPPORTED_VERSIONS

        for doc, loader in self._documents():
            # Writers stamp a version the readers understand.  Instance and
            # schedule documents of *rigid* instances deliberately stamp the
            # flex-free version 2 so archives of them stay byte-identical;
            # version 3 is reserved for documents that use a flex field.
            assert doc["version"] in _SUPPORTED_VERSIONS[doc["format"]]
            if doc["format"] in ("busytime-instance", "busytime-schedule"):
                assert doc["version"] == 2
            loader(doc)  # round-trips without complaint

    def test_flex_documents_stamp_version3(self):
        from busytime.algorithms import tariff_local_search
        from busytime.core.instance import Instance
        from busytime.core.intervals import Interval, Job

        inst = Instance(
            jobs=(Job(0, Interval(2.0, 4.0), release=0.0, deadline=8.0),),
            g=1,
        )
        doc = instance_to_dict(inst)
        assert doc["version"] == 3
        assert doc["jobs"][0]["release"] == 0.0
        assert instance_from_dict(doc).jobs == inst.jobs
        sched = tariff_local_search(inst)
        sdoc = schedule_to_dict(sched)
        assert sdoc["version"] == 3
        rebuilt = schedule_from_dict(json.loads(json.dumps(sdoc)))
        assert [(j.start, j.end) for m in rebuilt.machines for j in m.jobs] == [
            (j.start, j.end) for m in sched.machines for j in m.jobs
        ]

    def test_version1_documents_still_load(self):
        """Back-compat: pre-problem-model documents (no demand, no objective
        fields) load with the defaults that *are* the version-1 semantics."""
        for doc, loader in self._documents():
            if doc["format"] == "busytime-traffic":
                continue
            legacy = json.loads(json.dumps(doc))
            def strip(node):
                if isinstance(node, dict):
                    node.pop("demand", None)
                    node.pop("objective", None)
                    node.pop("objective_value", None)
                    if node.get("format") in (
                        "busytime-instance",
                        "busytime-schedule",
                        "busytime-solve-report",
                    ):
                        node["version"] = 1
                    for value in node.values():
                        strip(value)
                elif isinstance(node, list):
                    for value in node:
                        strip(value)
            strip(legacy)
            loaded = loader(legacy)
            if doc["format"] == "busytime-instance":
                assert all(j.demand == 1 for j in loaded.jobs)
            if doc["format"] == "busytime-solve-report":
                assert loaded.objective == "busy_time"
                assert loaded.objective_value is None
                assert loaded.value == loaded.cost

    def test_unknown_version_rejected_with_clear_message(self):
        for doc, loader in self._documents():
            doc = dict(doc)
            doc["version"] = 99
            with pytest.raises(ValueError, match="unsupported .* version 99"):
                loader(doc)

    def test_non_object_document_rejected_with_value_error(self):
        # Valid JSON that is not an object must be a format error, never an
        # AttributeError out of the header check.
        for loader in (
            instance_from_dict,
            schedule_from_dict,
            traffic_from_dict,
        ):
            for document in ([1, 2, 3], "text", 7, None):
                with pytest.raises(ValueError, match="expected a JSON object"):
                    loader(document)

    def test_missing_version_defaults_to_one(self):
        # Documents written before the version check carry version 1
        # semantics; absence must not start rejecting old archives.
        doc = instance_to_dict(uniform_random_instance(4, g=2, seed=4))
        doc.pop("version")
        instance_from_dict(doc)


class TestCsv:
    def test_round_trip(self, tmp_path):
        inst = uniform_random_instance(10, g=2, seed=7)
        path = tmp_path / "jobs.csv"
        jobs_to_csv(inst, path)
        back = jobs_from_csv(path, g=2)
        assert back.n == inst.n
        assert back.total_length == pytest.approx(inst.total_length)

    def test_minimal_columns(self, tmp_path):
        path = tmp_path / "jobs.csv"
        path.write_text("start,end\n0,5\n3,9\n")
        inst = jobs_from_csv(path, g=1, name="minimal")
        assert inst.n == 2
        assert inst.jobs[1].id == 1
        assert inst.name == "minimal"

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            jobs_from_csv(path, g=1)
