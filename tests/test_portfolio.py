"""Tests for the portfolio layer: features, racing, the learned selector.

Three contracts are pinned here:

* **Determinism** — repeated races on the same request produce bit-identical
  winning schedules, serially and under a real executor, because acceptance
  is resolved in rank order and ties break by ``(cost, rank)``.
* **Safety** — a poisoned candidate (raises, or returns an infeasible
  schedule) loses its own slot and nothing else; every race winner passes
  the independent :func:`verify_schedule` oracle; the learned policy can
  reorder only *within* a guarantee class, so certificates never weaken.
* **Hardening** — mining a result store's history for training data skips
  corrupt and old-version entries with counted warnings, never an abort.
"""

from __future__ import annotations

import json
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import pytest

from busytime import Engine, Instance, SolveRequest
from busytime import io as bio
from busytime.algorithms import get_scheduler
from busytime.core.bounds import best_lower_bound
from busytime.core.intervals import Interval, Job
from busytime.core.schedule import verify_schedule
from busytime.engine.policy import SINGLE_MACHINE, BestRatioPolicy, FirstFitPolicy
from busytime.engine.request import RequestValidationError
from busytime.generators import (
    bursty_instance,
    proper_instance,
    uniform_random_instance,
)
from busytime.portfolio import (
    FEATURE_VERSION,
    SELECTOR_ENV_VAR,
    LearnedPolicy,
    LearnedSelector,
    TrainingSample,
    extract_features,
    feature_names,
    features_document,
    learned_policy,
    race_candidates,
    train_from_store,
    train_selector,
)
from busytime.portfolio import racer as racer_module
from busytime.service import ResultStore
from busytime.service.store import HistoryScan


def _busy_time_model():
    from busytime.core.objectives import get_cost_model

    return get_cost_model("busy_time")


def _schedule_signature(schedule):
    """A bit-level fingerprint of machine contents for equality checks."""
    return tuple(
        tuple((j.id, j.start, j.end) for j in m.jobs) for m in schedule.machines
    )


def _relabeled_shifted(instance: Instance, delta: float = 64.0) -> Instance:
    """Same instance up to relabeling and exact (dyadic) translation."""
    jobs = list(instance.jobs)[::-1]
    return Instance(
        jobs=tuple(
            Job(
                id=1000 + k,
                interval=Interval(j.start + delta, j.end + delta),
                weight=j.weight,
                tag=j.tag,
                demand=j.demand,
            )
            for k, j in enumerate(jobs)
        ),
        g=instance.g,
        name="variant",
    )


# ---------------------------------------------------------------------------
# Features
# ---------------------------------------------------------------------------


class TestFeatures:
    def test_vector_matches_declared_names(self):
        inst = uniform_random_instance(20, 3, seed=0)
        values = extract_features(inst)
        assert len(values) == len(feature_names())
        assert all(isinstance(v, float) for v in values)

    def test_invariant_under_relabeling_and_translation(self):
        # Dyadic coordinates (multiples of 1/16) make the translation exact
        # in binary floating point, so equality is a property of the
        # features, not of lucky rounding.
        import random

        for seed in range(4):
            rng = random.Random(seed)
            jobs = []
            for i in range(25):
                start = rng.randrange(0, 512) / 16.0
                length = rng.randrange(1, 128) / 16.0
                jobs.append(Job(id=i, interval=Interval(start, start + length)))
            inst = Instance(jobs=tuple(jobs), g=3)
            assert extract_features(inst) == extract_features(
                _relabeled_shifted(inst)
            )

    def test_empty_instance_keeps_g(self):
        inst = Instance(jobs=(), g=5)
        values = dict(zip(feature_names(), extract_features(inst)))
        assert values["g"] == 5.0
        assert values["n"] == 0.0

    def test_document_carries_version(self):
        doc = features_document(uniform_random_instance(10, 2, seed=1))
        assert doc["version"] == FEATURE_VERSION
        assert doc["names"] == list(feature_names())
        assert len(doc["values"]) == len(doc["names"])


# ---------------------------------------------------------------------------
# Racing: determinism
# ---------------------------------------------------------------------------


class TestRaceDeterminism:
    def test_repeated_serial_races_are_bit_identical(self):
        inst = uniform_random_instance(35, 3, seed=7)
        request = SolveRequest(instance=inst, race=4)
        model = _busy_time_model()
        first = race_candidates(request, "best_ratio", model)
        for _ in range(3):
            again = race_candidates(request, "best_ratio", model)
            assert again.algorithm == first.algorithm
            assert _schedule_signature(again.schedule) == _schedule_signature(
                first.schedule
            )

    def test_executor_race_matches_serial_winner(self):
        inst = uniform_random_instance(35, 3, seed=8)
        request = SolveRequest(instance=inst, race=4)
        model = _busy_time_model()
        serial = race_candidates(request, "best_ratio", model)
        with ThreadPoolExecutor(max_workers=4) as pool:
            for _ in range(3):
                raced = race_candidates(request, "best_ratio", model, executor=pool)
                assert raced.algorithm == serial.algorithm
                assert _schedule_signature(raced.schedule) == _schedule_signature(
                    serial.schedule
                )

    def test_race_through_engine_fills_the_report_tail(self):
        inst = uniform_random_instance(30, 3, seed=9)
        report = Engine().solve(SolveRequest(instance=inst, race=3))
        assert report.race is not None
        assert report.lower_bound > 0.0
        assert report.cost >= report.lower_bound - 1e-9
        assert report.race.decisive
        assert not report.budget_exhausted
        summary = report.summary()
        assert summary["raced"] == len(report.race.candidates)
        assert summary["race_decisive"] is True
        winner_rows = [c for c in report.race.candidates if c.winner]
        assert len(winner_rows) == 1
        assert winner_rows[0].algorithm == report.algorithm

    def test_single_machine_shortcut_is_a_one_candidate_race(self):
        inst = Instance(
            jobs=(Job(id=0, interval=Interval(0, 4)), Job(id=1, interval=Interval(1, 5))),
            g=3,
        )
        report = Engine().solve(SolveRequest(instance=inst, race=2))
        assert report.algorithm == SINGLE_MACHINE
        assert report.proven_ratio == 1.0
        assert len(report.race.candidates) == 1
        assert report.race.decisive

    def test_incumbent_timeline_is_strictly_decreasing(self):
        inst = uniform_random_instance(40, 3, seed=10)
        report = race_candidates(
            SolveRequest(instance=inst, race=4), "best_ratio", _busy_time_model()
        )
        costs = [cost for _, cost in report.race.incumbent_timeline]
        assert costs, "a decisive race books at least one incumbent"
        assert all(b < a for a, b in zip(costs, costs[1:]))
        assert costs[-1] == pytest.approx(report.cost)


# ---------------------------------------------------------------------------
# Racing: early acceptance, deadlines, fallback
# ---------------------------------------------------------------------------


class TestRaceBudgets:
    def test_generous_accept_factor_stops_at_rank_zero(self):
        inst = uniform_random_instance(30, 3, seed=11)
        request = SolveRequest(instance=inst, race=3)
        report = race_candidates(
            request, "best_ratio", _busy_time_model(), accept_factor=100.0
        )
        winner = next(c for c in report.race.candidates if c.winner)
        assert winner.rank == 0
        later = [c for c in report.race.candidates if c.rank > 0]
        assert later and all(c.status == "cancelled" for c in later)

    def test_generous_accept_factor_under_executor_still_picks_rank_zero(self):
        inst = uniform_random_instance(30, 3, seed=12)
        request = SolveRequest(instance=inst, race=3)
        with ThreadPoolExecutor(max_workers=3) as pool:
            report = race_candidates(
                request,
                "best_ratio",
                _busy_time_model(),
                executor=pool,
                accept_factor=100.0,
            )
        winner = next(c for c in report.race.candidates if c.winner)
        assert winner.rank == 0

    def test_zero_deadline_truncates_and_falls_back(self):
        inst = uniform_random_instance(30, 3, seed=13)
        request = SolveRequest(instance=inst, race=3, deadline=0.0)
        report = race_candidates(request, "best_ratio", _busy_time_model())
        assert report.budget_exhausted
        assert report.race.fallback
        assert not report.race.decisive
        assert report.algorithm == "first_fit"
        verify_schedule(report.schedule)
        fallback_rows = [c for c in report.race.candidates if c.winner]
        assert fallback_rows[0].status == "finished"

    def test_engine_deadline_kwarg_overrides_the_request(self):
        inst = uniform_random_instance(30, 3, seed=14)
        report = Engine().solve(
            SolveRequest(instance=inst), race=3, deadline=0.0
        )
        assert report.budget_exhausted
        assert report.race is not None and report.race.fallback


# ---------------------------------------------------------------------------
# Racing: safety under poisoned candidates
# ---------------------------------------------------------------------------


class _Poisoned:
    """Wraps a real scheduler: same metadata, raises when actually run."""

    def __init__(self, real):
        self._real = real

    def __call__(self, instance):
        raise RuntimeError("poisoned candidate")

    def schedule_under(self, instance, model=None):
        raise RuntimeError("poisoned candidate")

    def __getattr__(self, name):
        return getattr(self._real, name)


class TestRaceSafety:
    def test_poisoned_top_candidate_loses_only_its_slot(self, monkeypatch):
        inst = uniform_random_instance(30, 3, seed=15)
        request = SolveRequest(instance=inst, race=3)
        model = _busy_time_model()
        clean = race_candidates(request, "best_ratio", model)
        target = BestRatioPolicy().rank(inst)[0]

        real_get = racer_module.get_scheduler

        def poisoned_get(name):
            scheduler = real_get(name)
            return _Poisoned(scheduler) if name == target else scheduler

        monkeypatch.setattr(racer_module, "get_scheduler", poisoned_get)
        report = race_candidates(request, "best_ratio", model)
        rows = {c.algorithm: c for c in report.race.candidates}
        assert rows[target].status == "failed"
        assert report.algorithm != target
        verify_schedule(report.schedule)
        # The poisoned candidate never pollutes the incumbent timeline.
        finished = [c for c in report.race.candidates if c.status == "finished"]
        assert report.cost == pytest.approx(min(c.cost for c in finished))
        assert report.cost >= clean.cost - 1e-9

    def test_poisoned_candidate_under_executor(self, monkeypatch):
        inst = uniform_random_instance(30, 3, seed=16)
        request = SolveRequest(instance=inst, race=3)
        model = _busy_time_model()
        target = BestRatioPolicy().rank(inst)[0]
        real_get = racer_module.get_scheduler

        def poisoned_get(name):
            scheduler = real_get(name)
            return _Poisoned(scheduler) if name == target else scheduler

        monkeypatch.setattr(racer_module, "get_scheduler", poisoned_get)
        with ThreadPoolExecutor(max_workers=3) as pool:
            report = race_candidates(request, "best_ratio", model, executor=pool)
        rows = {c.algorithm: c for c in report.race.candidates}
        assert rows[target].status == "failed"
        verify_schedule(report.schedule)


# ---------------------------------------------------------------------------
# Request validation and solve_many ordering
# ---------------------------------------------------------------------------


class TestRequestPlumbing:
    def test_race_of_one_is_rejected(self):
        inst = uniform_random_instance(10, 3, seed=0)
        with pytest.raises(RequestValidationError, match="race"):
            SolveRequest(instance=inst, race=1).validate()

    def test_race_with_forced_algorithm_is_rejected(self):
        inst = uniform_random_instance(10, 3, seed=0)
        with pytest.raises(RequestValidationError, match="incompatible"):
            SolveRequest(instance=inst, race=2, algorithm="first_fit").validate()

    def test_deadline_requires_racing(self):
        inst = uniform_random_instance(10, 3, seed=0)
        with pytest.raises(RequestValidationError, match="deadline"):
            SolveRequest(instance=inst, deadline=1.0).validate()

    def test_negative_deadline_is_rejected(self):
        inst = uniform_random_instance(10, 3, seed=0)
        with pytest.raises(RequestValidationError, match="deadline"):
            SolveRequest(instance=inst, race=2, deadline=-1.0).validate()

    def test_options_dict_carries_race_and_deadline(self):
        inst = uniform_random_instance(10, 3, seed=0)
        options = SolveRequest(instance=inst, race=3, deadline=2.5).options_dict()
        assert options["race"] == 3
        assert options["deadline"] == 2.5

    def test_solve_many_preserves_request_order_with_mixed_racing(self):
        engine = Engine()
        requests = []
        for i in range(6):
            inst = uniform_random_instance(10 + i, 3, seed=20 + i)
            requests.append(
                SolveRequest(instance=inst, race=2 if i % 2 else 0)
            )
        for max_workers in (None, 2):
            reports = engine.solve_many(requests, max_workers=max_workers)
            assert len(reports) == len(requests)
            for request, report in zip(requests, reports):
                assert report.schedule.instance.n == request.instance.n
                assert (report.race is not None) == (request.race >= 2)


# ---------------------------------------------------------------------------
# Serialization round-trips
# ---------------------------------------------------------------------------


class TestRaceSerialization:
    def test_race_outcome_round_trips_with_timings(self):
        inst = uniform_random_instance(25, 3, seed=30)
        report = Engine().solve(SolveRequest(instance=inst, race=3))
        doc = bio.solve_report_to_dict(report, include_timings=True)
        assert "race" in doc
        back = bio.solve_report_from_dict(doc)
        assert back.race is not None
        assert back.race.candidates == report.race.candidates
        assert back.race.decisive == report.race.decisive
        assert back.race.incumbent_timeline == report.race.incumbent_timeline
        assert back.race.winner.algorithm == report.algorithm

    def test_store_serialization_drops_race_telemetry(self):
        inst = uniform_random_instance(25, 3, seed=31)
        report = Engine().solve(SolveRequest(instance=inst, race=3))
        doc = bio.solve_report_to_dict(report, include_timings=False)
        assert "race" not in doc
        back = bio.solve_report_from_dict(doc)
        assert back.race is None
        # The schedule itself still round-trips bit-exactly.
        assert _schedule_signature(back.schedule) == _schedule_signature(
            report.schedule
        )


# ---------------------------------------------------------------------------
# Learned selector: training, persistence, ranking
# ---------------------------------------------------------------------------


def _training_corpus():
    return [
        uniform_random_instance(20, 3, seed=s) for s in range(3)
    ] + [bursty_instance(20, 3, seed=3), proper_instance(20, 3, seed=4)]


def _handcrafted_samples():
    samples = []
    for index, inst in enumerate(_training_corpus()):
        features = extract_features(inst)
        lb = max(best_lower_bound(inst), 1e-12)
        for name in ("first_fit", "first_fit_ls", "best_fit"):
            scheduler = get_scheduler(name)
            if not scheduler.handles(inst, "busy_time"):
                continue
            schedule = scheduler(inst)
            samples.append(
                TrainingSample(
                    fingerprint=f"fp{index}",
                    features=features,
                    algorithm=name,
                    cost_ratio=schedule.total_busy_time / lb,
                    wall_time=0.001 * (index + 1),
                )
            )
    return samples


class TestLearnedSelector:
    def test_training_requires_samples(self):
        with pytest.raises(ValueError, match="no training samples"):
            train_selector([])

    def test_save_load_ranks_identically(self, tmp_path):
        selector = train_selector(_handcrafted_samples())
        path = tmp_path / "selector.json"
        selector.save(path)
        loaded = LearnedSelector.load(path)
        assert loaded.compatible()
        fresh = [uniform_random_instance(30, 3, seed=s) for s in (40, 41, 42)]
        for inst in fresh:
            assert LearnedPolicy(selector).rank(inst) == LearnedPolicy(loaded).rank(
                inst
            )

    def test_registered_policy_round_trip(self, tmp_path):
        # Satellite: save -> load -> install into the *registered* policy ->
        # identical ranking to the in-memory model.
        selector = train_selector(_handcrafted_samples())
        path = tmp_path / "selector.json"
        selector.save(path)
        inst = uniform_random_instance(30, 3, seed=43)
        expected = LearnedPolicy(selector).rank(inst)
        policy = learned_policy()
        try:
            policy.set_selector(LearnedSelector.load(path))
            assert policy.rank(inst) == expected
        finally:
            policy.set_selector(None)
            policy._env_checked = True  # keep this test env-independent

    def test_untrained_policy_matches_best_ratio(self):
        fresh = LearnedPolicy()
        fresh._env_checked = True  # ignore any ambient BUSYTIME_SELECTOR
        for seed in (50, 51):
            inst = uniform_random_instance(25, 3, seed=seed)
            assert fresh.rank(inst) == BestRatioPolicy().rank(inst)

    def test_guarantee_first_never_weakens_certificates(self):
        selector = train_selector(_handcrafted_samples())
        policy = LearnedPolicy(selector)
        for seed in range(6):
            inst = uniform_random_instance(30, 3, seed=seed)
            ranked = policy.rank(inst)
            static = BestRatioPolicy().rank(inst)
            assert sorted(ranked) == sorted(static)
            best = get_scheduler(static[0]).approximation_ratio
            # The learned top pick always carries the best available ratio.
            assert get_scheduler(ranked[0]).approximation_ratio == best

    def test_incompatible_feature_version_falls_back(self):
        selector = train_selector(_handcrafted_samples())
        stale = LearnedSelector(
            heads=selector.heads,
            scale_mean=selector.scale_mean,
            scale_std=selector.scale_std,
            feature_version=FEATURE_VERSION + 1,
            names=selector.names,
        )
        inst = uniform_random_instance(25, 3, seed=60)
        assert LearnedPolicy(stale).rank(inst) == BestRatioPolicy().rank(inst)

    def test_non_ratio_preserving_objective_falls_back(self):
        selector = train_selector(_handcrafted_samples())
        inst = uniform_random_instance(25, 3, seed=61)
        assert LearnedPolicy(selector).rank(
            inst, "machines_plus_busy"
        ) == BestRatioPolicy().rank(inst, "machines_plus_busy")

    def test_env_var_loads_the_model_lazily(self, tmp_path, monkeypatch):
        selector = train_selector(_handcrafted_samples())
        path = tmp_path / "selector.json"
        selector.save(path)
        monkeypatch.setenv(SELECTOR_ENV_VAR, str(path))
        inst = uniform_random_instance(30, 3, seed=62)
        assert LearnedPolicy().rank(inst) == LearnedPolicy(selector).rank(inst)

    def test_unreadable_env_model_warns_and_falls_back(self, tmp_path, monkeypatch):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        monkeypatch.setenv(SELECTOR_ENV_VAR, str(bad))
        inst = uniform_random_instance(25, 3, seed=63)
        policy = LearnedPolicy()
        with pytest.warns(UserWarning, match="could not load selector"):
            ranked = policy.rank(inst)
        assert ranked == BestRatioPolicy().rank(inst)

    def test_time_prediction_never_overflows(self):
        # A linear head extrapolating far out of distribution must clamp,
        # not raise OverflowError (regression: huge instances vs tiny
        # training sets).
        selector = train_selector(_handcrafted_samples())
        huge = uniform_random_instance(2000, 5, seed=64)
        features = extract_features(huge)
        for name in selector.heads:
            predicted = selector.predict_time(name, features)
            assert predicted is None or predicted >= 0.0

    def test_racing_with_learned_policy_matches_static_certificate(self):
        selector = train_selector(_handcrafted_samples())
        policy = learned_policy()
        inst = uniform_random_instance(30, 3, seed=65)
        static = Engine().solve(SolveRequest(instance=inst, race=3))
        try:
            policy.set_selector(selector)
            learned = Engine().solve(
                SolveRequest(instance=inst, race=3, policy="learned")
            )
        finally:
            policy.set_selector(None)
            policy._env_checked = True
        verify_schedule(learned.schedule)
        assert learned.proven_ratio == static.proven_ratio
        assert learned.cost <= static.cost + 1e-9


# ---------------------------------------------------------------------------
# Policy capability coverage (demand-aware + objective filtering)
# ---------------------------------------------------------------------------


def _demand_instance() -> Instance:
    jobs = tuple(
        Job(id=i, interval=Interval(i * 0.5, i * 0.5 + 4.0), demand=2)
        for i in range(8)
    )
    return Instance(jobs=jobs, g=3)


class TestPolicyCapabilityCoverage:
    @pytest.mark.parametrize(
        "policy", [BestRatioPolicy(), FirstFitPolicy(), LearnedPolicy()]
    )
    def test_demand_instances_rank_only_demand_aware(self, policy):
        ranked = policy.rank(_demand_instance())
        assert ranked
        for name in ranked:
            assert get_scheduler(name).demand_aware

    @pytest.mark.parametrize(
        "policy", [BestRatioPolicy(), FirstFitPolicy(), LearnedPolicy()]
    )
    def test_objective_filtering(self, policy):
        inst = uniform_random_instance(25, 3, seed=70)
        ranked = policy.rank(inst, "machines_plus_busy")
        assert ranked
        for name in ranked:
            assert get_scheduler(name).supports_objective("machines_plus_busy")

    def test_racing_a_demand_instance_stays_feasible(self):
        report = Engine().solve(SolveRequest(instance=_demand_instance(), race=2))
        verify_schedule(report.schedule)
        # Ratio proofs cover the unit-demand model only.
        assert report.proven_ratio is None


# ---------------------------------------------------------------------------
# Store history scanning (hardening satellite)
# ---------------------------------------------------------------------------


def _populate_store(store: ResultStore, count: int = 3) -> None:
    engine = Engine()
    for seed in range(count):
        inst = uniform_random_instance(12, 3, seed=seed)
        report = engine.solve(SolveRequest(instance=inst))
        store.put(f"{seed:064x}", report)


class TestHistoryScan:
    def test_memory_only_scan_returns_reports(self):
        store = ResultStore(capacity=8)
        _populate_store(store)
        scan = store.scan_history()
        assert len(scan.reports) == 3
        assert scan.skipped == 0

    def test_disk_scan_skips_corrupt_and_old_entries(self, tmp_path):
        store = ResultStore(capacity=8, directory=tmp_path / "store")
        _populate_store(store)
        root = store.directory
        # Corrupt: unparseable JSON, and a well-versioned document whose
        # body cannot be reconstructed.
        (root / "deadbeef.json").write_text("{this is not json")
        broken = {
            "format": "busytime-solve-report",
            "version": 3,
            "schedule": {"nope": True},
        }
        (root / "cafecafe.json").write_text(json.dumps(broken))
        # Wrong version / format: pre-v2, unknown-future, and a non-dict.
        sample = json.loads(
            next(root.glob("*/*.json")).read_text()
        )
        old = dict(sample, version=1)
        (root / "0ld0ld0ld.json").write_text(json.dumps(old))
        future = dict(sample, version=99)
        (root / "f0f0f0f0.json").write_text(json.dumps(future))
        (root / "11111111.json").write_text("[1, 2, 3]")

        scan = store.scan_history()
        assert isinstance(scan, HistoryScan)
        assert len(scan.reports) == 3
        assert scan.skipped_corrupt == 2
        assert scan.skipped_version == 3
        assert scan.scanned == 8
        for _, report in scan.reports:
            report.schedule.validate()

    def test_scan_limit_takes_newest_first(self, tmp_path):
        store = ResultStore(capacity=8, directory=tmp_path / "store")
        _populate_store(store, count=4)
        scan = store.scan_history(limit=2)
        assert len(scan.reports) == 2

    def test_training_warns_but_proceeds_over_bad_history(self, tmp_path):
        store = ResultStore(capacity=8, directory=tmp_path / "store")
        _populate_store(store)
        (store.directory / "deadbeef.json").write_text("{garbage")
        sample = json.loads(next(store.directory.glob("*/*.json")).read_text())
        (store.directory / "0ld0ld.json").write_text(
            json.dumps(dict(sample, version=1))
        )
        with pytest.warns(UserWarning, match=r"skipped 2 unusable store entries"):
            selector, stats = train_from_store(store)
        assert stats["skipped_corrupt"] == 1
        assert stats["skipped_version"] == 1
        assert stats["samples"] > 0
        assert selector.heads
        assert selector.compatible()

    def test_clean_history_trains_without_warnings(self, tmp_path):
        store = ResultStore(capacity=8, directory=tmp_path / "store")
        _populate_store(store)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            selector, stats = train_from_store(store)
        assert stats["skipped_corrupt"] == 0
        assert stats["skipped_version"] == 0
        assert selector.heads


# ---------------------------------------------------------------------------
# CLI: solve --race / --selector and train-selector
# ---------------------------------------------------------------------------


class TestPortfolioCli:
    def test_solve_with_race_prints_the_race_columns(self, tmp_path, capsys):
        from busytime.cli import main
        from busytime.io import save_instance

        path = tmp_path / "inst.json"
        save_instance(uniform_random_instance(20, 3, seed=90), path)
        rc = main(["solve", str(path), "--race", "3", "--deadline", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "raced" in out
        assert "decisive" in out

    def test_race_of_one_is_a_one_line_cli_error(self, tmp_path, capsys):
        from busytime.cli import main
        from busytime.io import save_instance

        path = tmp_path / "inst.json"
        save_instance(uniform_random_instance(10, 3, seed=91), path)
        rc = main(["solve", str(path), "--race", "1"])
        assert rc == 2
        assert "race" in capsys.readouterr().err

    def test_train_selector_then_solve_with_it(self, tmp_path, capsys, monkeypatch):
        from busytime.cli import main
        from busytime.io import save_instance

        monkeypatch.delenv(SELECTOR_ENV_VAR, raising=False)
        store = ResultStore(capacity=8, directory=tmp_path / "store")
        _populate_store(store)
        model_path = tmp_path / "selector.json"
        rc = main(
            [
                "train-selector",
                "--store-dir", str(tmp_path / "store"),
                "--output", str(model_path),
                "--min-samples", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "selector trained" in out
        assert LearnedSelector.load(model_path).compatible()

        inst_path = tmp_path / "inst.json"
        save_instance(uniform_random_instance(20, 3, seed=92), inst_path)
        try:
            rc = main(
                [
                    "solve", str(inst_path),
                    "--policy", "learned",
                    "--selector", str(model_path),
                    "--race", "3",
                ]
            )
        finally:
            # The CLI exports the model path for pool workers; scrub it so
            # later tests see a pristine environment.
            import os

            os.environ.pop(SELECTOR_ENV_VAR, None)
            learned_policy().set_selector(None)
            learned_policy()._env_checked = True
        assert rc == 0
        assert "raced" in capsys.readouterr().out

    def test_train_selector_surfaces_skip_warnings(self, tmp_path, capsys):
        from busytime.cli import main

        store = ResultStore(capacity=8, directory=tmp_path / "store")
        _populate_store(store)
        (store.directory / "deadbeef.json").write_text("{garbage")
        rc = main(
            [
                "train-selector",
                "--store-dir", str(tmp_path / "store"),
                "--output", str(tmp_path / "selector.json"),
                "--min-samples", "2",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "unusable store entries" in captured.err

    def test_train_selector_empty_store_is_a_cli_error(self, tmp_path, capsys):
        from busytime.cli import main

        (tmp_path / "store").mkdir()
        rc = main(
            [
                "train-selector",
                "--store-dir", str(tmp_path / "store"),
                "--output", str(tmp_path / "selector.json"),
            ]
        )
        assert rc == 2
        assert "no training samples" in capsys.readouterr().err

    def test_missing_selector_file_is_a_cli_error(self, tmp_path, capsys, monkeypatch):
        from busytime.cli import main
        from busytime.io import save_instance

        monkeypatch.delenv(SELECTOR_ENV_VAR, raising=False)
        path = tmp_path / "inst.json"
        save_instance(uniform_random_instance(10, 3, seed=93), path)
        rc = main(["solve", str(path), "--selector", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "could not load selector" in capsys.readouterr().err

    def test_submit_parser_accepts_race_and_deadline_ms(self):
        from busytime.cli import build_parser

        args = build_parser().parse_args(
            ["submit", "x.json", "--race", "3", "--deadline-ms", "250"]
        )
        assert args.race == 3
        assert args.deadline_ms == 250


# ---------------------------------------------------------------------------
# Service + HTTP frontend: racing behind admission control
# ---------------------------------------------------------------------------


class TestServiceRacing:
    def test_admission_caps_the_deadline(self):
        from busytime.service import AdmissionError, AdmissionLimits

        limits = AdmissionLimits(max_time_limit=5.0)
        inst = uniform_random_instance(10, 3, seed=80)
        with pytest.raises(AdmissionError, match="deadline"):
            limits.admit(SolveRequest(instance=inst, race=2, deadline=10.0))

    def test_admission_supplies_a_deadline_for_races(self):
        from busytime.service import AdmissionLimits

        limits = AdmissionLimits(max_time_limit=5.0)
        inst = uniform_random_instance(10, 3, seed=81)
        admitted = limits.admit(SolveRequest(instance=inst, race=2))
        assert admitted.deadline == 5.0

    def test_service_races_and_caches_decisive_results(self):
        from busytime.service import AdmissionLimits, SolveService

        service = SolveService(limits=AdmissionLimits(max_time_limit=30.0))
        try:
            inst = uniform_random_instance(25, 3, seed=82)
            first = service.solve(SolveRequest(instance=inst, race=3), timeout=30)
            assert first.race is not None
            assert len(first.race.candidates) >= 2
            verify_schedule(first.schedule)
            again = service.solve(SolveRequest(instance=inst, race=3), timeout=30)
            assert _schedule_signature(again.schedule) == _schedule_signature(
                first.schedule
            )
            assert service.store.stats()["hits"] >= 1
        finally:
            service.close()

    def test_raced_and_plain_solves_never_share_a_cache_line(self):
        from busytime.service import canonicalize, request_fingerprint

        inst = uniform_random_instance(15, 3, seed=83)
        form = canonicalize(inst)
        plain = request_fingerprint(SolveRequest(instance=inst), form=form)
        raced = request_fingerprint(SolveRequest(instance=inst, race=3), form=form)
        assert plain != raced

    def test_http_deadline_ms_option_races_end_to_end(self):
        import threading

        from busytime.service import (
            AdmissionLimits,
            SolveService,
            make_server,
            submit_instance,
        )

        service = SolveService(limits=AdmissionLimits(max_time_limit=30.0))
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}"
            inst = uniform_random_instance(25, 3, seed=84)
            reply = submit_instance(
                url,
                bio.instance_to_dict(inst),
                options={"deadline_ms": 5000},
                wait=True,
            )
            assert reply["status"] == "done"
            report = bio.solve_report_from_dict(reply["report"])
            assert report.race is not None
            assert len(report.race.candidates) >= 2
            verify_schedule(report.schedule)
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_http_rejects_boolean_deadline(self):
        import threading

        from busytime.service import (
            AdmissionLimits,
            SolveService,
            make_server,
            submit_instance,
        )

        service = SolveService(limits=AdmissionLimits())
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}"
            inst = uniform_random_instance(10, 3, seed=85)
            with pytest.raises(RuntimeError, match="deadline_ms"):
                submit_instance(
                    url,
                    bio.instance_to_dict(inst),
                    options={"deadline_ms": True},
                    wait=True,
                )
        finally:
            server.shutdown()
            server.server_close()
            service.close()
