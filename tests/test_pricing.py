"""The tariff-aware placement subsystem: pricing, windows, site capacity.

Covers the value objects (:mod:`busytime.pricing.series`), the flex-window
extension of the core model, the window/site oracles in
``verify_schedule``, the placement algorithms, the engine routing, the
window-aware lower bounds, and the degeneration guarantees (unit tariff /
zero slack must be bit-for-bit the rigid model).
"""

import json
import math
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from busytime.algorithms import (
    first_fit,
    get_scheduler,
    place_first_fit,
    tariff_local_search,
)
from busytime.core.instance import Instance, connected_components
from busytime.core.intervals import Interval, Job
from busytime.core.objectives import CostModel, get_cost_model
from busytime.core.profile_index import profile_index
from busytime.core.schedule import (
    InfeasibleScheduleError,
    Machine,
    Schedule,
    ScheduleBuilder,
    verify_schedule,
)
from busytime.engine import solve
from busytime.engine.request import RequestValidationError, SolveRequest
from busytime.generators import (
    flex_window_instance,
    office_background,
    tariff_corpus,
    tou_tariff,
    uniform_random_instance,
)
from busytime.io import (
    instance_from_dict,
    instance_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from busytime.pricing import (
    BackgroundLoad,
    TariffSeries,
    band_demand_bound,
    tariff_lower_bound,
    tariff_parallelism_bound,
)
from busytime.service.canonical import request_fingerprint

TOU = TariffSeries((4.0, 8.0), (1.0, 5.0, 1.0), name="toy")


def tariff_model(tariff=TOU):
    return CostModel(objective="tariff_busy_time", tariff=tariff)


# ---------------------------------------------------------------------------
# TariffSeries / BackgroundLoad value objects
# ---------------------------------------------------------------------------


class TestTariffSeries:
    def test_rate_at_band_edges(self):
        assert TOU.rate_at(3.9) == 1.0
        assert TOU.rate_at(4.0) == 5.0  # closed-left bands
        assert TOU.rate_at(7.9) == 5.0
        assert TOU.rate_at(8.0) == 1.0
        assert TOU.rate_at(-100.0) == 1.0

    def test_bands_partition_the_window(self):
        bands = list(TOU.bands(2.0, 10.0))
        assert bands == [(2.0, 4.0, 1.0), (4.0, 8.0, 5.0), (8.0, 10.0, 1.0)]
        assert list(TOU.bands(5.0, 5.0)) == []

    def test_integrate_exact(self):
        assert TOU.integrate(0.0, 4.0) == 4.0
        assert TOU.integrate(4.0, 8.0) == 20.0
        assert TOU.integrate(2.0, 10.0) == 2.0 + 20.0 + 2.0
        assert TOU.integrate(9.0, 3.0) == 0.0

    def test_constant_tariff_is_flat(self):
        flat = TariffSeries((), (2.0,))
        assert flat.is_constant
        assert flat.integrate(0.0, 7.0) == 14.0
        assert not TOU.is_constant

    def test_min_rate_in(self):
        assert TOU.min_rate_in(5.0, 7.0) == 5.0
        assert TOU.min_rate_in(0.0, 12.0) == 1.0
        assert TOU.min_rate_in(6.0, 6.0) == 5.0

    def test_shift_round_trip(self):
        shifted = TOU.shifted(3.0)
        assert shifted.breakpoints == (7.0, 11.0)
        assert shifted.shifted(-3.0).breakpoints == TOU.breakpoints
        assert TOU.shifted(0.0) is TOU

    def test_dict_round_trip(self):
        doc = json.loads(json.dumps(TOU.to_dict()))
        assert TariffSeries.from_dict(doc) == TOU
        with pytest.raises(ValueError):
            TariffSeries.from_dict({"rates": [1.0], "bogus": 1})

    def test_validation(self):
        with pytest.raises(ValueError):
            TariffSeries((2.0, 2.0), (1.0, 1.0, 1.0))  # not increasing
        with pytest.raises(ValueError):
            TariffSeries((1.0,), (1.0,))  # wrong rate count
        with pytest.raises(ValueError):
            TariffSeries((), (-1.0,))  # negative rate


class TestBackgroundLoad:
    BG = BackgroundLoad((0.0, 8.0, 20.0), (1, 3))

    def test_level_at_closed_bands(self):
        assert self.BG.level_at(-0.1) == 0
        assert self.BG.level_at(0.0) == 1
        assert self.BG.level_at(8.0) == 3  # closed: max of adjacent bands
        assert self.BG.level_at(20.0) == 3
        assert self.BG.level_at(20.1) == 0

    def test_bands_drop_zero_levels(self):
        bg = BackgroundLoad((0.0, 5.0, 10.0), (0, 2))
        assert list(bg.bands()) == [(5.0, 10.0, 2)]

    def test_round_trip_and_validation(self):
        assert BackgroundLoad.from_dict(self.BG.to_dict()) == self.BG
        with pytest.raises(ValueError):
            BackgroundLoad((0.0,), ())
        with pytest.raises(ValueError):
            BackgroundLoad((0.0, 1.0), (-1,))


# ---------------------------------------------------------------------------
# Flex windows on the core model
# ---------------------------------------------------------------------------


class TestJobWindows:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            Job(0, Interval(2.0, 4.0), release=3.0)  # release after start
        with pytest.raises(ValueError):
            Job(0, Interval(2.0, 4.0), deadline=3.0)  # deadline before end
        with pytest.raises(ValueError):
            Job(0, Interval(2.0, 4.0), release=float("nan"))

    def test_zero_slack_window_is_fixed(self):
        j = Job(0, Interval(2.0, 4.0), release=2.0, deadline=4.0)
        assert not j.has_window
        assert j.mandatory_interval() == j.interval

    def test_placed_at(self):
        j = Job(0, Interval(4.0, 6.0), release=0.0, deadline=12.0)
        assert j.has_window
        moved = j.placed_at(9.5)
        assert (moved.start, moved.end) == (9.5, 11.5)
        assert moved.release == 0.0 and moved.deadline == 12.0
        # clamped within tolerance, rejected outside
        assert j.placed_at(10.0 + 1e-12).end <= 12.0
        with pytest.raises(ValueError):
            j.placed_at(10.5)
        fixed = Job(1, Interval(4.0, 6.0))
        assert fixed.placed_at(4.0) is fixed
        with pytest.raises(ValueError):
            fixed.placed_at(5.0)

    def test_placed_at_deadline_ulp_snap(self):
        d = 50.11055713763697
        j = Job(0, Interval(d - 9.0, d - 1.0), release=0.0, deadline=d)
        latest = j.placed_at(d - j.length)
        assert latest.end <= d  # one-ulp overshoot is snapped

    def test_mandatory_interval(self):
        # slack >= length: no mandatory part
        wide = Job(1, Interval(4.0, 6.0), release=0.0, deadline=12.0)
        assert wide.mandatory_interval() is None
        tight = Job(2, Interval(4.0, 6.0), release=3.5, deadline=6.5)
        assert tight.mandatory_interval() == Interval(4.5, 5.5)


class TestInstanceFlex:
    def test_site_fields_validation(self):
        jobs = (Job(0, Interval(0.0, 1.0), demand=2),)
        with pytest.raises(ValueError):
            Instance(jobs=jobs, g=2, site_capacity=0)
        with pytest.raises(ValueError):
            Instance(jobs=jobs, g=2, site_capacity=1)  # demand exceeds cap
        Instance(jobs=jobs, g=2, site_capacity=2)

    def test_flex_instance_is_one_component(self):
        jobs = (
            Job(0, Interval(0.0, 1.0), release=0.0, deadline=10.0),
            Job(1, Interval(8.0, 9.0), release=0.0, deadline=10.0),
        )
        flex = Instance(jobs=jobs, g=1)
        assert flex.is_flex and flex.has_windows
        assert connected_components(flex) == [flex]
        rigid = Instance(jobs=(Job(0, Interval(0.0, 1.0)), Job(1, Interval(8.0, 9.0))), g=1)
        assert len(connected_components(rigid)) == 2


# ---------------------------------------------------------------------------
# verify_schedule oracles
# ---------------------------------------------------------------------------


class TestVerifyScheduleOracles:
    def _schedule(self, instance, machines):
        return Schedule(instance=instance, machines=machines, algorithm="manual")

    def test_moved_fixed_job_rejected(self):
        inst = Instance(jobs=(Job(0, Interval(0.0, 2.0)),), g=1)
        moved = Job(0, Interval(1.0, 3.0))
        sched = self._schedule(inst, (Machine(index=0, jobs=(moved,)),))
        with pytest.raises(InfeasibleScheduleError, match="fixed"):
            verify_schedule(sched)

    def test_window_violation_rejected(self):
        j = Job(0, Interval(4.0, 6.0), release=2.0, deadline=8.0)
        inst = Instance(jobs=(j,), g=1)
        outside = Job(0, Interval(0.0, 2.0), release=0.0, deadline=2.0)
        sched = self._schedule(inst, (Machine(index=0, jobs=(outside,)),))
        with pytest.raises(InfeasibleScheduleError):
            verify_schedule(sched)

    def test_site_capacity_violation_rejected(self):
        jobs = tuple(Job(i, Interval(0.0, 2.0), release=0.0, deadline=6.0) for i in range(2))
        inst = Instance(jobs=jobs, g=2, site_capacity=2,
                        background=BackgroundLoad((0.0, 6.0), (1,)))
        # both jobs at [0, 2] + background 1 = 3 > cap 2
        sched = self._schedule(inst, (Machine(index=0, jobs=jobs),))
        with pytest.raises(InfeasibleScheduleError, match="site"):
            verify_schedule(sched)
        # slide one job strictly clear (closed intervals touch at shared
        # endpoints, so a gap is needed): 1 + 1 = 2 <= cap
        slid = (jobs[0], jobs[1].placed_at(2.5))
        ok = self._schedule(inst, (Machine(index=0, jobs=slid),))
        verify_schedule(ok)

    def test_builder_site_fits(self):
        jobs = tuple(Job(i, Interval(0.0, 2.0), release=0.0, deadline=6.0) for i in range(3))
        inst = Instance(jobs=jobs, g=3, site_capacity=2)
        b = ScheduleBuilder(inst)
        idx = b.open_machine()
        b.assign(idx, jobs[0])
        b.assign(idx, jobs[1])
        assert not b.site_fits(jobs[2])
        assert b.site_fits(jobs[2].placed_at(3.0))


# ---------------------------------------------------------------------------
# Placement algorithms + degeneration
# ---------------------------------------------------------------------------


class TestPlacement:
    def test_zero_slack_degenerates_to_first_fit(self):
        inst = uniform_random_instance(30, 3, seed=7)
        base = first_fit(inst)
        for model in (None, tariff_model(), get_cost_model("busy_time")):
            placed = place_first_fit(inst, model)
            assert [
                [j.id for j in m.jobs] for m in placed.machines
            ] == [[j.id for j in m.jobs] for m in base.machines]
            assert placed.total_busy_time == base.total_busy_time

    def test_unit_tariff_costs_bit_for_bit(self):
        inst = uniform_random_instance(40, 3, seed=11)
        sched = first_fit(inst)
        unit = CostModel(objective="tariff_busy_time", tariff=TariffSeries((), (1.0,)))
        assert unit.schedule_cost(sched) == get_cost_model("busy_time").schedule_cost(sched)
        assert unit.schedule_cost(sched) == sched.total_busy_time

    def test_local_search_improves_on_tou(self):
        inst = flex_window_instance(24, 3, slack=10.0, seed=3)
        model = tariff_model(tou_tariff())
        pf = place_first_fit(inst, model)
        ls = tariff_local_search(inst, model)
        verify_schedule(pf)
        verify_schedule(ls)
        assert model.schedule_cost(ls) <= model.schedule_cost(pf) + 1e-9

    def test_corpus_feasible_and_bounded(self):
        for inst, model in tariff_corpus(seed=1)[:4]:
            sched = tariff_local_search(inst, model)
            verify_schedule(sched)
            assert model.lower_bound(inst) <= model.schedule_cost(sched) + 1e-9


# ---------------------------------------------------------------------------
# Lower bounds
# ---------------------------------------------------------------------------


class TestTariffBounds:
    def test_unit_tariff_matches_paper_bounds(self):
        inst = uniform_random_instance(20, 3, seed=2)
        unit = TariffSeries((), (1.0,))
        from busytime.core.bounds import parallelism_bound

        assert tariff_parallelism_bound(inst, unit) == pytest.approx(
            parallelism_bound(inst)
        )

    def test_bounds_hold_on_corpus(self):
        for inst, model in tariff_corpus(seed=2)[:6]:
            sched = place_first_fit(inst, model)
            bound = tariff_lower_bound(inst, model.tariff)
            assert bound <= model.schedule_cost(sched) + 1e-9

    def test_band_demand_bound_counts_mandatory_parts(self):
        # one job pinned (zero slack) on [4, 6] during the expensive band
        j = Job(0, Interval(4.0, 6.0))
        inst = Instance(jobs=(j,), g=1)
        assert band_demand_bound(inst, TOU) == pytest.approx(10.0)
        # wide window: no mandatory part, so only the parallelism bound bites
        wide = Instance(jobs=(Job(0, Interval(4.0, 6.0), release=0.0, deadline=12.0),), g=1)
        assert band_demand_bound(wide, TOU) == 0.0
        assert tariff_parallelism_bound(wide, TOU) == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Engine routing
# ---------------------------------------------------------------------------


class TestEngineRouting:
    def _flex_request(self, **kw):
        inst = flex_window_instance(12, 2, slack=8.0, seed=9)
        return SolveRequest(
            instance=inst, objective="tariff_busy_time", cost_model=tariff_model(), **kw
        )

    def test_auto_routes_to_window_aware(self):
        report = solve(self._flex_request())
        assert report.algorithm in ("auto",)
        used = {d.algorithm for d in report.components}
        assert used <= {"placement_first_fit", "tariff_local_search"}
        verify_schedule(report.schedule)

    def test_forced_non_window_aware_rejected(self):
        inst = flex_window_instance(6, 2, slack=8.0, seed=9)
        with pytest.raises(RequestValidationError, match="window-aware"):
            solve(SolveRequest(instance=inst, algorithm="first_fit"))

    def test_race_on_flex_instance(self):
        report = solve(self._flex_request(race=2))
        assert report.race is not None
        verify_schedule(report.schedule)

    def test_no_proven_ratio_on_flex(self):
        report = solve(self._flex_request())
        assert report.proven_ratio is None

    def test_capability_flags_in_info(self):
        info = get_scheduler("tariff_local_search").info()
        assert info.window_aware and info.tariff_aware
        assert not get_scheduler("first_fit").info().window_aware


# ---------------------------------------------------------------------------
# Differential: constant tariff + zero slack == the seed, bit for bit
# ---------------------------------------------------------------------------


class TestDifferentialDegeneration:
    @pytest.mark.parametrize("seed", [0, 5, 23])
    def test_engine_solve_identical_under_unit_tariff(self, seed):
        inst = uniform_random_instance(25, 3, seed=seed)
        base = solve(SolveRequest(instance=inst))
        unit = CostModel(objective="tariff_busy_time", tariff=TariffSeries((), (1.0,)))
        priced = solve(
            SolveRequest(instance=inst, objective="tariff_busy_time", cost_model=unit)
        )
        assert priced.value == base.value
        assert priced.lower_bound == base.lower_bound
        assert [
            [j.id for j in m.jobs] for m in priced.schedule.machines
        ] == [[j.id for j in m.jobs] for m in base.schedule.machines]

    def test_explicit_zero_slack_windows_fingerprint_like_fixed(self):
        fixed = Instance(
            jobs=tuple(Job(i, Interval(float(i), float(i) + 2.0)) for i in range(5)), g=2
        )
        zslack = Instance(
            jobs=tuple(
                Job(i, Interval(float(i), float(i) + 2.0), release=float(i),
                    deadline=float(i) + 2.0)
                for i in range(5)
            ),
            g=2,
        )
        assert request_fingerprint(SolveRequest(instance=fixed)) == request_fingerprint(
            SolveRequest(instance=zslack)
        )

    def test_translation_equivariance_with_anchored_tariff(self):
        # dyadic coordinates keep every shift/anchor subtraction exact, so
        # bit-for-bit fingerprint equality is actually attainable
        inst = Instance(
            jobs=tuple(
                Job(i, Interval(0.25 + 1.5 * i, 2.75 + 1.5 * i),
                    release=0.25 * i, deadline=4.0 + 1.5 * i)
                for i in range(6)
            ),
            g=2,
        )
        model = tariff_model(tou_tariff())
        req = SolveRequest(instance=inst, objective="tariff_busy_time", cost_model=model)
        delta = 13.5  # dyadic: exact in binary floating point
        shifted_jobs = tuple(
            Job(
                id=j.id,
                interval=Interval(j.start + delta, j.end + delta),
                weight=j.weight,
                tag=j.tag,
                demand=j.demand,
                release=None if j.release is None else j.release + delta,
                deadline=None if j.deadline is None else j.deadline + delta,
            )
            for j in inst.jobs
        )
        shifted = Instance(jobs=shifted_jobs, g=inst.g)
        shifted_model = tariff_model(tou_tariff().shifted(delta))
        req_s = SolveRequest(
            instance=shifted, objective="tariff_busy_time", cost_model=shifted_model
        )
        assert request_fingerprint(req) == request_fingerprint(req_s)
        # a *non*-shifted tariff on the shifted instance is a different problem
        req_ns = SolveRequest(
            instance=shifted, objective="tariff_busy_time", cost_model=model
        )
        assert request_fingerprint(req) != request_fingerprint(req_ns)


# ---------------------------------------------------------------------------
# io round-trips
# ---------------------------------------------------------------------------


class TestFlexIO:
    def test_flex_instance_round_trip(self):
        inst = flex_window_instance(8, 2, slack=5.0, seed=6)
        capped = Instance(
            jobs=inst.jobs, g=2, site_capacity=9, background=office_background()
        )
        doc = json.loads(json.dumps(instance_to_dict(capped)))
        assert doc["version"] == 3
        back = instance_from_dict(doc)
        assert back.jobs == capped.jobs
        assert back.site_capacity == 9 and back.background == capped.background

    def test_placed_schedule_round_trip(self):
        inst = flex_window_instance(10, 2, slack=8.0, seed=2)
        model = tariff_model(tou_tariff())
        sched = tariff_local_search(inst, model)
        doc = json.loads(json.dumps(schedule_to_dict(sched)))
        back = schedule_from_dict(doc)
        assert [
            (j.id, j.start, j.end) for m in back.machines for j in m.jobs
        ] == [(j.id, j.start, j.end) for m in sched.machines for j in m.jobs]

    def test_placement_outside_window_rejected(self):
        j = Job(0, Interval(4.0, 6.0), release=2.0, deadline=8.0)
        inst = Instance(jobs=(j,), g=1)
        sched = Schedule(
            instance=inst, machines=(Machine(index=0, jobs=(j.placed_at(2.0),)),),
            algorithm="manual",
        )
        doc = schedule_to_dict(sched)
        doc["placements"][0]["start"] = 0.0
        doc["placements"][0]["end"] = 2.0
        with pytest.raises(ValueError):
            schedule_from_dict(doc)


# ---------------------------------------------------------------------------
# Hypothesis: profile-integrated pricing == brute force on dyadic grids
# ---------------------------------------------------------------------------

GRID = 0.25  # dyadic cell: exact in binary floating point

dyadic_coord = st.integers(min_value=0, max_value=127).map(lambda k: k * GRID)
dyadic_len = st.integers(min_value=1, max_value=40).map(lambda k: k * GRID)
dyadic_rate = st.integers(min_value=0, max_value=16).map(lambda k: k * GRID)


@st.composite
def dyadic_jobs(draw, max_jobs=12):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for i in range(n):
        start = draw(dyadic_coord)
        length = draw(dyadic_len)
        demand = draw(st.integers(min_value=1, max_value=3))
        jobs.append(Job(id=i, interval=Interval(start, start + length), demand=demand))
    return tuple(jobs)


@st.composite
def dyadic_tariffs(draw):
    k = draw(st.integers(min_value=0, max_value=4))
    raw = draw(
        st.lists(
            st.integers(min_value=1, max_value=160), min_size=k, max_size=k, unique=True
        )
    )
    breakpoints = tuple(sorted(b * GRID for b in raw))
    rates = tuple(draw(dyadic_rate) for _ in range(k + 1))
    return TariffSeries(breakpoints, rates)


def brute_force_cost(schedule, tariff):
    """Per-cell reference: price each machine's covered dyadic cells."""
    total = 0.0
    for m in schedule.machines:
        if not m.jobs:
            continue
        lo = min(j.start for j in m.jobs)
        hi = max(j.end for j in m.jobs)
        cells = int(round((hi - lo) / GRID))
        for c in range(cells):
            a = lo + c * GRID
            b = a + GRID
            mid = (a + b) / 2.0
            if any(j.start < b and j.end > a for j in m.jobs):
                total += tariff.rate_at(mid) * GRID
    return total


class TestPricingFuzz:
    @given(jobs=dyadic_jobs(), tariff=dyadic_tariffs())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_integrated_cost_matches_brute_force(self, jobs, tariff):
        instance = Instance(jobs=jobs, g=4)
        model = CostModel(objective="tariff_busy_time", tariff=tariff)
        for mode in ("off", "force"):
            with profile_index(mode):
                sched = first_fit(instance)
                cost = model.schedule_cost(sched)
            assert cost == pytest.approx(brute_force_cost(sched, tariff), abs=1e-6)

    @given(jobs=dyadic_jobs(max_jobs=8), tariff=dyadic_tariffs())
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_weighted_model_scales_busy_rate(self, jobs, tariff):
        instance = Instance(jobs=jobs, g=4)
        base = CostModel(objective="tariff_busy_time", tariff=tariff)
        scaled = replace(base, busy_rate=2.0)
        sched = first_fit(instance)
        assert scaled.schedule_cost(sched) == pytest.approx(
            2.0 * base.schedule_cost(sched), rel=1e-12
        )
