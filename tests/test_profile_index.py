"""Differential suite for the indexed profile kernel.

Random add/remove/query interleavings are driven *simultaneously* through

* the indexed segment-tree profile (:class:`IndexedSweepProfile`),
* the legacy linear :class:`SweepProfile`, and
* a brute-force oracle over the live interval list,

asserting exact equality at every step — for the cardinality queries and
the demand-weighted ([15]) twins.  Coordinates are integers so covered
measures and float comparisons are exact, not approximate.

The bulk kernels (``bulk_add``, ``fits_many``, the vectorized
``from_intervals``) are pinned against the sequential paths the same way.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import busytime.core.events as events_module
from busytime.core.events import BULK_FROM_INTERVALS_MIN, SweepProfile
from busytime.core.intervals import Interval, Job
from busytime.core.profile_index import (
    INDEXED_UNIVERSE_MIN,
    IndexedSweepProfile,
    make_profile,
    make_profile_from_intervals,
    profile_index,
    profile_index_mode,
)

# ---------------------------------------------------------------------------
# Brute-force oracle
# ---------------------------------------------------------------------------

COORD_MAX = 40


class BruteProfile:
    """The definition, executed literally: a list of live intervals."""

    def __init__(self):
        self.live = []

    def add(self, start, end, demand=1):
        self.live.append((start, end, demand))

    def remove(self, start, end, demand=1):
        self.live.remove((start, end, demand))

    @property
    def count(self):
        return len(self.live)

    def load_at(self, t):
        return sum(1 for s, e, _ in self.live if s <= t <= e)

    def demand_at(self, t):
        return sum(d for s, e, d in self.live if s <= t <= e)

    def _candidates(self, a, b):
        pts = {a, b}
        for s, e, _ in self.live:
            if a <= s <= b:
                pts.add(s)
            if a <= e <= b:
                pts.add(e)
        return sorted(pts)

    def max_load_in(self, a, b):
        return max((self.load_at(t) for t in self._candidates(a, b)), default=0)

    def max_demand_in(self, a, b):
        return max((self.demand_at(t) for t in self._candidates(a, b)), default=0)

    def max_load(self):
        return self.max_load_in(-1, COORD_MAX + 2)

    def max_demand(self):
        return self.max_demand_in(-1, COORD_MAX + 2)

    @property
    def measure(self):
        return self.covered_measure_in(-1, COORD_MAX + 2)

    def covered_measure_in(self, a, b):
        if b <= a:
            return 0.0
        pts = self._candidates(a, b)
        total = 0.0
        for lo, hi in zip(pts, pts[1:]):
            mid = (lo + hi) / 2.0
            if any(s <= mid <= e for s, e, _ in self.live):
                total += hi - lo
        return total

    def fits(self, a, b, g, demand=1):
        return self.max_demand_in(a, b) + demand <= g


# ---------------------------------------------------------------------------
# Strategies: op sequences over an integer grid
# ---------------------------------------------------------------------------

coords = st.integers(min_value=0, max_value=COORD_MAX - 10)
lengths = st.integers(min_value=0, max_value=10)
unit_demands = st.just(1)
mixed_demands = st.sampled_from([1, 1, 1, 2, 4])


def op_sequences(demand_strategy):
    # Each entry: (kind, start, length, demand).  kind 0 = add, 1 = remove
    # (removes target the i-th oldest live interval, modulo the live count).
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            coords,
            lengths,
            demand_strategy,
        ),
        min_size=1,
        max_size=40,
    )


def run_differential(ops, with_universe):
    universe = list(range(COORD_MAX + 1)) if with_universe else None
    idx = IndexedSweepProfile(universe=universe)
    legacy = SweepProfile()
    brute = BruteProfile()
    for kind, start, length, demand in ops:
        if kind == 1 and brute.live:
            s, e, d = brute.live[start % len(brute.live)]
            idx.remove(s, e, demand=d)
            legacy.remove(s, e, demand=d)
            brute.remove(s, e, demand=d)
        else:
            s, e = float(start), float(start + length)
            idx.add(s, e, demand=demand)
            legacy.add(s, e, demand=demand)
            brute.add(s, e, demand=demand)
        assert idx.count == legacy.count == brute.count
        assert idx.max_load() == legacy.max_load() == brute.max_load()
        assert idx.max_demand() == legacy.max_demand() == brute.max_demand()
        assert idx.measure == legacy.measure == brute.measure
        probe = (start - 1, start, start + 0.5, start + length, COORD_MAX)
        for t in probe:
            assert idx.load_at(t) == legacy.load_at(t) == brute.load_at(t)
            assert idx.demand_at(t) == legacy.demand_at(t) == brute.demand_at(t)
        windows = (
            (start, start + length),
            (start - 2, start + length + 2),
            (0, COORD_MAX),
            (start + 0.5, start + length + 0.5),
        )
        for a, b in windows:
            if b < a:
                continue
            assert (
                idx.max_load_in(a, b)
                == legacy.max_load_in(a, b)
                == brute.max_load_in(a, b)
            )
            assert (
                idx.max_demand_in(a, b)
                == legacy.max_demand_in(a, b)
                == brute.max_demand_in(a, b)
            )
            assert (
                idx.covered_measure_in(a, b)
                == legacy.covered_measure_in(a, b)
                == brute.covered_measure_in(a, b)
            )
            for g in (1, 3, 8):
                for d in (1, 2):
                    assert (
                        idx.fits(a, b, g, demand=d)
                        == legacy.fits(a, b, g, demand=d)
                        == brute.fits(a, b, g, demand=d)
                    )


FUZZ = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@FUZZ
@given(ops=op_sequences(unit_demands), with_universe=st.booleans())
def test_differential_unit_demand(ops, with_universe):
    run_differential(ops, with_universe)


@FUZZ
@given(ops=op_sequences(mixed_demands), with_universe=st.booleans())
def test_differential_weighted_demand(ops, with_universe):
    run_differential(ops, with_universe)


# ---------------------------------------------------------------------------
# Batch construction / bulk kernels vs the sequential paths
# ---------------------------------------------------------------------------

jobs_strategy = st.lists(
    st.tuples(coords, lengths, mixed_demands), min_size=0, max_size=30
).map(
    lambda triples: [
        Job(id=i, interval=Interval(float(s), float(s + l)), demand=d)
        for i, (s, l, d) in enumerate(triples)
    ]
)


@FUZZ
@given(jobs=jobs_strategy)
def test_from_intervals_and_copy_parity(jobs):
    # Force the numpy fast path regardless of batch size, then disable it.
    try:
        events_module.BULK_FROM_INTERVALS_MIN = 1
        fast = SweepProfile.from_intervals(jobs)
        events_module.BULK_FROM_INTERVALS_MIN = 10**9
        slow = SweepProfile.from_intervals(jobs)
    finally:
        events_module.BULK_FROM_INTERVALS_MIN = BULK_FROM_INTERVALS_MIN
    indexed = IndexedSweepProfile.from_intervals(jobs)
    snapshot = indexed.copy()
    assert fast.breakpoints == slow.breakpoints
    assert fast.count == slow.count == indexed.count == snapshot.count
    assert fast.measure == slow.measure == indexed.measure
    for t in range(-1, COORD_MAX + 2):
        assert (
            fast.load_at(t)
            == slow.load_at(t)
            == indexed.load_at(t)
            == snapshot.load_at(t)
        )
        assert fast.demand_at(t) == slow.demand_at(t) == indexed.demand_at(t)
    # Mutating the copy leaves the original untouched.
    snapshot.add(0.0, 5.0)
    assert snapshot.load_at(1.0) == indexed.load_at(1.0) + 1


@FUZZ
@given(
    jobs=jobs_strategy,
    batch=st.lists(st.tuples(coords, lengths, mixed_demands), min_size=1, max_size=15),
)
def test_bulk_add_parity(jobs, batch):
    bulk = SweepProfile.from_intervals(jobs)
    ref = SweepProfile.from_intervals(jobs)
    indexed = IndexedSweepProfile.from_intervals(jobs)
    starts = [float(s) for s, _, _ in batch]
    ends = [float(s + l) for s, l, _ in batch]
    demands = [d for _, _, d in batch]
    bulk.bulk_add(starts, ends, demands)
    indexed.bulk_add(starts, ends, demands)
    for s, e, d in zip(starts, ends, demands):
        ref.add(s, e, demand=d)
    assert bulk.count == ref.count == indexed.count
    assert bulk.measure == ref.measure == indexed.measure
    for t in range(-1, COORD_MAX + 2):
        assert bulk.load_at(t) == ref.load_at(t) == indexed.load_at(t)
        assert bulk.demand_at(t) == ref.demand_at(t) == indexed.demand_at(t)
    for a in range(0, COORD_MAX, 5):
        b = a + 7
        assert bulk.max_demand_in(a, b) == ref.max_demand_in(a, b)
        assert bulk.covered_measure_in(a, b) == ref.covered_measure_in(a, b)


@FUZZ
@given(
    jobs=jobs_strategy,
    queries=st.lists(st.tuples(coords, lengths), min_size=1, max_size=25),
    g=st.integers(min_value=1, max_value=8),
    weighted_queries=st.booleans(),
)
def test_fits_many_parity(jobs, queries, g, weighted_queries):
    prof = SweepProfile.from_intervals(jobs)
    indexed = IndexedSweepProfile.from_intervals(jobs)
    qs = [float(a) for a, _ in queries]
    qe = [float(a + l) for a, l in queries]
    qd = [1 + (i % 3) for i in range(len(queries))] if weighted_queries else None
    want = [
        prof.fits(a, b, g, demand=(qd[i] if qd else 1))
        for i, (a, b) in enumerate(zip(qs, qe))
    ]
    assert prof.fits_many(qs, qe, g, demands=qd) == want
    assert indexed.fits_many(qs, qe, g, demands=qd) == want


# ---------------------------------------------------------------------------
# API contracts: errors, flag plumbing, factories
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("cls", [SweepProfile, IndexedSweepProfile])
def test_reversed_interval_rejected(cls):
    prof = cls()
    with pytest.raises(ValueError, match="precedes"):
        prof.add(5.0, 3.0)
    with pytest.raises(ValueError, match="precedes"):
        prof.bulk_add([1.0, 5.0], [2.0, 3.0])


@pytest.mark.parametrize("cls", [SweepProfile, IndexedSweepProfile])
def test_remove_never_added_raises(cls):
    prof = cls()
    prof.add(0.0, 4.0)
    with pytest.raises(KeyError, match="never added"):
        prof.remove(1.0, 3.0)
    with pytest.raises(KeyError, match="unit demands"):
        prof.remove(0.0, 4.0, demand=2)


def test_indexed_remove_is_strict():
    # Documented divergence: the tree keeps the live multiset and refuses a
    # remove whose exact (start, end, demand) triple was never added, even
    # when both endpoints are known breakpoints.
    prof = IndexedSweepProfile()
    prof.add(0.0, 2.0)
    prof.add(2.0, 4.0)
    with pytest.raises(KeyError):
        prof.remove(0.0, 4.0)


def test_mode_default_and_context_nesting():
    assert profile_index_mode() in ("on", "off", "force")
    with profile_index("off"):
        assert profile_index_mode() == "off"
        with profile_index("force"):
            assert profile_index_mode() == "force"
        assert profile_index_mode() == "off"
    with pytest.raises(ValueError):
        with profile_index("sideways"):
            pass  # pragma: no cover


def test_mode_env_var_reaches_subprocess():
    out = subprocess.run(
        [
            sys.executable,
            "-c",
            "from busytime.core.profile_index import profile_index_mode;"
            "print(profile_index_mode())",
        ],
        env={**os.environ, "BUSYTIME_PROFILE_INDEX": "force", "PYTHONPATH": "src"},
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        capture_output=True,
        text=True,
        check=True,
    )
    assert out.stdout.strip() == "force"


def test_make_profile_backend_selection():
    with profile_index("force"):
        assert isinstance(make_profile(), IndexedSweepProfile)
        assert isinstance(make_profile_from_intervals([]), IndexedSweepProfile)
    with profile_index("off"):
        assert isinstance(make_profile(universe_size=INDEXED_UNIVERSE_MIN), SweepProfile)
        assert isinstance(make_profile_from_intervals([]), SweepProfile)
    with profile_index("on"):
        assert isinstance(make_profile(universe_size=10), SweepProfile)
        called = []

        def universe():
            called.append(True)
            return [0.0, 1.0]

        # Small gate: the callable universe is never materialised.
        assert isinstance(
            make_profile(universe=universe, universe_size=10), SweepProfile
        )
        assert not called
        prof = make_profile(universe=universe, universe_size=INDEXED_UNIVERSE_MIN)
        assert isinstance(prof, IndexedSweepProfile)
        assert called


def test_indexed_breakpoints_expose_universe():
    # Documented divergence: the tree reports its full universe (a superset
    # of the endpoints actually stored).
    prof = IndexedSweepProfile(universe=[0.0, 1.0, 2.0])
    prof.add(0.0, 1.0)
    assert prof.breakpoints == (0.0, 1.0, 2.0)


def test_off_mode_falls_back_everywhere():
    from busytime.algorithms.first_fit import first_fit
    from busytime.generators import uniform_random_instance

    inst = uniform_random_instance(n=200, g=4, seed=5)
    with profile_index("off"):
        base = first_fit(inst)
    with profile_index("force"):
        forced = first_fit(inst)
    assert base.assignment() == forced.assignment()
    # Identical partitions; the busy-time sums may differ by accumulation-
    # order ulps (tree covered-length aggregation vs linear running sum).
    assert abs(base.cost - forced.cost) <= 1e-9 * max(1.0, base.cost)
