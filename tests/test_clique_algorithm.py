"""Tests for the Appendix clique algorithm (Theorem A.1)."""

import math

import pytest

from busytime.algorithms import clique_schedule
from busytime.algorithms.clique import clique_deltas
from busytime.algorithms.base import get_scheduler
from busytime.core.bounds import clique_bound
from busytime.core.instance import Instance
from busytime.exact import exact_optimal_cost
from busytime.generators import clique_instance, uniform_random_instance


class TestMechanics:
    def test_machine_count(self):
        inst = clique_instance(10, g=3, seed=0)
        sched = clique_schedule(inst)
        assert sched.num_machines == math.ceil(10 / 3)
        sched.validate()

    def test_groups_by_decreasing_delta(self):
        inst = Instance.from_intervals([(0, 10), (4, 6), (3, 7), (4.5, 5.5)], g=2)
        sched = clique_schedule(inst)
        deltas = dict(zip((j.id for j in inst.jobs), clique_deltas(inst)))
        first_machine = sched.machines[0]
        max_delta_first = max(deltas[j.id] for j in first_machine.jobs)
        for m in sched.machines[1:]:
            assert max(deltas[j.id] for j in m.jobs) <= max_delta_first + 1e-12

    def test_strict_rejects_non_clique(self):
        inst = Instance.from_intervals([(0, 1), (5, 6)], g=2)
        with pytest.raises(ValueError):
            clique_schedule(inst)

    def test_non_strict_fallback_feasible(self):
        inst = uniform_random_instance(20, g=3, seed=1)
        sched = clique_schedule(inst, strict=False)
        sched.validate()

    def test_deltas_need_common_point(self):
        inst = Instance.from_intervals([(0, 1), (5, 6)], g=2)
        with pytest.raises(ValueError):
            clique_deltas(inst)
        # explicit t bypasses the clique requirement
        assert clique_deltas(inst, t=3.0) == [3.0, 3.0]

    def test_meta(self):
        inst = clique_instance(6, g=2, seed=3)
        sched = clique_schedule(inst)
        assert "common_point" in sched.meta
        assert len(sched.meta["deltas"]) == 6

    def test_registered(self):
        scheduler = get_scheduler("clique")
        assert scheduler.approximation_ratio == 2.0
        assert scheduler.instance_class == "clique"


class TestTheoremA1:
    """ALG <= 2 * OPT on clique instances."""

    @pytest.mark.parametrize("seed", range(8))
    def test_two_approx_vs_exact(self, seed):
        inst = clique_instance(8, g=3, seed=seed)
        sched = clique_schedule(inst)
        opt = exact_optimal_cost(inst, initial_upper_bound=sched.total_busy_time)
        assert sched.total_busy_time <= 2.0 * opt + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("g", [2, 5])
    def test_two_approx_vs_clique_bound_large(self, seed, g):
        inst = clique_instance(100, g=g, seed=seed)
        sched = clique_schedule(inst)
        assert sched.total_busy_time <= 2.0 * clique_bound(inst) + 1e-9

    def test_claim4_delta_majorization(self):
        """Claim 4: sum of per-machine max deltas <= same sum for any solution."""
        inst = clique_instance(20, g=4, seed=9)
        sched = clique_schedule(inst)
        deltas = dict(zip((j.id for j in inst.jobs), clique_deltas(inst)))
        alg_sum = sum(max(deltas[j.id] for j in m.jobs) for m in sched.machines)
        # The lower-bound counterpart from the proof: sum over every g-th
        # largest delta — ALG's grouping achieves it with equality.
        sorted_deltas = sorted(deltas.values(), reverse=True)
        lb_sum = sum(sorted_deltas[i] for i in range(0, len(sorted_deltas), inst.g))
        assert alg_sum == pytest.approx(lb_sum)

    def test_busy_interval_within_2delta(self):
        inst = clique_instance(15, g=3, seed=2)
        sched = clique_schedule(inst)
        t = sched.meta["common_point"]
        deltas = sched.meta["deltas"]
        for m in sched.machines:
            dmax = max(deltas[j.id] for j in m.jobs)
            assert m.busy_time <= 2 * dmax + 1e-9
            hull = m.busy_interval
            assert hull.start >= t - dmax - 1e-9
            assert hull.end <= t + dmax + 1e-9

    def test_single_machine_when_n_le_g(self):
        inst = clique_instance(4, g=5, seed=0)
        sched = clique_schedule(inst)
        assert sched.num_machines == 1
        assert sched.total_busy_time == pytest.approx(inst.span)
