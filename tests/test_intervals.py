"""Unit tests for busytime.core.intervals (Definitions 1.1 and 1.2)."""

import math

import pytest

from busytime.core.intervals import (
    Interval,
    Job,
    interval_contains,
    intervals_overlap,
    length,
    max_point_load,
    point_load,
    properly_contains,
    span,
    total_length,
    union_intervals,
)


class TestInterval:
    def test_basic_length(self):
        assert Interval(2.0, 5.0).length == 3.0

    def test_zero_length_allowed(self):
        assert Interval(4.0, 4.0).length == 0.0

    def test_reversed_endpoints_rejected(self):
        with pytest.raises(ValueError):
            Interval(5.0, 2.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)
        with pytest.raises(ValueError):
            Interval(0.0, float("nan"))

    def test_overlaps_closed_semantics(self):
        # touching intervals overlap under the closed-interval conflict model
        assert Interval(0, 1).overlaps(Interval(1, 2))
        assert Interval(1, 2).overlaps(Interval(0, 1))

    def test_overlaps_disjoint(self):
        assert not Interval(0, 1).overlaps(Interval(1.5, 2))

    def test_overlaps_openly(self):
        assert not Interval(0, 1).overlaps_openly(Interval(1, 2))
        assert Interval(0, 1.5).overlaps_openly(Interval(1, 2))

    def test_contains_point(self):
        iv = Interval(1, 3)
        assert iv.contains_point(1)
        assert iv.contains_point(3)
        assert iv.contains_point(2)
        assert not iv.contains_point(3.0001)

    def test_contains_interval(self):
        assert Interval(0, 10).contains(Interval(2, 5))
        assert Interval(0, 10).contains(Interval(0, 10))
        assert not Interval(0, 10).contains(Interval(-1, 5))

    def test_properly_contains(self):
        assert Interval(0, 10).properly_contains(Interval(2, 5))
        assert Interval(0, 10).properly_contains(Interval(0, 5))
        assert not Interval(0, 10).properly_contains(Interval(0, 10))
        assert not Interval(2, 5).properly_contains(Interval(0, 10))

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 8)) == Interval(3, 5)
        assert Interval(0, 5).intersection(Interval(5, 8)) == Interval(5, 5)
        assert Interval(0, 5).intersection(Interval(6, 8)) is None

    def test_hull(self):
        assert Interval(0, 2).hull(Interval(5, 7)) == Interval(0, 7)

    def test_shifted(self):
        assert Interval(1, 2).shifted(3) == Interval(4, 5)
        assert Interval(1, 2).shifted(-1) == Interval(0, 1)

    def test_scaled(self):
        assert Interval(1, 2).scaled(2) == Interval(2, 4)
        with pytest.raises(ValueError):
            Interval(1, 2).scaled(-1)

    def test_ordering(self):
        assert Interval(0, 5) < Interval(1, 2)
        assert Interval(0, 2) < Interval(0, 5)

    def test_as_tuple(self):
        assert Interval(1, 4).as_tuple() == (1, 4)


class TestJob:
    def test_properties(self):
        j = Job(id=3, interval=Interval(2, 7))
        assert j.start == 2 and j.end == 7 and j.length == 5

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            Job(id=0, interval=Interval(0, 1), weight=0)

    def test_overlaps(self):
        a = Job(id=0, interval=Interval(0, 2))
        b = Job(id=1, interval=Interval(2, 4))
        c = Job(id=2, interval=Interval(5, 6))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_active_at(self):
        j = Job(id=0, interval=Interval(1, 3))
        assert j.active_at(1) and j.active_at(3)
        assert not j.active_at(0.5)


class TestSetFunctions:
    def test_length_single(self):
        assert length(Interval(0, 4)) == 4
        assert length(Job(id=0, interval=Interval(0, 4))) == 4

    def test_length_rejects_other_types(self):
        with pytest.raises(TypeError):
            length((0, 4))

    def test_total_length(self):
        ivs = [Interval(0, 1), Interval(0, 1), Interval(5, 8)]
        assert total_length(ivs) == 5

    def test_union_merges_touching(self):
        ivs = [Interval(0, 1), Interval(1, 2), Interval(3, 4)]
        assert union_intervals(ivs) == [Interval(0, 2), Interval(3, 4)]

    def test_union_merges_nested(self):
        ivs = [Interval(0, 10), Interval(2, 3)]
        assert union_intervals(ivs) == [Interval(0, 10)]

    def test_union_empty(self):
        assert union_intervals([]) == []

    def test_span_disjoint_equals_total_length(self):
        ivs = [Interval(0, 1), Interval(2, 3), Interval(4, 6)]
        assert span(ivs) == total_length(ivs) == 4

    def test_span_overlapping_is_less(self):
        ivs = [Interval(0, 3), Interval(1, 4)]
        assert span(ivs) == 4 < total_length(ivs)

    def test_span_le_len_always(self):
        ivs = [Interval(0, 5), Interval(1, 2), Interval(4, 9), Interval(20, 21)]
        assert span(ivs) <= total_length(ivs)

    def test_point_load(self):
        jobs = [
            Job(id=0, interval=Interval(0, 2)),
            Job(id=1, interval=Interval(1, 3)),
            Job(id=2, interval=Interval(2, 4)),
        ]
        assert point_load(jobs, 2) == 3
        assert point_load(jobs, 0.5) == 1
        assert point_load(jobs, 10) == 0

    def test_max_point_load(self):
        jobs = [
            Job(id=0, interval=Interval(0, 2)),
            Job(id=1, interval=Interval(1, 3)),
            Job(id=2, interval=Interval(2, 4)),
            Job(id=3, interval=Interval(10, 11)),
        ]
        assert max_point_load(jobs) == 3

    def test_max_point_load_counts_touching(self):
        jobs = [Job(id=0, interval=Interval(0, 1)), Job(id=1, interval=Interval(1, 2))]
        assert max_point_load(jobs) == 2

    def test_max_point_load_empty(self):
        assert max_point_load([]) == 0

    def test_helpers(self):
        assert intervals_overlap(Interval(0, 2), Interval(1, 5))
        assert interval_contains(Interval(0, 5), Interval(1, 2))
        assert properly_contains(Interval(0, 5), Interval(1, 2))
        assert not properly_contains(Interval(0, 5), Interval(0, 5))
