"""Streaming-session battery: differential, fault-injection, soak, admission.

The tentpole guarantees under test:

* **Differential** — streaming a fuzzed arrive/depart trace through a
  session, event by event and in arbitrary batch sizes, yields
  *bit-identical* assignments and realized cost to the offline
  :class:`busytime.extensions.dynamic.Simulator` replay of the same trace,
  under all three migration policies; a mid-stream checkpoint/resume (a
  fresh manager over the same store) changes nothing.
* **Fault injection** — killing a :class:`LocalCluster` worker mid-session
  loses zero acknowledged events on the failover owner and never
  double-applies one (idempotent event offsets).
* **Concurrency soak** — N threads posting interleaved events to shared
  and distinct sessions: no lost updates, monotone event offsets, and the
  ``verify_schedule`` oracle passes at every checkpoint cadence.
* **Admission control** — per-tenant rate/size caps answer 429 with
  ``Retry-After``, a draining service answers 503, and an over-cap or
  malformed batch never partially applies.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from busytime.core.events import (
    ARRIVE,
    DEPART,
    DynamicTrace,
    TraceEvent,
    TraceValidationError,
    TraceValidator,
)
from busytime.core.intervals import Interval, Job
from busytime.extensions.dynamic import Simulator
from busytime.generators.dynamic_traces import uniform_dynamic_trace
from busytime.io import dynamic_trace_from_dict, dynamic_trace_to_dict, trace_event_to_dict
from busytime.service import (
    LocalCluster,
    ResultStore,
    SessionConfig,
    SessionConflictError,
    SessionLimitError,
    SessionLimits,
    SessionManager,
    SessionNotFoundError,
    SessionValidationError,
    SolveService,
)
from busytime.service.frontend import SessionHTTPError, make_server, session_call
from busytime.service.sessions import session_policy

# ---------------------------------------------------------------------------
# Helpers and strategies
# ---------------------------------------------------------------------------

#: (policy, replan_period, budget) triples covering the whole policy panel.
POLICY_CASES = (
    ("never_migrate", None, 4),
    ("rolling_horizon", 7.5, 4),
    ("migration_budget", 7.5, 2),
)

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

finite_start = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False, width=32
)
finite_length = st.floats(
    min_value=0.25, max_value=20.0, allow_nan=False, allow_infinity=False, width=32
)


@st.composite
def dynamic_traces(draw, max_jobs=18):
    """A well-formed fuzzed trace: every job arrives once and departs once,
    possibly early (anywhere inside its interval, including instantly)."""
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    g = draw(st.integers(min_value=1, max_value=4))
    events = []
    for job_id in range(n):
        start = float(draw(finite_start))
        length = float(draw(finite_length))
        job = Job(id=job_id, interval=Interval(start, start + length))
        fraction = draw(
            st.one_of(
                st.just(1.0),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
            )
        )
        depart = start + float(fraction) * length
        events.append(TraceEvent(time=start, kind=ARRIVE, job=job))
        events.append(TraceEvent(time=min(depart, job.end), kind=DEPART, job=job))
    events.sort(key=lambda e: e.sort_key)
    return DynamicTrace(events=tuple(events), g=g)


def offline_replay(trace, policy_name, period, budget):
    """The offline reference: one Simulator.run() over the whole trace."""
    policy = session_policy(policy_name, period, budget, "first_fit", "first_fit")
    sim = Simulator(trace, policy, oracle_check_every=None, compare_offline=False)
    report = sim.run()
    return sim, report


def stream_config(trace, policy_name, period, budget, **overrides):
    return SessionConfig(
        g=trace.g,
        horizon=trace.horizon,
        policy=policy_name,
        replan_period=period,
        budget=budget,
        **overrides,
    )


def http_post(url, path, body):
    """Raw POST returning (status, payload, headers) — errors included."""
    request = urllib.request.Request(
        url.rstrip("/") + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8")), dict(reply.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8")), dict(exc.headers)


@pytest.fixture()
def http_server():
    """A served SolveService; yields (base_url, server, service)."""
    service = SolveService(start_worker=False)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}", server, service
    server.shutdown()
    server.server_close()
    service.close()


# ---------------------------------------------------------------------------
# Differential: session replay == offline simulator, bit for bit
# ---------------------------------------------------------------------------


class TestDifferential:
    @given(
        trace=dynamic_traces(),
        batch=st.integers(min_value=1, max_value=7),
        case=st.sampled_from(POLICY_CASES),
    )
    @RELAXED
    def test_streamed_replay_is_bit_identical_to_offline(self, trace, batch, case):
        policy_name, period, budget = case
        offline_sim, offline = offline_replay(trace, policy_name, period, budget)

        manager = SessionManager()
        manager.create(
            stream_config(trace, policy_name, period, budget), session_id="diff"
        )
        rows = [trace_event_to_dict(e) for e in trace.events]
        for i in range(0, len(rows), batch):
            manager.apply_events("diff", rows[i:i + batch], first_offset=i)

        live = manager.assignment("diff")
        assert live["applied"] == trace.num_events
        assert live["assignment"] == {
            str(job_id): machine
            for job_id, machine in offline_sim.live_assignment().items()
        }
        final = manager.close_session("diff")
        # Bit-identical, not approximately equal: the session runs the very
        # same accrual sequence the offline replay does.
        assert final["realized_cost"] == offline.realized_cost
        assert final["migrations"] == offline.migrations
        assert final["replans"] == offline.replans
        assert final["machines_opened"] == offline.machines_opened
        assert final["arrivals"] == offline.arrivals
        assert final["departures"] == offline.departures
        assert final["early_departures"] == offline.early_departures

    @given(
        trace=dynamic_traces(),
        cut=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        case=st.sampled_from(POLICY_CASES),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
    )
    def test_checkpoint_resume_mid_stream_changes_nothing(self, trace, cut, case):
        """A worker handoff at any point of the stream is invisible."""
        policy_name, period, budget = case
        _, offline = offline_replay(trace, policy_name, period, budget)

        store = ResultStore()
        rows = [trace_event_to_dict(e) for e in trace.events]
        split = int(round(cut * len(rows)))

        first = SessionManager(store=store)
        first.create(
            stream_config(trace, policy_name, period, budget), session_id="handoff"
        )
        if split:
            first.apply_events("handoff", rows[:split], first_offset=0)

        # A different manager (the failover owner) resumes from the shared
        # checkpoint store and finishes the stream.
        second = SessionManager(store=store)
        second.apply_events("handoff", rows[split:], first_offset=split)
        final = second.close_session("handoff")
        assert final["realized_cost"] == offline.realized_cost
        assert final["migrations"] == offline.migrations
        assert final["machines_opened"] == offline.machines_opened
        assert second.stats()["resumed"] == 1

    def test_run_equals_begin_feed_settle(self):
        """The offline run() is literally the stepwise core in a loop."""
        trace = uniform_dynamic_trace(n=40, g=3, seed=13)
        _, via_run = offline_replay(trace, "migration_budget", 5.0, 2)
        policy = session_policy("migration_budget", 5.0, 2, "first_fit", "first_fit")
        stepped = Simulator(trace, policy, oracle_check_every=None, compare_offline=False)
        stepped.begin()
        for event in trace.events:
            stepped.feed(event)
        report = stepped.settle()
        assert report.realized_cost == via_run.realized_cost
        assert report.migrations == via_run.migrations
        assert report.machines_opened == via_run.machines_opened


# ---------------------------------------------------------------------------
# Fault injection: kill a cluster worker mid-session
# ---------------------------------------------------------------------------


class TestKillDrill:
    def _drill(self, store_dir):
        trace = uniform_dynamic_trace(n=50, g=3, seed=17)
        _, offline = offline_replay(trace, "migration_budget", 4.0, 2)
        rows = [trace_event_to_dict(e) for e in trace.events]
        with LocalCluster(
            workers=3,
            store_dir=store_dir,
            router_kwargs={"probe_interval": None},
        ) as cluster:
            url = cluster.url
            created = session_call(
                url,
                "/sessions",
                {
                    "g": trace.g,
                    "horizon": list(trace.horizon),
                    "policy": "migration_budget",
                    "replan_period": 4.0,
                    "budget": 2,
                },
            )
            sid = created["session_id"]
            half = len(rows) // 2
            ack1 = session_call(
                url, f"/sessions/{sid}/events",
                {"events": rows[:half], "first_offset": 0},
            )
            assert ack1["applied"] == half  # acknowledged

            # Kill the session's pinned owner, no drain, no warning.
            owner = cluster.router.shard_map.primary(sid)
            cluster.kill_worker(cluster.worker_urls.index(owner))

            # The client's at-least-once retry redelivers the *acknowledged*
            # first half: the failover owner must skip every duplicate.
            redelivered = session_call(
                url, f"/sessions/{sid}/events",
                {"events": rows[:half], "first_offset": 0}, retries=3,
            )
            assert redelivered["accepted"] == 0
            assert redelivered["duplicates"] == half
            assert redelivered["applied"] == half  # nothing lost, nothing doubled

            ack2 = session_call(
                url, f"/sessions/{sid}/events",
                {"events": rows[half:], "first_offset": half}, retries=3,
            )
            assert ack2["applied"] == len(rows)
            final = session_call(url, f"/sessions/{sid}/close", {}, retries=3)
            # Bit-identical to the offline replay: the kill lost zero
            # acknowledged events and double-applied none.
            assert final["realized_cost"] == offline.realized_cost
            assert final["migrations"] == offline.migrations
            assert final["machines_opened"] == offline.machines_opened

    def test_kill_worker_mid_session_memory_store(self):
        self._drill(store_dir=None)

    def test_kill_worker_mid_session_disk_store(self, tmp_path):
        self._drill(store_dir=str(tmp_path))

    def test_gap_after_failover_is_a_409_with_resync_offset(self):
        trace = uniform_dynamic_trace(n=20, g=3, seed=3)
        rows = [trace_event_to_dict(e) for e in trace.events]
        with LocalCluster(workers=2, router_kwargs={"probe_interval": None}) as cluster:
            created = session_call(
                cluster.url, "/sessions",
                {"g": trace.g, "horizon": list(trace.horizon)},
            )
            sid = created["session_id"]
            session_call(
                cluster.url, f"/sessions/{sid}/events",
                {"events": rows[:10], "first_offset": 0},
            )
            with pytest.raises(SessionHTTPError) as err:
                session_call(
                    cluster.url, f"/sessions/{sid}/events",
                    {"events": rows[12:], "first_offset": 12},
                )
            assert err.value.status == 409
            assert err.value.payload["expected_offset"] == 10


# ---------------------------------------------------------------------------
# Concurrency soak
# ---------------------------------------------------------------------------


class TestConcurrencySoak:
    def test_interleaved_posters_shared_and_distinct_sessions(self):
        threads_n = 4
        trace = uniform_dynamic_trace(n=60, g=3, seed=21)
        rows = [trace_event_to_dict(e) for e in trace.events]
        _, offline = offline_replay(trace, "never_migrate", None, 4)

        manager = SessionManager()
        config = stream_config(
            trace, "never_migrate", None, 4,
            oracle_check_every=8,   # verify_schedule every 8 applied events
            checkpoint_every=4,
        )
        manager.create(config, session_id="shared")
        batch = 5
        batches = [(i, rows[i:i + batch]) for i in range(0, len(rows), batch)]
        acks = {tid: [] for tid in range(threads_n)}
        errors = []

        def poster(tid):
            try:
                own_id = f"own-{tid}"
                manager.create(config, session_id=own_id)
                for offset, chunk in batches:
                    # Shared session: every thread delivers every batch
                    # (at-least-once, many deliverers).  A thread ahead of
                    # the shared offset parks on the 409 until a peer
                    # catches up; duplicates are skipped by offset.
                    deadline = time.monotonic() + 30
                    while True:
                        try:
                            ack = manager.apply_events(
                                "shared", chunk, first_offset=offset
                            )
                            acks[tid].append(ack["applied"])
                            break
                        except SessionConflictError:
                            if time.monotonic() > deadline:
                                raise
                            time.sleep(0.001)
                    manager.apply_events(own_id, chunk, first_offset=offset)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        workers = [
            threading.Thread(target=poster, args=(tid,)) for tid in range(threads_n)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert not errors, errors

        # Monotone offsets per thread: later acks never regress.
        for tid, seen in acks.items():
            assert seen == sorted(seen), f"thread {tid} saw regressing offsets"

        # No lost updates and no double-applies: the shared session accepted
        # each event exactly once across 4 competing deliverers...
        shared_final = manager.close_session("shared")
        assert shared_final["applied"] == len(rows)
        assert shared_final["realized_cost"] == offline.realized_cost
        # ... and the manager-wide accepted-event counter proves it (any
        # double-apply would overshoot, any loss undershoot).
        assert manager.stats()["events_applied"] == len(rows) * (threads_n + 1)

        # Every private session independently matches the offline replay,
        # and its live sub-schedule passes the slow-path oracle.
        for tid in range(threads_n):
            session = manager.get(f"own-{tid}")
            session.sim.builder.freeze_partial(validate=True)
            final = manager.close_session(f"own-{tid}")
            assert final["realized_cost"] == offline.realized_cost
        assert manager.stats()["checkpoints"] >= len(batches)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_event_rate_cap_is_a_token_bucket_with_retry_hint(self):
        clock = [0.0]
        manager = SessionManager(
            limits=SessionLimits(events_per_second=10.0, burst=20.0),
            time_fn=lambda: clock[0],
        )
        trace = uniform_dynamic_trace(n=30, g=3, seed=7)
        rows = [trace_event_to_dict(e) for e in trace.events]
        manager.create(stream_config(trace, "never_migrate", None, 4), session_id="rl")

        manager.apply_events("rl", rows[:20], first_offset=0)  # drains the burst
        with pytest.raises(SessionLimitError) as err:
            manager.apply_events("rl", rows[20:30], first_offset=20)
        assert err.value.retry_after == pytest.approx(1.0)  # 10 events at 10/s
        before = manager.assignment("rl")
        assert before["applied"] == 20  # the refused batch applied nothing

        clock[0] += 1.0  # refill exactly the 10 tokens the batch needs
        ack = manager.apply_events("rl", rows[20:30], first_offset=20)
        assert ack["applied"] == 30

    def test_rate_caps_are_per_tenant(self):
        clock = [0.0]
        manager = SessionManager(
            limits=SessionLimits(events_per_second=1.0, burst=10.0),
            time_fn=lambda: clock[0],
        )
        trace = uniform_dynamic_trace(n=10, g=3, seed=8)
        rows = [trace_event_to_dict(e) for e in trace.events]
        manager.create(
            stream_config(trace, "never_migrate", None, 4, tenant="a"),
            session_id="sa",
        )
        manager.create(
            stream_config(trace, "never_migrate", None, 4, tenant="b"),
            session_id="sb",
        )
        manager.apply_events("sa", rows[:10], first_offset=0)
        with pytest.raises(SessionLimitError):
            manager.apply_events("sa", rows[10:], first_offset=10)
        # Tenant b has its own untouched bucket.
        assert manager.apply_events("sb", rows[:10], first_offset=0)["applied"] == 10

    def test_session_count_caps_global_and_per_tenant(self):
        manager = SessionManager(
            limits=SessionLimits(max_sessions=3, max_sessions_per_tenant=2)
        )
        config = SessionConfig(g=2, horizon=(0.0, 10.0))
        manager.create(config, session_id="t1")
        manager.create(config, session_id="t2")
        with pytest.raises(SessionLimitError, match="tenant"):
            manager.create(config, session_id="t3")
        other = SessionConfig(g=2, horizon=(0.0, 10.0), tenant="other")
        manager.create(other, session_id="o1")
        with pytest.raises(SessionLimitError, match="cap of 3"):
            manager.create(
                SessionConfig(g=2, horizon=(0.0, 10.0), tenant="third"),
                session_id="x1",
            )
        # Closing a session frees its slot.
        manager.close_session("t1")
        manager.create(
            SessionConfig(g=2, horizon=(0.0, 10.0), tenant="third"),
            session_id="x1",
        )

    def test_http_rate_cap_answers_429_with_retry_after(self):
        service = SolveService(start_worker=False)
        manager = SessionManager(
            service,
            limits=SessionLimits(events_per_second=5.0, burst=5.0),
        )
        server = make_server(service, sessions=manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}"
            trace = uniform_dynamic_trace(n=20, g=3, seed=5)
            rows = [trace_event_to_dict(e) for e in trace.events]
            status, created, _ = http_post(
                url, "/sessions", {"g": trace.g, "horizon": list(trace.horizon)}
            )
            assert status == 201
            sid = created["session_id"]
            status, _, _ = http_post(
                url, f"/sessions/{sid}/events",
                {"events": rows[:5], "first_offset": 0},
            )
            assert status == 200
            status, payload, headers = http_post(
                url, f"/sessions/{sid}/events",
                {"events": rows[5:], "first_offset": 5},
            )
            assert status == 429
            assert "rate" in payload["error"]
            assert float(headers["Retry-After"]) > 0
            # The shed batch never partially applied.
            assignment = session_call(url, f"/sessions/{sid}/assignment")
            assert assignment["applied"] == 5
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_draining_service_answers_503_for_sessions(self, http_server):
        url, _, service = http_server
        status, created, _ = http_post(url, "/sessions", {"g": 2, "horizon": [0, 10]})
        assert status == 201
        service.drain(timeout=0.0)
        status, payload, headers = http_post(url, "/sessions", {"g": 2, "horizon": [0, 10]})
        assert status == 503
        assert "Retry-After" in headers
        status, _, _ = http_post(
            url, f"/sessions/{created['session_id']}/events",
            {"events": [], "first_offset": 0},
        )
        assert status == 503

    def test_over_cap_batch_never_partially_applies(self):
        manager = SessionManager(limits=SessionLimits(max_events_per_batch=8))
        trace = uniform_dynamic_trace(n=10, g=3, seed=4)
        rows = [trace_event_to_dict(e) for e in trace.events]
        manager.create(stream_config(trace, "never_migrate", None, 4), session_id="cap")
        with pytest.raises(SessionLimitError, match="per-batch cap"):
            manager.apply_events("cap", rows, first_offset=0)  # 20 > 8
        assert manager.assignment("cap")["applied"] == 0
        for i in range(0, len(rows), 8):
            manager.apply_events("cap", rows[i:i + 8], first_offset=i)
        assert manager.assignment("cap")["applied"] == len(rows)

    def test_malformed_batch_never_partially_applies(self, http_server):
        url, _, _ = http_server
        trace = uniform_dynamic_trace(n=10, g=3, seed=6)
        rows = [trace_event_to_dict(e) for e in trace.events]
        created = session_call(url, "/sessions", {"g": trace.g, "horizon": list(trace.horizon)})
        sid = created["session_id"]
        poisoned = rows[:5] + [{"time": "not-a-number", "kind": "arrive"}]
        status, payload, _ = http_post(
            url, f"/sessions/{sid}/events", {"events": poisoned, "first_offset": 0}
        )
        assert status == 400
        assert session_call(url, f"/sessions/{sid}/assignment")["applied"] == 0
        # The same five valid rows then apply cleanly from offset 0.
        ack = session_call(
            url, f"/sessions/{sid}/events", {"events": rows[:5], "first_offset": 0}
        )
        assert ack["applied"] == 5

    def test_out_of_order_batch_is_rejected_atomically(self):
        manager = SessionManager()
        trace = uniform_dynamic_trace(n=8, g=2, seed=9)
        rows = [trace_event_to_dict(e) for e in trace.events]
        manager.create(stream_config(trace, "never_migrate", None, 4), session_id="ooo")
        backwards = [rows[3], rows[0]]  # violates event ordering
        with pytest.raises(SessionValidationError):
            manager.apply_events("ooo", backwards, first_offset=0)
        assert manager.assignment("ooo")["applied"] == 0


# ---------------------------------------------------------------------------
# Unit coverage: validator, step API, checkpoints, store documents, HTTP
# ---------------------------------------------------------------------------


class TestTraceValidator:
    def _trace(self):
        return uniform_dynamic_trace(n=10, g=2, seed=1)

    def test_incremental_matches_batch_validate(self):
        trace = self._trace()
        validator = TraceValidator()
        for event in trace.events:
            validator.feed(event)
        validator.finish()
        assert validator.live_job_ids == frozenset()
        assert validator.events_seen == trace.num_events

    def test_copy_isolates_the_probe(self):
        trace = self._trace()
        validator = TraceValidator()
        validator.feed(trace.events[0])
        probe = validator.copy()
        for event in trace.events[1:]:
            probe.feed(event)
        # The original saw only the first event.
        assert validator.events_seen == 1
        assert probe.events_seen == trace.num_events

    def test_double_arrival_and_unknown_departure_rejected(self):
        job = Job(id=1, interval=Interval(0.0, 5.0))
        validator = TraceValidator()
        validator.feed(TraceEvent(time=0.0, kind=ARRIVE, job=job))
        with pytest.raises(TraceValidationError):
            validator.copy().feed(TraceEvent(time=0.0, kind=ARRIVE, job=job))
        with pytest.raises(TraceValidationError):
            TraceValidator().feed(TraceEvent(time=1.0, kind=DEPART, job=job))

    def test_finish_requires_every_arrival_to_depart(self):
        job = Job(id=1, interval=Interval(0.0, 5.0))
        validator = TraceValidator()
        validator.feed(TraceEvent(time=0.0, kind=ARRIVE, job=job))
        with pytest.raises(TraceValidationError, match="never depart"):
            validator.finish()


class TestStepAPI:
    def test_streaming_simulator_guards(self):
        policy = session_policy("never_migrate", None, 4, "first_fit", "first_fit")
        sim = Simulator.streaming(g=2, policy=policy, horizon=(0.0, 10.0))
        with pytest.raises(RuntimeError, match="begun"):
            sim.begin()  # streaming() already called begin()
        with pytest.raises(RuntimeError, match="feed"):
            sim.run()  # trace-less simulators are fed, not run
        job = Job(id=1, interval=Interval(0.0, 4.0))
        sim.feed(TraceEvent(time=0.0, kind=ARRIVE, job=job))
        assert sim.live_assignment() == {1: 0}
        sim.feed(TraceEvent(time=4.0, kind=DEPART, job=job))
        report = sim.settle()
        assert report.realized_cost == pytest.approx(4.0)
        with pytest.raises(RuntimeError, match="settled"):
            sim.settle()
        with pytest.raises(RuntimeError):
            sim.feed(TraceEvent(time=5.0, kind=ARRIVE, job=job))

    def test_streaming_requires_g_and_horizon(self):
        policy = session_policy("never_migrate", None, 4, "first_fit", "first_fit")
        with pytest.raises(ValueError, match="explicit g and horizon"):
            Simulator(None, policy)

    def test_realized_cost_so_far_is_read_only_and_converges(self):
        trace = uniform_dynamic_trace(n=20, g=3, seed=2)
        policy = session_policy("never_migrate", None, 4, "first_fit", "first_fit")
        sim = Simulator(trace, policy, oracle_check_every=None, compare_offline=False)
        sim.begin()
        snapshots = []
        for event in trace.events:
            sim.feed(event)
            snapshots.append(sim.realized_cost_so_far())
            # Reading twice must not change the answer (no accrual mutation).
            assert sim.realized_cost_so_far() == snapshots[-1]
        assert snapshots == sorted(snapshots)  # cost only grows
        report = sim.settle()
        assert snapshots[-1] <= report.realized_cost


class TestCheckpoints:
    def test_checkpoint_document_roundtrip(self):
        trace = uniform_dynamic_trace(n=12, g=2, seed=10)
        manager = SessionManager()
        manager.create(
            stream_config(trace, "never_migrate", None, 4), session_id="ckpt"
        )
        rows = [trace_event_to_dict(e) for e in trace.events]
        manager.apply_events("ckpt", rows, first_offset=0)
        doc = manager.get("ckpt").checkpoint_document()
        # The embedded event log is a loadable busytime trace payload.
        rebuilt = dynamic_trace_from_dict(
            {"format": "busytime-trace", "version": 1, "g": trace.g, "events": doc["events"]}
        )
        assert rebuilt.events == trace.events

    def test_unknown_session_is_not_found(self):
        manager = SessionManager()
        with pytest.raises(SessionNotFoundError):
            manager.get("never-created")

    def test_closed_session_survives_resume(self):
        store = ResultStore()
        first = SessionManager(store=store)
        first.create(SessionConfig(g=2, horizon=(0.0, 5.0)), session_id="done")
        first.close_session("done")
        second = SessionManager(store=store)
        status = second.status("done")
        assert status["closed"] is True
        with pytest.raises(SessionValidationError, match="closed"):
            second.apply_events("done", [], first_offset=None)

    def test_checkpoint_cadence_defers_durability(self):
        store = ResultStore()
        manager = SessionManager(store=store)
        trace = uniform_dynamic_trace(n=10, g=2, seed=11)
        rows = [trace_event_to_dict(e) for e in trace.events]
        manager.create(
            stream_config(trace, "never_migrate", None, 4, checkpoint_every=50),
            session_id="lazy",
        )
        manager.apply_events("lazy", rows[:10], first_offset=0)
        doc = store.get_document("session-lazy")
        assert doc["applied"] == 0  # under the cadence: only the create checkpoint
        manager.apply_events("lazy", rows[10:], first_offset=10)
        # All 20 events applied, still under the 50-event cadence: durability
        # lags acknowledgement — exactly the documented trade-off.
        assert store.get_document("session-lazy")["applied"] == 0
        manager.close_session("lazy")  # closing always checkpoints
        assert store.get_document("session-lazy")["applied"] == 20


class TestStoreDocuments:
    def test_memory_roundtrip_and_isolation(self):
        store = ResultStore()
        store.put_document("doc-1", {"a": [1, 2]})
        loaded = store.get_document("doc-1")
        assert loaded == {"a": [1, 2]}
        loaded["a"].append(3)  # caller mutation must not leak back
        assert store.get_document("doc-1") == {"a": [1, 2]}
        assert store.list_documents() == ["doc-1"]
        store.delete_document("doc-1")
        assert store.get_document("doc-1") is None

    def test_disk_documents_are_shared_between_stores(self, tmp_path):
        writer = ResultStore(directory=tmp_path)
        reader = ResultStore(directory=tmp_path)
        writer.put_document("shared-doc", {"v": 1})
        assert reader.get_document("shared-doc") == {"v": 1}
        writer.put_document("shared-doc", {"v": 2})  # reads are never stale
        assert reader.get_document("shared-doc") == {"v": 2}
        assert reader.list_documents("shared") == ["shared-doc"]
        reader.delete_document("shared-doc")
        assert writer.get_document("shared-doc") is None

    def test_documents_do_not_count_against_report_budget(self, tmp_path):
        store = ResultStore(directory=tmp_path, max_disk_entries=1)
        for index in range(5):
            store.put_document(f"doc-{index}", {"i": index})
        assert store.disk_entries() == 0  # the report tier never saw them
        assert len(store.list_documents()) == 5

    def test_invalid_keys_are_rejected(self):
        store = ResultStore()
        with pytest.raises(ValueError):
            store.put_document("../escape", {})
        assert store.get_document("../escape") is None


class TestCLISession:
    def test_streams_generated_trace_and_settles(self, http_server, capsys):
        from busytime.cli import main

        url, _, _ = http_server
        code = main([
            "session", "--url", url, "--family", "uniform", "--n", "24",
            "--seed", "5", "--policy", "migration_budget", "--period", "20",
            "--budget", "3", "--batch", "16",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "streamed" in out and "realized_cost" in out

    def test_streams_saved_trace_with_transcript(self, http_server, tmp_path, capsys):
        from busytime.cli import main
        from busytime.io import save_dynamic_trace

        url, _, _ = http_server
        trace = uniform_dynamic_trace(n=16, g=2, seed=6)
        _, offline = offline_replay(trace, "never_migrate", None, 4)
        trace_path = tmp_path / "trace.json"
        save_dynamic_trace(trace, trace_path)
        transcript_path = tmp_path / "transcript.json"
        code = main([
            "session", "--url", url, "--trace", str(trace_path),
            "--batch", "7", "--output", str(transcript_path),
        ])
        assert code == 0
        assert "transcript written" in capsys.readouterr().out
        transcript = json.loads(transcript_path.read_text())
        assert transcript["final"]["realized_cost"] == offline.realized_cost
        assert transcript["assignment"]["applied"] == trace.num_events

    def test_keep_open_leaves_session_live(self, http_server, capsys):
        from busytime.cli import main

        url, _, _ = http_server
        code = main([
            "session", "--url", url, "--family", "uniform", "--n", "8",
            "--keep-open",
        ])
        assert code == 0
        capsys.readouterr()
        listing = session_call(url, "/sessions")
        assert listing["stats"]["live"] == 1


class TestHTTPEndpoints:
    def test_create_stream_assignment_close_roundtrip(self, http_server):
        url, _, _ = http_server
        trace = uniform_dynamic_trace(n=16, g=2, seed=12)
        rows = [trace_event_to_dict(e) for e in trace.events]
        _, offline = offline_replay(trace, "never_migrate", None, 4)
        status, created, _ = http_post(
            url, "/sessions",
            {"g": trace.g, "horizon": list(trace.horizon), "session_id": "http-rt"},
        )
        assert status == 201 and created["session_id"] == "http-rt"
        ack = session_call(url, "/sessions/http-rt/events", {"events": rows})
        assert ack["applied"] == len(rows)
        listing = session_call(url, "/sessions")
        assert listing["stats"]["sessions"] == 1
        final = session_call(url, "/sessions/http-rt/close", {})
        assert final["realized_cost"] == offline.realized_cost
        # Closing is idempotent over HTTP too.
        assert session_call(url, "/sessions/http-rt/close", {}) == final

    def test_bad_config_is_a_400(self, http_server):
        url, _, _ = http_server
        for body in (
            {"horizon": [0, 10]},                       # missing g
            {"g": 2, "horizon": [10, 0]},               # inverted horizon
            {"g": 2, "horizon": [0, 10], "policy": "??"},
            {"g": 2, "horizon": [0, 10], "bogus": 1},   # unknown field
            {"g": 2, "horizon": [0, 10], "policy": "rolling_horizon"},  # no period
        ):
            status, payload, _ = http_post(url, "/sessions", body)
            assert status == 400, body
            assert "error" in payload

    def test_unknown_session_paths_are_404(self, http_server):
        url, _, _ = http_server
        status, _, _ = http_post(url, "/sessions/ghost/events", {"events": []})
        assert status == 404
        with pytest.raises(SessionHTTPError) as err:
            session_call(url, "/sessions/ghost/assignment")
        assert err.value.status == 404
