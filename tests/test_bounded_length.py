"""Tests for the Section 3.2 Bounded_Length algorithm (Theorem 3.2, Lemma 3.3)."""

import math

import pytest

from busytime.algorithms import bounded_length, first_fit
from busytime.algorithms.bounded_length import SegmentSolution, segment_jobs
from busytime.algorithms.base import get_scheduler
from busytime.core.bounds import best_lower_bound
from busytime.core.instance import Instance
from busytime.exact import exact_optimal_cost
from busytime.generators import bounded_length_instance, uniform_random_instance


class TestSegmentation:
    def test_segment_assignment(self):
        inst = Instance.from_intervals([(0, 1), (3.5, 4.5), (4, 5), (8, 9)], g=2)
        segments = segment_jobs(inst, d=4.0)
        assert sorted(segments) == [1, 2, 3]
        assert [j.id for j in segments[1]] == [0, 1]
        assert [j.id for j in segments[2]] == [2]
        assert [j.id for j in segments[3]] == [3]

    def test_segment_boundary_is_half_open(self):
        # start exactly at t_0 + d*r belongs to segment r+1
        inst = Instance.from_intervals([(0.0, 1.0), (4.0, 5.0)], g=1)
        segments = segment_jobs(inst, d=4.0)
        assert sorted(segments) == [1, 2]
        assert [j.id for j in segments[2]] == [1]

    def test_segment_grid_anchored_at_earliest_start(self):
        # The grid travels with the instance: translating every job leaves
        # the segmentation (and hence the schedule) unchanged.
        inst = Instance.from_intervals([(0, 1), (3.5, 4.5), (4, 5), (8, 9)], g=2)
        moved = Instance.from_intervals(
            [(s + 10.5, e + 10.5) for s, e in [(0, 1), (3.5, 4.5), (4, 5), (8, 9)]], g=2
        )
        base = segment_jobs(inst, d=4.0)
        shifted = segment_jobs(moved, d=4.0)
        assert {r: [j.id for j in jobs] for r, jobs in base.items()} == {
            r: [j.id for j in jobs] for r, jobs in shifted.items()
        }

    def test_invalid_d(self):
        inst = Instance.from_intervals([(0, 1)], g=1)
        with pytest.raises(ValueError):
            segment_jobs(inst, d=0)

    def test_all_jobs_covered(self, bounded_small):
        segments = segment_jobs(bounded_small, d=3.0)
        ids = sorted(j.id for jobs in segments.values() for j in jobs)
        assert ids == sorted(bounded_small.job_ids)


class TestAlgorithm:
    def test_feasible(self, bounded_small):
        bounded_length(bounded_small).validate()

    def test_empty(self):
        assert bounded_length(Instance(jobs=(), g=2)).num_machines == 0

    def test_meta_segments(self, bounded_small):
        sched = bounded_length(bounded_small, d=3.0)
        segments = sched.meta["segments"]
        assert all(isinstance(s, SegmentSolution) for s in segments)
        assert sum(s.num_jobs for s in segments) == bounded_small.n
        assert sched.meta["d"] == 3.0

    def test_default_d_is_max_length(self, bounded_small):
        sched = bounded_length(bounded_small)
        assert sched.meta["d"] == pytest.approx(bounded_small.max_length)

    def test_machines_never_mix_segments(self):
        inst = bounded_length_instance(40, g=3, d=3.0, horizon=30, seed=5)
        d = 3.0
        sched = bounded_length(inst, d=d)
        for m in sched.machines:
            segments = {int(math.floor(j.start / d)) for j in m.jobs}
            assert len(segments) == 1

    def test_registered(self):
        scheduler = get_scheduler("bounded_length")
        assert scheduler.instance_class == "bounded_length"


class TestTheorem32:
    @pytest.mark.parametrize("seed", range(6))
    def test_two_plus_eps_vs_exact_small(self, seed):
        inst = bounded_length_instance(11, g=2, d=2.5, horizon=12, seed=seed)
        sched = bounded_length(inst, d=2.5)
        opt = exact_optimal_cost(inst, initial_upper_bound=sched.total_busy_time)
        # segments solved exactly -> overall at most 2 * OPT (Lemma 3.3)
        assert sched.total_busy_time <= 2.0 * opt + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_large_instances_stay_reasonable(self, seed):
        inst = bounded_length_instance(250, g=4, d=4.0, horizon=120, seed=seed)
        sched = bounded_length(inst, d=4.0)
        lb = best_lower_bound(inst)
        assert sched.total_busy_time <= 4.0 * lb + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_not_much_worse_than_firstfit(self, seed):
        # The per-segment portfolio includes FirstFit, so Bounded_Length can
        # lose to global FirstFit only through the segment split, i.e. by at
        # most a factor 2 (Lemma 3.3 applied to FirstFit's own schedule).
        inst = bounded_length_instance(120, g=3, d=3.0, horizon=80, seed=seed)
        bl = bounded_length(inst, d=3.0)
        ff = first_fit(inst)
        assert bl.total_busy_time <= 2.0 * ff.total_busy_time + 1e-9

    def test_lemma33_segment_split_factor_two(self):
        """Splitting any schedule at segment boundaries at most doubles it."""
        inst = bounded_length_instance(60, g=3, d=3.0, horizon=40, seed=11)
        d = 3.0
        ff = first_fit(inst)
        from busytime.core.intervals import span

        split_cost = 0.0
        for m in ff.machines:
            by_segment = {}
            for j in m.jobs:
                by_segment.setdefault(int(math.floor(j.start / d)), []).append(j)
            split_cost += sum(span(jobs) for jobs in by_segment.values())
        assert split_cost <= 2.0 * ff.total_busy_time + 1e-9
