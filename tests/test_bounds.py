"""Unit tests for the Observation 1.1 lower bounds (busytime.core.bounds)."""

import pytest

from busytime.core.bounds import (
    best_lower_bound,
    clique_bound,
    combined_bound,
    component_bound,
    parallelism_bound,
    span_bound,
)
from busytime.core.instance import Instance
from busytime.exact import exact_optimal_cost
from busytime.generators import clique_instance, uniform_random_instance


class TestElementaryBounds:
    def test_parallelism_bound(self):
        inst = Instance.from_intervals([(0, 4), (0, 4), (0, 4)], g=3)
        assert parallelism_bound(inst) == pytest.approx(4.0)

    def test_span_bound(self):
        inst = Instance.from_intervals([(0, 4), (2, 6), (10, 11)], g=2)
        assert span_bound(inst) == pytest.approx(7.0)

    def test_combined_is_max(self):
        inst = Instance.from_intervals([(0, 4), (0, 4), (0, 4)], g=1)
        assert combined_bound(inst) == pytest.approx(12.0)  # parallelism dominates
        inst2 = Instance.from_intervals([(0, 4), (10, 14)], g=4)
        assert combined_bound(inst2) == pytest.approx(8.0)  # span dominates

    def test_component_bound_at_least_combined(self):
        inst = Instance.from_intervals(
            [(0, 4), (0, 4), (0, 4), (10, 14), (10, 14), (10, 14)], g=3
        )
        assert component_bound(inst) >= combined_bound(inst)

    def test_component_bound_sums_components(self):
        # Two dense cliques far apart: per-component parallelism bound is
        # tighter than either global bound.
        inst = Instance.from_intervals(
            [(0, 4)] * 6 + [(100, 104)] * 6, g=2
        )
        assert component_bound(inst) == pytest.approx(12.0 + 12.0)

    def test_clique_bound_non_clique_falls_back(self):
        inst = Instance.from_intervals([(0, 1), (5, 6)], g=2)
        assert clique_bound(inst) == combined_bound(inst)

    def test_clique_bound_value(self):
        # Jobs [0,10], [4,6], [4,6], g=2, common point t=4 (max start).
        # deltas = [6, 2, 2]; sorted desc [6,2,2]; indices 0 and 2 -> 6 + 2 = 8.
        inst = Instance.from_intervals([(0, 10), (4, 6), (4, 6)], g=2)
        assert clique_bound(inst) >= 8.0

    def test_empty_instance(self):
        inst = Instance(jobs=(), g=3)
        assert parallelism_bound(inst) == 0
        assert span_bound(inst) == 0
        assert best_lower_bound(inst) == 0


class TestBoundsAreValid:
    """Every bound must be <= the exact optimum (Observation 1.1)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances(self, seed):
        inst = uniform_random_instance(9, g=2, horizon=20, seed=seed)
        opt = exact_optimal_cost(inst)
        assert best_lower_bound(inst) <= opt + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_clique_instances(self, seed):
        inst = clique_instance(8, g=3, seed=seed)
        opt = exact_optimal_cost(inst)
        assert clique_bound(inst) <= opt + 1e-9
        assert best_lower_bound(inst) <= opt + 1e-9

    def test_best_lower_bound_uses_clique_bound(self):
        inst = Instance.from_intervals([(0, 10), (4, 6), (4, 6)], g=2)
        assert best_lower_bound(inst) >= clique_bound(inst)
