"""Tests for the Fig. 4 adversarial family (busytime.generators.adversarial)."""

import pytest

from busytime.algorithms import first_fit, proper_greedy
from busytime.generators import (
    fig4_reference_schedule,
    firstfit_lower_bound_instance,
    firstfit_lower_bound_opt_cost,
    ranked_shift_proper_instance,
    theorem24_parameters,
)


class TestConstruction:
    def test_job_counts(self):
        g = 6
        inst = firstfit_lower_bound_instance(g)
        tags = [j.tag for j in inst.jobs]
        assert tags.count("left") == g
        assert tags.count("middle") == g * (g - 1)
        assert tags.count("right") == g
        assert inst.n == g * (g + 1)

    def test_column_positions(self):
        inst = firstfit_lower_bound_instance(4, eps_prime=0.1, perturb=False)
        lefts = [j for j in inst.jobs if j.tag == "left"]
        mids = [j for j in inst.jobs if j.tag == "middle"]
        rights = [j for j in inst.jobs if j.tag == "right"]
        assert all(j.start == 0.0 and j.end == 1.0 for j in lefts)
        assert all(j.start == pytest.approx(0.9) for j in mids)
        assert all(j.start == pytest.approx(1.8) for j in rights)

    def test_validation(self):
        with pytest.raises(ValueError):
            firstfit_lower_bound_instance(1)
        with pytest.raises(ValueError):
            firstfit_lower_bound_instance(3, eps_prime=0.7)
        with pytest.raises(ValueError):
            firstfit_lower_bound_instance(3, perturbation=0)

    def test_perturbation_is_tiny(self):
        inst = firstfit_lower_bound_instance(5, perturbation=1e-6)
        lengths = [j.length for j in inst.jobs]
        assert max(lengths) <= 1.0 + 1e-6
        assert min(lengths) >= 1.0

    def test_reference_schedule_feasible_and_cheap(self):
        g = 7
        inst = firstfit_lower_bound_instance(g)
        ref = fig4_reference_schedule(inst)
        ref.validate()
        assert ref.num_machines == g + 1
        assert ref.total_busy_time == pytest.approx(g + 1, abs=1e-3)
        assert ref.total_busy_time <= firstfit_lower_bound_opt_cost(g)

    def test_reference_schedule_requires_fig4_shape(self):
        from busytime.core.instance import Instance

        with pytest.raises(ValueError):
            fig4_reference_schedule(Instance.from_intervals([(0, 1)], g=2))


class TestTheorem24Behaviour:
    @pytest.mark.parametrize("g", [2, 4, 8, 16])
    def test_firstfit_uses_g_machines_of_full_span(self, g):
        eps_prime = 0.05
        inst = firstfit_lower_bound_instance(g, eps_prime)
        sched = first_fit(inst)
        assert sched.num_machines == g
        for m in sched.machines:
            assert m.busy_time == pytest.approx(3 - 2 * eps_prime, abs=1e-3)

    def test_ratio_approaches_three(self):
        ratios = []
        for g in (5, 20, 60):
            inst = firstfit_lower_bound_instance(g, eps_prime=0.01)
            ratio = (
                first_fit(inst).total_busy_time
                / fig4_reference_schedule(inst).total_busy_time
            )
            ratios.append(ratio)
        assert ratios == sorted(ratios)  # increasing in g
        assert ratios[-1] > 2.9


class TestRankedShiftProperVariant:
    @pytest.mark.parametrize("g", [3, 6, 12])
    def test_instance_is_proper(self, g):
        assert ranked_shift_proper_instance(g).is_proper()

    def test_shift_too_large_rejected(self):
        with pytest.raises(ValueError):
            ranked_shift_proper_instance(2, eps_prime=0.05, shift=1.0)

    def test_firstfit_bad_greedy_good(self):
        g = 12
        inst = ranked_shift_proper_instance(g)
        ref = fig4_reference_schedule(inst).total_busy_time
        assert first_fit(inst).total_busy_time / ref > 2.4
        assert proper_greedy(inst).total_busy_time / ref <= 2.0 + 1e-9

    def test_unperturbed_variant_also_proper(self):
        assert ranked_shift_proper_instance(5, perturb=False).is_proper()


class TestParameters:
    def test_theorem24_parameters(self):
        eps_prime, g = theorem24_parameters(0.2)
        assert eps_prime == pytest.approx(0.05)
        assert g >= 29
        # resulting ratio really exceeds 3 - eps
        assert (3 - 2 * eps_prime) * g / (g + 1) > 3 - 0.2
