"""Tests for the optical-network application (Section 4)."""

import pytest

from busytime.algorithms import first_fit, proper_greedy
from busytime.core.instance import Instance
from busytime.exact import exact_optimal_cost
from busytime.generators import local_traffic, uniform_traffic
from busytime.optical import (
    Lightpath,
    PathNetwork,
    Traffic,
    WavelengthAssignment,
    adm_count,
    combined_cost,
    groom,
    instance_to_traffic,
    regenerator_count,
    regenerators_per_node,
    schedule_to_assignment,
    traffic_to_instance,
)


class TestPathNetwork:
    def test_basic(self):
        net = PathNetwork(5)
        assert net.num_links == 4
        assert net.links == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_too_small(self):
        with pytest.raises(ValueError):
            PathNetwork(1)

    def test_links_between(self):
        net = PathNetwork(6)
        assert net.links_between(1, 4) == [(1, 2), (2, 3), (3, 4)]
        with pytest.raises(ValueError):
            net.links_between(4, 1)
        with pytest.raises(ValueError):
            net.links_between(0, 9)

    def test_intermediate_nodes(self):
        net = PathNetwork(6)
        assert net.intermediate_nodes(1, 4) == [2, 3]
        assert net.intermediate_nodes(1, 2) == []


class TestLightpathAndTraffic:
    def test_lightpath_basics(self):
        p = Lightpath(id=0, a=2, b=6)
        assert p.hops == 4
        assert p.num_regenerators == 3
        assert p.links() == [(2, 3), (3, 4), (4, 5), (5, 6)]
        assert p.intermediate_nodes() == [3, 4, 5]
        assert p.uses_link((4, 5))
        assert not p.uses_link((6, 7))

    def test_lightpath_job_interval(self):
        p = Lightpath(id=0, a=2, b=6)
        assert p.job_interval().as_tuple() == (2.5, 5.5)

    def test_lightpath_invalid(self):
        with pytest.raises(ValueError):
            Lightpath(id=0, a=3, b=3)

    def test_shares_edge(self):
        assert Lightpath(id=0, a=0, b=3).shares_edge_with(Lightpath(id=1, a=2, b=5))
        assert not Lightpath(id=0, a=0, b=3).shares_edge_with(Lightpath(id=1, a=3, b=5))

    def test_traffic_construction_and_queries(self):
        net = PathNetwork(8)
        traffic = Traffic.from_pairs(net, [(0, 3), (2, 5), (5, 7)], g=2, name="t")
        assert traffic.n == 3
        assert traffic.link_load((2, 3)) == 2
        assert traffic.max_link_load() == 2
        assert traffic.total_regenerator_demand() == 2 + 2 + 1
        assert traffic.lightpath_by_id(1).a == 2
        with pytest.raises(KeyError):
            traffic.lightpath_by_id(9)

    def test_traffic_validation(self):
        net = PathNetwork(4)
        with pytest.raises(ValueError):
            Traffic.from_pairs(net, [(0, 9)], g=2)
        with pytest.raises(ValueError):
            Traffic.from_pairs(net, [(0, 2)], g=0)
        with pytest.raises(ValueError):
            Traffic(
                network=net,
                lightpaths=(Lightpath(id=0, a=0, b=1), Lightpath(id=0, a=1, b=2)),
                g=1,
            )


class TestReduction:
    def test_traffic_to_instance_intervals(self):
        net = PathNetwork(10)
        traffic = Traffic.from_pairs(net, [(0, 4), (3, 9)], g=3)
        inst = traffic_to_instance(traffic)
        assert inst.g == 3
        assert inst.jobs[0].interval.as_tuple() == (0.5, 3.5)
        assert inst.jobs[1].interval.as_tuple() == (3.5, 8.5)

    def test_job_length_counts_regenerators(self):
        p = Lightpath(id=0, a=1, b=7)
        assert p.job_interval().length == pytest.approx(p.num_regenerators)

    def test_round_trip(self):
        net = PathNetwork(12)
        traffic = Traffic.from_pairs(net, [(0, 4), (3, 9), (10, 11)], g=2)
        back = instance_to_traffic(traffic_to_instance(traffic), network=net)
        assert [(p.a, p.b) for p in back] == [(p.a, p.b) for p in traffic]
        assert back.g == traffic.g

    def test_inverse_rejects_non_half_integral(self):
        inst = Instance.from_intervals([(0.3, 2.5)], g=1)
        with pytest.raises(ValueError):
            instance_to_traffic(inst)

    def test_cost_preservation(self):
        """Regenerator count == total busy time of the schedule (Section 4.2)."""
        for seed in range(5):
            traffic = uniform_traffic(25, 40, g=3, seed=seed)
            inst = traffic_to_instance(traffic)
            sched = first_fit(inst)
            assignment = schedule_to_assignment(traffic, sched)
            assert assignment.regenerators() == pytest.approx(sched.total_busy_time)


class TestWavelengthAssignment:
    def _tiny(self):
        net = PathNetwork(6)
        traffic = Traffic.from_pairs(net, [(0, 3), (1, 4), (3, 5)], g=2)
        return traffic

    def test_validate_grooming_constraint(self):
        traffic = self._tiny()
        good = WavelengthAssignment(traffic=traffic, colors={0: 0, 1: 0, 2: 0})
        good.validate()  # max load on any link is 2 == g
        traffic1 = Traffic(
            network=traffic.network, lightpaths=traffic.lightpaths, g=1
        )
        bad = WavelengthAssignment(traffic=traffic1, colors={0: 0, 1: 0, 2: 0})
        assert not bad.is_valid()

    def test_missing_color_rejected(self):
        traffic = self._tiny()
        with pytest.raises(ValueError):
            WavelengthAssignment(traffic=traffic, colors={0: 0})

    def test_regenerator_count_manual(self):
        traffic = self._tiny()
        wa = WavelengthAssignment(traffic=traffic, colors={0: 0, 1: 0, 2: 1})
        # color 0: paths (0,3),(1,4): intermediates {1,2} ∪ {2,3} = {1,2,3} -> 3
        # color 1: path (3,5): intermediates {4} -> 1
        assert wa.regenerators() == 4
        per_node = regenerators_per_node(wa)
        assert per_node[2] == 1 and per_node[4] == 1

    def test_adm_count_sharing(self):
        net = PathNetwork(6)
        # two lightpaths meeting at node 3 with no common edge share an ADM
        traffic = Traffic.from_pairs(net, [(0, 3), (3, 5)], g=1)
        wa = WavelengthAssignment(traffic=traffic, colors={0: 0, 1: 0})
        # node 0: 1 ADM, node 3: shared -> 1, node 5: 1  => 3
        assert wa.adms() == 3
        split = WavelengthAssignment(traffic=traffic, colors={0: 0, 1: 1})
        assert split.adms() == 4

    def test_combined_cost(self):
        traffic = self._tiny()
        wa = WavelengthAssignment(traffic=traffic, colors={0: 0, 1: 0, 2: 1})
        assert wa.cost(alpha=1.0) == wa.regenerators()
        assert wa.cost(alpha=0.0) == wa.adms()
        mid = wa.cost(alpha=0.5)
        assert mid == pytest.approx(0.5 * wa.regenerators() + 0.5 * wa.adms())
        with pytest.raises(ValueError):
            wa.cost(alpha=2.0)

    def test_summary(self):
        traffic = self._tiny()
        wa = WavelengthAssignment(traffic=traffic, colors={0: 0, 1: 0, 2: 1})
        summary = wa.summary()
        assert summary["num_wavelengths"] == 2
        assert summary["g"] == 2


class TestGroom:
    @pytest.mark.parametrize("seed", range(4))
    def test_groom_valid_and_cost_preserving(self, seed):
        traffic = uniform_traffic(30, 60, g=3, seed=seed)
        wa = groom(traffic, algorithm=first_fit)
        wa.validate()
        inst = traffic_to_instance(traffic)
        # The schedule's total busy time and the independently computed
        # regenerator count must agree exactly (Section 4.2 cost preservation).
        sched = first_fit(inst)
        assert wa.regenerators() == pytest.approx(sched.total_busy_time)
        # and never below the scheduling lower bound
        assert wa.regenerators() >= exact_regen_lower_bound(traffic) - 1e-9

    def test_groom_with_explicit_algorithm(self):
        traffic = local_traffic(40, 50, g=2, seed=1)
        wa = groom(traffic, algorithm=first_fit)
        wa.validate()
        assert wa.algorithm == "first_fit"

    def test_groom_small_exact_ratio(self):
        traffic = uniform_traffic(12, 9, g=2, seed=3)
        wa = groom(traffic, algorithm=first_fit)
        inst = traffic_to_instance(traffic)
        opt = exact_optimal_cost(inst)
        assert wa.regenerators() <= 4 * opt + 1e-9

    def test_groom_never_worse_than_no_sharing(self):
        traffic = uniform_traffic(20, 30, g=3, seed=7)
        wa = groom(traffic)
        assert wa.regenerators() <= traffic.total_regenerator_demand()


def exact_regen_lower_bound(traffic):
    """Helper: the scheduling lower bound expressed in regenerators."""
    from busytime.core.bounds import best_lower_bound

    return best_lower_bound(traffic_to_instance(traffic))
