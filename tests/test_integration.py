"""Integration tests: whole-pipeline flows across subpackages."""

import pytest

from busytime import (
    Instance,
    auto_schedule,
    available_schedulers,
    best_lower_bound,
    exact_optimal_cost,
    first_fit,
    get_scheduler,
    groom,
)
from busytime.analysis import ExperimentRunner, summarize_ratios, verify_lemma23
from busytime.generators import (
    firstfit_lower_bound_instance,
    local_traffic,
    proper_instance,
    uniform_random_instance,
    uniform_traffic,
)
from busytime.optical import traffic_to_instance


class TestPublicApi:
    def test_top_level_names_importable(self):
        import busytime

        for name in busytime.__all__:
            assert hasattr(busytime, name), name

    def test_repro_alias_matches(self):
        import busytime
        import repro

        assert repro.first_fit is busytime.first_fit
        assert repro.__version__ == busytime.__version__
        for name in busytime.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet(self):
        # The README / module docstring example must keep working.
        inst = Instance.from_intervals([(0, 3), (1, 4), (2, 6), (5, 9)], g=2)
        schedule = first_fit(inst)
        assert schedule.total_busy_time > 0
        assert schedule.num_machines >= 1


class TestEndToEndScheduling:
    def test_all_registered_algorithms_run_on_shared_instance(self):
        inst = uniform_random_instance(40, g=3, seed=21)
        for name in available_schedulers():
            sched = get_scheduler(name)(inst)
            sched.validate()
            assert sched.total_busy_time >= best_lower_bound(inst) - 1e-9

    def test_experiment_pipeline(self):
        runner = ExperimentRunner(
            {
                "first_fit": first_fit,
                "auto": auto_schedule,
            },
            compute_optimum=True,
            max_jobs_for_optimum=10,
        )
        grid = [{"n": 9, "g": 2, "seed": s} for s in range(3)]
        runner.run_grid(
            lambda n, g, seed: uniform_random_instance(n, g, horizon=25, seed=seed),
            grid,
        )
        assert runner.worst_ratio("first_fit", against="opt") <= 4.0 + 1e-9
        assert runner.worst_ratio("auto", against="opt") <= 4.0 + 1e-9
        text = runner.table(title="integration")
        assert "integration" in text

    def test_analysis_certificates_pipeline(self):
        inst = firstfit_lower_bound_instance(6)
        sched = first_fit(inst)
        assert verify_lemma23(sched)

    def test_exact_vs_heuristic_consistency(self):
        inst = proper_instance(10, g=2, seed=33)
        opt = exact_optimal_cost(inst)
        lb = best_lower_bound(inst)
        heuristic = auto_schedule(inst).total_busy_time
        assert lb - 1e-9 <= opt <= heuristic + 1e-9


class TestEndToEndOptical:
    @pytest.mark.parametrize("seed", range(3))
    def test_grooming_pipeline(self, seed):
        traffic = uniform_traffic(40, 80, g=4, seed=seed)
        assignment = groom(traffic)
        assignment.validate()
        inst = traffic_to_instance(traffic)
        lb = best_lower_bound(inst)
        assert assignment.regenerators() >= lb - 1e-9
        # grooming must beat (or match) the no-sharing deployment
        assert assignment.regenerators() <= traffic.total_regenerator_demand()

    def test_bounded_length_traffic_uses_bounded_class(self):
        traffic = local_traffic(80, 120, g=3, mean_hops=3, max_hops=5, seed=2)
        inst = traffic_to_instance(traffic)
        # hop counts are capped at 5, so job lengths (regenerator demands) are
        # at most 4 — the Section 3.2 bounded-length regime.
        assert inst.max_length <= 4.0
        assignment = groom(traffic)
        assignment.validate()

    def test_wavelength_count_reasonable(self):
        traffic = uniform_traffic(30, 90, g=3, seed=11)
        assignment = groom(traffic)
        # at least ceil(max link load / g) wavelengths are necessary
        necessary = -(-traffic.max_link_load() // traffic.g)
        assert assignment.num_wavelengths >= necessary


class TestCrossAlgorithmComparison:
    def test_summary_shapes(self):
        from busytime.analysis import measure

        instances = [uniform_random_instance(30, g=3, seed=s) for s in range(3)]
        measurements = []
        for inst in instances:
            for name in ("first_fit", "best_fit", "singleton"):
                measurements.append(measure(inst, get_scheduler(name)))
        summary = summarize_ratios(measurements)
        # singleton pays ~g times the parallelism bound; FirstFit must be
        # substantially better on dense random instances.
        assert (
            summary["first_fit"]["mean_ratio_lb"]
            <= summary["singleton"]["mean_ratio_lb"] + 1e-9
        )
