"""Tests for the baseline schedulers (busytime.algorithms.baselines)."""

import math

import pytest

from busytime.algorithms import (
    best_fit,
    first_fit,
    machine_minimizing,
    next_fit_by_start,
    random_assignment,
    singleton,
)
from busytime.core.bounds import best_lower_bound, parallelism_bound
from busytime.core.instance import Instance
from busytime.generators import uniform_random_instance


ALL_BASELINES = [
    machine_minimizing,
    next_fit_by_start,
    best_fit,
    singleton,
    random_assignment,
]


class TestFeasibility:
    @pytest.mark.parametrize("algorithm", ALL_BASELINES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_baselines_feasible(self, algorithm, seed):
        inst = uniform_random_instance(60, g=3, seed=seed)
        algorithm(inst).validate()

    @pytest.mark.parametrize("algorithm", ALL_BASELINES)
    def test_empty_instance(self, algorithm):
        sched = algorithm(Instance(jobs=(), g=2))
        assert sched.num_machines == 0

    @pytest.mark.parametrize("algorithm", ALL_BASELINES)
    def test_cost_at_least_lower_bound(self, algorithm, random_medium):
        sched = algorithm(random_medium)
        assert sched.total_busy_time >= best_lower_bound(random_medium) - 1e-9


class TestMachineMinimizing:
    def test_uses_minimum_machines(self, random_medium):
        sched = machine_minimizing(random_medium)
        assert sched.num_machines == math.ceil(
            random_medium.clique_number / random_medium.g
        )

    def test_fewer_machines_than_firstfit_or_equal(self, random_medium):
        assert (
            machine_minimizing(random_medium).num_machines
            <= first_fit(random_medium).num_machines
        )

    def test_busy_time_can_be_far_from_optimal(self):
        # The Section 1.1 remark: min-machine-count ignores busy time.  Long
        # job + many short ones: one machine suffices, but bundling them keeps
        # the machine busy for the whole horizon.
        jobs = [(0, 100)] + [(i * 10, i * 10 + 1) for i in range(10)]
        inst = Instance.from_intervals(jobs, g=2)
        mm = machine_minimizing(inst)
        ff = first_fit(inst)
        assert mm.num_machines <= ff.num_machines
        assert ff.total_busy_time <= mm.total_busy_time + 1e-9


class TestSingleton:
    def test_cost_is_total_length(self, random_small):
        sched = singleton(random_small)
        assert sched.total_busy_time == pytest.approx(random_small.total_length)
        assert sched.num_machines == random_small.n

    def test_is_g_times_parallelism_bound(self, random_small):
        sched = singleton(random_small)
        assert sched.total_busy_time == pytest.approx(
            random_small.g * parallelism_bound(random_small)
        )


class TestOtherBaselines:
    def test_next_fit_by_start_uses_one_machine_when_possible(self):
        inst = Instance.from_intervals([(0, 2), (1, 3), (4, 6)], g=2)
        assert next_fit_by_start(inst).num_machines == 1

    def test_best_fit_not_worse_than_singleton(self, random_medium):
        assert (
            best_fit(random_medium).total_busy_time
            <= singleton(random_medium).total_busy_time + 1e-9
        )

    def test_random_assignment_deterministic_given_seed(self, random_small):
        a = random_assignment(random_small, seed=7)
        b = random_assignment(random_small, seed=7)
        assert a.assignment() == b.assignment()

    def test_random_assignment_seed_changes_result(self, random_medium):
        a = random_assignment(random_medium, seed=1)
        b = random_assignment(random_medium, seed=2)
        # With 80 jobs the probability of identical assignments is negligible.
        assert a.assignment() != b.assignment()
