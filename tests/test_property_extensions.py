"""Property-based tests for the extension modules (flexible, online, ring, io, local search)."""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from busytime.algorithms import first_fit, improve
from busytime.core.bounds import best_lower_bound
from busytime.core.instance import Instance
from busytime.core.intervals import Interval
from busytime.extensions import (
    FlexibleInstance,
    FlexibleJob,
    flexible_first_fit,
    flexible_lower_bound,
    online_best_fit,
    online_first_fit,
    online_next_fit,
)
from busytime.io import (
    instance_from_dict,
    instance_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from busytime.optical.ring import RingLightpath, RingNetwork, RingTraffic, groom_ring

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

coord = st.floats(min_value=0.0, max_value=60.0, allow_nan=False, width=32)


@st.composite
def rigid_instances(draw, max_jobs=15):
    pairs = draw(
        st.lists(
            st.tuples(coord, st.floats(min_value=0.0, max_value=20.0, width=32)),
            min_size=0,
            max_size=max_jobs,
        )
    )
    g = draw(st.integers(min_value=1, max_value=4))
    return Instance.from_intervals(
        [(float(s), float(s + l)) for s, l in pairs], g=g
    )


@st.composite
def flexible_instances(draw, max_jobs=12):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    g = draw(st.integers(min_value=1, max_value=4))
    jobs = []
    for i in range(n):
        release = draw(coord)
        processing = draw(st.floats(min_value=0.0, max_value=10.0, width=32))
        slack = draw(st.floats(min_value=0.0, max_value=10.0, width=32))
        demand = draw(st.integers(min_value=1, max_value=g))
        jobs.append(
            FlexibleJob(
                id=i,
                release=float(release),
                due=float(release + processing + slack),
                processing=float(processing),
                demand=float(demand),
            )
        )
    return FlexibleInstance(jobs=tuple(jobs), g=float(g))


@st.composite
def ring_traffics(draw):
    num_nodes = draw(st.integers(min_value=3, max_value=20))
    n = draw(st.integers(min_value=1, max_value=20))
    g = draw(st.integers(min_value=1, max_value=3))
    paths = []
    for i in range(n):
        a = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        b = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        if a == b:
            b = (b + 1) % num_nodes
        paths.append(RingLightpath(id=i, a=a, b=b, num_nodes=num_nodes))
    return RingTraffic(network=RingNetwork(num_nodes), lightpaths=tuple(paths), g=g)


class TestFlexibleProperties:
    @given(fi=flexible_instances())
    @RELAXED
    def test_two_phase_heuristic_feasible_and_bounded(self, fi):
        sched = flexible_first_fit(fi)
        sched.validate()
        assert sched.total_busy_time >= flexible_lower_bound(fi) - 1e-6
        # busy time never exceeds scheduling every job alone at its anchor
        assert sched.total_busy_time <= sum(j.processing for j in fi.jobs) + 1e-6

    @given(inst=rigid_instances())
    @RELAXED
    def test_rigid_embedding_matches_first_fit(self, inst):
        fi = FlexibleInstance.from_rigid(inst)
        assert flexible_first_fit(fi).total_busy_time == pytest.approx(
            first_fit(inst).total_busy_time, rel=1e-9, abs=1e-9
        )


class TestOnlineProperties:
    @given(inst=rigid_instances())
    @RELAXED
    def test_online_algorithms_feasible(self, inst):
        for algorithm in (online_first_fit, online_best_fit, online_next_fit):
            sched = algorithm(inst)
            sched.validate()
            assert sched.total_busy_time >= best_lower_bound(inst) - 1e-6


class TestLocalSearchProperties:
    @given(inst=rigid_instances())
    @RELAXED
    def test_improvement_is_monotone_and_feasible(self, inst):
        base = first_fit(inst)
        improved = improve(base)
        improved.validate()
        assert improved.total_busy_time <= base.total_busy_time + 1e-6
        assert improved.total_busy_time >= best_lower_bound(inst) - 1e-6


class TestIoProperties:
    @given(inst=rigid_instances())
    @RELAXED
    def test_instance_round_trip(self, inst):
        back = instance_from_dict(instance_to_dict(inst))
        assert back.g == inst.g
        assert [(j.id, j.start, j.end) for j in back.jobs] == [
            (j.id, j.start, j.end) for j in inst.jobs
        ]

    @given(inst=rigid_instances())
    @RELAXED
    def test_schedule_round_trip_preserves_cost(self, inst):
        sched = first_fit(inst)
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back.total_busy_time == pytest.approx(sched.total_busy_time)
        assert back.assignment() == sched.assignment()


class TestRingProperties:
    @given(traffic=ring_traffics())
    @RELAXED
    def test_ring_grooming_valid_and_complete(self, traffic):
        assignment = groom_ring(traffic)
        assignment.validate()
        assert set(assignment.colors) == {p.id for p in traffic}
        assert assignment.regenerators() <= traffic.total_regenerator_demand()
