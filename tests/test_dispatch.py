"""Tests for the algorithm dispatcher (busytime.algorithms.dispatch)."""

import pytest

from busytime.algorithms import (
    auto_schedule,
    available_schedulers,
    first_fit,
    get_scheduler,
    select_algorithm,
)
from busytime.algorithms.base import FunctionScheduler, register_scheduler
from busytime.core.bounds import best_lower_bound
from busytime.core.instance import Instance
from busytime.generators import (
    bounded_length_instance,
    clique_instance,
    proper_instance,
    uniform_random_instance,
)


class TestSelectAlgorithm:
    def test_clique_detected(self):
        assert select_algorithm(clique_instance(20, g=2, seed=0)) == "clique"

    def test_single_machine_detected(self):
        inst = Instance.from_intervals([(0, 3), (2, 5)], g=5)
        assert select_algorithm(inst) == "single_machine"

    def test_proper_detected(self):
        inst = proper_instance(30, g=2, seed=1)
        assert select_algorithm(inst) in ("proper_greedy", "clique", "single_machine")

    def test_bounded_length_detected(self):
        # Not a clique, not proper (nested pairs), not everything on one
        # machine, but length ratio 2 <= 8: the bounded-length algorithm applies.
        inst = Instance.from_intervals(
            [(0, 2), (0.5, 1.5), (1, 3), (1.2, 2.2), (10, 12), (10.5, 11.5), (11, 13)],
            g=2,
        )
        assert not inst.is_proper() and not inst.is_clique()
        assert select_algorithm(inst) == "bounded_length"

    def test_general_fallback(self):
        inst = Instance.from_intervals(
            [(0, 100), (1, 2), (3, 4), (50, 51), (60, 95), (20, 80)], g=2
        )
        assert select_algorithm(inst) == "first_fit"

    def test_empty(self):
        assert select_algorithm(Instance(jobs=(), g=1)) == "first_fit"


class TestAutoSchedule:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: uniform_random_instance(60, g=3, seed=0),
            lambda: clique_instance(40, g=4, seed=1),
            lambda: proper_instance(50, g=3, seed=2),
            lambda: bounded_length_instance(60, g=3, d=3.0, seed=3),
        ],
    )
    def test_feasible_everywhere(self, maker):
        inst = maker()
        sched = auto_schedule(inst)
        sched.validate()
        assert sched.total_busy_time >= best_lower_bound(inst) - 1e-9

    def test_never_worse_than_firstfit_with_portfolio(self):
        for seed in range(5):
            inst = uniform_random_instance(50, g=3, seed=seed)
            assert (
                auto_schedule(inst, portfolio=True).total_busy_time
                <= first_fit(inst).total_busy_time + 1e-9
            )

    def test_single_machine_optimality(self):
        inst = Instance.from_intervals([(0, 4), (1, 5), (2, 6)], g=3)
        sched = auto_schedule(inst)
        assert sched.num_machines == 1
        assert sched.total_busy_time == pytest.approx(inst.span)

    def test_components_metadata(self):
        inst = Instance.from_intervals([(0, 2), (1, 3), (50, 52), (51, 53)], g=1)
        sched = auto_schedule(inst)
        assert len(sched.meta["components"]) == 2

    def test_empty(self):
        assert auto_schedule(Instance(jobs=(), g=1)).num_machines == 0

    def test_portfolio_false_still_valid(self):
        inst = uniform_random_instance(40, g=2, seed=9)
        auto_schedule(inst, portfolio=False).validate()


class TestRegistry:
    def test_expected_algorithms_registered(self):
        names = available_schedulers()
        for expected in [
            "first_fit",
            "proper_greedy",
            "clique",
            "bounded_length",
            "auto",
            "machine_min",
            "best_fit",
            "singleton",
        ]:
            assert expected in names

    def test_get_unknown_scheduler(self):
        with pytest.raises(KeyError):
            get_scheduler("does_not_exist")

    def test_duplicate_registration_rejected(self):
        scheduler = get_scheduler("first_fit")
        with pytest.raises(KeyError):
            register_scheduler(scheduler)

    def test_scheduler_callable_and_info(self, random_small):
        scheduler = get_scheduler("first_fit")
        sched = scheduler(random_small)
        sched.validate()
        info = scheduler.info()
        assert info.name == "first_fit"
        assert info.approximation_ratio == 4.0

    def test_function_scheduler_wraps_docstring(self):
        fs = FunctionScheduler(first_fit, name="tmp_ff_alias")
        assert fs.schedule is not None
        assert "FirstFit" in (fs.__doc__ or "")
