"""Tests for the flexible (release/due/demand) extension (busytime.extensions.flexible)."""

import pytest

from busytime.algorithms import first_fit
from busytime.core.instance import Instance
from busytime.extensions import (
    FlexibleInstance,
    FlexibleJob,
    FlexibleSchedule,
    demand_profile_peak,
    fix_start_times,
    flexible_first_fit,
    flexible_lower_bound,
)
from busytime.core.intervals import Interval
from busytime.generators import uniform_random_instance


class TestFlexibleJob:
    def test_basic_properties(self):
        j = FlexibleJob(id=0, release=2, due=10, processing=3)
        assert j.slack == pytest.approx(5)
        assert not j.is_rigid
        assert j.interval_if_started_at(4).as_tuple() == (4, 7)

    def test_rigid_job(self):
        j = FlexibleJob(id=0, release=2, due=5, processing=3)
        assert j.is_rigid
        assert j.mandatory_part == Interval(2, 5)

    def test_mandatory_part(self):
        j = FlexibleJob(id=0, release=0, due=10, processing=7)
        assert j.mandatory_part == Interval(3, 7)
        loose = FlexibleJob(id=1, release=0, due=10, processing=4)
        assert loose.mandatory_part is None

    def test_window_too_short(self):
        with pytest.raises(ValueError):
            FlexibleJob(id=0, release=0, due=2, processing=3)

    def test_bad_demand(self):
        with pytest.raises(ValueError):
            FlexibleJob(id=0, release=0, due=2, processing=1, demand=0)

    def test_start_outside_window(self):
        j = FlexibleJob(id=0, release=2, due=10, processing=3)
        with pytest.raises(ValueError):
            j.interval_if_started_at(1)
        with pytest.raises(ValueError):
            j.interval_if_started_at(8)


class TestFlexibleInstance:
    def test_from_tuples(self):
        fi = FlexibleInstance.from_tuples([(0, 10, 3), (2, 8, 4)], g=2)
        assert fi.n == 2
        assert fi.total_work == pytest.approx(7)

    def test_demand_exceeding_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlexibleInstance.from_tuples([(0, 10, 3)], g=2, demands=[5])

    def test_duplicate_ids_rejected(self):
        jobs = (
            FlexibleJob(id=0, release=0, due=5, processing=1),
            FlexibleJob(id=0, release=0, due=5, processing=1),
        )
        with pytest.raises(ValueError):
            FlexibleInstance(jobs=jobs, g=1)

    def test_from_rigid_roundtrip(self):
        rigid = uniform_random_instance(15, g=3, seed=2)
        fi = FlexibleInstance.from_rigid(rigid)
        assert fi.is_rigid()
        assert fi.n == rigid.n
        assert fi.total_work == pytest.approx(rigid.total_length)


class TestDemandProfile:
    def test_peak(self):
        placed = [(Interval(0, 4), 2.0), (Interval(2, 6), 1.0), (Interval(5, 7), 3.0)]
        assert demand_profile_peak(placed) == pytest.approx(4.0)

    def test_empty(self):
        assert demand_profile_peak([]) == 0.0

    def test_touching_counts_both(self):
        placed = [(Interval(0, 2), 1.0), (Interval(2, 4), 1.0)]
        assert demand_profile_peak(placed) == pytest.approx(2.0)


class TestStartTimeFixing:
    def test_rigid_jobs_keep_their_interval(self):
        rigid = uniform_random_instance(10, g=2, seed=4)
        fi = FlexibleInstance.from_rigid(rigid)
        starts = fix_start_times(fi)
        for job in rigid.jobs:
            assert starts[job.id] == pytest.approx(job.start)

    def test_starts_respect_windows(self):
        fi = FlexibleInstance.from_tuples(
            [(0, 20, 5), (3, 9, 2), (10, 30, 8), (0, 40, 1)], g=2
        )
        starts = fix_start_times(fi)
        for job in fi.jobs:
            assert job.release - 1e-9 <= starts[job.id]
            assert starts[job.id] + job.processing <= job.due + 1e-9

    def test_flexibility_reduces_span(self):
        # Two jobs that CAN be made to overlap completely; anchoring should
        # stack them rather than spread them.
        fi = FlexibleInstance.from_tuples([(0, 20, 5), (0, 20, 5)], g=2)
        starts = fix_start_times(fi)
        a, b = (fi.jobs[0], fi.jobs[1])
        ia = a.interval_if_started_at(starts[a.id])
        ib = b.interval_if_started_at(starts[b.id])
        from busytime.core.intervals import span

        assert span([ia, ib]) == pytest.approx(5.0)


class TestFlexibleFirstFit:
    def test_feasible_and_bounded(self):
        fi = FlexibleInstance.from_tuples(
            [(0, 10, 3), (2, 8, 4), (1, 20, 5), (0, 6, 2), (5, 25, 6)],
            g=2,
            demands=[1, 1, 2, 1, 1],
        )
        sched = flexible_first_fit(fi)
        sched.validate()
        assert sched.total_busy_time >= flexible_lower_bound(fi) - 1e-9

    def test_matches_rigid_first_fit_on_rigid_unit_demand(self):
        rigid = uniform_random_instance(20, g=3, seed=9)
        fi = FlexibleInstance.from_rigid(rigid)
        flex_sched = flexible_first_fit(fi)
        flex_sched.validate()
        rigid_sched = first_fit(rigid)
        # same processing order and same fit rule -> same cost
        assert flex_sched.total_busy_time == pytest.approx(
            rigid_sched.total_busy_time
        )

    def test_demands_respected(self):
        # three demand-2 jobs on capacity 3: no two may overlap on one machine
        fi = FlexibleInstance.from_tuples(
            [(0, 4, 4), (0, 4, 4), (0, 4, 4)], g=3, demands=[2, 2, 2]
        )
        sched = flexible_first_fit(fi)
        sched.validate()
        assert sched.num_machines == 3

    def test_explicit_starts_used(self):
        fi = FlexibleInstance.from_tuples([(0, 10, 2), (0, 10, 2)], g=1)
        starts = {0: 0.0, 1: 8.0}
        sched = flexible_first_fit(fi, starts=starts)
        sched.validate()
        assert sched.interval_of(1).start == pytest.approx(8.0)

    def test_validation_catches_window_violation(self):
        fi = FlexibleInstance.from_tuples([(0, 10, 2)], g=1)
        bad = FlexibleSchedule(
            instance=fi, starts={0: 9.5}, machine_of={0: 0}, algorithm="bad"
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_validation_catches_capacity_violation(self):
        fi = FlexibleInstance.from_tuples(
            [(0, 4, 4), (0, 4, 4)], g=3, demands=[2, 2]
        )
        bad = FlexibleSchedule(
            instance=fi, starts={0: 0.0, 1: 0.0}, machine_of={0: 0, 1: 0}
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_to_rigid_schedule(self):
        fi = FlexibleInstance.from_tuples([(0, 10, 3), (1, 12, 4)], g=2)
        sched = flexible_first_fit(fi)
        rigid = sched.to_rigid_schedule()
        rigid.validate()
        assert rigid.total_busy_time == pytest.approx(sched.total_busy_time)


class TestFlexibleLowerBound:
    def test_work_bound(self):
        fi = FlexibleInstance.from_tuples(
            [(0, 100, 10)] * 4, g=2, demands=[1, 1, 1, 1]
        )
        assert flexible_lower_bound(fi) >= 20.0 - 1e-9

    def test_mandatory_span_bound(self):
        fi = FlexibleInstance.from_tuples([(0, 10, 9)], g=4)
        # mandatory part is [1, 9] of length 8
        assert flexible_lower_bound(fi) >= 8.0 - 1e-9

    def test_bound_below_heuristic(self):
        fi = FlexibleInstance.from_tuples(
            [(0, 15, 4), (2, 9, 3), (5, 30, 7), (1, 6, 2), (8, 20, 5)], g=2
        )
        sched = flexible_first_fit(fi)
        assert flexible_lower_bound(fi) <= sched.total_busy_time + 1e-9
