"""Shared fixtures for the busytime test suite."""

from __future__ import annotations

import pytest

from busytime import Instance
from busytime.generators import (
    bounded_length_instance,
    clique_instance,
    proper_instance,
    uniform_random_instance,
)


@pytest.fixture
def tiny_instance() -> Instance:
    """Four jobs, g = 2; the exact optimum is 11 (computed by brute force)."""
    return Instance.from_intervals([(0, 3), (1, 4), (2, 6), (5, 9)], g=2, name="tiny")


@pytest.fixture
def chain_instance() -> Instance:
    """A staircase of overlapping unit-ish jobs (proper), g = 3."""
    return Instance.from_intervals(
        [(i, i + 2) for i in range(10)], g=3, name="chain"
    )


@pytest.fixture
def disjoint_instance() -> Instance:
    """Pairwise-disjoint jobs: every schedule costs len(J)."""
    return Instance.from_intervals(
        [(3 * i, 3 * i + 1) for i in range(6)], g=2, name="disjoint"
    )


@pytest.fixture
def clique_small() -> Instance:
    return clique_instance(12, g=3, seed=7)


@pytest.fixture
def proper_small() -> Instance:
    return proper_instance(15, g=3, seed=11)


@pytest.fixture
def random_small() -> Instance:
    return uniform_random_instance(12, g=2, horizon=30.0, seed=13)


@pytest.fixture
def random_medium() -> Instance:
    return uniform_random_instance(80, g=4, seed=17)


@pytest.fixture
def bounded_small() -> Instance:
    return bounded_length_instance(14, g=2, d=3.0, horizon=20, seed=19)
