"""Unit tests for the sweep-line utilities (busytime.core.events)."""

import pytest

from busytime.core.events import (
    Event,
    breakpoints,
    integrate_step_function,
    load_profile,
    sweep_events,
)
from busytime.core.intervals import Interval, Job


def _jobs(*pairs):
    return [Job(id=i, interval=Interval(a, b)) for i, (a, b) in enumerate(pairs)]


class TestEvents:
    def test_sweep_order_start_before_end(self):
        jobs = _jobs((0, 1), (1, 2))
        events = sweep_events(jobs)
        # At coordinate 1 the start of job 1 must precede the end of job 0.
        at_one = [e for e in events if e.time == 1]
        assert at_one[0].kind == 0 and at_one[1].kind == 1

    def test_event_count(self):
        jobs = _jobs((0, 1), (2, 5), (3, 4))
        assert len(sweep_events(jobs)) == 6

    def test_breakpoints_dedup(self):
        jobs = _jobs((0, 2), (2, 4), (0, 4))
        assert breakpoints(jobs) == [0, 2, 4]


class TestLoadProfile:
    def test_simple_profile(self):
        jobs = _jobs((0, 2), (1, 3))
        profile = load_profile(jobs)
        assert profile == [(0, 1, 1), (1, 2, 2), (2, 3, 1)]

    def test_gap_has_zero_load(self):
        jobs = _jobs((0, 1), (3, 4))
        profile = load_profile(jobs)
        loads = {(lo, hi): load for lo, hi, load in profile}
        assert loads[(1, 3)] == 0

    def test_empty(self):
        assert load_profile([]) == []

    def test_integral_of_load_equals_total_length(self):
        jobs = _jobs((0, 2), (1, 3), (5, 9))
        total = sum((hi - lo) * load for lo, hi, load in load_profile(jobs))
        assert total == pytest.approx(sum(j.length for j in jobs))


class TestIntegrate:
    def test_integrates_constant(self):
        jobs = _jobs((0, 4))
        assert integrate_step_function(jobs, lambda t: 2.0) == pytest.approx(8.0)

    def test_integrates_load(self):
        jobs = _jobs((0, 2), (1, 3))
        value = integrate_step_function(
            jobs, lambda t: sum(1 for j in jobs if j.active_at(t))
        )
        assert value == pytest.approx(4.0)
