"""Tests for the instance generators (busytime.generators)."""

import pytest

from busytime.generators import (
    bounded_length_instance,
    bursty_instance,
    clique_instance,
    hotspot_traffic,
    laminar_instance,
    local_traffic,
    poisson_arrivals_instance,
    proper_instance,
    stairs_instance,
    uniform_random_instance,
    uniform_traffic,
    unit_interval_instance,
)


class TestRandomGenerators:
    def test_uniform_shape(self):
        inst = uniform_random_instance(25, g=3, horizon=50, seed=0)
        assert inst.n == 25 and inst.g == 3
        assert all(0 <= j.start < 50 for j in inst.jobs)
        assert all(1 <= j.length <= 20 for j in inst.jobs)

    def test_uniform_deterministic(self):
        a = uniform_random_instance(10, g=2, seed=42)
        b = uniform_random_instance(10, g=2, seed=42)
        assert [j.interval for j in a.jobs] == [j.interval for j in b.jobs]

    def test_uniform_seed_changes(self):
        a = uniform_random_instance(10, g=2, seed=1)
        b = uniform_random_instance(10, g=2, seed=2)
        assert [j.interval for j in a.jobs] != [j.interval for j in b.jobs]

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_random_instance(-1, g=2)
        with pytest.raises(ValueError):
            uniform_random_instance(5, g=2, min_length=3, max_length=2)

    def test_poisson_starts_increasing(self):
        inst = poisson_arrivals_instance(30, g=2, seed=3)
        starts = [j.start for j in inst.jobs]
        assert starts == sorted(starts)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals_instance(5, g=1, arrival_rate=0)

    def test_bursty_has_high_clique_number(self):
        inst = bursty_instance(80, g=2, num_bursts=2, seed=4)
        assert inst.clique_number >= 10

    def test_bursty_validation(self):
        with pytest.raises(ValueError):
            bursty_instance(5, g=1, num_bursts=0)


class TestStructuredGenerators:
    @pytest.mark.parametrize("seed", range(5))
    def test_proper_is_proper(self, seed):
        assert proper_instance(40, g=2, seed=seed).is_proper()

    @pytest.mark.parametrize("seed", range(5))
    def test_clique_is_clique(self, seed):
        assert clique_instance(30, g=2, seed=seed).is_clique()

    @pytest.mark.parametrize("seed", range(5))
    def test_bounded_length_within_d(self, seed):
        d = 3.0
        inst = bounded_length_instance(40, g=2, d=d, seed=seed)
        assert all(1.0 <= j.length <= d for j in inst.jobs)
        assert all(float(j.start).is_integer() for j in inst.jobs)

    def test_bounded_length_validation(self):
        with pytest.raises(ValueError):
            bounded_length_instance(5, g=1, d=0.5)

    @pytest.mark.parametrize("seed", range(3))
    def test_laminar_is_laminar(self, seed):
        assert laminar_instance(25, g=2, seed=seed).is_laminar()

    def test_unit_intervals_equal_length(self):
        inst = unit_interval_instance(20, g=2, length=2.5, seed=0)
        assert all(j.length == pytest.approx(2.5) for j in inst.jobs)
        assert inst.is_proper()

    def test_stairs(self):
        inst = stairs_instance(5, g=2, length=10, step=1)
        assert inst.is_proper()
        assert inst.clique_number == 5
        assert inst.span == pytest.approx(14.0)

    def test_generators_name_instances(self):
        assert "uniform" in uniform_random_instance(3, g=1, seed=0).name
        assert "clique" in clique_instance(3, g=1, seed=0).name


class TestTrafficGenerators:
    def test_uniform_traffic_valid(self):
        traffic = uniform_traffic(20, 50, g=3, seed=0)
        assert traffic.n == 50
        assert all(0 <= p.a < p.b <= 19 for p in traffic)

    def test_uniform_traffic_validation(self):
        with pytest.raises(ValueError):
            uniform_traffic(1, 5, g=1)

    def test_hotspot_traffic_touches_hubs(self):
        traffic = hotspot_traffic(30, 200, g=2, num_hubs=1, hub_fraction=1.0, seed=1)
        endpoints = [(p.a, p.b) for p in traffic]
        hubs = set()
        for a, b in endpoints:
            hubs.add(a)
            hubs.add(b)
        # with a single hub and fraction 1.0, one endpoint is shared by all
        common = set.intersection(*[{a, b} for a, b in endpoints])
        assert len(common) >= 1

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            hotspot_traffic(10, 5, g=1, hub_fraction=2.0)
        with pytest.raises(ValueError):
            hotspot_traffic(10, 5, g=1, num_hubs=10)

    def test_local_traffic_short_hops(self):
        traffic = local_traffic(100, 200, g=2, mean_hops=3.0, max_hops=6, seed=2)
        assert all(1 <= p.hops <= 6 for p in traffic)

    def test_local_traffic_validation(self):
        with pytest.raises(ValueError):
            local_traffic(10, 5, g=1, mean_hops=0.5)

    def test_traffic_deterministic(self):
        a = uniform_traffic(20, 30, g=2, seed=5)
        b = uniform_traffic(20, 30, g=2, seed=5)
        assert [(p.a, p.b) for p in a] == [(p.a, p.b) for p in b]
