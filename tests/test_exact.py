"""Unit tests for the exact solvers (busytime.exact)."""

import math

import pytest

from busytime.algorithms import first_fit
from busytime.core.bounds import best_lower_bound
from busytime.core.instance import Instance
from busytime.exact import (
    branch_and_bound_optimum,
    brute_force_optimum,
    exact_optimal_cost,
    exact_optimum,
    iter_set_partitions,
    minimize_machine_count,
    optimal_cost_if_polynomial,
    solve_disjoint,
    solve_unit_parallelism,
)
from busytime.generators import clique_instance, proper_instance, uniform_random_instance


class TestSetPartitions:
    def test_bell_numbers(self):
        # Bell numbers: B(1)=1, B(2)=2, B(3)=5, B(4)=15
        for n, bell in [(1, 1), (2, 2), (3, 5), (4, 15)]:
            assert sum(1 for _ in iter_set_partitions(list(range(n)))) == bell

    def test_empty(self):
        assert list(iter_set_partitions([])) == [[]]

    def test_partitions_cover_items(self):
        for blocks in iter_set_partitions([1, 2, 3]):
            flat = sorted(x for b in blocks for x in b)
            assert flat == [1, 2, 3]


class TestBruteForce:
    def test_known_optimum(self, tiny_instance):
        sched = brute_force_optimum(tiny_instance)
        assert sched.total_busy_time == pytest.approx(11.0)
        sched.validate()

    def test_rejects_large(self):
        inst = uniform_random_instance(20, g=2, seed=0)
        with pytest.raises(ValueError):
            brute_force_optimum(inst)

    def test_empty_instance(self):
        sched = brute_force_optimum(Instance(jobs=(), g=2))
        assert sched.total_busy_time == 0

    def test_single_job(self):
        inst = Instance.from_intervals([(0, 5)], g=1)
        assert brute_force_optimum(inst).total_busy_time == 5


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_random(self, seed):
        inst = uniform_random_instance(8, g=2, horizon=15, seed=seed)
        bb = branch_and_bound_optimum(inst)
        bf = brute_force_optimum(inst)
        assert bb.total_busy_time == pytest.approx(bf.total_busy_time)
        bb.validate()

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force_clique(self, seed):
        inst = clique_instance(7, g=3, seed=seed)
        assert branch_and_bound_optimum(inst).total_busy_time == pytest.approx(
            brute_force_optimum(inst).total_busy_time
        )

    def test_warm_start_with_firstfit_ub(self, random_small):
        ff = first_fit(random_small)
        warm = branch_and_bound_optimum(
            random_small, initial_upper_bound=ff.total_busy_time
        )
        cold = branch_and_bound_optimum(random_small)
        assert warm.total_busy_time == pytest.approx(cold.total_busy_time)
        assert warm.total_busy_time <= ff.total_busy_time + 1e-9

    def test_warm_start_equal_to_opt_still_finds_solution(self, tiny_instance):
        # FirstFit may already be optimal; the searcher must not prune away
        # every solution in that case.
        opt = brute_force_optimum(tiny_instance).total_busy_time
        sched = branch_and_bound_optimum(tiny_instance, initial_upper_bound=opt)
        assert sched.total_busy_time == pytest.approx(opt)

    def test_respects_lower_bound(self, random_small):
        sched = branch_and_bound_optimum(random_small)
        assert sched.total_busy_time >= best_lower_bound(random_small) - 1e-9

    def test_rejects_oversized(self):
        inst = uniform_random_instance(40, g=2, seed=1)
        with pytest.raises(ValueError):
            branch_and_bound_optimum(inst)

    def test_stats_recorded(self, tiny_instance):
        sched = branch_and_bound_optimum(tiny_instance)
        assert sched.meta["optimal"] is True
        assert sched.meta["stats"].nodes_explored > 0

    def test_splits_connected_components(self):
        inst = Instance.from_intervals(
            [(0, 2), (1, 3), (100, 102), (101, 103)], g=1
        )
        sched = branch_and_bound_optimum(inst)
        assert sched.total_busy_time == pytest.approx(8.0)


class TestSpecialCases:
    def test_g1_cost_is_total_length(self):
        inst = Instance.from_intervals([(0, 3), (1, 4), (10, 12)], g=1)
        sched = solve_unit_parallelism(inst)
        assert sched.total_busy_time == pytest.approx(inst.total_length)
        sched.validate()

    def test_g1_requires_g1(self):
        with pytest.raises(ValueError):
            solve_unit_parallelism(Instance.from_intervals([(0, 1)], g=2))

    def test_disjoint(self, disjoint_instance):
        sched = solve_disjoint(disjoint_instance)
        assert sched.total_busy_time == pytest.approx(disjoint_instance.total_length)

    def test_disjoint_requires_disjoint(self):
        with pytest.raises(ValueError):
            solve_disjoint(Instance.from_intervals([(0, 2), (1, 3)], g=2))

    def test_machine_count_minimization(self):
        inst = uniform_random_instance(30, g=3, seed=4)
        sched = minimize_machine_count(inst)
        sched.validate()
        assert sched.num_machines == math.ceil(inst.clique_number / inst.g)

    def test_machine_count_empty(self):
        sched = minimize_machine_count(Instance(jobs=(), g=2))
        assert sched.num_machines == 0

    def test_optimal_cost_if_polynomial(self):
        assert optimal_cost_if_polynomial(
            Instance.from_intervals([(0, 3), (5, 7)], g=1)
        ) == pytest.approx(5.0)
        assert optimal_cost_if_polynomial(
            Instance.from_intervals([(0, 3), (5, 7)], g=4)
        ) == pytest.approx(5.0)
        # single machine suffices -> span
        assert optimal_cost_if_polynomial(
            Instance.from_intervals([(0, 3), (2, 7)], g=2)
        ) == pytest.approx(7.0)
        # genuinely hard case -> None
        assert (
            optimal_cost_if_polynomial(
                Instance.from_intervals([(0, 3), (2, 7), (1, 4)], g=2)
            )
            is None
        )


class TestExactFacade:
    def test_exact_optimum_picks_special_case(self):
        inst = Instance.from_intervals([(0, 3), (5, 7)], g=1)
        sched = exact_optimum(inst)
        assert sched.algorithm == "exact_g1"

    def test_exact_optimal_cost_consistency(self, tiny_instance):
        assert exact_optimal_cost(tiny_instance) == pytest.approx(
            brute_force_optimum(tiny_instance).total_busy_time
        )

    def test_exact_optimum_empty(self):
        assert exact_optimum(Instance(jobs=(), g=2)).total_busy_time == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_exact_cost_never_exceeds_heuristics(self, seed):
        inst = proper_instance(10, g=2, seed=seed)
        ff = first_fit(inst)
        assert exact_optimal_cost(inst) <= ff.total_busy_time + 1e-9
