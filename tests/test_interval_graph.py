"""Unit tests for busytime.graphs.interval_graph."""

import itertools

import networkx as nx
import pytest

from busytime.core.intervals import Interval, Job
from busytime.graphs.interval_graph import (
    build_interval_graph,
    chromatic_number,
    clique_number,
    greedy_interval_coloring,
    independent_set_count_lower_bound,
    maximum_clique,
    partition_into_independent_sets,
)
from busytime.generators import uniform_random_instance


def _jobs(*pairs):
    return [Job(id=i, interval=Interval(a, b)) for i, (a, b) in enumerate(pairs)]


class TestGraphConstruction:
    def test_edges_match_pairwise_overlap(self):
        jobs = _jobs((0, 2), (1, 3), (4, 6), (2, 4))
        graph = build_interval_graph(jobs)
        expected = {
            (a.id, b.id)
            for a, b in itertools.combinations(jobs, 2)
            if a.overlaps(b)
        }
        got = {tuple(sorted(e)) for e in graph.edges}
        assert got == {tuple(sorted(e)) for e in expected}

    def test_touching_intervals_are_adjacent(self):
        jobs = _jobs((0, 1), (1, 2))
        graph = build_interval_graph(jobs)
        assert graph.has_edge(0, 1)

    def test_node_attributes(self):
        jobs = _jobs((0, 2))
        graph = build_interval_graph(jobs)
        assert graph.nodes[0]["start"] == 0
        assert graph.nodes[0]["length"] == 2

    def test_random_instance_matches_bruteforce_edges(self):
        inst = uniform_random_instance(30, g=2, seed=3)
        graph = build_interval_graph(list(inst.jobs))
        for a, b in itertools.combinations(inst.jobs, 2):
            assert graph.has_edge(a.id, b.id) == a.overlaps(b)


class TestCliqueAndColoring:
    def test_clique_number(self):
        jobs = _jobs((0, 4), (1, 5), (2, 6), (10, 11))
        assert clique_number(jobs) == 3

    def test_maximum_clique_is_clique(self):
        jobs = _jobs((0, 4), (1, 5), (2, 6), (5.5, 7), (10, 11))
        clique = maximum_clique(jobs)
        assert len(clique) == clique_number(jobs)
        for a, b in itertools.combinations(clique, 2):
            assert a.overlaps(b)

    def test_maximum_clique_empty(self):
        assert maximum_clique([]) == []

    def test_coloring_is_proper(self):
        inst = uniform_random_instance(40, g=2, seed=5)
        coloring = greedy_interval_coloring(list(inst.jobs))
        for a, b in itertools.combinations(inst.jobs, 2):
            if a.overlaps(b):
                assert coloring[a.id] != coloring[b.id]

    def test_coloring_uses_omega_colors(self):
        inst = uniform_random_instance(40, g=2, seed=6)
        jobs = list(inst.jobs)
        assert chromatic_number(jobs) == clique_number(jobs)

    def test_chromatic_number_empty(self):
        assert chromatic_number([]) == 0


class TestIndependentSetPartition:
    def test_threads_are_independent(self):
        inst = uniform_random_instance(30, g=2, seed=8)
        threads = partition_into_independent_sets(list(inst.jobs))
        for thread in threads:
            for a, b in itertools.combinations(thread, 2):
                assert not a.overlaps(b)

    def test_partition_covers_all_jobs(self):
        jobs = _jobs((0, 2), (1, 3), (2, 4))
        threads = partition_into_independent_sets(jobs)
        assert sorted(j.id for t in threads for j in t) == [0, 1, 2]

    def test_explicit_k(self):
        jobs = _jobs((0, 2), (1, 3))
        threads = partition_into_independent_sets(jobs, k=4)
        assert len(threads) == 4

    def test_k_below_omega_rejected(self):
        jobs = _jobs((0, 2), (1, 3))
        with pytest.raises(ValueError):
            partition_into_independent_sets(jobs, k=1)

    def test_machine_count_lower_bound(self):
        jobs = _jobs((0, 4), (1, 5), (2, 6), (3, 7), (4.5, 8))
        assert independent_set_count_lower_bound(jobs, g=2) == 2
        assert independent_set_count_lower_bound([], g=2) == 0
