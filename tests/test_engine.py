"""Tests for the solve-session engine (busytime.engine)."""

import pytest

from busytime.algorithms import auto_schedule, first_fit, get_scheduler
from busytime.algorithms.base import (
    algorithm_table,
    available_schedulers,
    register_scheduler,
)
from busytime.core.bounds import best_lower_bound
from busytime.core.instance import Instance
from busytime.engine import (
    Engine,
    RequestValidationError,
    SolveReport,
    SolveRequest,
    available_policies,
    get_policy,
    solve,
    solve_many,
)
from busytime.generators import (
    bounded_length_instance,
    clique_instance,
    proper_instance,
    uniform_random_instance,
)
from busytime.io import solve_report_from_dict, solve_report_to_dict

SEED_MAKERS = [
    lambda seed: uniform_random_instance(40, g=3, seed=seed),
    lambda seed: clique_instance(30, g=4, seed=seed),
    lambda seed: proper_instance(35, g=3, seed=seed),
    lambda seed: bounded_length_instance(40, g=3, d=3.0, seed=seed),
]


class TestRequestValidation:
    def test_rejects_non_instance(self):
        with pytest.raises(RequestValidationError):
            Engine().solve(SolveRequest(instance="not an instance"))

    def test_rejects_unknown_objective(self):
        inst = uniform_random_instance(5, g=2, seed=0)
        with pytest.raises(RequestValidationError):
            Engine().solve(SolveRequest(instance=inst, objective="makespan"))

    def test_rejects_unknown_algorithm(self):
        inst = uniform_random_instance(5, g=2, seed=0)
        with pytest.raises(RequestValidationError):
            Engine().solve(SolveRequest(instance=inst, algorithm="nope"))

    def test_rejects_unknown_policy(self):
        inst = uniform_random_instance(5, g=2, seed=0)
        with pytest.raises(RequestValidationError):
            Engine().solve(SolveRequest(instance=inst, policy="nope"))

    def test_rejects_negative_time_limit(self):
        inst = uniform_random_instance(5, g=2, seed=0)
        with pytest.raises(RequestValidationError):
            Engine().solve(SolveRequest(instance=inst, time_limit=-1.0))

    def test_engine_rejects_unknown_default_policy(self):
        with pytest.raises(KeyError):
            Engine(default_policy="nope")


class TestSolve:
    def test_reproduces_auto_schedule_costs(self):
        engine = Engine()
        for maker in SEED_MAKERS:
            for seed in range(3):
                inst = maker(seed)
                report = engine.solve(SolveRequest(instance=inst))
                assert report.cost == auto_schedule(inst).total_busy_time
                assert report.algorithm == "auto"
                assert report.schedule.is_feasible()

    def test_portfolio_false_matches_wrapper(self):
        engine = Engine()
        inst = uniform_random_instance(40, g=2, seed=9)
        report = engine.solve(SolveRequest(instance=inst, portfolio=False))
        assert report.cost == auto_schedule(inst, portfolio=False).total_busy_time

    def test_report_carries_bounds_and_decisions(self):
        inst = Instance.from_intervals([(0, 2), (1, 3), (50, 52), (51, 53)], g=1)
        report = Engine().solve(SolveRequest(instance=inst))
        assert report.lower_bound == pytest.approx(best_lower_bound(inst))
        assert len(report.components) == 2
        assert all(d.proven_ratio is not None for d in report.components)
        assert report.proven_ratio == max(d.proven_ratio for d in report.components)
        assert report.ratio_vs_lb >= 1.0 - 1e-9
        assert report.timings["total"] >= report.timings["schedule"]

    def test_single_machine_component_is_optimal(self):
        inst = Instance.from_intervals([(0, 4), (1, 5), (2, 6)], g=3)
        report = Engine().solve(SolveRequest(instance=inst))
        assert report.components[0].algorithm == "single_machine"
        assert report.proven_ratio == 1.0
        assert report.cost == pytest.approx(inst.span)

    def test_forced_algorithm(self):
        inst = uniform_random_instance(30, g=2, seed=4)
        report = Engine().solve(SolveRequest(instance=inst, algorithm="first_fit"))
        assert report.algorithm == "first_fit"
        assert report.cost == first_fit(inst).total_busy_time
        assert report.proven_ratio == 4.0

    def test_compute_optimum(self):
        inst = uniform_random_instance(10, g=2, seed=3)
        report = Engine().solve(
            SolveRequest(instance=inst, compute_optimum=True, max_jobs_for_optimum=12)
        )
        assert report.optimum is not None
        assert report.ratio_vs_opt >= 1.0 - 1e-12
        assert "optimum" in report.timings

    def test_optimum_skipped_above_cap(self):
        inst = uniform_random_instance(30, g=2, seed=3)
        report = Engine().solve(
            SolveRequest(instance=inst, compute_optimum=True, max_jobs_for_optimum=5)
        )
        assert report.optimum is None

    def test_time_limit_zero_falls_back_to_first_fit(self):
        inst = uniform_random_instance(40, g=3, seed=5)
        report = Engine().solve(SolveRequest(instance=inst, time_limit=0.0))
        assert report.budget_exhausted
        assert all(d.algorithm == "first_fit" for d in report.components)
        report.schedule.validate()

    def test_empty_instance(self):
        report = Engine().solve(SolveRequest(instance=Instance(jobs=(), g=1)))
        assert report.num_machines == 0
        assert report.cost == 0.0
        assert report.ratio_vs_lb == 1.0

    def test_first_fit_policy(self):
        inst = proper_instance(30, g=2, seed=1)
        report = Engine().solve(SolveRequest(instance=inst, policy="first_fit"))
        assert set(available_policies()) >= {"best_ratio", "first_fit"}
        for decision in report.components:
            assert decision.algorithm in ("first_fit", "single_machine")

    def test_tags_echoed(self):
        inst = uniform_random_instance(5, g=2, seed=0)
        report = solve(SolveRequest(instance=inst, tags={"experiment": "e1"}))
        assert report.tags == {"experiment": "e1"}


class TestSolveMany:
    def _requests(self, count=50):
        return [
            SolveRequest(instance=uniform_random_instance(12, g=2, seed=seed))
            for seed in range(count)
        ]

    def test_preserves_order(self):
        requests = self._requests(8)
        reports = Engine().solve_many(requests)
        for request, report in zip(requests, reports):
            assert report.schedule.instance.name == request.instance.name

    def test_process_pool_matches_serial(self):
        requests = self._requests(50)
        engine = Engine()
        serial = engine.solve_many(requests)
        pooled = engine.solve_many(requests, max_workers=4)
        assert len(serial) == len(pooled) == 50
        for a, b in zip(serial, pooled):
            # Timings are wall-clock and excluded; everything else must be
            # bitwise identical between the serial and the pooled path.
            assert solve_report_to_dict(a, include_timings=False) == solve_report_to_dict(
                b, include_timings=False
            )

    def test_module_level_solve_many(self):
        reports = solve_many(self._requests(3))
        assert [type(r) for r in reports] == [SolveReport] * 3

    def test_invalid_request_fails_fast(self):
        requests = self._requests(2) + [SolveRequest(instance="bad")]
        with pytest.raises(RequestValidationError):
            Engine().solve_many(requests)

    def test_pool_worker_reuses_per_process_engine(self):
        from busytime.engine import core as engine_core

        engine_core._WORKER_ENGINE = None
        first = engine_core._pool_worker(self._requests(1)[0])
        built = engine_core._WORKER_ENGINE
        assert built is not None
        second = engine_core._pool_worker(self._requests(2)[1])
        assert engine_core._WORKER_ENGINE is built  # cached, not rebuilt
        assert first.cost > 0 and second.cost > 0

    def test_pool_path_threads_default_policy_through_requests(self):
        # A non-default engine policy must reach the workers via the
        # resolved request, not via (process-local) engine state.
        requests = self._requests(4)
        engine = Engine(default_policy="first_fit")
        pooled = engine.solve_many(requests, max_workers=2)
        assert all(r.policy == "first_fit" for r in pooled)
        serial = engine.solve_many(requests)
        for a, b in zip(serial, pooled):
            assert solve_report_to_dict(
                a, include_timings=False
            ) == solve_report_to_dict(b, include_timings=False)


class TestReportRoundTrip:
    def test_json_round_trip(self):
        inst = uniform_random_instance(15, g=2, seed=7)
        report = Engine().solve(SolveRequest(instance=inst, compute_optimum=True))
        data = solve_report_to_dict(report)
        back = solve_report_from_dict(data)
        assert solve_report_to_dict(back) == data
        assert back.cost == report.cost
        assert back.components == report.components
        assert back.optimum == report.optimum
        back.schedule.validate()

    def test_round_trip_rejects_other_documents(self):
        with pytest.raises(ValueError):
            solve_report_from_dict({"format": "busytime-instance"})


class TestRegistryUpgrade:
    def test_capability_metadata_exposed(self):
        table = {info.name: info for info in algorithm_table()}
        assert set(table) == set(available_schedulers())
        assert table["bounded_length"].max_length_ratio == 8.0
        assert table["clique"].instance_classes == ("clique",)
        assert table["auto"].composite
        assert not table["first_fit_ls"].portfolio_member

    def test_handles_queries_capabilities(self):
        clique = get_scheduler("clique")
        assert clique.handles(clique_instance(10, g=2, seed=0))
        assert not clique.handles(
            Instance.from_intervals([(0, 1), (5, 6)], g=1)
        )
        bounded = get_scheduler("bounded_length")
        assert not bounded.handles(
            Instance.from_intervals([(0, 1), (2, 102)], g=1)
        )

    def test_register_scheduler_decorator(self):
        @register_scheduler(name="tmp_decorated", approximation_ratio=None)
        def tmp_decorated(instance):
            return first_fit(instance)

        try:
            assert "tmp_decorated" in available_schedulers()
            inst = uniform_random_instance(10, g=2, seed=0)
            # The decorated function stays a plain function...
            assert tmp_decorated(inst).total_busy_time == first_fit(inst).total_busy_time
            # ...and the registered wrapper produces the same schedules.
            sched = get_scheduler("tmp_decorated")(inst)
            sched.validate()
            assert tmp_decorated.scheduler is get_scheduler("tmp_decorated")
        finally:
            from busytime.algorithms.base import _REGISTRY

            _REGISTRY.pop("tmp_decorated", None)

    def test_decorator_requires_name(self):
        with pytest.raises(TypeError):
            register_scheduler(approximation_ratio=2.0)

    def test_selection_policy_matches_structure(self):
        policy = get_policy("best_ratio")
        assert policy.choose(clique_instance(20, g=2, seed=0)) == "clique"
        ranked = policy.rank(proper_instance(30, g=2, seed=1))
        assert ranked[0] == "proper_greedy"
        assert "first_fit" in ranked  # the guarantee of last resort always applies
