"""Smoke tests for the example scripts.

The examples double as executable documentation; these tests keep them in
sync with the library (imports resolve, the light ones run end to end, the
heavy ones at least expose a ``main`` and build their workloads).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "optical_grooming",
            "cloud_consolidation",
            "adversarial_analysis",
            "ring_grooming",
        ],
    )
    def test_importable_and_has_main(self, name):
        module = _load(name)
        assert callable(module.main)


class TestLightExamplesRun:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "FirstFit" in out and "Optimum" in out

    def test_adversarial_analysis(self, capsys):
        _load("adversarial_analysis").main()
        out = capsys.readouterr().out
        assert "Theorem 2.4" in out
        assert "Lemma 2.3" in out

    def test_cloud_consolidation_workload_builder(self):
        module = _load("cloud_consolidation")
        jobs = module.generate_day_of_jobs(seed=1)
        assert len(jobs) > 100
        assert all(0 <= s < e <= module.HOURS for s, e in jobs)

    def test_ring_grooming_traffic_builder(self):
        module = _load("ring_grooming")
        traffic = module.generate_ring_traffic(g=4, seed=1)
        assert traffic.n == module.NUM_LIGHTPATHS
        assert traffic.g == 4
