"""Differential corpus: every registered algorithm vs the oracle and bounds.

A seeded corpus drawn from all four generator families — random
(:mod:`busytime.generators.random_instances`), structured
(:mod:`busytime.generators.structured`), adversarial
(:mod:`busytime.generators.adversarial`) and optical
(:mod:`busytime.generators.optical_traffic` via the Section 4.2 reduction)
— is run through **every algorithm in the registry**, so a newly registered
algorithm gets oracle coverage for free, with no test to write:

* the produced schedule must pass :func:`verify_schedule` — the slow-path
  feasibility/cost oracle, which also cross-checks the sweep-profile fast
  path (`ProfileOracleMismatchError` on drift);
* its cost must respect the Observation 1.1 lower bound
  ``max(len(J)/g, span(J))``;
* FirstFit — the guarantee of last resort — must stay within factor ``g``
  of the lower bound (every schedule costs at most ``len(J)``, and
  ``len(J) <= g * len(J)/g <= g * LB``), a cheap pairwise sanity net that
  catches wildly broken cost accounting in any comparison experiment.

Algorithms are only run on instances their declared capabilities cover
(:meth:`Scheduler.handles`), mirroring the engine's selection rules.
"""

from __future__ import annotations

import pytest

from busytime.algorithms import get_scheduler
from busytime.algorithms.base import available_schedulers
from busytime.core.bounds import best_lower_bound
from busytime.core.instance import Instance
from busytime.core.schedule import verify_schedule
from busytime.generators import (
    bounded_length_instance,
    bursty_instance,
    clique_instance,
    firstfit_lower_bound_instance,
    laminar_instance,
    poisson_arrivals_instance,
    proper_instance,
    ranked_shift_proper_instance,
    stairs_instance,
    uniform_random_instance,
    uniform_traffic,
)
from busytime.optical import traffic_to_instance


def _optical_instance(seed: int) -> Instance:
    return traffic_to_instance(uniform_traffic(10, 30, 3, seed=seed))


#: The corpus: one entry per (family, construction).  Sizes stay small so
#: the full registry x corpus product remains tier-1 fast.
CORPUS = [
    # random family
    ("random-uniform", uniform_random_instance(40, 3, seed=0)),
    ("random-poisson", poisson_arrivals_instance(40, 3, seed=1)),
    ("random-bursty", bursty_instance(40, 4, seed=2)),
    # structured family
    ("structured-proper", proper_instance(30, 3, seed=3)),
    ("structured-clique", clique_instance(18, 3, seed=4)),
    ("structured-bounded", bounded_length_instance(30, 3, d=3.0, seed=5)),
    ("structured-laminar", laminar_instance(25, 3, seed=6)),
    ("structured-stairs", stairs_instance(24, 3)),
    # adversarial family
    ("adversarial-fig4", firstfit_lower_bound_instance(4)),
    ("adversarial-ranked-shift", ranked_shift_proper_instance(4)),
    # optical family (Section 4.2 reduction)
    ("optical-uniform", _optical_instance(7)),
]

ALGORITHMS = available_schedulers()


@pytest.mark.parametrize("name", ALGORITHMS)
@pytest.mark.parametrize("label,instance", CORPUS, ids=[c[0] for c in CORPUS])
def test_registry_algorithm_against_oracle_and_bounds(name, label, instance):
    scheduler = get_scheduler(name)
    if not scheduler.handles(instance):
        pytest.skip(f"{name} does not declare {label}'s instance class")
    schedule = scheduler(instance)
    # The slow-path oracle: feasibility, coverage, and the profile cross-check.
    verify_schedule(schedule)
    lb = best_lower_bound(instance)
    assert schedule.total_busy_time >= lb - 1e-9, (
        f"{name} on {label}: cost {schedule.total_busy_time} below the "
        f"Observation 1.1 bound {lb}"
    )


@pytest.mark.parametrize("label,instance", CORPUS, ids=[c[0] for c in CORPUS])
def test_firstfit_within_factor_g_of_lower_bound(label, instance):
    schedule = get_scheduler("first_fit")(instance)
    lb = best_lower_bound(instance)
    assert schedule.total_busy_time <= instance.g * lb + 1e-9, (
        f"first_fit on {label}: cost {schedule.total_busy_time} exceeds "
        f"g * LB = {instance.g * lb}"
    )


@pytest.mark.parametrize("name", ALGORITHMS)
@pytest.mark.parametrize("label,instance", CORPUS, ids=[c[0] for c in CORPUS])
def test_profile_index_flag_is_bit_for_bit(name, label, instance):
    """The indexed backend must change nothing: every registry algorithm on
    every corpus family produces the identical machine partition with the
    flag forced on vs forced off, and identical costs up to accumulation-
    order ulps (the covered-length sums are ordered differently by the two
    backends; the partitions are compared exactly)."""
    from busytime.core.profile_index import profile_index

    scheduler = get_scheduler(name)
    if not scheduler.handles(instance):
        pytest.skip(f"{name} does not declare {label}'s instance class")
    with profile_index("off"):
        legacy = scheduler(instance)
    with profile_index("force"):
        indexed = scheduler(instance)
    assert legacy.assignment() == indexed.assignment(), (
        f"{name} on {label}: flag on/off changed the schedule"
    )
    assert [tuple(j.id for j in m.jobs) for m in legacy.machines] == [
        tuple(j.id for j in m.jobs) for m in indexed.machines
    ]
    assert abs(legacy.total_busy_time - indexed.total_busy_time) <= 1e-9 * max(
        1.0, legacy.total_busy_time
    )
    verify_schedule(indexed)
    verify_schedule(indexed, mode="batch")


def test_corpus_spans_all_structural_classes():
    """The corpus must keep exercising every classifier branch."""
    classes = {instance.classify() for _, instance in CORPUS}
    assert {"general", "proper", "clique", "laminar"} <= classes


def test_newly_registered_algorithm_is_covered():
    """The suite picks up registry additions with no test changes: the
    parametrisation is read from the live registry at collection time."""
    assert set(ALGORITHMS) == set(available_schedulers())
    assert "first_fit" in ALGORITHMS and "auto" in ALGORITHMS
