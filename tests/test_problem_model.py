"""The problem-model axis: pluggable objectives + demand-aware capacity.

Four layers of coverage:

* **Cost models** — the frozen :class:`CostModel`, the objective registry,
  serialisation, and the exact degeneration of the default model to the
  seed's total-busy-time semantics.
* **Demand-aware core** — feasibility, bounds and the exact solver under
  the [15] capacity model, cross-checked against the slow-path oracle.
* **Differential regression** — on the existing differential corpus, every
  registered algorithm under unit demands and the default ``busy_time``
  model must reproduce the seed behaviour bit-for-bit: identical machine
  partitions and exactly equal (``==``, not approx) costs whether invoked
  directly, through the engine, or priced through the default model; the
  FirstFit partition additionally matches a preserved copy of the seed's
  clip-and-rescan implementation.
* **Routing** — selection policies and request validation route
  demand-carrying or non-default-objective work only to algorithms that
  declare support; fingerprints distinguish cost models and demands and
  are stable across a process restart.
"""

from __future__ import annotations

import json
import subprocess
import sys
from typing import List, Optional

import pytest

from busytime import Engine, Instance, SolveRequest
from busytime.algorithms.base import (
    FunctionScheduler,
    available_schedulers,
    get_scheduler,
    register_scheduler,
)
from busytime.algorithms.first_fit import first_fit, first_fit_order
from busytime.core.bounds import (
    best_lower_bound,
    min_machines_bound,
    parallelism_bound,
)
from busytime.core.instance import Instance
from busytime.core.intervals import (
    Interval,
    Job,
    max_point_demand,
    max_point_load,
)
from busytime.core.objectives import (
    CostModel,
    get_cost_model,
    register_objective,
    registered_objectives,
)
from busytime.core.schedule import InfeasibleScheduleError, verify_schedule
from busytime.engine import RequestValidationError
from busytime.engine.policy import get_policy
from busytime.exact import exact_optimal_cost
from busytime.generators import demand_loaded_instance, uniform_random_instance
from busytime.service.canonical import request_fingerprint

from test_differential_corpus import CORPUS


def _demand_instance(n: int = 20, g: int = 4, seed: int = 5) -> Instance:
    return demand_loaded_instance(n, g, seed=seed)


# ---------------------------------------------------------------------------
# Cost models
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_registry_defaults(self):
        assert registered_objectives()[0] == "busy_time"
        assert set(registered_objectives()) >= {
            "busy_time",
            "weighted_busy_time",
            "machines_plus_busy",
        }
        assert get_cost_model("machines_plus_busy").activation_cost == 1.0
        with pytest.raises(KeyError, match="unknown objective"):
            get_cost_model("nope")

    def test_default_model_is_seed_semantics_exactly(self):
        inst = uniform_random_instance(60, 3, seed=9)
        schedule = first_fit(inst)
        model = get_cost_model("busy_time")
        # Exact equality, not approx: 0.0 + 1.0 * b is exact in IEEE floats
        # and the summation order matches total_busy_time.
        assert schedule.cost_under(model) == schedule.total_busy_time
        assert model.lower_bound(inst) == best_lower_bound(inst)

    def test_machines_plus_busy_prices_activation(self):
        inst = uniform_random_instance(40, 3, seed=2)
        schedule = first_fit(inst)
        model = get_cost_model("machines_plus_busy")
        assert schedule.cost_under(model) == pytest.approx(
            schedule.num_machines + schedule.total_busy_time
        )
        assert model.lower_bound(inst) == pytest.approx(
            min_machines_bound(inst) + best_lower_bound(inst)
        )

    def test_weighted_model_scales(self):
        inst = uniform_random_instance(30, 3, seed=4)
        schedule = first_fit(inst)
        model = CostModel(objective="weighted_busy_time", busy_rate=2.5)
        assert schedule.cost_under(model) == pytest.approx(
            2.5 * schedule.total_busy_time
        )
        assert model.preserves_busy_time_ratios
        assert not get_cost_model("machines_plus_busy").preserves_busy_time_ratios

    def test_serialisation_round_trip_and_validation(self):
        model = CostModel(
            objective="machines_plus_busy",
            activation_cost=3.0,
            busy_rate=0.5,
            machine_weight=2.0,
        )
        assert CostModel.from_dict(model.to_dict()) == model
        with pytest.raises(ValueError, match="unknown cost-model fields"):
            CostModel.from_dict({"objective": "busy_time", "surprise": 1})
        with pytest.raises(ValueError, match="must be a number"):
            CostModel.from_dict({"busy_rate": "fast"})
        with pytest.raises(ValueError):
            CostModel(activation_cost=-1.0)
        with pytest.raises(ValueError):
            CostModel(machine_weight=0.0)

    def test_runtime_registered_objective_is_requestable(self):
        name = "test_runtime_objective"
        if name not in registered_objectives():
            register_objective(CostModel(objective=name, busy_rate=7.0))
        assert name in registered_objectives()
        # No algorithm declares it, so dispatch must refuse loudly...
        inst = uniform_random_instance(12, 2, seed=1)
        with pytest.raises(RequestValidationError, match="no registered algorithm"):
            Engine().solve(SolveRequest(instance=inst, objective=name))
        # ...unless the structural single-machine shortcut applies (one
        # machine is optimal under every model).
        clique = Instance.from_intervals([(0, 4), (1, 5)], g=2, name="tiny")
        report = Engine().solve(SolveRequest(instance=clique, objective=name))
        assert report.objective == name
        assert report.objective_value == pytest.approx(7.0 * report.cost)


# ---------------------------------------------------------------------------
# Demand-aware core
# ---------------------------------------------------------------------------


class TestDemandAwareCore:
    def test_job_demand_validation(self):
        with pytest.raises(ValueError, match="demand must be >= 1"):
            Job(id=0, interval=Interval(0, 1), demand=0)
        with pytest.raises(ValueError, match="must be an integer"):
            Job(id=0, interval=Interval(0, 1), demand=1.5)
        with pytest.raises(ValueError, match="can never be scheduled"):
            Instance(jobs=(Job(id=0, interval=Interval(0, 1), demand=3),), g=2)

    def test_demand_feasibility_is_sum_not_cardinality(self):
        # Two demand-2 jobs overlap: cardinality 2 <= g=3 but demand 4 > 3.
        jobs = (
            Job(id=0, interval=Interval(0, 4), demand=2),
            Job(id=1, interval=Interval(2, 6), demand=2),
        )
        inst = Instance(jobs=jobs, g=3)
        schedule = first_fit(inst)
        verify_schedule(schedule)
        assert schedule.num_machines == 2  # one machine would be overloaded
        from busytime.core.schedule import Machine, Schedule

        bad = Schedule(
            instance=inst,
            machines=(Machine(index=0, jobs=jobs),),
            algorithm="bad",
        )
        with pytest.raises(InfeasibleScheduleError, match="total demand"):
            bad.validate()

    def test_unit_demand_degenerates_to_cardinality(self):
        inst = uniform_random_instance(80, 3, seed=7)
        assert not inst.has_demands
        assert inst.peak_demand == inst.clique_number
        assert inst.total_demand_length == inst.total_length
        assert parallelism_bound(inst) == inst.total_length / inst.g

    def test_demand_bounds_and_exact_optimum(self):
        inst = _demand_instance(n=10, g=3, seed=11)
        lb = best_lower_bound(inst)
        assert lb >= inst.total_demand_length / inst.g - 1e-9
        opt = exact_optimal_cost(inst, max_jobs=12)
        assert opt >= lb - 1e-9
        schedule = first_fit(inst)
        verify_schedule(schedule)
        assert schedule.total_busy_time >= opt - 1e-9
        # The demand oracle agrees machine by machine.
        for m in schedule.machines:
            assert m.peak_demand == max_point_demand(m.jobs) <= inst.g

    def test_engine_demand_end_to_end(self):
        inst = _demand_instance(n=40, g=4, seed=13)
        report = Engine().solve(SolveRequest(instance=inst))
        report.schedule.validate()
        assert report.cost >= report.lower_bound - 1e-9
        # Only demand-aware algorithms may appear in the decisions.
        for decision in report.components:
            if decision.algorithm == "single_machine":
                continue
            assert get_scheduler(decision.algorithm).demand_aware


# ---------------------------------------------------------------------------
# Differential regression: unit demand + default model == seed, bit for bit
# ---------------------------------------------------------------------------


def _seed_fits(machine_jobs: List[Job], job: Job, g: int) -> bool:
    """The seed's clip-and-rescan feasibility check, preserved verbatim."""
    clipped: List[Interval] = []
    for other in machine_jobs:
        inter = other.interval.intersection(job.interval)
        if inter is not None:
            clipped.append(inter)
    if len(clipped) < g:
        return True
    return max_point_load(clipped) <= g - 1


def _seed_first_fit_partition(instance: Instance) -> List[List[Job]]:
    """The seed FirstFit loop over the preserved cardinality check."""
    machines: List[List[Job]] = []
    for job in first_fit_order(instance.jobs):
        target: Optional[int] = None
        for idx, mjobs in enumerate(machines):
            if _seed_fits(mjobs, job, instance.g):
                target = idx
                break
        if target is None:
            machines.append([job])
        else:
            machines[target].append(job)
    return machines


@pytest.mark.parametrize("label,instance", CORPUS, ids=[c[0] for c in CORPUS])
def test_firstfit_reproduces_seed_partition_bit_for_bit(label, instance):
    """The demand generalisation must not move a single job on the rigid
    corpus: same machines, same contents, same order, same exact cost."""
    seed_partition = _seed_first_fit_partition(instance)
    schedule = first_fit(instance)
    assert [[j.id for j in m.jobs] for m in schedule.machines] == [
        [j.id for j in m] for m in seed_partition
    ]
    from busytime.core.intervals import span

    # Same cost up to the float-summation grouping difference between the
    # maintained profile measure and a from-scratch span regrouping — the
    # exact tolerance verify_schedule's oracle cross-check enforces.
    seed_cost = sum(span(m) for m in seed_partition)
    assert abs(schedule.total_busy_time - seed_cost) <= 1e-9 * max(1.0, seed_cost)


@pytest.mark.parametrize("name", available_schedulers())
@pytest.mark.parametrize("label,instance", CORPUS, ids=[c[0] for c in CORPUS])
def test_registry_algorithms_are_stable_under_the_model_axis(name, label, instance):
    """Direct call, engine-forced solve and default-model pricing agree
    exactly (same assignments, same ``==`` cost) on unit-demand instances."""
    scheduler = get_scheduler(name)
    if not scheduler.handles(instance):
        pytest.skip(f"{name} does not declare {label}'s instance class")
    direct = scheduler(instance)
    again = scheduler(instance)
    assert direct.assignment() == again.assignment(), f"{name} is unstable"
    assert direct.total_busy_time == again.total_busy_time
    model = get_cost_model("busy_time")
    assert direct.cost_under(model) == direct.total_busy_time
    report = Engine().solve(
        SolveRequest(instance=instance, algorithm=name, validate_schedule=True)
    )
    assert report.schedule.assignment() == direct.assignment()
    assert report.cost == direct.total_busy_time
    assert report.objective == "busy_time"
    assert report.objective_value == report.cost


def test_fingerprints_stable_across_process_restart(tmp_path):
    """Canonical fingerprints are content hashes, not process artifacts."""
    instances = {
        "rigid": CORPUS[0][1],
        "demand": _demand_instance(n=15, g=3, seed=17),
    }
    script = tmp_path / "fp.py"
    script.write_text(
        "import json, sys\n"
        "from busytime import SolveRequest\n"
        "from busytime.io import instance_from_dict\n"
        "from busytime.service.canonical import request_fingerprint\n"
        "docs = json.load(open(sys.argv[1]))\n"
        "out = {k: request_fingerprint(SolveRequest(\n"
        "    instance=instance_from_dict(doc),\n"
        "    objective='machines_plus_busy' if k == 'demand' else 'busy_time',\n"
        ")) for k, doc in docs.items()}\n"
        "print(json.dumps(out))\n"
    )
    from busytime.io import instance_to_dict

    payload = tmp_path / "instances.json"
    payload.write_text(
        json.dumps({k: instance_to_dict(v) for k, v in instances.items()})
    )
    local = {
        k: request_fingerprint(
            SolveRequest(
                instance=inst,
                objective="machines_plus_busy" if k == "demand" else "busy_time",
            )
        )
        for k, inst in instances.items()
    }
    import os
    import pathlib

    repo_root = pathlib.Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    result = subprocess.run(
        [sys.executable, str(script), str(payload)],
        capture_output=True,
        text=True,
        check=True,
        env=env,
        cwd=str(repo_root),
    )
    assert json.loads(result.stdout) == local


def test_fingerprint_distinguishes_demands_and_cost_models():
    base = uniform_random_instance(10, 3, seed=21)
    demanding = Instance(
        jobs=tuple(
            Job(id=j.id, interval=j.interval, demand=2 if j.id == 0 else 1)
            for j in base.jobs
        ),
        g=3,
        name=base.name,
    )
    fp = request_fingerprint(SolveRequest(instance=base))
    assert fp != request_fingerprint(SolveRequest(instance=demanding))
    assert fp != request_fingerprint(
        SolveRequest(instance=base, objective="weighted_busy_time")
    )
    assert request_fingerprint(
        SolveRequest(instance=base, objective="weighted_busy_time")
    ) != request_fingerprint(
        SolveRequest(
            instance=base,
            objective="weighted_busy_time",
            cost_model=CostModel(objective="weighted_busy_time", busy_rate=2.0),
        )
    )
    # Spelling out the registered default changes nothing.
    assert fp == request_fingerprint(
        SolveRequest(instance=base, cost_model=get_cost_model("busy_time"))
    )


# ---------------------------------------------------------------------------
# Routing + registration validation
# ---------------------------------------------------------------------------


class TestRouting:
    def test_policies_route_demands_only_to_demand_aware(self):
        inst = _demand_instance(n=30, g=3, seed=23)
        assert inst.peak_demand > inst.g  # no single-machine shortcut
        for policy_name in ("best_ratio", "first_fit"):
            ranked = get_policy(policy_name).rank(inst)
            assert ranked, policy_name
            for name in ranked:
                assert get_scheduler(name).demand_aware, (policy_name, name)

    def test_policies_route_objectives_only_to_declarers(self):
        inst = uniform_random_instance(30, 2, seed=25)
        assert inst.clique_number > inst.g
        ranked = get_policy("best_ratio").rank(inst, "machines_plus_busy")
        assert ranked
        for name in ranked:
            assert get_scheduler(name).supports_objective("machines_plus_busy")
        # The activation-priced objective additionally ranks its natural
        # ratio-less declarer so the portfolio can let it win on machine
        # count; ratio-carrying candidates still come first.
        assert "machine_min" in ranked
        assert ranked.index("first_fit") < ranked.index("machine_min")
        default_ranked = get_policy("best_ratio").rank(inst)
        assert "machine_min" not in default_ranked

    def test_activation_heavy_pricing_can_pick_machine_min(self):
        """With a large activation cost the portfolio's model-priced
        comparison must be able to prefer the machine-count minimiser."""
        inst = uniform_random_instance(40, 3, seed=35)
        model = CostModel(objective="machines_plus_busy", activation_cost=1000.0)
        report = Engine().solve(
            SolveRequest(
                instance=inst, objective="machines_plus_busy", cost_model=model
            )
        )
        ff = Engine().solve(SolveRequest(instance=inst, algorithm="first_fit"))
        assert report.num_machines <= ff.num_machines
        assert report.objective_value <= model.schedule_cost(ff.schedule) + 1e-9

    def test_forced_algorithm_capability_errors(self):
        demanding = _demand_instance(n=10, g=3, seed=27)
        with pytest.raises(RequestValidationError, match="not demand-aware"):
            SolveRequest(instance=demanding, algorithm="machine_min").validate()
        rigid = uniform_random_instance(10, 3, seed=27)
        with pytest.raises(RequestValidationError, match="does not declare support"):
            SolveRequest(
                instance=rigid,
                objective="machines_plus_busy",
                algorithm="proper_greedy",
            ).validate()
        with pytest.raises(RequestValidationError, match="prices objective"):
            SolveRequest(
                instance=rigid,
                objective="busy_time",
                cost_model=CostModel(objective="weighted_busy_time"),
            ).validate()

    def test_forced_auto_keeps_the_problem_model(self):
        """Forcing the composite "auto" (as HTTP clients can) must not drop
        the request's objective/cost model: it routes through the
        dispatcher, so the forced and dispatched answers coincide."""
        from busytime.generators import bursty_instance

        inst = bursty_instance(60, 3, seed=0)
        model = CostModel(objective="machines_plus_busy", activation_cost=50.0)
        forced = Engine().solve(
            SolveRequest(
                instance=inst,
                algorithm="auto",
                objective="machines_plus_busy",
                cost_model=model,
            )
        )
        dispatched = Engine().solve(
            SolveRequest(
                instance=inst,
                objective="machines_plus_busy",
                cost_model=model,
            )
        )
        assert forced.objective_value == dispatched.objective_value
        assert forced.schedule.assignment() == dispatched.schedule.assignment()

    def test_objectives_constant_keeps_tuple_semantics(self):
        import busytime.engine.request as request_module

        assert "busy_time" in request_module.OBJECTIVES
        assert tuple(request_module.OBJECTIVES) == registered_objectives()

    def test_loader_rejects_fractional_demand(self):
        from busytime.io import instance_from_dict, instance_to_dict

        doc = instance_to_dict(_demand_instance(n=4, g=3, seed=1))
        for bad in (2.5, float("inf"), float("nan"), True):
            doc["jobs"][0]["demand"] = bad
            with pytest.raises(ValueError, match="integral"):
                instance_from_dict(doc)
        doc["jobs"][0]["demand"] = 2.0  # integral floats are fine
        assert instance_from_dict(doc).jobs[0].demand == 2

    def test_rank_honours_the_resolved_model_override(self):
        """A busy_time request priced with an activation override must get
        the same candidate set as the machines_plus_busy spelling."""
        inst = uniform_random_instance(30, 2, seed=25)
        override = CostModel(objective="busy_time", activation_cost=1.0)
        ranked = get_policy("best_ratio").rank(inst, "busy_time", model=override)
        assert "machine_min" in ranked
        r1 = Engine().solve(
            SolveRequest(instance=inst, objective="busy_time", cost_model=override)
        )
        r2 = Engine().solve(
            SolveRequest(
                instance=inst,
                objective="machines_plus_busy",
                cost_model=CostModel(
                    objective="machines_plus_busy", activation_cost=1.0
                ),
            )
        )
        assert r1.objective_value == r2.objective_value
        assert r1.schedule.assignment() == r2.schedule.assignment()

    def test_weighted_objective_end_to_end(self):
        inst = uniform_random_instance(40, 3, seed=29)
        model = CostModel(objective="weighted_busy_time", busy_rate=2.0)
        report = Engine().solve(
            SolveRequest(
                instance=inst,
                objective="weighted_busy_time",
                cost_model=model,
                compute_optimum=True,
                max_jobs_for_optimum=0,
            )
        )
        assert report.objective == "weighted_busy_time"
        assert report.objective_value == pytest.approx(2.0 * report.cost)
        assert report.lower_bound == pytest.approx(2.0 * best_lower_bound(inst))
        # Certificates survive a pure rescaling.
        assert report.proven_ratio is not None
        assert report.ratio_vs_lb == pytest.approx(
            report.cost / best_lower_bound(inst)
        )


class TestRegistrationValidation:
    """The FunctionScheduler metadata footgun, fixed and fenced."""

    def _dummy(self, instance):  # pragma: no cover - never runs
        raise AssertionError

    def test_default_instance_classes_is_the_declared_class_only(self):
        s = FunctionScheduler(self._dummy, name="_t_default", instance_class="proper")
        assert s.instance_classes == ("proper",)
        # ... and that explicitly does NOT include "general":
        general = uniform_random_instance(12, 2, seed=1)
        assert not general.is_proper()
        assert not s.handles(general)

    def test_unknown_instance_class_rejected_at_registration(self):
        s = FunctionScheduler(
            self._dummy, name="_t_typo", instance_classes=("generall",)
        )
        with pytest.raises(ValueError, match="unknown instance class"):
            register_scheduler(s)
        assert "_t_typo" not in available_schedulers()

    def test_unknown_primary_class_rejected(self):
        s = FunctionScheduler(
            self._dummy,
            name="_t_primary",
            instance_class="propper",
            instance_classes=("general",),
        )
        with pytest.raises(ValueError, match="instance_class"):
            register_scheduler(s)

    def test_empty_instance_classes_rejected(self):
        s = FunctionScheduler(self._dummy, name="_t_empty", instance_classes=())
        with pytest.raises(ValueError, match="declares no instance classes"):
            register_scheduler(s)

    def test_bounded_length_without_ratio_rejected(self):
        s = FunctionScheduler(
            self._dummy, name="_t_bounded", instance_classes=("bounded_length",)
        )
        with pytest.raises(ValueError, match="max_length_ratio"):
            register_scheduler(s)

    def test_empty_supported_objectives_rejected(self):
        s = FunctionScheduler(
            self._dummy, name="_t_noobj", supported_objectives=()
        )
        with pytest.raises(ValueError, match="supported_objectives"):
            register_scheduler(s)

    def test_whole_registry_passes_its_own_validation(self):
        from busytime.algorithms.base import _validate_capabilities

        for name in available_schedulers():
            _validate_capabilities(get_scheduler(name))
