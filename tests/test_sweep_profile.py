"""Cross-checks of the sweep-line machine state against the slow-path oracle.

The :class:`~busytime.core.events.SweepProfile` answers the hot-path
questions — "does job J fit under the parallelism bound g", "what is this
machine's busy time", "what is the load at instant t" — from incrementally
maintained state.  Every answer has a brute-force counterpart in
:mod:`busytime.core.intervals` (``max_point_load``, ``span``,
``point_load``); these tests assert the two always agree, on adversarially
shaped hypothesis inputs and on the randomized instance families of
:mod:`busytime.generators.random_instances`.
"""

from __future__ import annotations

from typing import List, Sequence

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from busytime.core.events import SweepProfile
from busytime.core.intervals import (
    Interval,
    Job,
    max_point_demand,
    max_point_load,
    point_demand,
    point_load,
    span,
)
from busytime.core.schedule import (
    ProfileOracleMismatchError,
    ScheduleBuilder,
    verify_schedule,
)
from busytime.generators.random_instances import (
    bursty_instance,
    poisson_arrivals_instance,
    uniform_random_instance,
)


def oracle_fits(machine_jobs: Sequence[Job], job: Job, g: int) -> bool:
    """The seed's clip-and-rescan feasibility check, kept as the oracle."""
    clipped: List[Interval] = []
    for other in machine_jobs:
        inter = other.interval.intersection(job.interval)
        if inter is not None:
            clipped.append(inter)
    if len(clipped) < g:
        return True
    return max_point_load(clipped) <= g - 1


# Endpoints drawn from a small grid so touching/coincident endpoints (the
# closed-interval corner cases) appear constantly; zero-length intervals
# are legal and exercised.
coords = st.integers(min_value=0, max_value=12).map(float)
interval_sets = st.lists(
    st.tuples(coords, coords).map(lambda p: Interval(min(p), max(p))),
    min_size=0,
    max_size=25,
)


@settings(max_examples=200, deadline=None)
@given(interval_sets)
def test_profile_matches_oracle_on_interval_sets(ivs):
    prof = SweepProfile()
    for iv in ivs:
        prof.add(iv.start, iv.end)
    batch = SweepProfile.from_intervals(ivs)

    assert prof.count == batch.count == len(ivs)
    assert prof.max_load() == batch.max_load() == max_point_load(ivs)
    assert prof.measure == pytest.approx(span(ivs))
    assert batch.measure == pytest.approx(span(ivs))
    # Point loads agree with the oracle at endpoints, midpoints and outside.
    probes = {iv.start for iv in ivs} | {iv.end for iv in ivs}
    probes |= {(iv.start + iv.end) / 2 for iv in ivs} | {-1.0, 13.0}
    for t in probes:
        assert prof.load_at(t) == point_load(ivs, t), f"load_at({t})"
        assert batch.load_at(t) == point_load(ivs, t)


@settings(max_examples=200, deadline=None)
@given(interval_sets, st.tuples(coords, coords).map(lambda p: (min(p), max(p))))
def test_max_load_in_matches_oracle_window(ivs, window):
    lo, hi = window
    prof = SweepProfile.from_intervals(ivs)
    # Oracle: clip every interval to the closed window and take the peak.
    clipped = [
        inter
        for iv in ivs
        if (inter := iv.intersection(Interval(lo, hi))) is not None
    ]
    assert prof.max_load_in(lo, hi) == max_point_load(clipped)
    for g in (1, 2, 3, 5):
        assert prof.fits(lo, hi, g) == (max_point_load(clipped) <= g - 1)
    # Covered measure in the window == span of the clipped intervals, the
    # quantity behind BestFit's marginal-growth query.
    assert prof.covered_measure_in(lo, hi) == pytest.approx(span(clipped))


@settings(max_examples=150, deadline=None)
@given(interval_sets, st.randoms(use_true_random=False))
def test_add_remove_round_trip(ivs, rnd):
    """Removing a subset leaves exactly the profile of the remainder."""
    prof = SweepProfile()
    for iv in ivs:
        prof.add(iv.start, iv.end)
    keep, drop = [], []
    for iv in ivs:
        (keep if rnd.random() < 0.5 else drop).append(iv)
    for iv in drop:
        prof.remove(iv.start, iv.end)
    assert prof.count == len(keep)
    assert prof.max_load() == max_point_load(keep)
    assert prof.measure == pytest.approx(span(keep), abs=1e-9)
    for t in {iv.start for iv in ivs} | {iv.end for iv in ivs}:
        assert prof.load_at(t) == point_load(keep, t)


def test_remove_unknown_interval_raises():
    prof = SweepProfile()
    prof.add(0.0, 2.0)
    with pytest.raises(KeyError):
        prof.remove(0.5, 1.5)


# -- demand-weighted profile ([15] capacity model) ----------------------------
#
# Every query gains a demand-weighted twin; the brute-force oracle is
# point_demand / max_point_demand over Jobs carrying their demands.  Unit
# demands must leave the weighted path un-materialised (the rigid fast path).

demand_jobs = st.lists(
    st.tuples(
        st.tuples(coords, coords).map(lambda p: Interval(min(p), max(p))),
        st.integers(min_value=1, max_value=4),
    ),
    min_size=0,
    max_size=25,
).map(
    lambda rows: [
        Job(id=i, interval=iv, demand=d) for i, (iv, d) in enumerate(rows)
    ]
)


@settings(max_examples=200, deadline=None)
@given(demand_jobs)
def test_demand_profile_matches_oracle_at_all_breakpoints(jobs):
    prof = SweepProfile()
    for j in jobs:
        prof.add(j.start, j.end, demand=j.demand)
    batch = SweepProfile.from_intervals(jobs)
    assert prof.max_demand() == batch.max_demand() == max_point_demand(jobs)
    assert prof.max_load() == batch.max_load() == max_point_load(jobs)
    assert prof.measure == pytest.approx(span(jobs))
    probes = {j.start for j in jobs} | {j.end for j in jobs}
    probes |= {(j.start + j.end) / 2 for j in jobs} | {-1.0, 13.0}
    for t in probes:
        assert prof.demand_at(t) == point_demand(jobs, t), f"demand_at({t})"
        assert batch.demand_at(t) == point_demand(jobs, t)
        assert prof.load_at(t) == point_load(jobs, t)
    # The weighted arrays materialise exactly when a non-unit demand exists.
    assert prof.has_demands == any(j.demand != 1 for j in jobs)


@settings(max_examples=200, deadline=None)
@given(demand_jobs, st.tuples(coords, coords).map(lambda p: (min(p), max(p))))
def test_demand_window_queries_match_clipped_oracle(jobs, window):
    lo, hi = window
    prof = SweepProfile.from_intervals(jobs)
    clipped = [
        Job(id=j.id, interval=inter, demand=j.demand)
        for j in jobs
        if (inter := j.interval.intersection(Interval(lo, hi))) is not None
    ]
    assert prof.max_demand_in(lo, hi) == max_point_demand(clipped)
    for g in (1, 2, 3, 5, 8):
        for d in (1, 2, 3):
            assert prof.fits(lo, hi, g, demand=d) == (
                max_point_demand(clipped) + d <= g
            )


@settings(max_examples=150, deadline=None)
@given(demand_jobs, st.randoms(use_true_random=False))
def test_demand_add_remove_equals_rebuild_of_survivors(jobs, rnd):
    """Fuzzed add/remove with demands: the profile equals the brute-force
    demand load of the survivors at every breakpoint."""
    prof = SweepProfile()
    for j in jobs:
        prof.add(j.start, j.end, demand=j.demand)
    keep, drop = [], []
    for j in jobs:
        (keep if rnd.random() < 0.5 else drop).append(j)
    for j in drop:
        prof.remove(j.start, j.end, demand=j.demand)
    assert prof.count == len(keep)
    assert prof.max_demand() == max_point_demand(keep)
    assert prof.max_load() == max_point_load(keep)
    assert prof.measure == pytest.approx(span(keep), abs=1e-9)
    for t in {j.start for j in jobs} | {j.end for j in jobs} | {-1.0, 6.5, 13.0}:
        assert prof.demand_at(t) == point_demand(keep, t), f"demand_at({t})"
        assert prof.load_at(t) == point_load(keep, t)


@settings(max_examples=100, deadline=None)
@given(demand_jobs, st.randoms(use_true_random=False))
def test_builder_assign_unassign_exact_inverse_with_demands(jobs, rnd):
    """assign . unassign == identity on demand-carrying machine state."""
    from busytime.core.instance import Instance

    g = 8  # above the max fuzzed demand, so every job is schedulable
    inst = Instance(jobs=tuple(jobs), g=g, name="demand-fuzz")
    builder = ScheduleBuilder(inst, algorithm="demand-fuzz")
    for job in jobs:
        builder.assign_first_fit(job)
    snapshot = [
        (tuple(builder.jobs_on(i)), builder.profile_of(i).copy())
        for i in range(builder.num_machines)
    ]
    removed = [(builder.machine_of(j.id), j) for j in jobs if rnd.random() < 0.5]
    for _, job in removed:
        builder.unassign(job)
    for idx, job in reversed(removed):
        builder.assign(idx, job)
    for i, (jobs_before, profile_before) in enumerate(snapshot):
        after = builder.profile_of(i)
        assert after.count == profile_before.count
        assert after.max_demand() == profile_before.max_demand()
        assert after.max_load() == profile_before.max_load()
        assert after.measure == pytest.approx(profile_before.measure, abs=1e-9)
        for t in {j.start for j in jobs_before} | {j.end for j in jobs_before}:
            assert after.demand_at(t) == profile_before.demand_at(t)
    # The mutated state still passes the (demand-aware) slow-path oracle.
    verify_schedule(builder.freeze())


# -- fuzzed mutation sequences (the dynamic-workload invariants) --------------
#
# The dynamic simulator drives SweepProfile through arbitrary interleavings
# of add (arrivals, migrations in) and remove (departures, migrations out).
# After *any* op sequence the profile must be semantically identical to one
# rebuilt from scratch over the surviving interval multiset.

# Each op is (interval, removal-schedule): `when` in [0, 1) interleaves the
# interval's removal among the later insertions; None keeps it forever.
op_sequences = st.lists(
    st.tuples(
        st.tuples(coords, coords).map(lambda p: Interval(min(p), max(p))),
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=0.999)),
    ),
    min_size=0,
    max_size=30,
)


def _assert_profiles_agree(prof: SweepProfile, survivors: List[Interval]) -> None:
    """``prof`` must answer every query like a rebuild over ``survivors``."""
    rebuilt = SweepProfile.from_intervals(survivors)
    assert prof.count == rebuilt.count == len(survivors)
    assert prof.max_load() == rebuilt.max_load() == max_point_load(survivors)
    assert prof.measure == pytest.approx(span(survivors), abs=1e-9)
    probes = {iv.start for iv in survivors} | {iv.end for iv in survivors}
    probes |= {(iv.start + iv.end) / 2 for iv in survivors} | {-1.0, 6.5, 13.0}
    for t in probes:
        assert prof.load_at(t) == point_load(survivors, t), f"load_at({t})"
    for lo, hi in ((0.0, 12.0), (2.0, 7.0), (6.0, 6.0)):
        assert prof.max_load_in(lo, hi) == rebuilt.max_load_in(lo, hi)
        assert prof.covered_measure_in(lo, hi) == pytest.approx(
            rebuilt.covered_measure_in(lo, hi), abs=1e-9
        )


@settings(max_examples=200, deadline=None)
@given(op_sequences)
def test_interleaved_add_remove_equals_rebuild_of_survivors(ops):
    """Fuzzed add/remove interleavings leave exactly the survivors' profile.

    Removals are interleaved *between* later insertions (not batched at the
    end), the access pattern of trace replay: arrive, arrive, depart,
    arrive, ...
    """
    prof = SweepProfile()
    pending: List[tuple] = []  # (position, interval) scheduled removals
    survivors: List[Interval] = []
    for step, (iv, when) in enumerate(ops):
        for pos, doomed in [p for p in pending if p[0] <= step]:
            prof.remove(doomed.start, doomed.end)
            pending.remove((pos, doomed))
        prof.add(iv.start, iv.end)
        if when is None:
            survivors.append(iv)
        else:
            # Schedule the removal before one of the remaining insertions.
            remaining = len(ops) - step - 1
            pending.append((step + 1 + int(when * (remaining + 1)), iv))
    for _, doomed in pending:
        prof.remove(doomed.start, doomed.end)
    _assert_profiles_agree(prof, survivors)


@settings(max_examples=100, deadline=None)
@given(interval_sets, st.randoms(use_true_random=False))
def test_builder_unassign_is_exact_inverse_of_assign(ivs, rnd):
    """assign . unassign == identity on the builder's whole machine state."""
    from busytime.core.instance import Instance

    jobs = [Job(id=i, interval=iv) for i, iv in enumerate(ivs)]
    inst = Instance(jobs=tuple(jobs), g=2, name="fuzz")
    builder = ScheduleBuilder(inst, algorithm="fuzz")
    for job in jobs:
        builder.assign_first_fit(job)
    snapshot = [
        (tuple(builder.jobs_on(i)), builder.profile_of(i).copy())
        for i in range(builder.num_machines)
    ]
    # Unassign a random subset, then re-assign each job to its old machine
    # (reverse order, so interleaved states are exercised too).
    removed = [(builder.machine_of(j.id), j) for j in jobs if rnd.random() < 0.5]
    for _, job in removed:
        builder.unassign(job)
    for idx, job in reversed(removed):
        builder.assign(idx, job)
    for i, (jobs_before, profile_before) in enumerate(snapshot):
        assert set(j.id for j in builder.jobs_on(i)) == set(
            j.id for j in jobs_before
        )
        after = builder.profile_of(i)
        assert after.count == profile_before.count
        assert after.measure == pytest.approx(profile_before.measure, abs=1e-9)
        assert after.max_load() == profile_before.max_load()
        for t in {j.start for j in jobs_before} | {j.end for j in jobs_before}:
            assert after.load_at(t) == profile_before.load_at(t)
    # The whole mutated state still passes the independent slow-path oracle.
    verify_schedule(builder.freeze())


@settings(max_examples=100, deadline=None)
@given(interval_sets, st.randoms(use_true_random=False))
def test_builder_survivors_match_rebuild_after_unassign(ivs, rnd):
    """After departures, every machine equals a from-scratch rebuild of its
    surviving jobs — the invariant ``freeze_partial`` validation rests on."""
    from busytime.core.instance import Instance

    jobs = [Job(id=i, interval=iv) for i, iv in enumerate(ivs)]
    inst = Instance(jobs=tuple(jobs), g=3, name="fuzz")
    builder = ScheduleBuilder(inst, algorithm="fuzz")
    for job in jobs:
        builder.assign_first_fit(job)
    for job in jobs:
        if rnd.random() < 0.5:
            builder.unassign(job)
    for i in range(builder.num_machines):
        _assert_profiles_agree(
            builder.profile_of(i), [j.interval for j in builder.jobs_on(i)]
        )
    verify_schedule(builder.freeze_partial())


@pytest.mark.parametrize(
    "maker,kwargs",
    [
        (uniform_random_instance, dict(horizon=60.0)),
        (poisson_arrivals_instance, dict()),
        (bursty_instance, dict()),
    ],
    ids=["uniform", "poisson", "bursty"],
)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_builder_fits_matches_oracle_on_random_instances(maker, kwargs, seed):
    """Replay FirstFit and check *every* fits decision against the oracle."""
    inst = maker(n=120, g=3, seed=seed, **kwargs)
    builder = ScheduleBuilder(inst, algorithm="oracle-replay")
    order = sorted(inst.jobs, key=lambda j: (-j.length, j.start, j.id))
    for job in order:
        for idx in range(builder.num_machines):
            assert builder.fits(idx, job) == oracle_fits(
                builder.jobs_on(idx), job, inst.g
            ), f"fits({idx}, J{job.id}) diverges from oracle"
        builder.assign_first_fit(job)
    # Maintained busy time vs the from-scratch span, machine by machine.
    for idx in range(builder.num_machines):
        assert builder.machine_busy_time(idx) == pytest.approx(
            span(builder.jobs_on(idx))
        )
    assert builder.total_busy_time == pytest.approx(
        sum(span(builder.jobs_on(i)) for i in range(builder.num_machines))
    )
    # The frozen schedule passes the independent slow-path oracle, which
    # itself re-verifies profile peak and busy time per machine.
    schedule = builder.freeze()
    verify_schedule(schedule)


def test_profile_oracle_mismatch_raises_runtime_error():
    """A corrupted fast path must surface as an internal error, not as
    'schedule infeasible' (which ``is_feasible`` would silently swallow)."""
    from busytime.algorithms.first_fit import first_fit

    inst = uniform_random_instance(n=10, g=3, horizon=20.0, seed=3)
    schedule = first_fit(inst)
    machine = schedule.machines[0]
    corrupted = SweepProfile.from_intervals(machine.jobs)
    corrupted._point = [p + 1 for p in corrupted._point]
    object.__setattr__(machine, "_profile", corrupted)
    with pytest.raises(ProfileOracleMismatchError):
        verify_schedule(schedule)
    # ...and it must NOT be absorbed by the feasibility predicate.
    with pytest.raises(ProfileOracleMismatchError):
        schedule.is_feasible()


def test_machine_profile_queries_match_schedule_oracle():
    inst = uniform_random_instance(n=80, g=4, horizon=40.0, seed=11)
    from busytime.algorithms.first_fit import first_fit

    schedule = first_fit(inst)
    for m in schedule.machines:
        assert m.peak_parallelism == max_point_load(m.jobs)
        assert m.busy_time == pytest.approx(span(m.jobs))
        for t in (0.0, 10.0, 25.0, 39.5):
            assert m.active_job_count(t) == point_load(m.jobs, t)
    ts = sorted({j.start for j in inst.jobs})[:20]
    for t in ts:
        oracle_mt = sum(
            1 for m in schedule.machines if point_load(m.jobs, t) > 0
        )
        assert schedule.machines_active_at(t) == oracle_mt
    assert schedule.peak_parallelism == max(
        max_point_load(m.jobs) for m in schedule.machines
    )
