"""Tests for the online schedulers (busytime.extensions.online)."""

import pytest

from busytime.algorithms import first_fit, proper_greedy
from busytime.core.bounds import best_lower_bound
from busytime.core.instance import Instance
from busytime.core.intervals import Interval, Job
from busytime.extensions import (
    ONLINE_ALGORITHMS,
    online_best_fit,
    online_first_fit,
    online_next_fit,
    replay_online,
)
from busytime.generators import proper_instance, uniform_random_instance


class TestReplayHarness:
    def test_decisions_recorded(self):
        inst = uniform_random_instance(15, g=2, seed=0)
        result = replay_online(
            inst, lambda b, j: b.first_fitting_machine(j), "probe"
        )
        result.schedule.validate()
        assert set(result.decisions) == set(inst.job_ids)

    def test_invalid_policy_choice_rejected(self):
        inst = Instance.from_intervals([(0, 5), (1, 6)], g=1)

        def bad_policy(builder, job):
            return 0 if builder.num_machines else None

        with pytest.raises(ValueError):
            replay_online(inst, bad_policy, "bad")

    def test_arrival_order_is_by_start_time(self):
        inst = Instance.from_intervals([(5, 6), (0, 10), (2, 3)], g=1)
        seen = []

        def spy(builder, job):
            seen.append(job.id)
            return builder.first_fitting_machine(job)

        replay_online(inst, spy, "spy")
        starts = [inst.job_by_id(i).start for i in seen]
        assert starts == sorted(starts)

    def test_simultaneous_arrivals_break_ties_by_job_id(self):
        # Three jobs start together; arrival order must follow job ids, not
        # interval shape (ordering by end time would peek at the future).
        inst = Instance.from_intervals(
            [Job(id=5, interval=Interval(0, 9)),
             Job(id=1, interval=Interval(0, 2)),
             Job(id=3, interval=Interval(0, 30))],
            g=2,
        )
        seen = []

        def spy(builder, job):
            seen.append(job.id)
            return builder.first_fitting_machine(job)

        replay_online(inst, spy, "spy")
        assert seen == [1, 3, 5]

    def test_decision_trace_is_deterministic_across_replays(self):
        # Heavy endpoint collisions: snapping starts to an integer grid
        # forces simultaneous arrivals, the case the (start, id) tie-break
        # exists for.  The recorded decision trace — not just the cost —
        # must be identical run over run.
        base = uniform_random_instance(60, g=3, horizon=12.0, seed=8)
        inst = Instance.from_intervals(
            [
                Job(id=j.id, interval=Interval(float(int(j.start)),
                                               float(int(j.start)) + j.length))
                for j in base.jobs
            ],
            g=3,
        )

        def run():
            return replay_online(
                inst, lambda b, j: b.first_fitting_machine(j), "probe"
            ).decisions

        first = run()
        for _ in range(3):
            assert run() == first

    @pytest.mark.parametrize("name", sorted(ONLINE_ALGORITHMS))
    def test_assignments_are_deterministic_across_replays(self, name):
        inst = uniform_random_instance(50, g=3, horizon=10.0, seed=4)
        alg = ONLINE_ALGORITHMS[name]
        first = alg(inst).assignment()
        for _ in range(3):
            assert alg(inst).assignment() == first


class TestOnlineAlgorithms:
    @pytest.mark.parametrize("name", sorted(ONLINE_ALGORITHMS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_feasible_and_above_lb(self, name, seed):
        inst = uniform_random_instance(50, g=3, seed=seed)
        sched = ONLINE_ALGORITHMS[name](inst)
        sched.validate()
        assert sched.total_busy_time >= best_lower_bound(inst) - 1e-9

    def test_empty_instance(self):
        inst = Instance(jobs=(), g=2)
        for alg in ONLINE_ALGORITHMS.values():
            assert alg(inst).num_machines == 0

    def test_online_next_fit_matches_greedy_on_proper(self):
        inst = proper_instance(60, g=3, seed=4)
        online = online_next_fit(inst)
        offline = proper_greedy(inst)
        assert online.total_busy_time == pytest.approx(offline.total_busy_time)

    def test_online_first_fit_still_within_offline_guarantee_small(self):
        # Offline FirstFit sorts by length; the online variant cannot, and the
        # two genuinely differ (neither dominates the other instance-wise).
        # What we can check exactly on small instances is that the online
        # schedule stays within the offline algorithm's proven factor of OPT.
        from busytime.exact import exact_optimal_cost

        inst = Instance.from_intervals(
            [(0, 1), (0.5, 10), (0.6, 10.1), (0.7, 10.2), (5, 6), (9, 9.5)], g=2
        )
        online_cost = online_first_fit(inst).total_busy_time
        offline_cost = first_fit(inst).total_busy_time
        opt = exact_optimal_cost(inst)
        assert opt <= min(online_cost, offline_cost) + 1e-9
        assert online_cost <= 4.0 * opt + 1e-9

    def test_online_best_fit_not_worse_than_singleton(self):
        inst = uniform_random_instance(40, g=2, seed=7)
        assert online_best_fit(inst).total_busy_time <= inst.total_length + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_online_within_four_of_lb_on_dense_workloads(self, seed):
        # Not a theorem, but the empirical shape the benchmark reports: on
        # dense random workloads arrival-order FirstFit stays within the
        # offline guarantee's factor of the lower bound.
        inst = uniform_random_instance(150, g=5, seed=seed)
        sched = online_first_fit(inst)
        assert sched.total_busy_time <= 4.0 * best_lower_bound(inst) + 1e-9
