"""Tests for the solve-as-a-service layer (busytime.service).

Covers the four layers of the subsystem: canonicalization + fingerprints
(including the slow-path oracle test over fuzzed instances), the
content-addressed result store, the SolveService facade (cache hits,
in-flight dedupe, micro-batching, admission control, failure isolation) and
the HTTP frontend + CLI client.

The fuzzed instances use dyadic-rational coordinates (multiples of 1/16) so
that translating them by dyadic deltas is *exact* in binary floating point:
fingerprint equality is then a property of the canonicalization, not of
lucky rounding.
"""

import json
import random
import threading
import urllib.request

import pytest

from busytime import Engine, Instance, SolveRequest
from busytime import io as bio
from busytime.cli import main
from busytime.core.intervals import Interval, Job
from busytime.generators import uniform_random_instance
from busytime.service import (
    AdmissionError,
    AdmissionLimits,
    JobFailedError,
    ResultStore,
    ServiceClosedError,
    ServiceDrainingError,
    ServiceOverloadedError,
    SolveService,
    canonical_request,
    canonicalize,
    decanonicalize_report,
    make_server,
    request_fingerprint,
    submit_instance,
)

# ---------------------------------------------------------------------------
# Fuzz helpers: dyadic instances and their symmetry variants
# ---------------------------------------------------------------------------


def dyadic_instance(rng: random.Random, n: int, g: int, name: str = "fuzz") -> Instance:
    """A random instance whose coordinates are multiples of 1/16."""
    jobs = []
    for i in range(n):
        start = rng.randrange(0, 512) / 16.0
        length = rng.randrange(1, 128) / 16.0
        jobs.append(Job(id=i, interval=Interval(start, start + length)))
    return Instance(jobs=tuple(jobs), g=g, name=name)


def relabeled_variant(instance: Instance, rng: random.Random) -> Instance:
    """Same job set, shuffled order and fresh (non-consecutive) ids."""
    jobs = list(instance.jobs)
    rng.shuffle(jobs)
    new_ids = rng.sample(range(10_000, 10_000 + 10 * len(jobs)), len(jobs))
    return Instance(
        jobs=tuple(
            Job(id=new_id, interval=j.interval, weight=j.weight, tag=j.tag)
            for new_id, j in zip(new_ids, jobs)
        ),
        g=instance.g,
        name="relabeled",
    )


def shifted_variant(instance: Instance, delta: float) -> Instance:
    """Every interval translated by ``delta`` (callers pass dyadic deltas)."""
    return Instance(
        jobs=tuple(
            Job(
                id=j.id,
                interval=Interval(j.start + delta, j.end + delta),
                weight=j.weight,
                tag=j.tag,
            )
            for j in instance.jobs
        ),
        g=instance.g,
        name="shifted",
    )


# ---------------------------------------------------------------------------
# Canonicalization + fingerprints
# ---------------------------------------------------------------------------


class TestCanonicalization:
    def test_canonical_instance_starts_at_zero_with_consecutive_ids(self):
        inst = dyadic_instance(random.Random(0), 10, g=2)
        form = canonicalize(shifted_variant(inst, 100.0))
        assert min(j.start for j in form.instance.jobs) == 0.0
        assert [j.id for j in form.instance.jobs] == list(range(10))
        assert form.offset == 100.0 + min(j.start for j in inst.jobs)
        assert form.name == "shifted"

    def test_id_map_round_trips_every_job(self):
        rng = random.Random(1)
        inst = relabeled_variant(dyadic_instance(rng, 12, g=3), rng)
        form = canonicalize(inst)
        by_id = {j.id: j for j in inst.jobs}
        for canonical_job in form.instance.jobs:
            original = by_id[form.id_map[canonical_job.id]]
            assert original.start - form.offset == canonical_job.start
            assert original.end - form.offset == canonical_job.end

    def test_empty_instance_canonicalizes(self):
        a = Instance(jobs=(), g=2, name="empty-a")
        b = Instance(jobs=(), g=2, name="empty-b")
        assert request_fingerprint(SolveRequest(instance=a)) == request_fingerprint(
            SolveRequest(instance=b)
        )

    def test_fingerprint_sensitive_to_what_matters(self):
        inst = dyadic_instance(random.Random(2), 8, g=2)
        base = request_fingerprint(SolveRequest(instance=inst))
        assert base != request_fingerprint(SolveRequest(instance=inst.with_g(3)))
        assert base != request_fingerprint(
            SolveRequest(instance=inst, algorithm="first_fit")
        )
        assert base != request_fingerprint(SolveRequest(instance=inst, portfolio=False))
        moved = shifted_variant(inst, 0.0625)  # a *non-uniform* change would
        jobs = list(moved.jobs)  # also differ; here we nudge one job only
        jobs[0] = Job(id=jobs[0].id, interval=Interval(jobs[0].start, jobs[0].end + 0.5))
        assert base != request_fingerprint(
            SolveRequest(instance=Instance(jobs=tuple(jobs), g=2))
        )

    def test_service_fingerprint_resolves_the_engine_default_policy(self):
        # policy=None means "this engine's default": two services with
        # different defaults sharing one store must not alias each other's
        # cached answers, so the effective policy lands in the fingerprint.
        inst = dyadic_instance(random.Random(4), 8, g=2)
        fingerprints = {}
        for policy in ("best_ratio", "first_fit"):
            with SolveService(
                engine=Engine(default_policy=policy), start_worker=False
            ) as service:
                job = service.submit(SolveRequest(instance=inst))
                fingerprints[policy] = service.poll(job)["fingerprint"]
        assert fingerprints["best_ratio"] != fingerprints["first_fit"]
        # ...while an explicit policy equal to the default is the same line.
        with SolveService(start_worker=False) as service:
            implicit = service.poll(
                service.submit(SolveRequest(instance=inst))
            )["fingerprint"]
            explicit = service.poll(
                service.submit(SolveRequest(instance=inst, policy="best_ratio"))
            )["fingerprint"]
        assert implicit == explicit == fingerprints["best_ratio"]

    def test_fingerprint_ignores_labels(self):
        inst = dyadic_instance(random.Random(3), 8, g=2, name="labelled")
        a = request_fingerprint(SolveRequest(instance=inst, tags={"who": "a"}))
        b = request_fingerprint(SolveRequest(instance=inst, tags={"who": "b"}))
        assert a == b


class TestCanonicalOracle:
    """The acceptance-criteria oracle: over fuzzed instances, symmetry
    variants fingerprint identically and their served schedules cost the
    same as a direct engine solve."""

    @pytest.mark.parametrize("seed", range(8))
    def test_variants_fingerprint_identically(self, seed):
        rng = random.Random(seed)
        inst = dyadic_instance(rng, rng.randrange(5, 18), g=rng.randrange(1, 5))
        request = SolveRequest(instance=inst)
        base = request_fingerprint(request)
        for delta in (-64.0, -3.25, 0.5, 17.0, 1024.0):
            variant = shifted_variant(inst, delta)
            assert request_fingerprint(SolveRequest(instance=variant)) == base
        for _ in range(3):
            variant = relabeled_variant(inst, rng)
            assert request_fingerprint(SolveRequest(instance=variant)) == base
        combined = relabeled_variant(shifted_variant(inst, 12.5), rng)
        assert request_fingerprint(SolveRequest(instance=combined)) == base

    @pytest.mark.parametrize("seed", range(8))
    def test_decanonicalized_solve_matches_direct_solve(self, seed):
        rng = random.Random(100 + seed)
        inst = dyadic_instance(rng, rng.randrange(5, 16), g=rng.randrange(1, 4))
        variant = relabeled_variant(shifted_variant(inst, 8.0), rng)
        request = SolveRequest(instance=variant)

        direct = Engine().solve(request)
        canonical, form = canonical_request(request)
        canonical_report = Engine().solve(canonical)
        served = decanonicalize_report(canonical_report, form, variant)

        served.schedule.validate()  # the slow-path oracle on the original axis
        assert served.cost == pytest.approx(direct.cost)
        assert served.num_machines == direct.num_machines
        assert served.lower_bound == pytest.approx(direct.lower_bound)
        assert served.proven_ratio == direct.proven_ratio
        assert set(served.schedule.assignment()) == {j.id for j in variant.jobs}

    def test_served_report_equals_direct_report(self):
        inst = dyadic_instance(random.Random(42), 14, g=2, name="served")
        request = SolveRequest(instance=inst, tags={"case": "oracle"})
        direct = Engine().solve(request)
        with SolveService() as service:
            served = service.solve(request, timeout=30)
        assert served.cost == pytest.approx(direct.cost)
        assert served.num_machines == direct.num_machines
        assert served.lower_bound == pytest.approx(direct.lower_bound)
        assert served.algorithm == direct.algorithm
        assert dict(served.tags) == {"case": "oracle"}
        assert served.schedule.instance is inst  # caller's instance, not a copy


# ---------------------------------------------------------------------------
# Result store
# ---------------------------------------------------------------------------


def _canonical_report_for(instance: Instance):
    request = SolveRequest(instance=instance)
    canonical, _ = canonical_request(request)
    return request_fingerprint(request), Engine().solve(canonical)


class TestResultStore:
    def test_memory_hit_and_miss_counters(self):
        store = ResultStore(capacity=4)
        fp, report = _canonical_report_for(dyadic_instance(random.Random(0), 6, g=2))
        assert store.get(fp) is None
        store.put(fp, report)
        assert store.get(fp) is report  # immutable, shared by reference
        stats = store.stats()
        assert (stats["hits"], stats["misses"], stats["puts"]) == (1, 1, 1)
        assert stats["hit_rate"] == 0.5

    def test_lru_evicts_least_recently_used(self):
        store = ResultStore(capacity=2)
        entries = [
            _canonical_report_for(dyadic_instance(random.Random(s), 5, g=2))
            for s in range(3)
        ]
        store.put(*entries[0])
        store.put(*entries[1])
        assert store.get(entries[0][0]) is not None  # 0 is now most recent
        store.put(*entries[2])  # evicts 1, the LRU
        assert store.get(entries[1][0]) is None
        assert store.get(entries[0][0]) is not None
        assert store.stats()["evictions"] == 1

    def test_disk_tier_survives_memory_eviction(self, tmp_path):
        store = ResultStore(capacity=1, directory=tmp_path / "cache")
        entries = [
            _canonical_report_for(dyadic_instance(random.Random(s), 5, g=2))
            for s in range(2)
        ]
        store.put(*entries[0])
        store.put(*entries[1])  # evicts 0 from memory; disk copy remains
        report = store.get(entries[0][0])
        assert report is not None
        assert report.cost == pytest.approx(entries[0][1].cost)
        assert store.stats()["disk_hits"] == 1

    def test_disk_round_trip_is_deterministic(self, tmp_path):
        store = ResultStore(capacity=8, directory=tmp_path / "cache")
        fp, report = _canonical_report_for(dyadic_instance(random.Random(7), 8, g=2))
        store.put(fp, report)
        # Entries land in the shard-prefix subdirectory (fp[:2]).
        path = tmp_path / "cache" / fp[:2] / f"{fp}.json"
        first_bytes = path.read_text()
        store.put(fp, report)
        assert path.read_text() == first_bytes  # timings excluded on disk

    def test_corrupt_disk_entry_is_a_miss_not_an_error(self, tmp_path):
        store = ResultStore(capacity=2, directory=tmp_path / "cache")
        fp, _ = _canonical_report_for(dyadic_instance(random.Random(9), 5, g=2))
        (tmp_path / "cache" / f"{fp}.json").write_text("{not json")
        assert store.get(fp) is None

    def test_future_version_disk_entry_is_a_miss(self, tmp_path):
        store = ResultStore(capacity=2, directory=tmp_path / "cache")
        fp, report = _canonical_report_for(dyadic_instance(random.Random(10), 5, g=2))
        store.put(fp, report)
        store.clear_memory()
        path = tmp_path / "cache" / fp[:2] / f"{fp}.json"
        doc = json.loads(path.read_text())
        doc["version"] = 99
        path.write_text(json.dumps(doc))
        assert store.get(fp) is None  # io version check keeps it unread

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ResultStore(capacity=0)

    def test_disk_tier_cap_evicts_oldest_entries(self, tmp_path):
        import os
        import time as _time

        entries = [
            _canonical_report_for(dyadic_instance(random.Random(s), 5, g=2))
            for s in range(5)
        ]
        # Seed the directory uncapped, with distinct, ordered mtimes (the
        # eviction key) so the test does not depend on filesystem timestamp
        # resolution or put ordering.
        seeder = ResultStore(capacity=2, directory=tmp_path / "cache")
        for index, (fp, report) in enumerate(entries[:4]):
            seeder.put(fp, report)
            path = tmp_path / "cache" / fp[:2] / f"{fp}.json"
            stamp = _time.time() - 100 + index
            os.utime(path, (stamp, stamp))
        # A capped store over the same directory: its next write must
        # enforce the budget by evicting the oldest entries.
        store = ResultStore(
            capacity=2, directory=tmp_path / "cache", max_disk_entries=3
        )
        store.put(*entries[4])
        assert store.disk_entries() <= 3
        stats = store.stats()
        assert stats["disk_evictions"] >= 2
        assert stats["max_disk_entries"] == 3
        store.clear_memory()
        # The newest survive; the oldest were evicted.
        assert store.get(entries[4][0]) is not None
        assert store.get(entries[3][0]) is not None
        assert store.get(entries[0][0]) is None

    def test_warm_loads_disk_prefixes_into_memory(self, tmp_path):
        store = ResultStore(capacity=8, directory=tmp_path / "cache")
        entries = [
            _canonical_report_for(dyadic_instance(random.Random(s), 5, g=2))
            for s in range(4)
        ]
        for fp, report in entries:
            store.put(fp, report)
        store.clear_memory()
        warmed = store.warm([fp[:2] for fp, _ in entries])
        assert warmed == 4
        assert len(store) == 4
        assert store.stats()["warmed"] == 4
        # Warmed entries are memory hits now — no disk read involved.
        disk_hits_before = store.stats()["disk_hits"]
        assert store.get(entries[0][0]) is not None
        assert store.stats()["disk_hits"] == disk_hits_before

    def test_two_stores_share_one_disk_directory(self, tmp_path):
        # Two services pointed at the same disk tier (the pre-cluster way
        # to share results): a report solved by one is a disk hit in the
        # other, and concurrent writers do not corrupt entries (each put
        # goes through its own tempfile + atomic rename).
        directory = tmp_path / "shared"
        inst = dyadic_instance(random.Random(300), 6, g=2, name="shared")
        with SolveService(store=ResultStore(capacity=8, directory=directory)) as a:
            first = a.solve(SolveRequest(instance=inst))
        with SolveService(store=ResultStore(capacity=8, directory=directory)) as b:
            second = b.solve(SolveRequest(instance=inst))
            stats = b.stats()["store"]
        assert stats["disk_hits"] == 1
        assert second.cost == pytest.approx(first.cost)
        second.schedule.validate()


# ---------------------------------------------------------------------------
# SolveService
# ---------------------------------------------------------------------------


class TestSolveService:
    def test_cache_hit_on_equivalent_request(self):
        inst = dyadic_instance(random.Random(20), 10, g=2)
        variant = relabeled_variant(shifted_variant(inst, 32.0), random.Random(21))
        with SolveService() as service:
            first = service.solve(SolveRequest(instance=inst), timeout=30)
            job2 = service.submit(SolveRequest(instance=variant))
            second = service.result(job2, timeout=30)
            assert service.poll(job2)["cached"] is True
            stats = service.stats()
        assert first.cost == pytest.approx(second.cost)
        assert stats["store"]["hits"] == 1
        assert stats["store"]["misses"] == 1
        # The cached answer is mapped onto the *variant's* job ids.
        assert set(second.schedule.assignment()) == {j.id for j in variant.jobs}

    def test_inflight_dedupe_solves_once(self):
        service = SolveService(start_worker=False)
        inst = dyadic_instance(random.Random(22), 8, g=2)
        job_a = service.submit(SolveRequest(instance=inst))
        job_b = service.submit(SolveRequest(instance=relabeled_variant(inst, random.Random(23))))
        assert service.poll(job_b)["deduped"] is True
        assert service.process_once(block=False) == 1  # one flight, two jobs
        assert service.result(job_a, timeout=5).cost == pytest.approx(
            service.result(job_b, timeout=5).cost
        )
        stats = service.stats()
        assert stats["deduped_inflight"] == 1
        assert stats["completed"] == 2
        assert stats["store"]["puts"] == 1
        service.close()

    def test_micro_batching_groups_distinct_requests(self):
        service = SolveService(start_worker=False, batch_size=8, batch_window=0.0)
        instances = [dyadic_instance(random.Random(s), 6, g=2) for s in range(30, 34)]
        jobs = [service.submit(SolveRequest(instance=i)) for i in instances]
        assert service.process_once(block=False) == 4
        for job_id, instance in zip(jobs, instances):
            report = service.result(job_id, timeout=5)
            assert report.cost == pytest.approx(
                Engine().solve(SolveRequest(instance=instance)).cost
            )
        stats = service.stats()
        assert stats["batches"] == 1
        assert stats["batched_requests"] == 4
        assert stats["largest_batch"] == 4
        service.close()

    def test_batch_size_caps_one_drain(self):
        service = SolveService(start_worker=False, batch_size=2, batch_window=0.0)
        for s in range(40, 43):
            service.submit(SolveRequest(instance=dyadic_instance(random.Random(s), 5, g=2)))
        assert service.process_once(block=False) == 2
        assert service.process_once(block=False) == 1
        assert service.stats()["largest_batch"] == 2
        service.close()

    def test_admission_rejects_oversized_instance(self):
        service = SolveService(limits=AdmissionLimits(max_jobs=5), start_worker=False)
        big = dyadic_instance(random.Random(50), 6, g=2)
        with pytest.raises(AdmissionError, match="6 jobs"):
            service.submit(SolveRequest(instance=big))
        assert service.stats()["rejected"] == 1
        service.close()

    def test_admission_rejects_excessive_time_limit(self):
        service = SolveService(
            limits=AdmissionLimits(max_time_limit=1.0), start_worker=False
        )
        inst = dyadic_instance(random.Random(51), 5, g=2)
        with pytest.raises(AdmissionError, match="time_limit"):
            service.submit(SolveRequest(instance=inst, time_limit=5.0))
        service.close()

    def test_admission_caps_forced_algorithm_size(self):
        # Forced solves cannot be preempted by a time budget, so they get
        # the tighter size cap instead of head-of-line blocking the worker.
        service = SolveService(
            limits=AdmissionLimits(max_jobs=100, max_forced_jobs=10),
            start_worker=False,
        )
        big = dyadic_instance(random.Random(54), 20, g=2)
        with pytest.raises(AdmissionError, match="cannot be preempted"):
            service.submit(SolveRequest(instance=big, algorithm="first_fit"))
        # The same instance is admitted under policy dispatch (with the
        # default time budget injected) and under the forced cap.
        service.submit(SolveRequest(instance=big))
        small = dyadic_instance(random.Random(55), 8, g=2)
        service.submit(SolveRequest(instance=small, algorithm="first_fit"))
        service.close()

    def test_admission_supplies_default_time_limit(self):
        limits = AdmissionLimits(max_time_limit=7.5)
        admitted = limits.admit(
            SolveRequest(instance=dyadic_instance(random.Random(52), 5, g=2))
        )
        assert admitted.time_limit == 7.5
        forced = limits.admit(
            SolveRequest(
                instance=dyadic_instance(random.Random(53), 5, g=2),
                algorithm="first_fit",
            )
        )
        assert forced.time_limit is None  # forced solves cannot be preempted

    def test_failed_solve_isolated_from_batch_mates(self):
        class BoobyTrappedEngine(Engine):
            def solve(self, request, scheduler=None):
                if any(j.tag == "boom" for j in request.instance.jobs):
                    raise RuntimeError("kaboom")
                return super().solve(request, scheduler)

        service = SolveService(engine=BoobyTrappedEngine(), start_worker=False)
        good = dyadic_instance(random.Random(60), 5, g=2)
        bad = Instance(
            jobs=(Job(id=0, interval=Interval(0, 1), tag="boom"),), g=1, name="bad"
        )
        good_job = service.submit(SolveRequest(instance=good))
        bad_job = service.submit(SolveRequest(instance=bad))
        assert service.process_once(block=False) == 2
        assert service.result(good_job, timeout=5).cost > 0
        with pytest.raises(JobFailedError, match="kaboom"):
            service.result(bad_job, timeout=5)
        stats = service.stats()
        assert stats["completed"] == 1 and stats["failed"] == 1
        service.close()

    def test_budget_exhausted_reports_are_served_but_never_cached(self):
        service = SolveService(start_worker=False)
        inst = dyadic_instance(random.Random(63), 10, g=2)
        # time_limit=0 trips the budget immediately: the engine serves its
        # FirstFit fallback and flags the report budget_exhausted.
        request = SolveRequest(instance=inst, time_limit=0.0)
        job = service.submit(request)
        assert service.process_once(block=False) == 1
        report = service.result(job, timeout=5)
        assert report.budget_exhausted is True
        # The degraded answer reached its requester but not the store: the
        # next equivalent request re-solves instead of inheriting it.
        assert service.stats()["store"]["puts"] == 0
        job2 = service.submit(request)
        assert service.poll(job2)["cached"] is False
        assert service.process_once(block=False) == 1
        service.result(job2, timeout=5)
        service.close()

    def test_broken_pool_is_discarded_not_kept(self):
        from concurrent.futures import BrokenExecutor

        class DeadFuture:
            def result(self, timeout=None):
                raise BrokenExecutor("worker died")

        class DeadPool:
            def submit(self, *args, **kwargs):
                return DeadFuture()

            def shutdown(self, wait=True):
                pass

        service = SolveService(start_worker=False, max_workers=2, batch_window=0.0)
        service._executor = DeadPool()
        instances = [dyadic_instance(random.Random(s), 5, g=2) for s in (64, 65)]
        jobs = [service.submit(SolveRequest(instance=i)) for i in instances]
        assert service.process_once(block=False) == 2
        # The batch fell back to serial solves and the dead pool was dropped
        # (the next multi-request batch rebuilds instead of re-failing).
        for job in jobs:
            assert service.result(job, timeout=30).cost > 0
        assert not isinstance(service._executor, DeadPool)
        service.close()

    def test_disk_write_failure_keeps_the_memory_tier(self, tmp_path, monkeypatch):
        store = ResultStore(capacity=4, directory=tmp_path / "cache")
        fp, report = _canonical_report_for(dyadic_instance(random.Random(66), 5, g=2))

        def broken_mkstemp(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("busytime.service.store.tempfile.mkstemp", broken_mkstemp)
        with pytest.raises(OSError):
            store.put(fp, report)
        # The put raised (callers count it) but the memory tier kept the
        # entry, so hot repeats still hit while the disk is unwritable.
        assert store.get(fp) is report

    def test_disk_store_serves_across_service_restarts(self, tmp_path):
        inst = dyadic_instance(random.Random(70), 9, g=2)
        request = SolveRequest(instance=inst)
        with SolveService(store=ResultStore(directory=tmp_path / "cache")) as first:
            cold = first.solve(request, timeout=30)
        with SolveService(store=ResultStore(directory=tmp_path / "cache")) as second:
            job = second.submit(request)
            warm = second.result(job, timeout=30)
            assert second.poll(job)["cached"] is True
        assert warm.cost == pytest.approx(cold.cost)

    def test_store_put_failure_does_not_wedge_the_request(self):
        class BrokenStore(ResultStore):
            def put(self, fingerprint, report):
                raise OSError("disk full")

        service = SolveService(store=BrokenStore(), start_worker=False)
        inst = dyadic_instance(random.Random(61), 6, g=2)
        job = service.submit(SolveRequest(instance=inst))
        assert service.process_once(block=False) == 1
        # The report is in hand; a failed cache write must not lose it.
        assert service.result(job, timeout=5).cost > 0
        stats = service.stats()
        assert stats["store_put_failures"] == 1
        assert stats["pending"] == 0  # fingerprint not wedged in flight
        # The next identical request re-solves (nothing was cached) instead
        # of attaching to a zombie flight.
        job2 = service.submit(SolveRequest(instance=inst))
        assert service.poll(job2)["deduped"] is False
        assert service.process_once(block=False) == 1
        assert service.result(job2, timeout=5).cost > 0
        service.close()

    def test_finished_jobs_are_pruned_past_retention(self):
        service = SolveService(start_worker=False, max_finished_jobs=3)
        jobs = []
        for s in range(44, 49):
            jobs.append(
                service.submit(
                    SolveRequest(instance=dyadic_instance(random.Random(s), 4, g=2))
                )
            )
            service.process_once(block=False)
        # The two oldest finished jobs fell out of the retention window.
        for stale in jobs[:2]:
            with pytest.raises(KeyError):
                service.poll(stale)
        for kept in jobs[2:]:
            assert service.poll(kept)["status"] == "done"
        service.close()

    def test_close_fails_pending_jobs_instead_of_deadlocking(self):
        service = SolveService(start_worker=False)
        inst = dyadic_instance(random.Random(62), 5, g=2)
        job = service.submit(SolveRequest(instance=inst))  # queued, never run
        service.close()
        with pytest.raises(JobFailedError, match="service closed"):
            service.result(job, timeout=5)
        assert service.poll(job)["status"] == "failed"

    def test_submit_after_close_raises(self):
        service = SolveService(start_worker=False)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(
                SolveRequest(instance=dyadic_instance(random.Random(80), 4, g=2))
            )

    def test_close_racing_submit_cannot_enqueue_an_orphan_flight(self):
        # close() lands exactly in submit's unlocked window (during the
        # store lookup): the late submit must refuse, not queue a flight no
        # worker will ever drain.
        service = SolveService(start_worker=False)
        original_get = service.store.get

        def close_then_miss(fingerprint):
            service.close()
            return original_get(fingerprint)

        service.store.get = close_then_miss
        with pytest.raises(ServiceClosedError):
            service.submit(
                SolveRequest(instance=dyadic_instance(random.Random(81), 4, g=2))
            )
        assert service.stats()["pending"] == 0

    def test_persistent_pool_is_reused_across_batches(self):
        service = SolveService(start_worker=False, max_workers=2, batch_window=0.0)
        instances = [dyadic_instance(random.Random(s), 6, g=2) for s in range(84, 88)]
        for inst in instances[:2]:
            service.submit(SolveRequest(instance=inst))
        assert service.process_once(block=False) == 2
        pool = service._executor
        assert pool is not None  # multi-request batch went through the pool
        for inst in instances[2:]:
            service.submit(SolveRequest(instance=inst))
        assert service.process_once(block=False) == 2
        assert service._executor is pool  # amortized, not rebuilt per batch
        for job_id in (f"job-{k:06d}" for k in range(1, 5)):
            assert service.result(job_id, timeout=30).cost > 0
        service.close()
        assert service._executor is None

    def test_unknown_job_id_raises_key_error(self):
        with SolveService(start_worker=False) as service:
            with pytest.raises(KeyError):
                service.poll("job-999999")

    def test_concurrent_submitters_share_one_solve(self):
        inst = uniform_random_instance(40, g=3, seed=5)
        reports = []
        with SolveService(batch_window=0.05) as service:
            def submit():
                reports.append(service.solve(SolveRequest(instance=inst), timeout=30))

            threads = [threading.Thread(target=submit) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = service.stats()
        assert len({r.cost for r in reports}) == 1
        # Six identical requests, exactly one engine solve: the rest were
        # deduped in flight or answered from the store.
        assert stats["store"]["puts"] == 1
        assert stats["deduped_inflight"] + stats["store"]["hits"] == 5


# ---------------------------------------------------------------------------
# HTTP frontend
# ---------------------------------------------------------------------------


@pytest.fixture()
def http_service(tmp_path):
    service = SolveService(limits=AdmissionLimits(max_jobs=100))
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield service, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()


def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as reply:
        return reply.status, json.loads(reply.read().decode("utf-8"))


class TestHTTPFrontend:
    def test_solve_wait_round_trips_report(self, http_service):
        _, url = http_service
        inst = dyadic_instance(random.Random(90), 8, g=2, name="http")
        reply = submit_instance(url, bio.instance_to_dict(inst), wait=True)
        assert reply["status"] == "done"
        report = bio.solve_report_from_dict(reply["report"])
        report.schedule.validate()
        assert report.cost == pytest.approx(
            Engine().solve(SolveRequest(instance=inst)).cost
        )

    def test_async_submit_then_poll_jobs_endpoint(self, http_service):
        _, url = http_service
        inst = dyadic_instance(random.Random(91), 8, g=2)
        reply = submit_instance(url, bio.instance_to_dict(inst), wait=False)
        job_id = reply["job_id"]
        for _ in range(200):
            status, payload = _get_json(f"{url}/jobs/{job_id}")
            assert status == 200
            if payload["status"] == "done":
                break
            import time

            time.sleep(0.01)
        assert payload["status"] == "done"
        assert "report" in payload

    def test_stats_endpoint_reports_hits(self, http_service):
        _, url = http_service
        inst = dyadic_instance(random.Random(92), 8, g=2)
        submit_instance(url, bio.instance_to_dict(inst), wait=True)
        submit_instance(url, bio.instance_to_dict(inst), wait=True)
        _, stats = _get_json(f"{url}/stats")
        assert stats["submitted"] >= 2
        assert stats["store"]["hits"] >= 1

    def test_algorithms_endpoint_lists_registry(self, http_service):
        _, url = http_service
        _, payload = _get_json(f"{url}/algorithms")
        names = {a["name"] for a in payload["algorithms"]}
        assert {"first_fit", "proper_greedy"} <= names

    def test_forced_algorithm_option(self, http_service):
        _, url = http_service
        inst = dyadic_instance(random.Random(93), 8, g=2)
        reply = submit_instance(
            url, bio.instance_to_dict(inst), options={"algorithm": "first_fit"}
        )
        assert reply["report"]["algorithm"] == "first_fit"

    def test_admission_rejection_maps_to_413(self, http_service):
        _, url = http_service
        big = dyadic_instance(random.Random(94), 101, g=2)
        with pytest.raises(RuntimeError, match="above the service limit"):
            submit_instance(url, bio.instance_to_dict(big))

    def test_negative_content_length_maps_to_400(self, http_service):
        # read(-1) would mean read-until-EOF: an unbounded buffer behind
        # the body cap, and a pinned handler thread.
        import http.client

        _, url = http_service
        host, port = url.removeprefix("http://").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=10)
        connection.putrequest("POST", "/solve")
        connection.putheader("Content-Length", "-1")
        connection.putheader("Content-Type", "application/json")
        connection.endheaders()
        reply = connection.getresponse()
        assert reply.status == 400
        assert "Content-Length" in json.loads(reply.read())["error"]
        connection.close()

    def test_bad_request_body_maps_to_400(self, http_service):
        _, url = http_service
        request = urllib.request.Request(
            f"{url}/solve", data=b"{broken", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_unknown_option_maps_to_400(self, http_service):
        _, url = http_service
        inst = dyadic_instance(random.Random(95), 5, g=2)
        with pytest.raises(RuntimeError, match="unknown options"):
            submit_instance(url, bio.instance_to_dict(inst), options={"nope": 1})

    def test_mistyped_option_maps_to_400_not_a_dropped_connection(self, http_service):
        _, url = http_service
        inst = dyadic_instance(random.Random(97), 5, g=2)
        for options in (
            {"time_limit": "5"},
            {"portfolio": "yes"},
            {"max_jobs_for_optimum": 2.5},
            {"algorithm": 7},
        ):
            with pytest.raises(RuntimeError, match="must be"):
                submit_instance(url, bio.instance_to_dict(inst), options=options)

    def test_oversized_body_maps_to_413_before_reading(self):
        service = SolveService(start_worker=False)
        server = make_server(service, port=0, max_body_bytes=1024)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            inst = dyadic_instance(random.Random(98), 60, g=2)  # > 1 KiB doc
            with pytest.raises(RuntimeError, match="above the service limit"):
                submit_instance(
                    f"http://{host}:{port}", bio.instance_to_dict(inst)
                )
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_oversized_refusal_closes_the_keepalive_connection(self):
        # The refused body is never drained, so the server must close the
        # connection; a keep-alive client that reused it would otherwise see
        # its next request line parsed out of the stale body bytes.
        import http.client

        service = SolveService()
        server = make_server(service, port=0, max_body_bytes=64)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            connection = http.client.HTTPConnection(host, port, timeout=10)
            connection.request(
                "POST", "/solve", body=b"x" * 1024,
                headers={"Content-Type": "application/json"},
            )
            reply = connection.getresponse()
            assert reply.status == 413
            assert reply.getheader("Connection") == "close"
            reply.read()
            # http.client transparently reconnects on a closed connection,
            # so the follow-up request must come back clean, not as a 501
            # parsed out of the stale POST body.
            connection.request("GET", "/stats")
            stats_reply = connection.getresponse()
            assert stats_reply.status == 200
            json.loads(stats_reply.read())
            connection.close()
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_non_object_instance_maps_to_400(self, http_service):
        _, url = http_service
        import urllib.error

        body = json.dumps({"instance": [1, 2, 3]}).encode("utf-8")
        request = urllib.request.Request(
            f"{url}/solve", data=body, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400
        assert "expected a JSON object" in json.loads(err.value.read())["error"]

    def test_handler_sets_a_socket_timeout(self):
        # A client that under-sends its advertised Content-Length must not
        # pin the handler thread forever; socketserver honors this attr.
        from busytime.service.frontend import _ServiceHandler

        assert _ServiceHandler.timeout == 60.0

    def test_unknown_job_and_endpoint_map_to_404(self, http_service):
        _, url = http_service
        for path in ("/jobs/job-999999", "/bogus"):
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{url}{path}", timeout=10)
            assert err.value.code == 404

    def test_submit_against_closed_service_maps_to_503(self):
        service = SolveService(start_worker=False)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            service.close()  # "caller owns the loop": server still accepting
            inst = dyadic_instance(random.Random(99), 4, g=2)
            with pytest.raises(RuntimeError, match="closed"):
                submit_instance(
                    f"http://{host}:{port}", bio.instance_to_dict(inst)
                )
        finally:
            server.shutdown()
            server.server_close()

    def test_post_refusals_close_the_keepalive_connection(self, http_service):
        # A POST body sent to a refused path/encoding is never drained, so
        # the connection must close instead of desyncing the next request.
        import http.client

        _, url = http_service
        host, port = url.removeprefix("http://").split(":")
        for path, headers, expected in (
            ("/solvex", {"Content-Type": "application/json"}, 404),
            ("/solve", {"Transfer-Encoding": "chunked"}, 411),
        ):
            connection = http.client.HTTPConnection(host, int(port), timeout=10)
            connection.request(
                "POST", path, body=b'{"instance": {}}', headers=headers
            )
            reply = connection.getresponse()
            assert reply.status == expected
            assert reply.getheader("Connection") == "close"
            reply.read()
            connection.request("GET", "/stats")  # reconnects transparently
            stats_reply = connection.getresponse()
            assert stats_reply.status == 200
            json.loads(stats_reply.read())
            connection.close()

    def test_cli_submit_against_live_server(self, http_service, tmp_path, capsys):
        _, url = http_service
        inst = dyadic_instance(random.Random(96), 8, g=2, name="via-cli")
        path = tmp_path / "inst.json"
        bio.save_instance(inst, path)
        out = tmp_path / "report.json"
        rc = main(["submit", str(path), "--url", url, "--output", str(out)])
        assert rc == 0
        assert "served solve" in capsys.readouterr().out
        report = bio.load_solve_report(out)
        assert report.cost == pytest.approx(
            Engine().solve(SolveRequest(instance=inst)).cost
        )


# ---------------------------------------------------------------------------
# Backpressure, drain, health
# ---------------------------------------------------------------------------


class TestBackpressureAndDrain:
    def test_max_pending_sheds_beyond_the_cap(self):
        # No worker thread: submitted jobs stay in flight, so the queue
        # depth is fully under the test's control.
        service = SolveService(start_worker=False, max_pending=1)
        try:
            a = dyadic_instance(random.Random(200), 4, g=2, name="bp-a")
            b = dyadic_instance(random.Random(201), 4, g=2, name="bp-b")
            service.submit(SolveRequest(instance=a))
            with pytest.raises(ServiceOverloadedError, match="max_pending"):
                service.submit(SolveRequest(instance=b))
            assert service.stats()["shed"] == 1
            health = service.health()
            assert health["status"] == "ok"
            assert health["queue_depth"] == 1
            assert health["max_pending"] == 1
            assert health["shed"] == 1
        finally:
            service.close()

    def test_duplicate_of_inflight_request_is_admitted_at_the_cap(self):
        # Dedupe attaches add no queue depth, so shedding them would only
        # lose a free answer.
        service = SolveService(start_worker=False, max_pending=1)
        try:
            a = dyadic_instance(random.Random(202), 4, g=2, name="bp-dup")
            service.submit(SolveRequest(instance=a))
            service.submit(SolveRequest(instance=a))  # same fingerprint
            assert service.queue_depth() == 1
            assert service.stats()["shed"] == 0
        finally:
            service.close()

    def test_drain_refuses_new_work_then_closes(self):
        service = SolveService(start_worker=False)
        a = dyadic_instance(random.Random(203), 4, g=2, name="dr-a")
        b = dyadic_instance(random.Random(204), 4, g=2, name="dr-b")
        service.submit(SolveRequest(instance=a))  # held in flight forever
        outcome = {}
        drainer = threading.Thread(
            target=lambda: outcome.setdefault(
                "drained", service.drain(timeout=1.0, poll=0.01)
            )
        )
        drainer.start()
        import time

        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if service.health()["status"] == "draining":
                break
            time.sleep(0.01)
        assert service.health()["status"] == "draining"
        with pytest.raises(ServiceDrainingError, match="draining"):
            service.submit(SolveRequest(instance=b))
        drainer.join()
        # The held job never finished (no worker): the drain reports the
        # truth instead of pretending, and the service still closed.
        assert outcome["drained"] is False
        assert service.health()["status"] == "closed"

    def test_drain_of_idle_service_completes_cleanly(self):
        service = SolveService()
        inst = dyadic_instance(random.Random(205), 5, g=2, name="dr-idle")
        service.solve(SolveRequest(instance=inst))
        assert service.drain(timeout=5.0) is True
        with pytest.raises(ServiceClosedError):
            service.submit(SolveRequest(instance=inst))

    def test_draining_error_is_a_closed_subclass(self):
        # Callers that branch on "can this service take work" need one
        # catch; callers that care about the retryable distinction get it.
        assert issubclass(ServiceDrainingError, ServiceClosedError)
        assert issubclass(ServiceOverloadedError, RuntimeError)
        assert not issubclass(ServiceOverloadedError, ServiceClosedError)


class TestHTTPHealthWarmAndShed:
    def test_healthz_is_200_when_ok_and_503_when_draining(self):
        import urllib.error

        service = SolveService(start_worker=False)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}"
            status, health = _get_json(f"{url}/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["queue_depth"] == 0
            assert "store" in health
            # Hold one job in flight so the drain stays in 'draining'.
            inst = dyadic_instance(random.Random(210), 4, g=2, name="hz")
            service.submit(SolveRequest(instance=inst))
            drainer = threading.Thread(
                target=service.drain, kwargs={"timeout": 2.0, "poll": 0.01}
            )
            drainer.start()
            import time

            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if service.health()["status"] != "ok":
                    break
                time.sleep(0.01)
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{url}/healthz", timeout=10)
            assert err.value.code == 503
            assert json.loads(err.value.read())["status"] in ("draining", "closed")
            drainer.join()
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_saturated_service_answers_429_with_retry_after(self):
        import urllib.error

        service = SolveService(start_worker=False, max_pending=1)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}"
            first = dyadic_instance(random.Random(211), 4, g=2, name="shed-a")
            reply = submit_instance(url, bio.instance_to_dict(first), wait=False)
            assert reply["status"] == "queued"
            second = dyadic_instance(random.Random(212), 4, g=2, name="shed-b")
            body = json.dumps(
                {"instance": bio.instance_to_dict(second)}
            ).encode("utf-8")
            request = urllib.request.Request(
                f"{url}/solve", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 429
            assert err.value.headers.get("Retry-After") is not None
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_warm_endpoint_loads_disk_entries(self, tmp_path):
        store = ResultStore(capacity=8, directory=tmp_path / "cache")
        service = SolveService(store=store)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}"
            inst = dyadic_instance(random.Random(213), 5, g=2, name="warm")
            service.solve(SolveRequest(instance=inst))
            store.clear_memory()
            # The service resolves defaults (e.g. policy) into its cache
            # key, so read the shard prefix off the disk entry it wrote.
            [entry] = (tmp_path / "cache").rglob("*.json")
            prefix = entry.stem[:2]
            body = json.dumps({"prefixes": [prefix]}).encode("utf-8")
            request = urllib.request.Request(
                f"{url}/warm", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as reply:
                payload = json.loads(reply.read())
            assert payload["warmed"] == 1
            assert len(store) == 1
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_warm_endpoint_validates_its_body(self, http_service):
        import urllib.error

        _, url = http_service
        for body in (b'{"prefixes": "ab"}', b'{"prefixes": ["ab"], "limit": -1}'):
            request = urllib.request.Request(
                f"{url}/warm", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 400

    def test_keepalive_connection_survives_mixed_good_and_bad_requests(
        self, http_service
    ):
        # A 400 whose body WAS drained must not cost the connection: the
        # next request on the same socket gets a clean answer.
        import http.client

        _, url = http_service
        host, port = url.removeprefix("http://").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=10)
        good = json.dumps(
            {
                "instance": bio.instance_to_dict(
                    dyadic_instance(random.Random(214), 5, g=2, name="ka")
                ),
                "wait": True,
            }
        ).encode("utf-8")
        bad = json.dumps(
            {
                "instance": bio.instance_to_dict(
                    dyadic_instance(random.Random(215), 5, g=2, name="ka2")
                ),
                "options": {"nope": 1},
            }
        ).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        connection.request("POST", "/solve", body=good, headers=headers)
        reply = connection.getresponse()
        assert reply.status == 200
        reply.read()
        socket_before = connection.sock
        for body, expected in ((bad, 400), (good, 200)):
            connection.request("POST", "/solve", body=body, headers=headers)
            reply = connection.getresponse()
            assert reply.status == expected
            assert reply.getheader("Connection") != "close"
            reply.read()
        # Same socket throughout: http.client would silently reconnect if
        # the server had dropped it, so assert identity, not just success.
        assert connection.sock is socket_before
        connection.close()

    def test_mid_body_client_disconnect_leaves_the_service_healthy(
        self, http_service
    ):
        import socket

        _, url = http_service
        host, port = url.removeprefix("http://").split(":")
        raw = socket.create_connection((host, int(port)), timeout=10)
        raw.sendall(
            b"POST /solve HTTP/1.1\r\n"
            b"Host: test\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 1000\r\n"
            b"\r\n"
            b'{"instance"'
        )
        raw.close()  # hang up with 989 bytes still owed
        # The handler sees a short read, not a hung thread, and the server
        # keeps answering other clients.
        status, health = _get_json(f"{url}/healthz")
        assert status == 200
        assert health["status"] == "ok"


class TestClientRetry:
    def test_backoff_delays_are_bounded_and_jittered(self):
        from busytime.service.frontend import _backoff_delay

        for attempt in range(8):
            delay = _backoff_delay(attempt, backoff=0.25, cap=10.0)
            assert 0 <= delay <= min(10.0, 0.25 * 2**attempt)

    def test_connection_refused_is_retried_then_reported(self):
        import socket
        import time

        # Bind-then-close: a port where nothing listens, refusing connects.
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        inst = dyadic_instance(random.Random(216), 4, g=2, name="retry")
        started = time.monotonic()
        with pytest.raises(RuntimeError, match="after 3 attempts"):
            submit_instance(
                f"http://127.0.0.1:{port}",
                bio.instance_to_dict(inst),
                retries=2,
                backoff=0.01,
                timeout=5,
            )
        assert time.monotonic() - started < 5.0  # backed off, not hung

    def test_rejections_are_not_retried(self, http_service):
        # A 400 cannot improve with time; retries=5 must not slow it down.
        _, url = http_service
        inst = dyadic_instance(random.Random(217), 5, g=2, name="no-retry")
        import time

        started = time.monotonic()
        with pytest.raises(RuntimeError, match="rejected"):
            submit_instance(
                url,
                bio.instance_to_dict(inst),
                options={"nope": 1},
                retries=5,
                backoff=5.0,
            )
        assert time.monotonic() - started < 4.0
