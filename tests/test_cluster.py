"""Tests for the sharded multi-worker cluster (busytime.service.cluster).

Covers the consistent-hash :class:`ShardMap` (coverage, determinism,
minimal disruption on membership change), routed solves through a live
:class:`LocalCluster` (shard affinity, cache hits, job polling), the
failure modes (kill-one-worker failover, drain spill, saturation
shedding), and the cache-warming hook on topology change.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

from busytime import Instance, Interval, Job
from busytime import io as bio
from busytime.service import LocalCluster, ShardMap, submit_instance
from busytime.service.canonical import request_fingerprint
from busytime.service.cluster import (
    ALL_SHARDS,
    SHARD_PREFIX_LEN,
    ClusterRouter,
)
from busytime.service.frontend import _request_from_document

WORKERS = ["http://a:1", "http://b:2", "http://c:3", "http://d:4"]


def dyadic_instance(rng: random.Random, n: int, g: int = 2, name: str = "cl") -> Instance:
    """A random instance whose coordinates are multiples of 1/16."""
    jobs = []
    for i in range(n):
        start = rng.randrange(0, 512) / 16.0
        length = rng.randrange(1, 128) / 16.0
        jobs.append(Job(id=i, interval=Interval(start, start + length)))
    return Instance(jobs=tuple(jobs), g=g, name=name)


def _doc(seed: int, n: int = 6) -> dict:
    return bio.instance_to_dict(dyadic_instance(random.Random(seed), n, name=f"cl{seed}"))


def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as reply:
        return reply.status, json.loads(reply.read().decode("utf-8"))


# ---------------------------------------------------------------------------
# ShardMap
# ---------------------------------------------------------------------------


class TestShardMap:
    def test_table_covers_every_shard(self):
        table = ShardMap(WORKERS).table()
        assert set(table) == set(ALL_SHARDS)
        assert set(table.values()) <= set(WORKERS)

    def test_same_workers_same_table(self):
        assert ShardMap(WORKERS).table() == ShardMap(WORKERS).table()

    def test_vnodes_spread_the_load(self):
        counts = {w: 0 for w in WORKERS}
        for owner in ShardMap(WORKERS, vnodes=64).table().values():
            counts[owner] += 1
        # 256 shards over 4 workers is 64 each in expectation; consistent
        # hashing is lumpy, but every worker must carry a real share.
        assert all(16 <= c <= 160 for c in counts.values()), counts

    def test_owner_order_lists_each_worker_once(self):
        sm = ShardMap(WORKERS)
        for shard in ("00", "7f", "ff"):
            order = sm.owners(shard)
            assert sorted(order) == sorted(WORKERS)

    def test_full_fingerprint_and_bare_shard_agree(self):
        sm = ShardMap(WORKERS)
        fp = "ab" + "0" * 62
        assert sm.owners(fp) == sm.owners("ab")
        assert ShardMap.shard_of(fp) == "ab"
        assert len(ShardMap.shard_of(fp)) == SHARD_PREFIX_LEN

    def test_losing_one_worker_moves_only_its_shards(self):
        sm = ShardMap(WORKERS)
        before = sm.table()
        survivors = [w for w in WORKERS if w != WORKERS[1]]
        after = sm.table(alive=survivors)
        for shard in ALL_SHARDS:
            if before[shard] != WORKERS[1]:
                # Consistent hashing's whole point: shards whose owner
                # survived do not move.
                assert after[shard] == before[shard]
            else:
                assert after[shard] in survivors

    def test_revival_restores_the_original_table(self):
        sm = ShardMap(WORKERS)
        degraded = sm.table(alive=WORKERS[1:])
        assert degraded != sm.table()
        assert sm.table(alive=list(WORKERS)) == sm.table()

    def test_shards_of_partitions_the_space(self):
        sm = ShardMap(WORKERS)
        shards = [sm.shards_of(w) for w in WORKERS]
        assert sum(len(s) for s in shards) == len(ALL_SHARDS)
        flat = {shard for group in shards for shard in group}
        assert flat == set(ALL_SHARDS)

    def test_owners_with_empty_alive_set_is_empty(self):
        sm = ShardMap(WORKERS)
        assert sm.owners("00", alive=[]) == ()
        assert sm.primary("00", alive=[]) is None

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ShardMap([])
        with pytest.raises(ValueError, match="duplicate"):
            ShardMap(["http://a:1", "http://a:1"])
        with pytest.raises(ValueError, match="vnodes"):
            ShardMap(WORKERS, vnodes=0)


# ---------------------------------------------------------------------------
# Routing through a live cluster
# ---------------------------------------------------------------------------


@pytest.fixture()
def cluster():
    with LocalCluster(workers=3, store_capacity=64) as c:
        yield c


class TestClusterRouting:
    def test_solve_round_trips_with_prefixed_job_id(self, cluster):
        reply = submit_instance(cluster.url, _doc(1), wait=True)
        assert reply["status"] == "done"
        assert reply["job_id"].startswith(f"w{reply['worker']}-")
        report = bio.solve_report_from_dict(reply["report"])
        report.schedule.validate()

    def test_same_request_lands_on_the_same_worker_and_hits_cache(self, cluster):
        first = submit_instance(cluster.url, _doc(2), wait=True)
        second = submit_instance(cluster.url, _doc(2), wait=True)
        assert second["worker"] == first["worker"]
        assert second.get("cached")

    def test_fingerprint_header_routes_like_body_canonicalization(self, cluster):
        doc = _doc(3)
        fp = request_fingerprint(_request_from_document({"instance": doc}))
        hinted = submit_instance(cluster.url, doc, wait=True, fingerprint=fp)
        unhinted = submit_instance(cluster.url, doc, wait=True)
        # Same shard either way, and the second submission is a cache hit —
        # the header is a fast path, not a different routing function.
        assert hinted["worker"] == unhinted["worker"]
        assert unhinted.get("cached")

    def test_distinct_requests_spread_over_workers(self, cluster):
        used = {
            submit_instance(cluster.url, _doc(seed), wait=True)["worker"]
            for seed in range(10, 26)
        }
        assert len(used) >= 2

    def test_jobs_endpoint_routes_on_the_prefix(self, cluster):
        reply = submit_instance(cluster.url, _doc(4), wait=False)
        job_id = reply["job_id"]
        for _ in range(300):
            status, payload = _get_json(f"{cluster.url}/jobs/{job_id}")
            assert status == 200
            assert payload["job_id"] == job_id
            if payload["status"] == "done":
                break
            time.sleep(0.01)
        assert payload["status"] == "done"

    def test_unknown_job_ids_are_404(self, cluster):
        for bad in ("job-000001", "w9-job-000001", "wx-job-1"):
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{cluster.url}/jobs/{bad}", timeout=10)
            assert err.value.code == 404

    def test_shards_endpoint_accounts_for_every_shard(self, cluster):
        _, payload = _get_json(f"{cluster.url}/shards")
        assert payload["shards"] == 256
        assert sum(payload["shards_per_worker"].values()) == 256
        assert set(payload["alive"]) == set(cluster.worker_urls)

    def test_healthz_aggregates_workers(self, cluster):
        status, health = _get_json(f"{cluster.url}/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert len(health["workers"]) == 3
        assert all(w["alive"] for w in health["workers"])
        assert sum(w["shards"] for w in health["workers"]) == 256

    def test_algorithms_endpoint_is_forwarded(self, cluster):
        _, payload = _get_json(f"{cluster.url}/algorithms")
        assert {"first_fit", "proper_greedy"} <= {
            a["name"] for a in payload["algorithms"]
        }

    def test_stats_endpoint_merges_router_and_workers(self, cluster):
        submit_instance(cluster.url, _doc(5), wait=True)
        _, stats = _get_json(f"{cluster.url}/stats")
        assert stats["router"]["routed"] >= 1
        assert len(stats["workers"]) == 3
        assert sum(w["stats"]["submitted"] for w in stats["workers"]) >= 1

    def test_bad_body_is_a_400_at_the_router(self, cluster):
        request = urllib.request.Request(
            f"{cluster.url}/solve", data=b"{broken", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_unknown_endpoints_are_404(self, cluster):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{cluster.url}/nope", timeout=10)
        assert err.value.code == 404


# ---------------------------------------------------------------------------
# Failure handling
# ---------------------------------------------------------------------------


class TestClusterFailover:
    def test_kill_one_worker_fails_over_and_degrades_health(self):
        with LocalCluster(workers=3, store_capacity=64) as cluster:
            reply = submit_instance(cluster.url, _doc(30), wait=True)
            victim = reply["worker"]
            cluster.kill_worker(victim)
            # The same canonical request now routes to the next replica on
            # the ring; POST /solve is idempotent, so the replay is safe.
            again = submit_instance(cluster.url, _doc(30), wait=True, retries=3)
            assert again["status"] == "done"
            assert again["worker"] != victim
            status, health = _get_json(f"{cluster.url}/healthz")
            assert status == 200
            assert health["status"] == "degraded"
            assert health["router"]["worker_failures"] >= 1
            dead = [w for w in health["workers"] if not w["alive"]]
            assert len(dead) == 1
            # Dead workers own nothing: their shards moved to survivors.
            assert dead[0]["shards"] == 0
            assert sum(w["shards"] for w in health["workers"]) == 256

    def test_concurrent_submissions_survive_a_mid_stream_kill(self):
        # The zero-lost-jobs drill: clients with retries enabled keep
        # succeeding while one worker is killed under them.
        with LocalCluster(workers=3, store_capacity=64) as cluster:
            results = {}
            errors = []

            def client(seed: int) -> None:
                try:
                    results[seed] = submit_instance(
                        cluster.url, _doc(seed, n=5), wait=True,
                        retries=4, backoff=0.05,
                    )
                except RuntimeError as exc:  # pragma: no cover - the failure
                    errors.append((seed, exc))

            threads = [
                threading.Thread(target=client, args=(seed,))
                for seed in range(40, 52)
            ]
            for t in threads[:4]:
                t.start()
            cluster.kill_worker(0)
            for t in threads[4:]:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(results) == 12
            assert all(r["status"] == "done" for r in results.values())
            assert all(r["worker"] != 0 for r in results.values())

    def test_draining_worker_spills_to_a_replica(self):
        with LocalCluster(workers=2, store_capacity=64) as cluster:
            doc = _doc(60)
            fp = request_fingerprint(_request_from_document({"instance": doc}))
            owner_url = cluster.router.shard_map.primary(fp)
            owner = cluster.worker_urls.index(owner_url)
            # Drain the owner but keep its HTTP server up: submits now get
            # 503 + Retry-After there, and the router spills to the replica
            # without the client ever seeing the drain.
            assert cluster.services[owner].drain(timeout=5.0)
            reply = submit_instance(cluster.url, doc, wait=True, fingerprint=fp)
            assert reply["status"] == "done"
            assert reply["worker"] == 1 - owner
            with urllib.request.urlopen(f"{cluster.url}/stats", timeout=10) as r:
                stats = json.loads(r.read())
            assert stats["router"]["failovers"] >= 1

    def test_saturated_cluster_sheds_with_429(self):
        router = ClusterRouter(
            ("127.0.0.1", 0),
            ["http://127.0.0.1:9", "http://127.0.0.1:19"],
            probe_interval=None,
            max_worker_inflight=1,
            warm_on_rebalance=False,
        )
        try:
            body = json.dumps({"instance": _doc(70)}).encode("utf-8")
            with router._lock:
                for url in router.workers:
                    router._inflight[url] = 1
            status, payload, retry_after = router.route_solve("ab" + "0" * 62, body)
            assert status == 429
            assert retry_after is not None
            assert "saturated" in payload["error"]
        finally:
            router.server_close()

    def test_all_workers_unreachable_is_a_503(self):
        # Discard ports (9, 19): nothing listens, connects are refused.
        router = ClusterRouter(
            ("127.0.0.1", 0),
            ["http://127.0.0.1:9", "http://127.0.0.1:19"],
            probe_interval=None,
            warm_on_rebalance=False,
        )
        try:
            body = json.dumps({"instance": _doc(71)}).encode("utf-8")
            status, payload, retry_after = router.route_solve("00" + "0" * 62, body)
            assert status == 503
            assert retry_after is not None
            assert router.alive_workers() == ()
            with router._lock:
                assert router._counters["worker_failures"] == 2
        finally:
            router.server_close()


# ---------------------------------------------------------------------------
# Cache warming on topology change
# ---------------------------------------------------------------------------


class TestClusterWarming:
    def test_membership_change_warms_the_new_owners(self, tmp_path):
        with LocalCluster(
            workers=3, store_capacity=64, store_dir=str(tmp_path / "stores")
        ) as cluster:
            for seed in range(80, 88):
                submit_instance(cluster.url, _doc(seed, n=5), wait=True)
            router = cluster.router
            router.mark_dead(cluster.worker_urls[0])
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with router._lock:
                    if router._counters["warm_posts"] > 0:
                        break
                time.sleep(0.02)
            with router._lock:
                posts_after_death = router._counters["warm_posts"]
            assert posts_after_death > 0
            # Revival hands the shards back — and warms the returning worker.
            router.mark_alive(cluster.worker_urls[0])
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with router._lock:
                    if router._counters["warm_posts"] > posts_after_death:
                        break
                time.sleep(0.02)
            with router._lock:
                assert router._counters["warm_posts"] > posts_after_death
            assert set(router.alive_workers()) == set(cluster.worker_urls)
