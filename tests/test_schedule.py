"""Unit tests for busytime.core.schedule."""

import pytest

from busytime.core.instance import Instance
from busytime.core.intervals import Interval, Job
from busytime.core.schedule import (
    InfeasibleScheduleError,
    Machine,
    Schedule,
    ScheduleBuilder,
    verify_schedule,
)


def _jobs(*pairs):
    return tuple(Job(id=i, interval=Interval(a, b)) for i, (a, b) in enumerate(pairs))


class TestMachine:
    def test_busy_time_contiguous(self):
        m = Machine(index=0, jobs=_jobs((0, 3), (2, 5)))
        assert m.busy_time == 5
        assert m.busy_interval == Interval(0, 5)

    def test_busy_time_with_gap_counts_union(self):
        m = Machine(index=0, jobs=_jobs((0, 1), (5, 7)))
        assert m.busy_time == 3  # union measure, not hull length
        assert m.busy_interval == Interval(0, 7)
        assert len(m.busy_intervals) == 2

    def test_empty_machine(self):
        m = Machine(index=0, jobs=())
        assert m.busy_time == 0
        assert m.busy_interval is None

    def test_peak_parallelism(self):
        m = Machine(index=0, jobs=_jobs((0, 4), (1, 5), (2, 6)))
        assert m.peak_parallelism == 3
        assert m.load == 3

    def test_is_feasible(self):
        m = Machine(index=0, jobs=_jobs((0, 4), (1, 5)))
        assert m.is_feasible(2)
        assert not m.is_feasible(1)

    def test_can_accommodate(self):
        jobs = _jobs((0, 4), (1, 5))
        m = Machine(index=0, jobs=jobs)
        new = Job(id=10, interval=Interval(2, 3))
        assert m.can_accommodate(new, g=3)
        assert not m.can_accommodate(new, g=2)
        disjoint = Job(id=11, interval=Interval(10, 12))
        assert m.can_accommodate(disjoint, g=1)

    def test_active_job_count(self):
        m = Machine(index=0, jobs=_jobs((0, 2), (1, 3)))
        assert m.active_job_count(1.5) == 2
        assert m.active_job_count(9) == 0


class TestSchedule:
    def _schedule(self, g=2):
        instance = Instance.from_intervals([(0, 3), (1, 4), (5, 8)], g=g)
        machines = (
            Machine(index=0, jobs=instance.jobs[:2]),
            Machine(index=1, jobs=instance.jobs[2:]),
        )
        return Schedule(instance=instance, machines=machines, algorithm="manual")

    def test_total_busy_time(self):
        s = self._schedule()
        assert s.total_busy_time == 4 + 3
        assert s.cost == s.total_busy_time

    def test_num_machines(self):
        assert self._schedule().num_machines == 2

    def test_machine_of_and_assignment(self):
        s = self._schedule()
        assert s.machine_of(0) == 0
        assert s.machine_of(2) == 1
        assert s.assignment() == {0: 0, 1: 0, 2: 1}
        with pytest.raises(KeyError):
            s.machine_of(99)

    def test_machines_active_at(self):
        s = self._schedule()
        assert s.machines_active_at(2) == 1
        assert s.machines_active_at(6) == 1
        assert s.machines_active_at(4.5) == 0

    def test_validate_ok(self):
        self._schedule().validate()

    def test_validate_detects_overload(self):
        instance = Instance.from_intervals([(0, 3), (1, 4)], g=1)
        machines = (Machine(index=0, jobs=instance.jobs),)
        sched = Schedule(instance=instance, machines=machines)
        with pytest.raises(InfeasibleScheduleError):
            sched.validate()
        assert not sched.is_feasible()

    def test_validate_detects_missing_job(self):
        instance = Instance.from_intervals([(0, 3), (5, 6)], g=1)
        machines = (Machine(index=0, jobs=instance.jobs[:1]),)
        with pytest.raises(InfeasibleScheduleError):
            verify_schedule(Schedule(instance=instance, machines=machines))

    def test_validate_detects_duplicate_job(self):
        instance = Instance.from_intervals([(0, 3)], g=1)
        machines = (
            Machine(index=0, jobs=instance.jobs),
            Machine(index=1, jobs=instance.jobs),
        )
        with pytest.raises(InfeasibleScheduleError):
            verify_schedule(Schedule(instance=instance, machines=machines))

    def test_validate_detects_foreign_job(self):
        instance = Instance.from_intervals([(0, 3)], g=1)
        foreign = Job(id=42, interval=Interval(0, 1))
        machines = (Machine(index=0, jobs=instance.jobs + (foreign,)),)
        with pytest.raises(InfeasibleScheduleError):
            verify_schedule(Schedule(instance=instance, machines=machines))

    def test_num_contiguous_machines(self):
        instance = Instance.from_intervals([(0, 1), (5, 6)], g=2)
        machines = (Machine(index=0, jobs=instance.jobs),)
        sched = Schedule(instance=instance, machines=machines)
        assert sched.num_machines == 1
        assert sched.num_contiguous_machines == 2
        # cost is unchanged by splitting at the idle gap
        assert sched.total_busy_time == 2

    def test_summary(self):
        summary = self._schedule().summary()
        assert summary["machines"] == 2
        assert summary["algorithm"] == "manual"


class TestScheduleBuilder:
    def test_first_fit_helpers(self):
        instance = Instance.from_intervals([(0, 3), (1, 4), (2, 5)], g=2)
        b = ScheduleBuilder(instance, algorithm="test")
        for job in instance.jobs:
            b.assign_first_fit(job)
        sched = b.freeze()
        assert sched.num_machines == 2
        sched.validate()

    def test_fits_respects_g(self):
        instance = Instance.from_intervals([(0, 3), (1, 4), (2, 5)], g=2)
        b = ScheduleBuilder(instance)
        m = b.open_machine()
        b.assign(m, instance.jobs[0])
        b.assign(m, instance.jobs[1])
        assert not b.fits(m, instance.jobs[2])

    def test_fits_disjoint_job_always(self):
        instance = Instance.from_intervals([(0, 3), (10, 12)], g=1)
        b = ScheduleBuilder(instance)
        m = b.open_machine()
        b.assign(m, instance.jobs[0])
        assert b.fits(m, instance.jobs[1])

    def test_double_assign_rejected(self):
        instance = Instance.from_intervals([(0, 3)], g=1)
        b = ScheduleBuilder(instance)
        m = b.open_machine()
        b.assign(m, instance.jobs[0])
        with pytest.raises(InfeasibleScheduleError):
            b.assign(m, instance.jobs[0])

    def test_assign_to_missing_machine(self):
        instance = Instance.from_intervals([(0, 3)], g=1)
        b = ScheduleBuilder(instance)
        with pytest.raises(IndexError):
            b.assign(0, instance.jobs[0])

    def test_empty_machines_dropped_on_freeze(self):
        instance = Instance.from_intervals([(0, 3)], g=1)
        b = ScheduleBuilder(instance)
        b.open_machine()
        b.assign_new_machine([instance.jobs[0]])
        sched = b.freeze()
        assert sched.num_machines == 1
        assert sched.machines[0].index == 0

    def test_first_fitting_machine_none(self):
        instance = Instance.from_intervals([(0, 3), (1, 4)], g=1)
        b = ScheduleBuilder(instance)
        m = b.open_machine()
        b.assign(m, instance.jobs[0])
        assert b.first_fitting_machine(instance.jobs[1]) is None

    def test_jobs_on(self):
        instance = Instance.from_intervals([(0, 3)], g=1)
        b = ScheduleBuilder(instance)
        m = b.assign_new_machine(instance.jobs)
        assert list(b.jobs_on(m)) == list(instance.jobs)
