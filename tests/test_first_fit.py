"""Tests for the Section 2 FirstFit algorithm (Theorems 2.1, 2.4, 2.5)."""

import pytest

from busytime.algorithms import first_fit, first_fit_order
from busytime.algorithms.base import get_scheduler
from busytime.core.bounds import best_lower_bound
from busytime.core.instance import Instance
from busytime.exact import exact_optimal_cost
from busytime.generators import (
    bursty_instance,
    fig4_reference_schedule,
    firstfit_lower_bound_instance,
    firstfit_lower_bound_opt_cost,
    poisson_arrivals_instance,
    theorem24_parameters,
    uniform_random_instance,
)


class TestMechanics:
    def test_order_is_longest_first(self):
        inst = Instance.from_intervals([(0, 1), (0, 5), (0, 3)], g=2)
        order = first_fit_order(inst.jobs)
        assert [j.length for j in order] == [5, 3, 1]

    def test_order_tie_break_by_start(self):
        inst = Instance.from_intervals([(5, 7), (0, 2)], g=2)
        order = first_fit_order(inst.jobs)
        assert [j.start for j in order] == [0, 5]

    def test_single_job(self):
        inst = Instance.from_intervals([(2, 9)], g=3)
        sched = first_fit(inst)
        assert sched.num_machines == 1
        assert sched.total_busy_time == 7

    def test_empty_instance(self):
        sched = first_fit(Instance(jobs=(), g=2))
        assert sched.num_machines == 0
        assert sched.total_busy_time == 0

    def test_g1_uses_one_machine_per_conflict(self):
        inst = Instance.from_intervals([(0, 2), (1, 3)], g=1)
        sched = first_fit(inst)
        assert sched.num_machines == 2

    def test_schedule_feasible(self, random_medium):
        first_fit(random_medium).validate()

    def test_uses_first_machine_that_fits(self):
        # Three pairwise-disjoint jobs, g = 1: all should go to machine 0.
        inst = Instance.from_intervals([(0, 1), (2, 3), (4, 5)], g=1)
        sched = first_fit(inst)
        assert sched.num_machines == 1

    def test_opens_machine_when_full(self):
        inst = Instance.from_intervals([(0, 10)] * 5, g=2)
        sched = first_fit(inst)
        assert sched.num_machines == 3  # ceil(5/2)

    def test_meta_processing_order(self, random_small):
        sched = first_fit(random_small)
        order = sched.meta["processing_order"]
        assert sorted(order) == sorted(j.id for j in random_small.jobs)

    def test_registered(self):
        scheduler = get_scheduler("first_fit")
        assert scheduler.approximation_ratio == 4.0
        assert scheduler.paper_section == "Section 2"


class TestTheorem21UpperBound:
    """FirstFit <= 4 * OPT (measured against the exact optimum)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_small_uniform(self, seed):
        inst = uniform_random_instance(9, g=2, horizon=25, seed=seed)
        ff = first_fit(inst)
        opt = exact_optimal_cost(inst, initial_upper_bound=ff.total_busy_time)
        assert ff.total_busy_time <= 4.0 * opt + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_small_poisson(self, seed):
        inst = poisson_arrivals_instance(9, g=3, seed=seed)
        ff = first_fit(inst)
        opt = exact_optimal_cost(inst, initial_upper_bound=ff.total_busy_time)
        assert ff.total_busy_time <= 4.0 * opt + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_large_against_lower_bound(self, seed):
        # LB <= OPT, so staying under 4*LB is a strictly stronger check; it is
        # not implied by the theorem but holds comfortably on random inputs.
        inst = uniform_random_instance(150, g=5, seed=seed)
        ff = first_fit(inst)
        assert ff.total_busy_time <= 4.0 * best_lower_bound(inst) + 1e-9

    def test_never_below_lower_bound(self, random_medium):
        ff = first_fit(random_medium)
        assert ff.total_busy_time >= best_lower_bound(random_medium) - 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_bursty(self, seed):
        inst = bursty_instance(60, g=4, seed=seed)
        ff = first_fit(inst)
        assert ff.total_busy_time <= 4.0 * best_lower_bound(inst) + 1e-9


class TestTheorem24LowerBound:
    """The Fig. 4 family drives FirstFit's ratio towards 3."""

    @pytest.mark.parametrize("g", [3, 5, 10, 20])
    def test_ratio_matches_construction(self, g):
        eps_prime = 0.05
        inst = firstfit_lower_bound_instance(g, eps_prime)
        ff = first_fit(inst)
        opt_ub = fig4_reference_schedule(inst).total_busy_time
        ratio = ff.total_busy_time / opt_ub
        expected = (3 - 2 * eps_prime) * g / (g + 1)
        assert ratio == pytest.approx(expected, rel=1e-3)

    def test_ratio_exceeds_three_minus_eps(self):
        eps = 0.25
        eps_prime, g = theorem24_parameters(eps)
        inst = firstfit_lower_bound_instance(g, eps_prime)
        ff = first_fit(inst)
        opt_ub = firstfit_lower_bound_opt_cost(g, eps_prime)
        assert ff.total_busy_time / opt_ub > 3 - eps

    def test_reference_schedule_cost(self):
        g = 8
        inst = firstfit_lower_bound_instance(g, 0.05)
        ref = fig4_reference_schedule(inst)
        assert ref.total_busy_time == pytest.approx(g + 1, rel=1e-4)

    def test_unperturbed_instance_is_tie_break_dependent(self):
        # Without the length perturbation, our deterministic tie-breaking is
        # actually favourable: FirstFit stays near OPT (cost <= OPT + span).
        g = 10
        inst = firstfit_lower_bound_instance(g, 0.05, perturb=False)
        ff = first_fit(inst)
        opt_ub = fig4_reference_schedule(inst).total_busy_time
        assert ff.total_busy_time <= opt_ub + inst.span + 1e-9

    def test_theorem24_parameters_validation(self):
        with pytest.raises(ValueError):
            theorem24_parameters(0.0)
        with pytest.raises(ValueError):
            theorem24_parameters(1.5)
        eps_prime, g = theorem24_parameters(0.5)
        assert eps_prime == pytest.approx(0.125)
        assert g >= 11
