"""Tests for the command-line interface (busytime.cli)."""

import json

import pytest

from busytime.cli import build_parser, main
from busytime.io import (
    load_instance,
    load_schedule,
    load_solve_report,
    save_instance,
    save_traffic,
)
from busytime.generators import uniform_random_instance, uniform_traffic


@pytest.fixture
def instance_file(tmp_path):
    inst = uniform_random_instance(12, g=2, seed=1)
    path = tmp_path / "inst.json"
    save_instance(inst, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("generate", "schedule", "compare", "groom", "info", "algorithms"):
            args = parser.parse_args(
                [command] + (["x"] if command in ("schedule", "compare", "info") else [])
                + (["--output", "o.json"] if command == "generate" else [])
            )
            assert args.command == command

    def test_serve_exposes_every_admission_limit(self):
        args = build_parser().parse_args(
            ["serve", "--max-jobs", "50000", "--max-forced-jobs", "9000",
             "--max-time-limit", "10"]
        )
        assert args.max_jobs == 50000
        assert args.max_forced_jobs == 9000
        assert args.max_time_limit == 10.0


class TestGenerate:
    @pytest.mark.parametrize("family", ["uniform", "proper", "clique", "bounded"])
    def test_generates_loadable_instance(self, tmp_path, capsys, family):
        out = tmp_path / f"{family}.json"
        rc = main(
            ["generate", "--family", family, "--n", "15", "--g", "3", "--seed", "2", "--output", str(out)]
        )
        assert rc == 0
        inst = load_instance(out)
        assert inst.n >= 1
        assert "wrote" in capsys.readouterr().out

    def test_generate_defaults_without_n_and_seed(self, tmp_path):
        out = tmp_path / "default.json"
        assert main(["generate", "--family", "uniform", "--g", "2", "--output", str(out)]) == 0
        assert load_instance(out).n == 50

    def test_fig4_determined_by_g(self, tmp_path, capsys):
        out = tmp_path / "fig4.json"
        rc = main(["generate", "--family", "fig4", "--g", "3", "--output", str(out)])
        assert rc == 0
        inst = load_instance(out)
        assert inst.n == 3 * 4  # g * (g + 1) jobs, no randomness

    @pytest.mark.parametrize("extra", [["--n", "15"], ["--seed", "2"]])
    def test_fig4_rejects_inapplicable_arguments(self, tmp_path, extra):
        out = tmp_path / "fig4.json"
        with pytest.raises(SystemExit, match="fig4"):
            main(["generate", "--family", "fig4", "--g", "3", "--output", str(out)] + extra)


class TestSchedule:
    def test_schedule_prints_table_and_writes(self, instance_file, tmp_path, capsys):
        out = tmp_path / "sched.json"
        rc = main(["schedule", str(instance_file), "--algorithm", "first_fit", "--output", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "first_fit" in text and "busy_time" in text
        sched = load_schedule(out)
        assert sched.algorithm == "first_fit"

    def test_schedule_csv_requires_g(self, tmp_path):
        csv_path = tmp_path / "jobs.csv"
        csv_path.write_text("start,end\n0,5\n1,6\n")
        with pytest.raises(SystemExit):
            main(["schedule", str(csv_path)])

    def test_schedule_csv_with_g(self, tmp_path, capsys):
        csv_path = tmp_path / "jobs.csv"
        csv_path.write_text("start,end\n0,5\n1,6\n")
        assert main(["schedule", str(csv_path), "--g", "2"]) == 0
        assert "busy_time" in capsys.readouterr().out

    def test_unknown_algorithm_errors(self, instance_file, capsys):
        rc = main(["schedule", str(instance_file), "--algorithm", "nope"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "busytime: error:" in err and "nope" in err

    def test_schedule_with_objective(self, instance_file, tmp_path, capsys):
        out = tmp_path / "sched.json"
        rc = main(
            ["schedule", str(instance_file), "--objective", "machines_plus_busy",
             "--output", str(out)]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "machines_plus_busy" in text and "objective_value" in text

    def test_unknown_objective_is_a_parse_error(self, instance_file):
        with pytest.raises(SystemExit):
            main(["schedule", str(instance_file), "--objective", "nope"])

    def test_schedule_demand_instance_file(self, tmp_path, capsys):
        from busytime.core.instance import Instance
        from busytime.core.intervals import Interval, Job

        demanding = Instance(
            jobs=tuple(
                Job(id=i, interval=Interval(i, i + 4.0), demand=1 + i % 2)
                for i in range(8)
            ),
            g=3,
            name="cli-demand",
        )
        path = tmp_path / "demand.json"
        save_instance(demanding, path)
        out = tmp_path / "sched.json"
        rc = main(["schedule", str(path), "--output", str(out)])
        assert rc == 0
        sched = load_schedule(out)
        assert any(j.demand != 1 for j in sched.instance.jobs)
        sched.validate()  # demand-aware oracle on the round-tripped schedule

    def test_compare_default_lineup_filters_by_objective(self, instance_file, capsys):
        # proper_greedy/best_fit don't declare machines_plus_busy; the
        # default line-up must skip them instead of exiting 2, and --exact
        # must be skipped (the exact solver optimises busy time).
        rc = main(
            ["compare", str(instance_file), "--objective", "machines_plus_busy",
             "--exact"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "first_fit" in out and "auto" in out
        assert "proper_greedy" not in out and "best_fit" not in out
        assert "--exact is skipped" in out and "OPT=" not in out

    def test_demand_instance_with_non_aware_algorithm_errors(self, tmp_path, capsys):
        from busytime.core.instance import Instance
        from busytime.core.intervals import Interval, Job

        demanding = Instance(
            jobs=tuple(
                Job(id=i, interval=Interval(i, i + 4.0), demand=2)
                for i in range(6)
            ),
            g=3,
            name="cli-demand",
        )
        path = tmp_path / "demand.json"
        save_instance(demanding, path)
        rc = main(["schedule", str(path), "--algorithm", "machine_min"])
        assert rc == 2
        assert "not demand-aware" in capsys.readouterr().err


class TestSolve:
    @pytest.fixture
    def batch_dir(self, tmp_path):
        batch = tmp_path / "batch"
        batch.mkdir()
        for seed in range(3):
            save_instance(
                uniform_random_instance(10, g=2, seed=seed), batch / f"inst{seed}.json"
            )
        return batch

    def test_solve_batch_directory(self, batch_dir, capsys):
        rc = main(["solve", "--batch", str(batch_dir)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "solved 3 instances" in text
        assert "inst0.json" in text and "inst2.json" in text

    def test_solve_batch_writes_reports(self, batch_dir, tmp_path, capsys):
        out_dir = tmp_path / "reports"
        rc = main(
            ["solve", "--batch", str(batch_dir), "--exact", "--output-dir", str(out_dir)]
        )
        assert rc == 0
        reports = sorted(out_dir.glob("*.report.json"))
        assert len(reports) == 3
        report = load_solve_report(reports[0])
        assert report.cost >= report.lower_bound - 1e-9
        assert report.optimum is not None

    def test_solve_explicit_files_and_workers(self, batch_dir, capsys):
        files = sorted(str(p) for p in batch_dir.glob("*.json"))
        rc = main(["solve", *files, "--workers", "2", "--algorithm", "first_fit"])
        assert rc == 0
        assert "first_fit" in capsys.readouterr().out

    def test_solve_requires_input(self):
        with pytest.raises(SystemExit):
            main(["solve"])

    def test_solve_rejects_non_directory_batch(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["solve", "--batch", str(tmp_path / "missing")])


class TestCompare:
    def test_compare_with_exact(self, instance_file, capsys):
        rc = main(["compare", str(instance_file), "--exact", "--exact-limit", "14"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "ratio_vs_opt" in text
        assert "auto" in text

    def test_compare_explicit_algorithms(self, instance_file, capsys):
        rc = main(["compare", str(instance_file), "--algorithms", "first_fit", "singleton"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "singleton" in text


class TestGroom:
    def test_groom_generated_traffic(self, tmp_path, capsys):
        out = tmp_path / "assignment.json"
        rc = main(
            ["groom", "--family", "uniform", "--nodes", "20", "--lightpaths", "30",
             "--g", "3", "--seed", "4", "--output", str(out)]
        )
        assert rc == 0
        assert "regenerators" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert len(data["colors"]) == 30

    def test_groom_from_file(self, tmp_path, capsys):
        traffic = uniform_traffic(15, 20, g=2, seed=8)
        path = tmp_path / "traffic.json"
        save_traffic(traffic, path)
        rc = main(["groom", "--traffic", str(path)])
        assert rc == 0
        assert "wavelengths" in capsys.readouterr().out


class TestInfoAndAlgorithms:
    def test_info(self, instance_file, capsys):
        assert main(["info", str(instance_file)]) == 0
        text = capsys.readouterr().out
        assert "clique number" in text
        assert "dispatcher choice" in text

    def test_info_with_g_override(self, instance_file, capsys):
        assert main(["info", str(instance_file), "--g", "7"]) == 0
        assert "7" in capsys.readouterr().out

    def test_algorithms_listing(self, capsys):
        assert main(["algorithms"]) == 0
        text = capsys.readouterr().out
        assert "first_fit" in text and "Section 2" in text


class TestSimulate:
    def test_simulate_surfaces_all_three_policy_reports(self, capsys):
        rc = main(
            ["simulate", "--family", "poisson", "--n", "60", "--g", "3",
             "--seed", "2", "--churn", "0.3"]
        )
        assert rc == 0
        text = capsys.readouterr().out
        for policy in ("never_migrate", "rolling_horizon", "migration_budget"):
            assert policy in text
        assert "realized_cost" in text and "gap_vs_offline" in text

    def test_simulate_writes_report_json(self, tmp_path, capsys):
        out = tmp_path / "reports.json"
        rc = main(
            ["simulate", "--family", "uniform", "--n", "40", "--seed", "1",
             "--output", str(out)]
        )
        assert rc == 0
        reports = json.loads(out.read_text())
        assert [r["policy"] for r in reports] == [
            "never_migrate", "rolling_horizon", "migration_budget",
        ]
        assert all(r["realized_cost"] >= 0 for r in reports)
        assert all(r["oracle_checks"] >= 1 for r in reports)

    def test_simulate_from_instance_file(self, instance_file, capsys):
        rc = main(
            ["simulate", "--instance", str(instance_file), "--churn", "0.5",
             "--algorithm", "auto"]
        )
        assert rc == 0
        assert "dynamic replay" in capsys.readouterr().out

    def test_simulate_unknown_algorithm_errors(self, capsys):
        rc = main(["simulate", "--n", "10", "--algorithm", "nope"])
        assert rc == 2
        assert "unknown scheduler" in capsys.readouterr().err


class TestErrorPaths:
    """User-facing failures exit non-zero with a one-line message, never a
    traceback (the satellite contract of the service PR)."""

    def test_missing_instance_file(self, capsys):
        rc = main(["schedule", "no-such-file.json"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("busytime: error:")
        assert err.count("\n") == 1  # exactly one line

    def test_unknown_algorithm_lists_available(self, instance_file, capsys):
        rc = main(["schedule", str(instance_file), "--algorithm", "definitely_not"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown scheduler" in err and "first_fit" in err

    def test_malformed_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json at all")
        rc = main(["schedule", str(bad)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("busytime: error:")
        assert "Traceback" not in err

    def test_wrong_document_format(self, tmp_path, capsys):
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"format": "something-else", "version": 1}))
        rc = main(["schedule", str(wrong)])
        assert rc == 2
        assert "busytime-instance" in capsys.readouterr().err

    def test_non_object_json_document(self, tmp_path, capsys):
        listy = tmp_path / "list.json"
        listy.write_text("[1, 2, 3]")
        rc = main(["schedule", str(listy)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "expected a JSON object" in err and "Traceback" not in err

    def test_broken_pipe_is_a_silent_success(self):
        # `busytime ... | head` truncating output is not an error: exit 0,
        # no "Exception ignored" from the interpreter's exit-time re-flush.
        # Run as a subprocess — the handler redirects the real stdout fd,
        # which must not happen inside the pytest process.
        import os
        import subprocess
        import sys as _sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [_sys.executable, "-m", "busytime.cli", "algorithms"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        )
        proc.stdout.close()  # the reader disappears immediately
        rc = proc.wait(timeout=60)
        stderr = proc.stderr.read().decode()
        assert rc == 0, stderr
        assert "Exception ignored" not in stderr
        assert "Traceback" not in stderr

    def test_internal_infeasibility_keeps_its_traceback(self, instance_file, monkeypatch):
        # The oracle rejecting a schedule is a bug report, not user error:
        # it must escape the one-line handler with its traceback intact.
        import busytime.cli as cli
        from busytime.core.schedule import InfeasibleScheduleError

        def boom(args):
            raise InfeasibleScheduleError("machine 0 exceeds parallelism")

        monkeypatch.setattr(cli, "_cmd_schedule", boom)
        with pytest.raises(InfeasibleScheduleError):
            main(["schedule", str(instance_file)])

    def test_info_missing_file(self, capsys):
        rc = main(["info", "missing.json"])
        assert rc == 2
        assert "busytime: error:" in capsys.readouterr().err

    def test_submit_unreachable_service(self, instance_file, capsys):
        # Port 1 is never serving; the client error must stay one line.
        rc = main(
            ["submit", str(instance_file), "--url", "http://127.0.0.1:1",
             "--timeout", "1"]
        )
        assert rc == 2
        assert "busytime: error:" in capsys.readouterr().err
