"""Tests for the local-search improvement pass (busytime.algorithms.local_search)."""

import pytest

from busytime.algorithms import (
    first_fit,
    improve,
    local_search_first_fit,
    singleton,
)
from busytime.algorithms.base import get_scheduler
from busytime.core.bounds import best_lower_bound
from busytime.core.instance import Instance
from busytime.exact import exact_optimal_cost
from busytime.generators import (
    clique_instance,
    firstfit_lower_bound_instance,
    uniform_random_instance,
)


class TestImprove:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_worse_and_feasible(self, seed):
        inst = uniform_random_instance(60, g=3, seed=seed)
        base = first_fit(inst)
        improved = improve(base)
        improved.validate()
        assert improved.total_busy_time <= base.total_busy_time + 1e-9
        assert improved.total_busy_time >= best_lower_bound(inst) - 1e-9

    def test_improves_singleton_substantially(self):
        inst = clique_instance(40, g=4, seed=1)
        base = singleton(inst)
        improved = improve(base)
        # merging alone should roughly divide the cost by g on a clique
        assert improved.total_busy_time < 0.5 * base.total_busy_time

    def test_fig4_schedule_is_a_local_optimum(self):
        # On the Fig. 4 family every single relocation, merge or swap is
        # infeasible or non-improving: the FirstFit schedule is a local
        # optimum, so the paper's lower-bound family survives cheap
        # post-optimisation.  (Escaping it needs a multi-job rearrangement.)
        inst = firstfit_lower_bound_instance(8)
        base = first_fit(inst)
        improved = improve(base)
        assert improved.total_busy_time == pytest.approx(base.total_busy_time)
        stats = improved.meta["local_search"]
        assert stats["relocations"] == stats["merges"] == stats["swaps"] == 0

    def test_stats_recorded(self):
        inst = clique_instance(20, g=4, seed=2)
        improved = improve(singleton(inst))
        stats = improved.meta["local_search"]
        assert stats["merges"] + stats["relocations"] > 0
        assert improved.algorithm.endswith("+ls")

    def test_local_optimum_is_stable(self):
        inst = uniform_random_instance(30, g=2, seed=3)
        once = improve(first_fit(inst))
        twice = improve(once)
        assert twice.total_busy_time == pytest.approx(once.total_busy_time)

    def test_empty_and_single_job(self):
        assert improve(first_fit(Instance(jobs=(), g=2))).num_machines == 0
        single = Instance.from_intervals([(0, 5)], g=2)
        improved = improve(first_fit(single))
        assert improved.total_busy_time == pytest.approx(5.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_never_beats_exact_optimum(self, seed):
        inst = uniform_random_instance(9, g=2, horizon=20, seed=seed)
        improved = improve(first_fit(inst))
        opt = exact_optimal_cost(inst)
        assert improved.total_busy_time >= opt - 1e-9


class TestRegisteredVariant:
    def test_registered(self):
        scheduler = get_scheduler("first_fit_ls")
        assert scheduler.approximation_ratio == 4.0

    @pytest.mark.parametrize("seed", range(3))
    def test_never_worse_than_plain_first_fit(self, seed):
        inst = uniform_random_instance(80, g=4, seed=seed)
        assert (
            local_search_first_fit(inst).total_busy_time
            <= first_fit(inst).total_busy_time + 1e-9
        )
