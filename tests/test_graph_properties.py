"""Unit tests for busytime.graphs.properties and b-matching."""

import networkx as nx
import pytest

from busytime.core.instance import Instance
from busytime.graphs.bmatching import (
    BMatchingResult,
    is_valid_b_matching,
    max_bipartite_b_matching,
)
from busytime.graphs.properties import (
    InstanceProfile,
    is_clique_instance,
    is_connected_instance,
    is_laminar_instance,
    is_proper_instance,
    laminar_forest,
    profile_instance,
)
from busytime.generators import clique_instance, proper_instance


class TestProfile:
    def test_profile_fields(self):
        inst = Instance.from_intervals([(0, 2), (1, 3), (10, 11)], g=2, name="p")
        profile = profile_instance(inst)
        assert profile.n == 3
        assert profile.g == 2
        assert profile.num_components == 2
        assert profile.proper
        assert not profile.clique

    def test_recommended_algorithm_clique(self):
        inst = clique_instance(10, g=2, seed=0)
        assert profile_instance(inst).recommended_algorithm == "clique"

    def test_recommended_algorithm_proper(self):
        inst = proper_instance(10, g=2, seed=0)
        rec = profile_instance(inst).recommended_algorithm
        assert rec in ("proper_greedy", "clique")

    def test_recommended_algorithm_general(self):
        inst = Instance.from_intervals(
            [(0, 100), (1, 2), (3, 4), (50, 51), (200, 300)], g=2
        )
        assert profile_instance(inst).recommended_algorithm == "first_fit"

    def test_predicate_wrappers(self):
        inst = Instance.from_intervals([(0, 5), (1, 6)], g=2)
        assert is_clique_instance(inst)
        assert is_proper_instance(inst)
        assert is_connected_instance(inst)
        assert is_laminar_instance(Instance.from_intervals([(0, 9), (1, 2)], g=2))


class TestLaminarForest:
    def test_forest_structure(self):
        inst = Instance.from_intervals([(0, 10), (1, 4), (2, 3), (5, 9)], g=2)
        forest = laminar_forest(inst)
        assert set(forest.nodes) == {0, 1, 2, 3}
        assert forest.has_edge(0, 1)
        assert forest.has_edge(1, 2)
        assert forest.has_edge(0, 3)
        assert forest.in_degree(0) == 0

    def test_non_laminar_rejected(self):
        inst = Instance.from_intervals([(0, 5), (3, 8)], g=2)
        with pytest.raises(ValueError):
            laminar_forest(inst)


class TestBMatching:
    def test_simple_perfect_matching(self):
        result = max_bipartite_b_matching(
            {"m": 2}, {"a": 1, "b": 1}, [("m", "a"), ("m", "b")]
        )
        assert result.size == 2
        assert set(result.edges) == {("m", "a"), ("m", "b")}

    def test_capacity_limits_matching(self):
        result = max_bipartite_b_matching(
            {"m": 1}, {"a": 1, "b": 1}, [("m", "a"), ("m", "b")]
        )
        assert result.size == 1

    def test_multiple_machines(self):
        left = {0: 2, 1: 2}
        right = {h: 1 for h in range(4)}
        edges = [(m, h) for m in left for h in right]
        result = max_bipartite_b_matching(left, right, edges)
        assert result.size == 4
        assert is_valid_b_matching(result, left, right, edges)

    def test_no_edges(self):
        result = max_bipartite_b_matching({0: 1}, {0: 1}, [])
        assert result.size == 0

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(KeyError):
            max_bipartite_b_matching({0: 1}, {0: 1}, [(0, 9)])

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            max_bipartite_b_matching({0: -1}, {0: 1}, [(0, 0)])

    def test_result_accessors(self):
        result = max_bipartite_b_matching(
            {"m": 2}, {"a": 1, "b": 1}, [("m", "a"), ("m", "b")]
        )
        assert sorted(result.matched_right_of("m")) == ["a", "b"]
        assert result.matched_left_of("a") == ["m"]

    def test_is_valid_rejects_duplicate_edge(self):
        result = BMatchingResult(edges=(("m", "a"), ("m", "a")), size=2)
        assert not is_valid_b_matching(result, {"m": 2}, {"a": 2}, [("m", "a")])

    def test_is_valid_rejects_overloaded_vertex(self):
        result = BMatchingResult(edges=(("m", "a"), ("m", "b")), size=2)
        assert not is_valid_b_matching(
            result, {"m": 1}, {"a": 1, "b": 1}, [("m", "a"), ("m", "b")]
        )
