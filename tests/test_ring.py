"""Tests for ring-topology grooming (busytime.optical.ring)."""

import numpy as np
import pytest

from busytime.algorithms import first_fit
from busytime.optical.ring import (
    RingLightpath,
    RingNetwork,
    RingTraffic,
    RingWavelengthAssignment,
    groom_ring,
)


def _random_ring_traffic(num_nodes=24, n=40, g=3, seed=0, wrap_every=4):
    rng = np.random.default_rng(seed)
    pairs = []
    for i in range(n):
        a, b = sorted(int(x) for x in rng.choice(num_nodes, size=2, replace=False))
        if i % wrap_every == 0:
            a, b = b, a  # clockwise arc wrapping through N-1 -> 0
        pairs.append((a, b))
    return RingTraffic.from_pairs(RingNetwork(num_nodes), pairs, g=g)


class TestRingNetwork:
    def test_links(self):
        net = RingNetwork(4)
        assert net.num_links == 4
        assert (3, 0) in net.links

    def test_too_small(self):
        with pytest.raises(ValueError):
            RingNetwork(2)


class TestRingLightpath:
    def test_non_wrapping(self):
        p = RingLightpath(id=0, a=1, b=4, num_nodes=8)
        assert p.hops == 3
        assert not p.wraps
        assert p.intermediate_nodes() == [2, 3]
        assert p.links() == [(1, 2), (2, 3), (3, 4)]

    def test_wrapping(self):
        p = RingLightpath(id=0, a=6, b=2, num_nodes=8)
        assert p.hops == 4
        assert p.wraps
        assert p.intermediate_nodes() == [7, 0, 1]
        assert (7, 0) in p.links()

    def test_uses_link(self):
        p = RingLightpath(id=0, a=6, b=2, num_nodes=8)
        assert p.uses_link((7, 0))
        assert not p.uses_link((2, 3))

    def test_rotation_preserves_hops(self):
        p = RingLightpath(id=0, a=6, b=2, num_nodes=8)
        q = p.rotated(3)
        assert q.hops == p.hops

    def test_invalid(self):
        with pytest.raises(ValueError):
            RingLightpath(id=0, a=3, b=3, num_nodes=8)
        with pytest.raises(ValueError):
            RingLightpath(id=0, a=9, b=2, num_nodes=8)


class TestRingTraffic:
    def test_link_load_and_cut(self):
        net = RingNetwork(6)
        traffic = RingTraffic.from_pairs(net, [(0, 3), (1, 4), (5, 2)], g=2)
        assert traffic.link_load((1, 2)) == 3
        cut = traffic.min_load_link()
        assert traffic.link_load(cut) <= min(
            traffic.link_load(link) for link in net.links
        )

    def test_regenerator_demand(self):
        net = RingNetwork(6)
        traffic = RingTraffic.from_pairs(net, [(0, 3), (4, 1)], g=2)
        assert traffic.total_regenerator_demand() == 2 + 2

    def test_validation(self):
        net = RingNetwork(6)
        with pytest.raises(ValueError):
            RingTraffic.from_pairs(net, [(0, 3)], g=0)
        with pytest.raises(ValueError):
            RingTraffic(
                network=net,
                lightpaths=(RingLightpath(id=0, a=0, b=2, num_nodes=7),),
                g=1,
            )


class TestGroomRing:
    @pytest.mark.parametrize("seed", range(4))
    def test_assignment_valid(self, seed):
        traffic = _random_ring_traffic(seed=seed)
        assignment = groom_ring(traffic)
        assignment.validate()
        assert set(assignment.colors) == {p.id for p in traffic}

    def test_regenerators_never_exceed_no_grooming(self):
        traffic = _random_ring_traffic(seed=9, g=4)
        assignment = groom_ring(traffic)
        assert assignment.regenerators() <= traffic.total_regenerator_demand()

    def test_grooming_factor_helps(self):
        base = None
        for g in (1, 4):
            traffic = _random_ring_traffic(seed=5, g=g)
            regens = groom_ring(traffic).regenerators()
            if g == 1:
                base = regens
        assert regens <= base

    def test_explicit_cut(self):
        traffic = _random_ring_traffic(seed=2)
        assignment = groom_ring(traffic, cut=(0, 1))
        assignment.validate()
        assert assignment.meta["cut"] == (0, 1)

    def test_invalid_cut_rejected(self):
        traffic = _random_ring_traffic(seed=2)
        with pytest.raises(ValueError):
            groom_ring(traffic, cut=(0, 5))

    def test_custom_path_algorithm(self):
        traffic = _random_ring_traffic(seed=3)
        assignment = groom_ring(traffic, path_algorithm=first_fit)
        assignment.validate()

    def test_no_crossing_lightpaths(self):
        # all lightpaths avoid the (N-1, 0) link -> pure path behaviour
        net = RingNetwork(10)
        traffic = RingTraffic.from_pairs(net, [(0, 4), (2, 7), (5, 9)], g=2)
        assignment = groom_ring(traffic, cut=(9, 0))
        assignment.validate()
        assert assignment.meta["crossing"] == 0

    def test_all_crossing_lightpaths(self):
        # every lightpath wraps through (N-1, 0): the clique branch handles all
        net = RingNetwork(10)
        traffic = RingTraffic.from_pairs(net, [(8, 2), (7, 1), (9, 3), (6, 4)], g=2)
        assignment = groom_ring(traffic, cut=(9, 0))
        assignment.validate()
        assert assignment.meta["path_side"] == 0
        assert assignment.num_wavelengths >= 2  # 4 crossing lightpaths, g = 2

    def test_missing_color_rejected(self):
        traffic = _random_ring_traffic(n=3, seed=1)
        with pytest.raises(ValueError):
            RingWavelengthAssignment(traffic=traffic, colors={0: 0})
