"""Tests for the analysis harness: ratios, certificates, runner, reporting."""

import pytest

from busytime.algorithms import first_fit, proper_greedy, singleton
from busytime.analysis import (
    ExperimentRunner,
    compare_algorithms,
    format_measurements,
    format_table,
    lemma23_records,
    measure,
    ratio_to_lower_bound,
    ratio_to_optimum,
    summarize_ratios,
    verify_lemma23,
    verify_observation22,
)
from busytime.analysis.certificates import find_observation22_witness
from busytime.core.instance import Instance
from busytime.generators import (
    firstfit_lower_bound_instance,
    proper_instance,
    uniform_random_instance,
)


class TestRatios:
    def test_measure_with_optimum(self, tiny_instance):
        m = measure(tiny_instance, first_fit, compute_optimum=True)
        assert m.cost >= m.lower_bound
        assert m.optimum == pytest.approx(11.0)
        assert m.ratio_opt >= 1.0
        assert m.ratio_lb >= m.ratio_opt - 1e-12

    def test_measure_without_optimum(self, random_medium):
        m = measure(random_medium, first_fit)
        assert m.optimum is None
        assert m.ratio_opt is None
        assert m.ratio_lb >= 1.0

    def test_ratio_helpers(self, tiny_instance):
        sched = first_fit(tiny_instance)
        assert ratio_to_lower_bound(sched) >= 1.0
        assert ratio_to_optimum(sched) == pytest.approx(
            sched.total_busy_time / 11.0
        )

    def test_ratio_empty_instance(self):
        inst = Instance(jobs=(), g=2)
        sched = first_fit(inst)
        assert ratio_to_lower_bound(sched) == 1.0

    def test_as_dict_keys(self, tiny_instance):
        m = measure(tiny_instance, first_fit, compute_optimum=True)
        d = m.as_dict()
        assert {"algorithm", "cost", "ratio_lb", "ratio_opt"} <= set(d)


class TestCertificates:
    def test_observation22_on_firstfit(self):
        inst = uniform_random_instance(25, g=2, seed=5)
        sched = first_fit(inst)
        witnesses = verify_observation22(sched)
        g = inst.g
        by_id = {j.id: j for j in inst.jobs}
        for w in witnesses:
            assert len(w.witness_job_ids) == g
            job = by_id[w.job_id]
            assert job.start - 1e-9 <= w.time <= job.end + 1e-9
            for wid in w.witness_job_ids:
                witness = by_id[wid]
                assert witness.active_at(w.time)
                assert witness.length >= job.length - 1e-9

    def test_observation22_witness_absent(self):
        from busytime.core.intervals import Interval, Job
        from busytime.core.schedule import Machine

        job = Job(id=0, interval=Interval(0, 5))
        machine = Machine(index=0, jobs=(Job(id=1, interval=Interval(0, 1)),))
        assert find_observation22_witness(job, machine, g=1) is None

    def test_observation22_fails_on_non_firstfit_schedule(self):
        # singleton puts overlapping jobs on separate machines without the
        # "earlier machines are full of longer jobs" property.
        inst = Instance.from_intervals([(0, 10), (0, 1)], g=2)
        sched = singleton(inst)
        with pytest.raises(AssertionError):
            verify_observation22(sched)

    @pytest.mark.parametrize("seed", range(4))
    def test_lemma23_on_random_firstfit(self, seed):
        inst = uniform_random_instance(60, g=3, seed=seed)
        sched = first_fit(inst)
        assert verify_lemma23(sched)

    def test_lemma23_on_adversarial_firstfit(self):
        sched = first_fit(firstfit_lower_bound_instance(8))
        records = lemma23_records(sched)
        assert len(records) == sched.num_machines - 1
        assert all(r.holds for r in records)
        assert all(r.slack >= -1e-9 for r in records)


class TestExperimentRunner:
    def test_run_instance_accumulates(self, random_small):
        runner = ExperimentRunner(
            {"first_fit": first_fit, "proper_greedy": proper_greedy},
            compute_optimum=True,
        )
        results = runner.run_instance(random_small, {"n": random_small.n})
        assert len(results) == 2
        assert len(runner.results) == 2
        assert all(r.optimum is not None for r in results)
        assert all(r.ratio_opt >= 1.0 - 1e-12 for r in results)

    def test_run_grid(self):
        runner = ExperimentRunner({"first_fit": first_fit})
        grid = [{"n": 10, "g": 2, "seed": s} for s in range(3)]
        results = runner.run_grid(
            lambda n, g, seed: uniform_random_instance(n, g, seed=seed), grid
        )
        assert len(results) == 3
        assert runner.worst_ratio("first_fit") >= 1.0
        assert runner.mean_ratio("first_fit") >= 1.0

    def test_unknown_algorithm_stats(self):
        runner = ExperimentRunner({"first_fit": first_fit})
        with pytest.raises(KeyError):
            runner.worst_ratio("nope")

    def test_requires_algorithms(self):
        with pytest.raises(ValueError):
            ExperimentRunner({})

    def test_compare_algorithms(self, random_small):
        results = compare_algorithms(
            random_small, {"ff": first_fit, "single": singleton}
        )
        costs = {r.algorithm: r.cost for r in results}
        assert costs["ff"] <= costs["single"] + 1e-9

    def test_table_rendering(self, random_small):
        runner = ExperimentRunner({"first_fit": first_fit})
        runner.run_instance(random_small)
        text = runner.table(title="demo")
        assert "demo" in text and "first_fit" in text


class TestReporting:
    def test_format_table_basic(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 10, "b": None}]
        text = format_table(rows, precision=2)
        assert "2.35" in text
        assert "-" in text  # None rendered as dash

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="t")

    def test_format_table_bool(self):
        text = format_table([{"ok": True}])
        assert "yes" in text

    def test_format_measurements_and_summary(self, random_small, proper_small):
        ms = [
            measure(random_small, first_fit, compute_optimum=True),
            measure(proper_small, proper_greedy, compute_optimum=False),
        ]
        text = format_measurements(ms, title="ratios")
        assert "ratios" in text and "first_fit" in text
        summary = summarize_ratios(ms)
        assert "first_fit" in summary and "proper_greedy" in summary
        assert summary["first_fit"]["max_ratio_lb"] >= 1.0
