"""Tests for the Section 3.1 greedy on proper interval graphs (Theorem 3.1)."""

import pytest

from busytime.algorithms import first_fit, proper_greedy
from busytime.algorithms.base import get_scheduler
from busytime.core.bounds import best_lower_bound, span_bound
from busytime.core.instance import Instance
from busytime.exact import exact_optimal_cost
from busytime.generators import (
    fig4_reference_schedule,
    proper_instance,
    ranked_shift_proper_instance,
    stairs_instance,
    unit_interval_instance,
)


class TestMechanics:
    def test_single_machine_when_it_fits(self):
        inst = stairs_instance(4, g=4, length=10, step=1)
        sched = proper_greedy(inst)
        assert sched.num_machines == 1
        assert sched.total_busy_time == pytest.approx(13.0)

    def test_opens_new_machine_on_gplus1_clique(self):
        inst = Instance.from_intervals([(0, 10), (1, 11), (2, 12)], g=2)
        sched = proper_greedy(inst)
        assert sched.num_machines == 2

    def test_strict_rejects_non_proper(self):
        inst = Instance.from_intervals([(0, 10), (2, 3)], g=2)
        with pytest.raises(ValueError):
            proper_greedy(inst, strict=True)

    def test_non_strict_still_feasible_on_non_proper(self):
        inst = Instance.from_intervals([(0, 10), (2, 3), (1, 9), (4, 5)], g=2)
        sched = proper_greedy(inst)
        sched.validate()

    def test_empty(self):
        assert proper_greedy(Instance(jobs=(), g=2)).num_machines == 0

    def test_meta_records_properness(self, proper_small):
        assert proper_greedy(proper_small).meta["proper_instance"] is True

    def test_registered(self):
        scheduler = get_scheduler("proper_greedy")
        assert scheduler.approximation_ratio == 2.0
        assert scheduler.instance_class == "proper"


class TestTheorem31:
    """Greedy <= OPT + span <= 2 * OPT on proper instances."""

    @pytest.mark.parametrize("seed", range(8))
    def test_alg_le_opt_plus_span_small(self, seed):
        inst = proper_instance(10, g=2, horizon=25, seed=seed)
        sched = proper_greedy(inst)
        opt = exact_optimal_cost(inst, initial_upper_bound=sched.total_busy_time)
        assert sched.total_busy_time <= opt + span_bound(inst) + 1e-9
        assert sched.total_busy_time <= 2.0 * opt + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_two_approx_large_against_lb(self, seed):
        inst = proper_instance(200, g=5, seed=seed)
        sched = proper_greedy(inst)
        lb = best_lower_bound(inst)
        # ALG <= LB + span <= 2*LB would be too strong in general; the proven
        # inequality ALG <= OPT + span, relaxed through OPT >= LB, gives
        # ALG <= ratio*OPT with ratio <= 1 + span/OPT <= 1 + span/LB.
        assert sched.total_busy_time <= lb + span_bound(inst) + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_unit_intervals(self, seed):
        inst = unit_interval_instance(60, g=3, seed=seed)
        sched = proper_greedy(inst)
        assert sched.total_busy_time <= best_lower_bound(inst) + span_bound(inst) + 1e-9

    def test_machine_count_claim(self, proper_small):
        """Claim 2 of Theorem 3.1: M^A_t <= M^O_t + 1 <= ceil(N_t/g) + 1."""
        sched = proper_greedy(proper_small)
        import numpy as np

        lo, hi = proper_small.horizon
        for t in np.linspace(lo, hi, 50):
            nt = proper_small.load_at(t)
            mat = sched.machines_active_at(t)
            assert mat <= -(-nt // proper_small.g) + 1


class TestSeparationFromFirstFit:
    """The ranked-shift proper variant: FirstFit ~3-bad, Greedy <= 2."""

    @pytest.mark.parametrize("g", [5, 10, 20])
    def test_greedy_beats_firstfit(self, g):
        inst = ranked_shift_proper_instance(g)
        assert inst.is_proper()
        ref = fig4_reference_schedule(inst).total_busy_time
        ff_ratio = first_fit(inst).total_busy_time / ref
        greedy_ratio = proper_greedy(inst).total_busy_time / ref
        assert greedy_ratio <= 2.0 + 1e-6
        assert ff_ratio > 2.3
        assert ff_ratio > greedy_ratio
