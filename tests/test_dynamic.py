"""Tests for the dynamic-workload subsystem.

Covers the trace model (:mod:`busytime.core.events`), the trace generators
(:mod:`busytime.generators.dynamic_traces`), the builder's ``unassign``
mutation path and the simulator with its three policies
(:mod:`busytime.extensions.dynamic`).
"""

from __future__ import annotations

import pytest

from busytime.core.events import (
    ARRIVE,
    DEPART,
    DynamicTrace,
    TraceEvent,
    TraceValidationError,
)
from busytime.core.instance import Instance
from busytime.core.intervals import Interval, Job, span
from busytime.core.schedule import ScheduleBuilder
from busytime.extensions.dynamic import (
    MigrationBudget,
    NeverMigrate,
    RollingHorizon,
    SimulationPolicy,
    Simulator,
    simulate,
    standard_policies,
)
from busytime.extensions.online import online_first_fit
from busytime.generators import (
    DYNAMIC_TRACE_FAMILIES,
    adversarial_dynamic_trace,
    bursty_dynamic_trace,
    optical_dynamic_trace,
    poisson_dynamic_trace,
    trace_from_instance,
    uniform_dynamic_trace,
    uniform_random_instance,
)


def _job(jid: int, start: float, end: float) -> Job:
    return Job(id=jid, interval=Interval(start, end))


def _trace(events, g=2, name="t") -> DynamicTrace:
    return DynamicTrace(events=tuple(events), g=g, name=name)


class TestTraceModel:
    def test_events_order_arrivals_before_departures(self):
        job = _job(0, 1.0, 1.0)
        arrive = TraceEvent(time=1.0, kind=ARRIVE, job=job)
        depart = TraceEvent(time=1.0, kind=DEPART, job=job)
        assert arrive < depart

    def test_sorted_events_break_ties_by_job_id(self):
        # sorted() must yield exactly the order validate() demands, job ids
        # included — simultaneous same-kind events follow ids.
        a, b = _job(5, 0.0, 2.0), _job(1, 0.0, 3.0)
        events = sorted(
            [
                TraceEvent(0.0, ARRIVE, a),
                TraceEvent(0.0, ARRIVE, b),
                TraceEvent(2.0, DEPART, a),
                TraceEvent(3.0, DEPART, b),
            ]
        )
        assert [e.job.id for e in events] == [1, 5, 5, 1]
        _trace(events).validate()

    def test_validate_accepts_well_formed_trace(self):
        a, b = _job(0, 0.0, 4.0), _job(1, 1.0, 3.0)
        trace = _trace(
            [
                TraceEvent(0.0, ARRIVE, a),
                TraceEvent(1.0, ARRIVE, b),
                TraceEvent(2.0, DEPART, b),  # early cancellation
                TraceEvent(4.0, DEPART, a),
            ]
        )
        trace.validate()
        assert trace.num_jobs == 2
        assert trace.num_events == 4
        assert trace.horizon == (0.0, 4.0)

    @pytest.mark.parametrize(
        "events,message",
        [
            (
                [
                    TraceEvent(1.0, ARRIVE, _job(0, 1.0, 2.0)),
                    TraceEvent(0.5, DEPART, _job(0, 1.0, 2.0)),
                ],
                "out of order",
            ),
            (
                [
                    TraceEvent(0.0, ARRIVE, _job(0, 0.0, 2.0)),
                    TraceEvent(0.0, ARRIVE, _job(0, 0.0, 2.0)),
                ],
                "arrives twice",
            ),
            (
                [TraceEvent(1.0, DEPART, _job(0, 0.0, 2.0))],
                "departs before arriving",
            ),
            (
                [
                    TraceEvent(0.0, ARRIVE, _job(0, 0.0, 2.0)),
                    TraceEvent(3.0, DEPART, _job(0, 0.0, 2.0)),
                ],
                "outside",
            ),
            ([TraceEvent(0.5, ARRIVE, _job(0, 0.0, 2.0))], "starts at"),
            ([TraceEvent(0.0, ARRIVE, _job(0, 0.0, 2.0))], "never depart"),
        ],
        ids=["order", "double-arrive", "orphan-depart", "late-depart",
             "arrival-not-at-start", "never-departs"],
    )
    def test_validate_rejects_malformed_traces(self, events, message):
        with pytest.raises(TraceValidationError, match=message):
            _trace(events).validate()

    def test_effective_instance_truncates_early_departures(self):
        a, b = _job(0, 0.0, 4.0), _job(1, 1.0, 3.0)
        trace = _trace(
            [
                TraceEvent(0.0, ARRIVE, a),
                TraceEvent(1.0, ARRIVE, b),
                TraceEvent(2.0, DEPART, b),
                TraceEvent(4.0, DEPART, a),
            ]
        )
        effective = trace.effective_instance()
        assert effective.g == 2
        by_id = {j.id: j for j in effective.jobs}
        assert by_id[0].interval.as_tuple() == (0.0, 4.0)
        assert by_id[1].interval.as_tuple() == (1.0, 2.0)


class TestTraceGenerators:
    @pytest.mark.parametrize("family", sorted(DYNAMIC_TRACE_FAMILIES))
    def test_families_produce_valid_traces(self, family):
        trace = DYNAMIC_TRACE_FAMILIES[family](40, 3, 1, 0.3)
        trace.validate()  # raises on malformed traces
        assert trace.g == 3
        assert trace.num_events == 2 * trace.num_jobs

    def test_generators_deterministic_in_seed(self):
        t1 = poisson_dynamic_trace(30, 3, seed=9)
        t2 = poisson_dynamic_trace(30, 3, seed=9)
        assert [(e.time, e.kind, e.job.id) for e in t1] == [
            (e.time, e.kind, e.job.id) for e in t2
        ]

    def test_zero_churn_departs_on_time(self):
        inst = uniform_random_instance(20, 3, seed=0)
        trace = trace_from_instance(inst, early_departure_fraction=0.0, seed=0)
        assert all(e.time == e.job.end for e in trace if not e.is_arrival)
        assert trace.effective_instance().span == pytest.approx(inst.span)

    def test_full_churn_departs_early(self):
        inst = uniform_random_instance(20, 3, seed=0)
        trace = trace_from_instance(inst, early_departure_fraction=1.0, seed=0)
        early = [e for e in trace if not e.is_arrival and e.time < e.job.end]
        assert len(early) == 20

    def test_bad_fractions_rejected(self):
        inst = uniform_random_instance(5, 2, seed=0)
        with pytest.raises(ValueError):
            trace_from_instance(inst, early_departure_fraction=1.5)
        with pytest.raises(ValueError):
            trace_from_instance(inst, min_hold_fraction=-0.1)

    def test_adversarial_and_optical_families(self):
        adv = adversarial_dynamic_trace(3, seed=0)
        adv.validate()
        assert adv.num_jobs == 3 * 4  # g*(g+1) Fig. 4 jobs
        opt = optical_dynamic_trace(8, 30, 3, seed=0)
        opt.validate()
        assert opt.num_jobs == 30


class TestBuilderMutationPath:
    def test_unassign_inverse_of_assign(self, random_medium):
        builder = ScheduleBuilder(random_medium, algorithm="mutate")
        for job in random_medium.jobs:
            builder.assign_first_fit(job)
        victim = random_medium.jobs[7]
        idx = builder.machine_of(victim.id)
        before = builder.profile_of(idx).copy()
        builder.unassign(victim)
        assert victim.id not in builder.assigned_job_ids
        builder.assign(idx, victim)
        after = builder.profile_of(idx)
        assert after.count == before.count
        assert after.measure == pytest.approx(before.measure)
        assert after.max_load() == before.max_load()
        builder.freeze()  # full validation via the slow-path oracle

    def test_unassign_unknown_job_raises(self, tiny_instance):
        builder = ScheduleBuilder(tiny_instance)
        with pytest.raises(KeyError):
            builder.unassign(tiny_instance.jobs[0])

    def test_freeze_partial_validates_survivors(self, random_medium):
        builder = ScheduleBuilder(random_medium, algorithm="partial")
        for job in random_medium.jobs:
            builder.assign_first_fit(job)
        for job in random_medium.jobs[::3]:
            builder.unassign(job)
        schedule = builder.freeze_partial()  # validate=True is the default
        survivor_ids = {j.id for j in random_medium.jobs} - {
            j.id for j in random_medium.jobs[::3]
        }
        assert set(schedule.instance.job_ids) == survivor_ids

    def test_marginal_busy_release_matches_span_difference(self, random_medium):
        builder = ScheduleBuilder(random_medium)
        for job in random_medium.jobs:
            builder.assign_first_fit(job)
        for job in random_medium.jobs[:10]:
            idx = builder.machine_of(job.id)
            jobs_on = builder.jobs_on(idx)
            others = [j for j in jobs_on if j.id != job.id]
            expected = span(jobs_on) - span(others)
            assert builder.marginal_busy_release(job) == pytest.approx(expected)
            # ...and the probe left the profile untouched.
            assert builder.machine_busy_time(idx) == pytest.approx(span(jobs_on))

    def test_machine_without_job(self, random_medium):
        schedule = online_first_fit(random_medium)
        machine = schedule.machines[0]
        victim = machine.jobs[0]
        _ = machine.profile  # force the cached profile so removal reuses it
        smaller = machine.without_job(victim.id)
        assert victim.id not in {j.id for j in smaller.jobs}
        assert smaller.busy_time == pytest.approx(span(smaller.jobs))
        assert smaller.peak_parallelism <= machine.peak_parallelism
        with pytest.raises(KeyError):
            machine.without_job(10_000)


class TestSimulator:
    def test_never_migrate_matches_online_first_fit_without_churn(self):
        inst = uniform_random_instance(80, 3, seed=5)
        trace = trace_from_instance(inst, early_departure_fraction=0.0, seed=5)
        report = Simulator(trace, NeverMigrate(), oracle_check_every=16).run()
        reference = online_first_fit(inst)
        assert report.realized_cost == pytest.approx(reference.total_busy_time)
        assert report.machines_opened == reference.num_machines
        assert report.migrations == 0
        assert report.early_departures == 0

    def test_early_departures_reduce_realized_cost(self):
        inst = uniform_random_instance(80, 3, seed=5)
        full = Simulator(
            trace_from_instance(inst, early_departure_fraction=0.0, seed=5),
            NeverMigrate(),
        ).run()
        churned = Simulator(
            trace_from_instance(inst, early_departure_fraction=0.6, seed=5),
            NeverMigrate(),
        ).run()
        assert churned.early_departures > 0
        assert churned.realized_cost < full.realized_cost

    def test_standard_panel_shapes(self):
        trace = poisson_dynamic_trace(60, 3, seed=2)
        reports = simulate(trace, oracle_check_every=32)
        assert [r.policy for r in reports] == [
            "never_migrate",
            "rolling_horizon",
            "migration_budget",
        ]
        for report in reports:
            assert report.arrivals == report.departures == 60
            assert report.realized_cost >= report.lower_bound - 1e-9
            assert report.oracle_checks >= 1
            assert report.offline_cost is not None and report.offline_cost > 0
            assert report.as_dict()["gap_vs_offline"] == report.gap_vs_offline

    def test_rolling_horizon_replans_and_migrates(self):
        trace = bursty_dynamic_trace(100, 3, early_departure_fraction=0.4, seed=0)
        lo, hi = trace.horizon
        report = Simulator(
            trace, RollingHorizon((hi - lo) / 8.0), oracle_check_every=None
        ).run()
        # The final mark can land past the last event, so 7 or 8 fire.
        assert report.replans >= 7
        assert report.migrations > 0

    def test_migration_budget_zero_never_migrates(self):
        trace = bursty_dynamic_trace(100, 3, early_departure_fraction=0.4, seed=1)
        lo, hi = trace.horizon
        budgeted = Simulator(
            trace,
            MigrationBudget((hi - lo) / 8.0, budget=0),
            oracle_check_every=None,
            compare_offline=False,
        ).run()
        never = Simulator(
            trace, NeverMigrate(), oracle_check_every=None, compare_offline=False
        ).run()
        assert budgeted.migrations == 0
        assert budgeted.realized_cost == pytest.approx(never.realized_cost)

    def test_migration_budget_caps_moves_per_replan(self):
        trace = bursty_dynamic_trace(100, 3, early_departure_fraction=0.4, seed=1)
        lo, hi = trace.horizon
        report = Simulator(
            trace,
            MigrationBudget((hi - lo) / 8.0, budget=2),
            oracle_check_every=None,
            compare_offline=False,
        ).run()
        assert report.migrations <= 2 * report.replans

    def test_simulator_is_single_use(self):
        trace = poisson_dynamic_trace(10, 2, seed=0)
        sim = Simulator(trace, NeverMigrate())
        sim.run()
        with pytest.raises(RuntimeError):
            sim.run()

    def test_policy_parameter_validation(self):
        with pytest.raises(ValueError):
            RollingHorizon(0.0)
        with pytest.raises(ValueError):
            MigrationBudget(1.0, budget=-1)
        with pytest.raises(ValueError):
            SimulationPolicy(placement="nope")

    def test_empty_trace(self):
        trace = DynamicTrace(events=(), g=2, name="empty")
        report = Simulator(trace, NeverMigrate()).run()
        assert report.realized_cost == 0.0
        assert report.num_events == 0
        assert report.offline_cost is None

    def test_standard_policies_default_period(self):
        trace = poisson_dynamic_trace(40, 3, seed=0)
        lo, hi = trace.horizon
        policies = standard_policies(trace)
        assert policies[1].replan_period == pytest.approx((hi - lo) / 8.0)
        assert policies[2].budget == 4
