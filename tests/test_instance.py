"""Unit tests for busytime.core.instance."""

import pytest

from busytime.core.instance import Instance, connected_components
from busytime.core.intervals import Interval, Job


class TestConstruction:
    def test_from_tuples(self):
        inst = Instance.from_intervals([(0, 1), (2, 3)], g=2)
        assert inst.n == 2
        assert inst.g == 2
        assert inst.jobs[0].interval == Interval(0, 1)

    def test_from_intervals_objects(self):
        inst = Instance.from_intervals([Interval(0, 1)], g=1)
        assert inst.jobs[0].id == 0

    def test_from_jobs(self):
        jobs = [Job(id=5, interval=Interval(0, 1))]
        inst = Instance.from_intervals(jobs, g=1)
        assert inst.jobs[0].id == 5

    def test_invalid_item_type(self):
        with pytest.raises(TypeError):
            Instance.from_intervals([("a", "b", "c")], g=1)

    def test_g_must_be_positive(self):
        with pytest.raises(ValueError):
            Instance.from_intervals([(0, 1)], g=0)

    def test_duplicate_ids_rejected(self):
        jobs = (Job(id=1, interval=Interval(0, 1)), Job(id=1, interval=Interval(2, 3)))
        with pytest.raises(ValueError):
            Instance(jobs=jobs, g=1)

    def test_with_g(self):
        inst = Instance.from_intervals([(0, 1)], g=2)
        assert inst.with_g(5).g == 5
        assert inst.with_g(5).jobs == inst.jobs

    def test_restricted_to(self):
        inst = Instance.from_intervals([(0, 1), (2, 3), (4, 5)], g=2)
        sub = inst.restricted_to([0, 2])
        assert sub.n == 2
        assert {j.id for j in sub.jobs} == {0, 2}

    def test_restricted_to_unknown_id(self):
        inst = Instance.from_intervals([(0, 1)], g=2)
        with pytest.raises(KeyError):
            inst.restricted_to([7])

    def test_iteration_and_len(self):
        inst = Instance.from_intervals([(0, 1), (2, 3)], g=1)
        assert len(inst) == 2
        assert len(list(inst)) == 2

    def test_job_by_id(self):
        inst = Instance.from_intervals([(0, 1), (2, 3)], g=1)
        assert inst.job_by_id(1).interval == Interval(2, 3)
        with pytest.raises(KeyError):
            inst.job_by_id(9)


class TestAggregates:
    def test_total_length_and_span(self):
        inst = Instance.from_intervals([(0, 3), (2, 5), (10, 11)], g=2)
        assert inst.total_length == 7
        assert inst.span == 6

    def test_horizon(self):
        inst = Instance.from_intervals([(1, 3), (2, 9)], g=2)
        assert inst.horizon == (1, 9)

    def test_horizon_empty(self):
        inst = Instance(jobs=(), g=1)
        assert inst.horizon == (0.0, 0.0)

    def test_load_and_clique_number(self):
        inst = Instance.from_intervals([(0, 4), (1, 5), (2, 6), (10, 12)], g=2)
        assert inst.load_at(3) == 3
        assert inst.clique_number == 3

    def test_length_extremes(self):
        inst = Instance.from_intervals([(0, 1), (0, 5)], g=1)
        assert inst.max_length == 5
        assert inst.min_length == 1

    def test_length_ratio(self):
        inst = Instance.from_intervals([(0, 2), (0, 6)], g=1)
        assert inst.length_ratio() == 3.0

    def test_length_ratio_zero_length(self):
        inst = Instance.from_intervals([(0, 0), (0, 6)], g=1)
        assert inst.length_ratio() == float("inf")

    def test_length_ratio_empty(self):
        assert Instance(jobs=(), g=1).length_ratio() == 1.0


class TestClassification:
    def test_proper_true(self):
        inst = Instance.from_intervals([(0, 2), (1, 3), (2, 4)], g=2)
        assert inst.is_proper()

    def test_proper_false_nested(self):
        inst = Instance.from_intervals([(0, 10), (2, 3)], g=2)
        assert not inst.is_proper()

    def test_proper_false_shared_start(self):
        inst = Instance.from_intervals([(0, 10), (0, 3)], g=2)
        assert not inst.is_proper()

    def test_proper_duplicates_allowed(self):
        inst = Instance.from_intervals([(0, 2), (0, 2), (1, 3)], g=2)
        assert inst.is_proper()

    def test_clique_true(self):
        inst = Instance.from_intervals([(0, 5), (2, 8), (4, 6)], g=2)
        assert inst.is_clique()
        assert inst.common_point() == 4

    def test_clique_false(self):
        inst = Instance.from_intervals([(0, 1), (2, 3)], g=2)
        assert not inst.is_clique()
        assert inst.common_point() is None

    def test_clique_empty(self):
        inst = Instance(jobs=(), g=1)
        assert inst.is_clique()
        assert inst.common_point() is None

    def test_laminar_true(self):
        inst = Instance.from_intervals([(0, 10), (1, 4), (2, 3), (5, 9), (12, 13)], g=2)
        assert inst.is_laminar()

    def test_laminar_false(self):
        inst = Instance.from_intervals([(0, 5), (3, 8)], g=2)
        assert not inst.is_laminar()

    def test_bounded_length(self):
        inst = Instance.from_intervals([(0, 1), (5, 7)], g=2)
        assert inst.is_bounded_length(2.0)
        assert not inst.is_bounded_length(1.5)

    def test_classify_priorities(self):
        assert Instance.from_intervals([(0, 5), (1, 6)], g=2).classify() == "clique"
        assert (
            Instance.from_intervals([(0, 2), (1, 3), (4, 6)], g=2).classify()
            == "proper"
        )
        assert Instance.from_intervals([(0, 9), (1, 2), (3, 4)], g=2).classify() == "laminar"
        assert (
            Instance.from_intervals([(0, 9), (1, 20), (2, 3), (25, 26)], g=2).classify()
            == "general"
        )

    def test_summary_keys(self):
        summary = Instance.from_intervals([(0, 1)], g=1, name="x").summary()
        assert summary["name"] == "x"
        assert summary["n"] == 1
        assert "class" in summary


class TestConnectedComponents:
    def test_single_component(self):
        inst = Instance.from_intervals([(0, 2), (1, 3), (2, 4)], g=2)
        comps = connected_components(inst)
        assert len(comps) == 1
        assert comps[0].n == 3

    def test_two_components(self):
        inst = Instance.from_intervals([(0, 2), (1, 3), (10, 12), (11, 13)], g=2)
        comps = connected_components(inst)
        assert len(comps) == 2
        assert sorted(c.n for c in comps) == [2, 2]

    def test_touching_jobs_same_component(self):
        inst = Instance.from_intervals([(0, 1), (1, 2)], g=2)
        assert len(connected_components(inst)) == 1

    def test_empty_instance(self):
        assert connected_components(Instance(jobs=(), g=1)) == []

    def test_components_preserve_g_and_jobs(self):
        inst = Instance.from_intervals([(0, 1), (5, 6)], g=3, name="two")
        comps = connected_components(inst)
        assert all(c.g == 3 for c in comps)
        all_ids = sorted(j.id for c in comps for j in c.jobs)
        assert all_ids == [0, 1]

    def test_is_connected(self):
        assert Instance.from_intervals([(0, 2), (1, 3)], g=1).is_connected()
        assert not Instance.from_intervals([(0, 1), (5, 6)], g=1).is_connected()
