"""Repo-level pytest configuration.

Registers the ``slow`` marker and deselects slow-marked tests by default so
tier-1 (``PYTHONPATH=src python -m pytest -x -q``) stays fast; the large
benchmark modules opt in with ``--run-slow`` or by setting
``BUSYTIME_RUN_SLOW=1`` in the environment (the latter is what CI's bench
workflow uses, where editing the pytest invocation per job is awkward).
"""

from __future__ import annotations

import os

import pytest


def _env_opt_in() -> bool:
    return os.environ.get("BUSYTIME_RUN_SLOW", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help=(
            "also run tests marked slow (large scaling benchmarks); "
            "BUSYTIME_RUN_SLOW=1 in the environment does the same"
        ),
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running scaling benchmark; skipped unless --run-slow "
        "is given or BUSYTIME_RUN_SLOW=1 is set",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list
) -> None:
    if config.getoption("--run-slow") or _env_opt_in():
        return
    skip_slow = pytest.mark.skip(
        reason="slow benchmark; pass --run-slow (or BUSYTIME_RUN_SLOW=1) to run"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
