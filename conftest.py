"""Repo-level pytest configuration.

Registers the ``slow`` marker and deselects slow-marked tests by default so
tier-1 (``PYTHONPATH=src python -m pytest -x -q``) stays fast; the large
benchmark modules opt in with ``--run-slow``.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="also run tests marked slow (large scaling benchmarks)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running scaling benchmark; skipped unless --run-slow is given",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list
) -> None:
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow benchmark; pass --run-slow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
