#!/usr/bin/env python
"""Anytime portfolio racing + learned selector benchmark (experiment E23).

Regenerates the portfolio layer's three claims into ``BENCH_portfolio.json``
and exits non-zero if any of them fails to hold:

* **anytime** — the race winner's cost is non-increasing in the race budget
  (candidate width), and within a single race the incumbent timeline is
  strictly decreasing: more budget never hurts, and every improvement the
  racer books is a real one;
* **learned > static** — a selector trained offline on result-store history
  (disjoint seeds from the evaluation corpus) strictly beats the static
  ``best_ratio`` single pick in *aggregate* cost over the differential
  corpus, while per-instance costs are never worse and every proven-ratio
  certificate is identical (the learned policy reorders only within a
  guarantee class);
* **racing is safe** — every race winner passes the independent
  :func:`verify_schedule` oracle and costs no more than the static single
  pick on the same instance.

The evaluation corpus mirrors ``tests/test_differential_corpus.py`` (one
entry per generator family); the training history is built from the same
families at disjoint seeds, solved through the engine and mined back out of
a :class:`ResultStore` exactly the way ``busytime train-selector`` does.

Usage::

    python scripts/bench_portfolio.py                 # full training set
    python scripts/bench_portfolio.py --quick         # CI smoke scale
    python scripts/bench_portfolio.py --output BENCH_portfolio.json

``benchmarks/test_bench_portfolio.py`` imports the corpus and runners from
here, so the pytest gate and this script measure the same thing.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from busytime.core.instance import Instance  # noqa: E402
from busytime.core.schedule import verify_schedule  # noqa: E402
from busytime.engine import Engine, SolveRequest  # noqa: E402
from busytime.generators import (  # noqa: E402
    bounded_length_instance,
    bursty_instance,
    clique_instance,
    firstfit_lower_bound_instance,
    laminar_instance,
    poisson_arrivals_instance,
    proper_instance,
    ranked_shift_proper_instance,
    stairs_instance,
    uniform_random_instance,
    uniform_traffic,
)
from busytime.optical import traffic_to_instance  # noqa: E402
from busytime.portfolio import learned_policy, train_from_store  # noqa: E402
from busytime.service import ResultStore  # noqa: E402

_EPS = 1e-9

#: Race widths swept for the anytime claim.
WIDTHS = (2, 3, 4)

#: Training-history seeds start here — disjoint from every corpus seed.
TRAIN_SEED_BASE = 100


def eval_corpus() -> List[Tuple[str, Instance]]:
    """The differential corpus: one entry per (family, construction)."""
    return [
        ("random-uniform", uniform_random_instance(40, 3, seed=0)),
        ("random-poisson", poisson_arrivals_instance(40, 3, seed=1)),
        ("random-bursty", bursty_instance(40, 4, seed=2)),
        ("structured-proper", proper_instance(30, 3, seed=3)),
        ("structured-clique", clique_instance(18, 3, seed=4)),
        ("structured-bounded", bounded_length_instance(30, 3, d=3.0, seed=5)),
        ("structured-laminar", laminar_instance(25, 3, seed=6)),
        ("structured-stairs", stairs_instance(24, 3)),
        ("adversarial-fig4", firstfit_lower_bound_instance(4)),
        ("adversarial-ranked-shift", ranked_shift_proper_instance(4)),
        ("optical-uniform", traffic_to_instance(uniform_traffic(10, 30, 3, seed=7))),
    ]


def train_history_selector(engine: Engine, seeds_per_family: int = 4):
    """Train a selector from a store history built at disjoint seeds.

    The history is real: each training instance is solved through the
    engine, the canonical report is put into a (memory-tier) ResultStore,
    and the trainer mines it back out with ``scan_history`` — the exact
    path ``busytime train-selector`` takes over a served store directory.
    """
    makers = (
        (uniform_random_instance, 3, 30),
        (poisson_arrivals_instance, 3, 30),
        (bursty_instance, 4, 30),
        (proper_instance, 3, 25),
        (bounded_length_instance, 3, 25),
    )
    store = ResultStore(capacity=max(64, len(makers) * seeds_per_family))
    index = 0
    for maker, g, n in makers:
        for seed in range(TRAIN_SEED_BASE, TRAIN_SEED_BASE + seeds_per_family):
            instance = maker(n, g, seed=seed)
            report = engine.solve(SolveRequest(instance=instance))
            store.put(f"{index:064x}", report)
            index += 1
    return train_from_store(store)


def run_anytime(engine: Engine) -> List[Dict[str, object]]:
    """Sweep race widths per corpus instance; assert the anytime shape."""
    rows = []
    for label, instance in eval_corpus():
        costs = []
        for width in WIDTHS:
            report = engine.solve(SolveRequest(instance=instance, race=width))
            verify_schedule(report.schedule)
            costs.append(report.cost)
        for narrow, wide in zip(costs, costs[1:]):
            if wide > narrow + _EPS:
                raise SystemExit(
                    f"anytime violation on {label}: widening the race budget "
                    f"raised the cost ({narrow} -> {wide})"
                )
        widest = engine.solve(SolveRequest(instance=instance, race=WIDTHS[-1]))
        timeline = list(widest.race.incumbent_timeline)
        for (_, before), (_, after) in zip(timeline, timeline[1:]):
            if after >= before - _EPS:
                raise SystemExit(
                    f"incumbent timeline on {label} is not strictly "
                    f"decreasing: {timeline}"
                )
        rows.append(
            {
                "instance": label,
                "n": instance.n,
                "g": instance.g,
                "widths": list(WIDTHS),
                "costs": costs,
                "lower_bound": widest.lower_bound,
                "winner": widest.algorithm,
                "incumbent_timeline": [[t, c] for t, c in timeline],
            }
        )
    return rows


def run_selector_comparison(engine: Engine, selector) -> Dict[str, object]:
    """Static best_ratio single pick vs the learned single pick.

    Both solves run ``portfolio=False`` so the policy's top pick carries the
    whole answer — this is the selection decision the learned layer claims
    to improve.  Certificates must match per instance; aggregate learned
    cost must be strictly lower.
    """
    policy = learned_policy()
    rows = []
    policy.set_selector(selector)
    try:
        for label, instance in eval_corpus():
            static = engine.solve(SolveRequest(instance=instance, portfolio=False))
            learned = engine.solve(
                SolveRequest(instance=instance, portfolio=False, policy="learned")
            )
            if learned.cost > static.cost + _EPS:
                raise SystemExit(
                    f"learned pick on {label} is worse than best_ratio "
                    f"({learned.cost} > {static.cost})"
                )
            if learned.proven_ratio != static.proven_ratio:
                raise SystemExit(
                    f"learned pick on {label} changed the certificate "
                    f"({static.proven_ratio} -> {learned.proven_ratio})"
                )
            rows.append(
                {
                    "instance": label,
                    "static_cost": static.cost,
                    "learned_cost": learned.cost,
                    "proven_ratio": static.proven_ratio,
                    "improved": learned.cost < static.cost - _EPS,
                }
            )
    finally:
        policy.set_selector(None)
    static_total = sum(r["static_cost"] for r in rows)
    learned_total = sum(r["learned_cost"] for r in rows)
    if not learned_total < static_total - _EPS:
        raise SystemExit(
            f"learned selector does not strictly beat best_ratio in "
            f"aggregate ({learned_total} vs {static_total})"
        )
    return {
        "rows": rows,
        "static_total": static_total,
        "learned_total": learned_total,
        "improvement": 1.0 - learned_total / static_total,
        "instances_improved": sum(1 for r in rows if r["improved"]),
    }


def run_racing_vs_static(engine: Engine) -> List[Dict[str, object]]:
    """A race must never lose to the static single pick it subsumes."""
    rows = []
    for label, instance in eval_corpus():
        static = engine.solve(SolveRequest(instance=instance, portfolio=False))
        raced = engine.solve(SolveRequest(instance=instance, race=WIDTHS[-1]))
        verify_schedule(raced.schedule)
        if raced.cost > static.cost + _EPS:
            raise SystemExit(
                f"race on {label} lost to the static single pick "
                f"({raced.cost} > {static.cost})"
            )
        rows.append(
            {
                "instance": label,
                "static_cost": static.cost,
                "raced_cost": raced.cost,
                "raced": len(raced.race.candidates),
                "decisive": raced.race.decisive,
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale: a smaller training history",
    )
    parser.add_argument("--output", default="BENCH_portfolio.json")
    args = parser.parse_args(argv)

    engine = Engine()
    seeds = 2 if args.quick else 6
    selector, train_stats = train_history_selector(engine, seeds_per_family=seeds)
    anytime = run_anytime(engine)
    comparison = run_selector_comparison(engine, selector)
    racing = run_racing_vs_static(engine)

    doc = {
        "experiment": "E23",
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "quick": args.quick,
        "training": train_stats,
        "anytime": anytime,
        "selector": comparison,
        "racing": racing,
    }
    Path(args.output).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(
        f"E23: learned total {comparison['learned_total']:.3f} < "
        f"static total {comparison['static_total']:.3f} "
        f"({comparison['improvement']:.2%} better, "
        f"{comparison['instances_improved']} instances strictly improved); "
        f"anytime sweep clean on {len(anytime)} instances; "
        f"racing never lost on {len(racing)}"
    )
    print(f"written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
