#!/usr/bin/env python
"""Tariff-aware placement benchmark (experiment E24).

Runs the :func:`busytime.generators.tariff_corpus` — flex-window
workloads crossed with a time-of-use tariff and a noisy CO₂-intensity
trace, half of them under a site-wide capacity cap with office-hours
background load — through three schedulers:

* ``first_fit`` at the *nominal* job positions (the rigid baseline: what
  a tariff-blind scheduler pays once its schedule is priced);
* ``placement_first_fit`` (window-aware greedy, cheapest-band placement);
* ``tariff_local_search`` (placement greedy + slide/reassign descent).

Every produced schedule is re-checked by the slow-path oracle
(:func:`busytime.core.schedule.verify_schedule` — windows, demands and
the site cap included) and bounded below by the window-aware
:func:`busytime.pricing.tariff_lower_bound`.  The script *fails* (exit
status 1) unless tariff-aware placement strictly beats the fixed
baseline in aggregate and local search never loses to the greedy — the
claims ``BENCH_tariff.json`` exists to document.

A degeneration pin runs first: under a constant unit tariff on a rigid
instance, ``placement_first_fit`` must reproduce the seed ``first_fit``
schedule bit for bit, with cost exactly ``total_busy_time`` — growth
never silently re-prices the paper's objective.

Usage::

    python scripts/bench_tariff.py                 # full corpus
    python scripts/bench_tariff.py --quick         # CI smoke (4 cases)
    python scripts/bench_tariff.py --seed 7 --output /tmp/t.json

``benchmarks/test_bench_tariff.py`` imports the corpus runner from here,
so the pytest gate and this script measure the same thing.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from busytime.algorithms import (  # noqa: E402
    first_fit,
    place_first_fit,
    tariff_local_search,
)
from busytime.core.objectives import CostModel  # noqa: E402
from busytime.core.schedule import verify_schedule  # noqa: E402
from busytime.generators import (  # noqa: E402
    tariff_corpus,
    uniform_random_instance,
)
from busytime.pricing import TariffSeries, tariff_lower_bound  # noqa: E402

EPS = 1e-9


def degeneration_pin(seed: int = 2009) -> Dict[str, object]:
    """Unit tariff + rigid instance: placement must equal the seed path."""
    instance = uniform_random_instance(60, 3, seed=seed)
    unit = CostModel(objective="tariff_busy_time", tariff=TariffSeries((), (1.0,)))
    base = first_fit(instance)
    placed = place_first_fit(instance, unit)
    assignment_equal = [
        [j.id for j in m.jobs] for m in placed.machines
    ] == [[j.id for j in m.jobs] for m in base.machines]
    cost = unit.schedule_cost(placed)
    return {
        "instance": instance.name,
        "assignment_identical": assignment_equal,
        "priced_cost": cost,
        "busy_time": base.total_busy_time,
        "cost_equals_busy_time": cost == base.total_busy_time,
        "ok": assignment_equal and cost == base.total_busy_time,
    }


def run_case(instance, model) -> Dict[str, object]:
    """One corpus row: fixed baseline vs placement vs local search."""
    row: Dict[str, object] = {
        "instance": instance.name,
        "n": instance.n,
        "g": instance.g,
        "tariff": model.tariff.name,
        "capped": instance.site_capacity is not None,
    }
    fixed = first_fit(instance)
    verify_schedule(fixed)
    row["cost_fixed"] = model.schedule_cost(fixed)

    started = time.perf_counter()
    placed = place_first_fit(instance, model)
    row["seconds_placement"] = round(time.perf_counter() - started, 4)
    verify_schedule(placed)
    row["cost_placed"] = model.schedule_cost(placed)

    started = time.perf_counter()
    improved = tariff_local_search(instance, model)
    row["seconds_local_search"] = round(time.perf_counter() - started, 4)
    verify_schedule(improved)
    row["cost_local_search"] = model.schedule_cost(improved)

    row["lower_bound"] = tariff_lower_bound(instance, model.tariff)
    row["savings_vs_fixed"] = round(
        1.0 - row["cost_local_search"] / row["cost_fixed"], 4
    )
    return row


def run_corpus(seed: int = 0, cases: Optional[int] = None) -> List[Dict[str, object]]:
    corpus = tariff_corpus(seed=seed)
    if cases is not None:
        corpus = corpus[:cases]
    return [run_case(instance, model) for instance, model in corpus]


def check_bars(rows: List[Dict[str, object]], pin: Dict[str, object]) -> List[str]:
    """The claims the artifact documents; non-empty return means failure."""
    failures: List[str] = []
    if not pin["ok"]:
        failures.append(f"unit-tariff degeneration pin broken: {pin}")
    total_fixed = sum(r["cost_fixed"] for r in rows)
    total_placed = sum(r["cost_placed"] for r in rows)
    total_ls = sum(r["cost_local_search"] for r in rows)
    if not total_placed < total_fixed:
        failures.append(
            f"placement does not beat the fixed baseline in aggregate: "
            f"{total_placed} >= {total_fixed}"
        )
    for r in rows:
        if r["cost_local_search"] > r["cost_placed"] + EPS:
            failures.append(
                f"{r['instance']}: local search lost to its own greedy start "
                f"({r['cost_local_search']} > {r['cost_placed']})"
            )
        if r["lower_bound"] > r["cost_local_search"] + EPS:
            failures.append(
                f"{r['instance']}: lower bound exceeds an achieved cost "
                f"({r['lower_bound']} > {r['cost_local_search']})"
            )
    del total_ls
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale: first 4 corpus cases"
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_tariff.json"
    )
    args = parser.parse_args()

    pin = degeneration_pin()
    print(
        f"degeneration pin (unit tariff, rigid): "
        f"{'ok' if pin['ok'] else 'BROKEN'}"
    )
    rows = run_corpus(seed=args.seed, cases=4 if args.quick else None)
    total_fixed = sum(r["cost_fixed"] for r in rows)
    total_placed = sum(r["cost_placed"] for r in rows)
    total_ls = sum(r["cost_local_search"] for r in rows)
    for r in rows:
        print(
            f"  {r['instance']:<16} fixed={r['cost_fixed']:9.2f} "
            f"placed={r['cost_placed']:9.2f} ls={r['cost_local_search']:9.2f} "
            f"lb={r['lower_bound']:9.2f} (-{100 * r['savings_vs_fixed']:.1f}%)"
        )
    print(
        f"TOTAL fixed={total_fixed:.2f} placed={total_placed:.2f} "
        f"local_search={total_ls:.2f} "
        f"(placement saves {100 * (1 - total_placed / total_fixed):.1f}%, "
        f"local search {100 * (1 - total_ls / total_fixed):.1f}%)"
    )

    failures = check_bars(rows, pin)
    payload = {
        "experiment": "E24-tariff-aware-placement",
        "description": (
            "Priced cost of fixed-interval FirstFit vs window-aware "
            "placement vs tariff local search on the flex-window corpus "
            "(TOU + CO2 tariffs, half site-capped with background load); "
            "all schedules oracle-verified, all costs >= the window-aware "
            "tariff lower bound; unit-tariff degeneration pinned bit-for-bit"
        ),
        "generated_by": "scripts/bench_tariff.py"
        + (" --quick" if args.quick else "")
        + (f" --seed {args.seed}" if args.seed else ""),
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "degeneration_pin": pin,
        "rows": rows,
        "totals": {
            "cost_fixed": total_fixed,
            "cost_placed": total_placed,
            "cost_local_search": total_ls,
            "placement_savings": round(1 - total_placed / total_fixed, 4),
            "local_search_savings": round(1 - total_ls / total_fixed, 4),
        },
        "bars_failed": failures,
    }
    args.output.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {args.output}")
    if failures:
        for f in failures:
            print(f"BAR FAILED: {f}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()
