#!/usr/bin/env python
"""Streaming-session soak harness (experiment E22).

Drives >= 1000 concurrent streaming sessions through one
:class:`busytime.service.sessions.SessionManager` — the same decision path
``POST /sessions/<id>/events`` serves — and records sustained event
throughput plus p50/p95/p99 *decision latency* (wall time per applied
event, measured around the incremental re-optimization step) into
``BENCH_sessions.json``.

The workload is the session layer's reason to exist: many small live
sessions, each receiving its arrive/depart stream in short batches, with
interleaving arrivals across sessions (a thread pool round-robins the
sessions, one batch at a time, so no session's stream ever reorders but
every session is always in flight).  The policy mix leans on the cheap
path (``never_migrate``) with a slice of engine-replanning sessions
(``rolling_horizon``, ``migration_budget``), because that is what a
multi-tenant deployment looks like: most tenants stream, a few re-plan.

Every session is checkpointed through the shared :class:`ResultStore` at
the default cadence (every batch), so the measured throughput *includes*
the durability cost that makes the failover drill honest.  At the end the
harness closes a sample of sessions and replays their traces offline
through :class:`busytime.extensions.dynamic.Simulator` — realized costs
must agree bit-for-bit, or the numbers describe a broken implementation.

Usage::

    python scripts/bench_sessions.py               # default: 1000 sessions
    python scripts/bench_sessions.py --quick       # CI smoke (~128 sessions)
    python scripts/bench_sessions.py --sessions 2000 --threads 16

``benchmarks/test_bench_sessions.py`` imports the workload and soak
machinery from here, so the pytest gate and this script measure the same
thing at different scales.
"""

from __future__ import annotations

import argparse
import json
import platform
import queue
import sys
import threading
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from busytime.extensions.dynamic import Simulator  # noqa: E402
from busytime.generators.dynamic_traces import uniform_dynamic_trace  # noqa: E402
from busytime.io import trace_event_to_dict  # noqa: E402
from busytime.service.sessions import (  # noqa: E402
    SessionConfig,
    SessionLimits,
    SessionManager,
    session_policy,
)

SESSIONS = 1000
JOBS_PER_SESSION = 10  # -> 20 events per session stream
BATCH = 5
THREADS = 8
#: (policy, replan_period, budget, weight) — mostly streaming tenants,
#: a re-planning slice to keep the engine path honest in the numbers.
POLICY_MIX: Sequence[Tuple[str, Optional[float], int, int]] = (
    ("never_migrate", None, 4, 8),
    ("rolling_horizon", 25.0, 4, 1),
    ("migration_budget", 25.0, 2, 1),
)


def build_workload(
    sessions: int, jobs_per_session: int = JOBS_PER_SESSION, seed: int = 2009
) -> List[Dict[str, object]]:
    """One spec per session: its trace, serialized rows and policy triple."""
    mix: List[Tuple[str, Optional[float], int]] = []
    for policy, period, budget, weight in POLICY_MIX:
        mix.extend([(policy, period, budget)] * weight)
    specs: List[Dict[str, object]] = []
    for index in range(sessions):
        trace = uniform_dynamic_trace(
            n=jobs_per_session, g=3, seed=seed + index
        )
        policy, period, budget = mix[index % len(mix)]
        specs.append(
            {
                "session_id": f"soak-{index:05d}",
                "trace": trace,
                "rows": [trace_event_to_dict(e) for e in trace.events],
                "policy": policy,
                "period": period,
                "budget": budget,
            }
        )
    return specs


def run_soak(
    specs: Sequence[Dict[str, object]],
    batch: int = BATCH,
    threads: int = THREADS,
) -> Tuple[SessionManager, Dict[str, object]]:
    """Create every session, stream every batch, report the measured soak."""
    manager = SessionManager(
        limits=SessionLimits(max_sessions=None, max_sessions_per_tenant=None)
    )
    create_started = time.perf_counter()
    for spec in specs:
        trace = spec["trace"]
        manager.create(
            SessionConfig(
                g=trace.g,
                horizon=trace.horizon,
                policy=spec["policy"],
                replan_period=spec["period"],
                budget=spec["budget"],
            ),
            session_id=spec["session_id"],
        )
    create_seconds = time.perf_counter() - create_started

    # Round-robin work queue: a thread pops a session, posts its *next*
    # batch, and re-enqueues it — per-session order preserved, all
    # sessions concurrently in flight.
    work: "queue.Queue[Dict[str, object]]" = queue.Queue()
    for spec in specs:
        work.put({"spec": spec, "offset": 0})
    latencies: List[Tuple[float, int]] = []  # (batch wall seconds, events)
    errors: List[BaseException] = []
    lock = threading.Lock()

    def worker() -> None:
        while True:
            try:
                item = work.get_nowait()
            except queue.Empty:
                return
            spec, offset = item["spec"], item["offset"]
            rows = spec["rows"]
            chunk = rows[offset:offset + batch]
            try:
                batch_started = time.perf_counter()
                manager.apply_events(
                    spec["session_id"], chunk, first_offset=offset
                )
                elapsed = time.perf_counter() - batch_started
            except BaseException as exc:  # noqa: BLE001 - reported below
                with lock:
                    errors.append(exc)
                return
            with lock:
                latencies.append((elapsed, len(chunk)))
            if offset + batch < len(rows):
                work.put({"spec": spec, "offset": offset + batch})

    started = time.perf_counter()
    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    wall = time.perf_counter() - started
    if errors:
        raise RuntimeError(f"soak lost batches: {errors[:3]}")

    total_events = sum(events for _, events in latencies)
    per_event = sorted(seconds / events for seconds, events in latencies)

    def pct(q: float) -> float:
        return per_event[min(len(per_event) - 1, int(q * len(per_event)))]

    stats = manager.stats()
    report = {
        "sessions": len(specs),
        "events_total": total_events,
        "batches": len(latencies),
        "batch_size": batch,
        "threads": threads,
        "create_seconds": round(create_seconds, 3),
        "wall_seconds": round(wall, 3),
        "throughput_events_per_s": round(total_events / wall, 1),
        "decision_p50_ms": round(pct(0.50) * 1e3, 3),
        "decision_p95_ms": round(pct(0.95) * 1e3, 3),
        "decision_p99_ms": round(pct(0.99) * 1e3, 3),
        "decision_max_ms": round(per_event[-1] * 1e3, 3),
        "checkpoints": stats["checkpoints"],
        "events_applied": stats["events_applied"],
    }
    return manager, report


def verify_sample(
    manager: SessionManager,
    specs: Sequence[Dict[str, object]],
    sample_every: int = 100,
) -> int:
    """Close a sample of sessions; each must match its offline replay bit-for-bit."""
    checked = 0
    for spec in specs[::sample_every]:
        trace = spec["trace"]
        policy = session_policy(
            spec["policy"], spec["period"], spec["budget"],
            "first_fit", "first_fit",
        )
        offline = Simulator(
            trace, policy, oracle_check_every=None, compare_offline=False
        ).run()
        final = manager.close_session(spec["session_id"])
        if final["realized_cost"] != offline.realized_cost:
            raise AssertionError(
                f"session {spec['session_id']} diverged from offline replay: "
                f"{final['realized_cost']} != {offline.realized_cost}"
            )
        checked += 1
    return checked


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=SESSIONS)
    parser.add_argument("--jobs-per-session", type=int, default=JOBS_PER_SESSION)
    parser.add_argument("--batch", type=int, default=BATCH)
    parser.add_argument("--threads", type=int, default=THREADS)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale: 128 sessions"
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_sessions.json"
    )
    args = parser.parse_args()
    sessions = 128 if args.quick else args.sessions

    specs = build_workload(sessions, args.jobs_per_session)
    total_events = sum(len(s["rows"]) for s in specs)
    print(
        f"session soak: {sessions} concurrent sessions, "
        f"{total_events} events in batches of {args.batch}, "
        f"{args.threads} posting threads"
    )
    manager, report = run_soak(specs, args.batch, args.threads)
    print(
        f"throughput={report['throughput_events_per_s']} events/s, "
        f"decision p50={report['decision_p50_ms']}ms "
        f"p95={report['decision_p95_ms']}ms p99={report['decision_p99_ms']}ms "
        f"({report['checkpoints']} checkpoints)"
    )
    checked = verify_sample(manager, specs)
    print(f"differential spot-check: {checked} sessions match offline replay")

    payload = {
        "experiment": "E22-streaming-sessions",
        "description": (
            "Sustained event throughput and per-event decision latency for "
            ">= 1000 concurrent streaming sessions on one SessionManager "
            "(checkpoint-every-batch durability included); a closed sample "
            "must match the offline Simulator replay bit-for-bit"
        ),
        "generated_by": "scripts/bench_sessions.py"
        + (" --quick" if args.quick else f" --sessions {sessions}"),
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "policy_mix": [
            {"policy": p, "replan_period": period, "budget": b, "weight": w}
            for p, period, b, w in POLICY_MIX
        ],
        "soak": report,
        "verified_against_offline": checked,
    }
    args.output.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
