#!/usr/bin/env python
"""Record the FirstFit perf trajectory into ``BENCH_firstfit.json``.

This is the repo's perf-trajectory entry point (the ``BENCH_*.json``
artefacts the ROADMAP asks for).  It does two things:

1. runs the scaling benchmark module through pytest-benchmark
   (``pytest benchmarks/test_bench_firstfit_scaling.py --benchmark-only
   --benchmark-json=...``) and keeps the machine-readable timing stats;
2. runs a direct head-to-head — the seed's clip-and-rescan FirstFit vs the
   sweep-line implementation — over a range of instance sizes up to
   n=20000, asserting identical schedules and validating the sweep-line
   result with the independent ``verify_schedule`` oracle at every size;
3. extends the trajectory with a constant-density large-n family
   (``n / horizon = 20``, up to n = 10^6) timing the vectorized bulk
   FirstFit kernel.  At every large point up to n = 100k the legacy
   per-job builder path (``BUSYTIME_PROFILE_INDEX=off``) is re-run as the
   differential baseline — assignments must match exactly and costs up to
   accumulation-order ulps — and at n = 10^6 (where the legacy path would
   take minutes) the schedule is validated with ``verify_schedule``'s
   vectorized batch oracle and the wall clock must clear the < 10 s bar.

Usage::

    python scripts/bench_trajectory.py              # full run (n up to 10^6)
    python scripts/bench_trajectory.py --quick      # CI smoke (n up to 5000)
    python scripts/bench_trajectory.py --skip-large # old-style run (<= 20000)
    python scripts/bench_trajectory.py --output OUT.json

The emitted JSON carries the measured speedups; the full run demonstrates
the >= 5x acceptance bar at n=20000 (in practice the speedup there is two
orders of magnitude) and the 10^6-job wall-clock bar for the bulk kernel.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from busytime.algorithms.first_fit import first_fit  # noqa: E402
from busytime.core.intervals import span  # noqa: E402
from busytime.core.schedule import verify_schedule  # noqa: E402
from busytime.generators import uniform_random_instance  # noqa: E402

sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
from test_bench_firstfit_scaling import _seed_first_fit  # noqa: E402

FULL_SIZES = (1000, 2000, 5000, 10000, 20000)
QUICK_SIZES = (1000, 2000, 5000)

#: Constant-density scaling family for the bulk-kernel trajectory: the
#: horizon grows with n (``n / horizon = LARGE_DENSITY``) so the machine
#: count stays roughly flat and the points measure pure throughput.
LARGE_SIZES = (50_000, 100_000, 1_000_000)
LARGE_DENSITY = 20.0
#: Largest point at which the legacy per-job builder path is re-run as the
#: differential baseline; beyond this it would take minutes, so the batch
#: oracle (``verify_schedule(mode="batch")``) carries validation alone.
LEGACY_COMPARE_MAX = 100_000
#: Wall-clock acceptance bar for the n = 10^6 bulk-kernel solve.
MILLION_JOB_BAR_SECONDS = 10.0


def large_point(n: int, g: int, seed: int) -> dict:
    """Time the bulk kernel at a constant-density point; diff vs legacy."""
    import gc

    from busytime.core.profile_index import profile_index

    horizon = n / LARGE_DENSITY
    inst = uniform_random_instance(n=n, g=g, horizon=horizon, seed=seed)

    # Min over two rounds, GC swept before each: the load-robust "how fast
    # can this code go" estimator (the E16 budget guard uses the same),
    # immune to allocator/GC debris left by the earlier trajectory points.
    bulk_seconds = float("inf")
    for _ in range(2):
        gc.collect()
        t0 = time.perf_counter()
        schedule = first_fit(inst)
        bulk_seconds = min(bulk_seconds, time.perf_counter() - t0)

    # Validation is out-of-band (the kernel path skips the in-call
    # verify): the vectorized batch oracle recomputes every machine's
    # peak load and busy time from scratch.
    verify_schedule(schedule, mode="batch")

    row = {
        "n": n,
        "g": g,
        "seed": seed,
        "horizon": horizon,
        "kernel": schedule.meta.get("kernel", "builder"),
        "bulk_kernel_seconds": round(bulk_seconds, 4),
        "timing": "min of 2 rounds",
        "machines": schedule.num_machines,
        "total_busy_time": round(schedule.total_busy_time, 3),
        "validated_by": "verify_schedule(mode='batch')",
    }

    if n <= LEGACY_COMPARE_MAX:
        with profile_index("off"):
            t0 = time.perf_counter()
            legacy = first_fit(inst)
            legacy_seconds = time.perf_counter() - t0
        costs_equal = abs(
            schedule.total_busy_time - legacy.total_busy_time
        ) <= 1e-9 * max(1.0, legacy.total_busy_time)
        if not costs_equal or schedule.assignment() != legacy.assignment():
            raise SystemExit(
                f"n={n}: bulk kernel diverges from the legacy builder path "
                f"(cost {schedule.total_busy_time} vs "
                f"{legacy.total_busy_time}, machines "
                f"{schedule.num_machines} vs {legacy.num_machines})"
            )
        row.update(
            legacy_builder_seconds=round(legacy_seconds, 4),
            speedup=round(legacy_seconds / bulk_seconds, 1),
            costs_equal=True,
            assignments_equal=True,
        )
        print(
            f"n={n:>8}  legacy={legacy_seconds:8.2f}s  "
            f"bulk={bulk_seconds:6.3f}s  speedup={row['speedup']:7.1f}x"
        )
    else:
        print(f"n={n:>8}  bulk={bulk_seconds:6.3f}s  (legacy skipped)")
    return row


def head_to_head(n: int, g: int, seed: int) -> dict:
    inst = uniform_random_instance(n=n, g=g, horizon=1000.0, seed=seed)

    t0 = time.perf_counter()
    baseline_machines = _seed_first_fit(inst)
    baseline_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    schedule = first_fit(inst)
    sweep_seconds = time.perf_counter() - t0

    verify_schedule(schedule)  # independent slow-path oracle
    baseline_cost = sum(span(mjobs) for mjobs in baseline_machines)
    costs_equal = abs(schedule.total_busy_time - baseline_cost) <= 1e-6 * max(
        1.0, baseline_cost
    )
    if not costs_equal or schedule.num_machines != len(baseline_machines):
        raise SystemExit(
            f"n={n}: sweep-line schedule diverges from the seed baseline "
            f"(cost {schedule.total_busy_time} vs {baseline_cost}, "
            f"machines {schedule.num_machines} vs {len(baseline_machines)})"
        )
    row = {
        "n": n,
        "g": g,
        "seed": seed,
        "baseline_clip_rescan_seconds": round(baseline_seconds, 4),
        "sweep_profile_seconds": round(sweep_seconds, 4),
        "speedup": round(baseline_seconds / sweep_seconds, 1),
        "machines": schedule.num_machines,
        "total_busy_time": round(schedule.total_busy_time, 3),
        "costs_equal": True,
        "validated_by_verify_schedule": True,
    }
    print(
        f"n={n:>6}  baseline={baseline_seconds:8.2f}s  "
        f"sweep={sweep_seconds:6.3f}s  speedup={row['speedup']:7.1f}x"
    )
    return row


def run_pytest_benchmarks() -> list:
    """Run the scaling module under pytest-benchmark; return its stats."""
    with tempfile.TemporaryDirectory() as tmp:
        bench_json = Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/test_bench_firstfit_scaling.py",
            "--benchmark-only",
            f"--benchmark-json={bench_json}",
            "-q",
        ]
        env = dict(PYTHONPATH=str(REPO_ROOT / "src"))
        import os

        env = {**os.environ, **env}
        result = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if result.returncode != 0:
            raise SystemExit("pytest benchmark run failed")
        data = json.loads(bench_json.read_text())
    return [
        {
            "name": b["name"],
            "mean_seconds": round(b["stats"]["mean"], 4),
            "stddev_seconds": round(b["stats"]["stddev"], 4),
            "rounds": b["stats"]["rounds"],
            "extra_info": b.get("extra_info", {}),
        }
        for b in data.get("benchmarks", [])
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="cap the head-to-head at n=5000 (CI smoke run)",
    )
    parser.add_argument("--g", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_firstfit.json",
        help="where to write the trajectory JSON",
    )
    parser.add_argument(
        "--skip-pytest",
        action="store_true",
        help="skip the pytest-benchmark pass (head-to-head only)",
    )
    parser.add_argument(
        "--skip-large",
        action="store_true",
        help=(
            "skip the constant-density bulk-kernel points (n up to 10^6); "
            "implied by --quick"
        ),
    )
    args = parser.parse_args()

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    trajectory = [head_to_head(n, args.g, args.seed) for n in sizes]
    headline = trajectory[-1]

    large_trajectory = []
    if not (args.quick or args.skip_large):
        large_trajectory = [
            large_point(n, args.g, args.seed) for n in LARGE_SIZES
        ]

    pytest_stats = [] if args.skip_pytest else run_pytest_benchmarks()

    payload = {
        "experiment": "E16-firstfit-scaling",
        "description": (
            "FirstFit (Theorem 2.1) with incremental sweep-line machine "
            "state vs the seed clip-and-rescan implementation; identical "
            "schedules, verify_schedule-validated at every size"
        ),
        "generated_by": "scripts/bench_trajectory.py"
        + (" --quick" if args.quick else ""),
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "headline": headline,
        "trajectory": trajectory,
        "large_trajectory": large_trajectory,
        "pytest_benchmarks": pytest_stats,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"headline: n={headline['n']} speedup={headline['speedup']}x "
        f"(baseline {headline['baseline_clip_rescan_seconds']}s -> "
        f"sweep {headline['sweep_profile_seconds']}s)"
    )
    if headline["speedup"] < 5.0:
        raise SystemExit("headline speedup below the 5x acceptance bar")
    if large_trajectory:
        million = large_trajectory[-1]
        print(
            f"bulk kernel: n={million['n']} in "
            f"{million['bulk_kernel_seconds']}s "
            f"({million['machines']} machines)"
        )
        if (
            million["n"] >= 1_000_000
            and million["bulk_kernel_seconds"] >= MILLION_JOB_BAR_SECONDS
        ):
            raise SystemExit(
                f"10^6-job FirstFit took {million['bulk_kernel_seconds']}s, "
                f"above the {MILLION_JOB_BAR_SECONDS}s acceptance bar"
            )


if __name__ == "__main__":
    main()
