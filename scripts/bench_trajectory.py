#!/usr/bin/env python
"""Record the FirstFit perf trajectory into ``BENCH_firstfit.json``.

This is the repo's perf-trajectory entry point (the ``BENCH_*.json``
artefacts the ROADMAP asks for).  It does two things:

1. runs the scaling benchmark module through pytest-benchmark
   (``pytest benchmarks/test_bench_firstfit_scaling.py --benchmark-only
   --benchmark-json=...``) and keeps the machine-readable timing stats;
2. runs a direct head-to-head — the seed's clip-and-rescan FirstFit vs the
   sweep-line implementation — over a range of instance sizes up to
   n=20000, asserting identical schedules and validating the sweep-line
   result with the independent ``verify_schedule`` oracle at every size.

Usage::

    python scripts/bench_trajectory.py              # full run (n up to 20000)
    python scripts/bench_trajectory.py --quick      # CI smoke (n up to 5000)
    python scripts/bench_trajectory.py --output OUT.json

The emitted JSON carries the measured speedups; the full run demonstrates
the >= 5x acceptance bar at n=20000 (in practice the speedup there is two
orders of magnitude).
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from busytime.algorithms.first_fit import first_fit  # noqa: E402
from busytime.core.intervals import span  # noqa: E402
from busytime.core.schedule import verify_schedule  # noqa: E402
from busytime.generators import uniform_random_instance  # noqa: E402

sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
from test_bench_firstfit_scaling import _seed_first_fit  # noqa: E402

FULL_SIZES = (1000, 2000, 5000, 10000, 20000)
QUICK_SIZES = (1000, 2000, 5000)


def head_to_head(n: int, g: int, seed: int) -> dict:
    inst = uniform_random_instance(n=n, g=g, horizon=1000.0, seed=seed)

    t0 = time.perf_counter()
    baseline_machines = _seed_first_fit(inst)
    baseline_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    schedule = first_fit(inst)
    sweep_seconds = time.perf_counter() - t0

    verify_schedule(schedule)  # independent slow-path oracle
    baseline_cost = sum(span(mjobs) for mjobs in baseline_machines)
    costs_equal = abs(schedule.total_busy_time - baseline_cost) <= 1e-6 * max(
        1.0, baseline_cost
    )
    if not costs_equal or schedule.num_machines != len(baseline_machines):
        raise SystemExit(
            f"n={n}: sweep-line schedule diverges from the seed baseline "
            f"(cost {schedule.total_busy_time} vs {baseline_cost}, "
            f"machines {schedule.num_machines} vs {len(baseline_machines)})"
        )
    row = {
        "n": n,
        "g": g,
        "seed": seed,
        "baseline_clip_rescan_seconds": round(baseline_seconds, 4),
        "sweep_profile_seconds": round(sweep_seconds, 4),
        "speedup": round(baseline_seconds / sweep_seconds, 1),
        "machines": schedule.num_machines,
        "total_busy_time": round(schedule.total_busy_time, 3),
        "costs_equal": True,
        "validated_by_verify_schedule": True,
    }
    print(
        f"n={n:>6}  baseline={baseline_seconds:8.2f}s  "
        f"sweep={sweep_seconds:6.3f}s  speedup={row['speedup']:7.1f}x"
    )
    return row


def run_pytest_benchmarks() -> list:
    """Run the scaling module under pytest-benchmark; return its stats."""
    with tempfile.TemporaryDirectory() as tmp:
        bench_json = Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/test_bench_firstfit_scaling.py",
            "--benchmark-only",
            f"--benchmark-json={bench_json}",
            "-q",
        ]
        env = dict(PYTHONPATH=str(REPO_ROOT / "src"))
        import os

        env = {**os.environ, **env}
        result = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if result.returncode != 0:
            raise SystemExit("pytest benchmark run failed")
        data = json.loads(bench_json.read_text())
    return [
        {
            "name": b["name"],
            "mean_seconds": round(b["stats"]["mean"], 4),
            "stddev_seconds": round(b["stats"]["stddev"], 4),
            "rounds": b["stats"]["rounds"],
            "extra_info": b.get("extra_info", {}),
        }
        for b in data.get("benchmarks", [])
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="cap the head-to-head at n=5000 (CI smoke run)",
    )
    parser.add_argument("--g", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_firstfit.json",
        help="where to write the trajectory JSON",
    )
    parser.add_argument(
        "--skip-pytest",
        action="store_true",
        help="skip the pytest-benchmark pass (head-to-head only)",
    )
    args = parser.parse_args()

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    trajectory = [head_to_head(n, args.g, args.seed) for n in sizes]
    headline = trajectory[-1]

    pytest_stats = [] if args.skip_pytest else run_pytest_benchmarks()

    payload = {
        "experiment": "E16-firstfit-scaling",
        "description": (
            "FirstFit (Theorem 2.1) with incremental sweep-line machine "
            "state vs the seed clip-and-rescan implementation; identical "
            "schedules, verify_schedule-validated at every size"
        ),
        "generated_by": "scripts/bench_trajectory.py"
        + (" --quick" if args.quick else ""),
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "headline": headline,
        "trajectory": trajectory,
        "pytest_benchmarks": pytest_stats,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"headline: n={headline['n']} speedup={headline['speedup']}x "
        f"(baseline {headline['baseline_clip_rescan_seconds']}s -> "
        f"sweep {headline['sweep_profile_seconds']}s)"
    )
    if headline["speedup"] < 5.0:
        raise SystemExit("headline speedup below the 5x acceptance bar")


if __name__ == "__main__":
    main()
