#!/usr/bin/env python
"""Traffic-replay stress harness for the service cluster (experiment E20).

Replays a mixed hot/cold request stream against 1-worker and N-worker
topologies of the sharded cluster (:mod:`busytime.service.cluster`) and
records per-request latency quantiles (p50/p95/p99), sustained throughput,
and cache behaviour into ``BENCH_cluster.json``.

The workload is the one the service layer is built for: a *hot set* of H
distinct canonical requests, each arriving over and over as disguised
variants (relabeled job ids, translated time axes — different bytes, same
fingerprint), interleaved with cold one-off requests.  Every worker runs
with the **same per-worker cache budgets** (memory LRU capacity and disk
entry budget) in both topologies, and both topologies sit behind the same
router, so the measured differential isolates the one thing sharding buys
on this workload: *aggregate* cache capacity.  H is sized above what one
worker can hold (memory + disk) but within what N workers hold together —
a single worker churns its tiers and keeps re-solving, while the cluster
answers from memory.  This is the classic sharded-cache claim, and the
acceptance bar is the ISSUE's: the N-worker topology must sustain >= 2.5x
the single-worker throughput on the steady-state phase.

The harness also runs the kill-one-worker drill: a burst of concurrent
clients (with bounded retry) while one worker is killed under them — the
consistent-hash failover must complete every request (zero lost jobs).

Usage::

    python scripts/stress_replay.py                # default: ~4k requests
    python scripts/stress_replay.py --passes 100   # full: tens of thousands
    python scripts/stress_replay.py --quick        # CI smoke (~1k requests)
    python scripts/stress_replay.py --workers 4 --threads 8 --output OUT.json

``benchmarks/test_bench_cluster.py`` imports the corpus and replay
machinery from here, so the pytest gate and this script measure the same
thing at different scales.
"""

from __future__ import annotations

import argparse
import http.client
import json
import platform
import random
import sys
import tempfile
import threading
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from busytime import Instance  # noqa: E402
from busytime import io as bio  # noqa: E402
from busytime.core.intervals import Interval, Job  # noqa: E402
from busytime.generators import (  # noqa: E402
    clique_instance,
    proper_instance,
    uniform_random_instance,
)
from busytime.service.cluster import LocalCluster  # noqa: E402

# Per-worker cache budgets, identical in every topology.  The hot set is
# sized above one worker's total (memory + disk) and within the 4-worker
# aggregate, so capacity — not worker count — is the controlled variable.
STORE_CAPACITY = 28
MAX_DISK_ENTRIES = 32
HOT_SET_SIZE = 96
COLD_EVERY = 10  # one cold singleton per this many hot requests


def _quantized(instance: Instance) -> Instance:
    """Snap coordinates to 1/16 units so dyadic time shifts are float-exact."""
    return Instance(
        jobs=tuple(
            Job(
                id=j.id,
                interval=Interval(
                    round(j.start * 16.0) / 16.0,
                    max(round(j.end * 16.0), round(j.start * 16.0)) / 16.0,
                ),
                weight=j.weight,
                tag=j.tag,
            )
            for j in instance.jobs
        ),
        g=instance.g,
        name=instance.name,
    )


def _disguised(instance: Instance, rng: random.Random) -> Instance:
    """A relabeled, time-translated variant: same problem, different bytes."""
    delta = float(rng.randrange(-4096, 4096)) / 16.0
    jobs = list(instance.jobs)
    rng.shuffle(jobs)
    base = rng.randrange(100_000, 900_000)
    return Instance(
        jobs=tuple(
            Job(
                id=base + k,
                interval=Interval(j.start + delta, j.end + delta),
                weight=j.weight,
                tag=j.tag,
            )
            for k, j in enumerate(jobs)
        ),
        g=instance.g,
        name=f"{instance.name}@{delta:g}",
    )


def build_hot_set(size: int = HOT_SET_SIZE, seed: int = 2009) -> List[Instance]:
    """``size`` distinct canonical requests, weighted toward the expensive
    family (proper) so a cache miss costs what it costs in production."""
    rng = random.Random(seed)
    hot: List[Instance] = []
    while len(hot) < size:
        roll = len(hot) % 4
        s = rng.randrange(1, 10_000)
        if roll == 3:
            hot.append(_quantized(clique_instance(240, 4, seed=s)))
        else:
            hot.append(_quantized(proper_instance(260 + 40 * roll, 3, seed=s)))
    return hot


def build_stream(
    hot: Sequence[Instance],
    passes: int,
    seed: int = 4242,
    cold_every: int = COLD_EVERY,
) -> List[Tuple[str, bytes]]:
    """The replay stream: ``passes`` shuffled disguised passes over the hot
    set, a cold singleton every ``cold_every`` hot requests.

    Each element is ``(kind, body)`` with the request body pre-serialized,
    so replay time measures the serving path, not client-side JSON work.
    """
    rng = random.Random(seed)
    stream: List[Tuple[str, bytes]] = []

    def body_of(instance: Instance) -> bytes:
        return json.dumps(
            {"instance": bio.instance_to_dict(instance), "wait": True}
        ).encode("utf-8")

    cold_seed = 1_000_000
    since_cold = 0
    for _ in range(passes):
        order = list(hot)
        rng.shuffle(order)
        for instance in order:
            stream.append(("hot", body_of(_disguised(instance, rng))))
            since_cold += 1
            if since_cold >= cold_every:
                since_cold = 0
                cold_seed += 1
                cold = _quantized(
                    uniform_random_instance(120, 3, seed=cold_seed)
                )
                stream.append(("cold", body_of(cold)))
    return stream


class ReplayClient:
    """A keep-alive HTTP client with bounded retry on 429/503/transport."""

    def __init__(self, url: str, timeout: float = 120.0, retries: int = 5):
        host, _, port = url.removeprefix("http://").partition(":")
        self._address = (host, int(port))
        self.timeout = timeout
        self.retries = retries
        self._conn: Optional[http.client.HTTPConnection] = None

    def _dial(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                *self._address, timeout=self.timeout
            )
        return self._conn

    def _drop(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def solve(self, body: bytes) -> Dict[str, object]:
        last = "no attempt"
        for attempt in range(self.retries + 1):
            conn = self._dial()
            try:
                conn.request(
                    "POST", "/solve", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                data = response.read()
                if response.will_close:
                    self._drop()
            except (OSError, http.client.HTTPException) as exc:
                self._drop()
                last = f"transport: {exc}"
                time.sleep(min(0.5, 0.02 * (2.0 ** attempt)))
                continue
            if response.status == 200:
                return json.loads(data.decode("utf-8"))
            last = f"HTTP {response.status}"
            if response.status not in (429, 503):
                raise RuntimeError(f"replay request failed: {last}: {data[:200]!r}")
            time.sleep(min(0.5, 0.02 * (2.0 ** attempt)))
        raise RuntimeError(f"replay request kept failing: {last}")

    def close(self) -> None:
        self._drop()


def replay(
    url: str, stream: Sequence[Tuple[str, bytes]], threads: int
) -> Dict[str, object]:
    """Drive ``stream`` through ``threads`` concurrent keep-alive clients.

    Returns wall time, throughput, and latency quantiles; raises if any
    request ultimately fails (the stream is supposed to be lossless).
    """
    latencies: List[float] = []
    errors: List[str] = []
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker() -> None:
        client = ReplayClient(url)
        own: List[float] = []
        try:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(stream) or errors:
                        break
                    cursor["next"] = index + 1
                _, body = stream[index]
                started = time.perf_counter()
                reply = client.solve(body)
                own.append(time.perf_counter() - started)
                if reply.get("status") != "done":
                    raise RuntimeError(f"job not done: {reply}")
        except RuntimeError as exc:
            with lock:
                errors.append(str(exc))
        finally:
            client.close()
            with lock:
                latencies.extend(own)

    started = time.perf_counter()
    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    wall = time.perf_counter() - started
    if errors:
        raise RuntimeError(f"replay lost requests: {errors[:3]}")
    ordered = sorted(latencies)

    def pct(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "requests": len(latencies),
        "wall_seconds": round(wall, 3),
        "throughput_rps": round(len(latencies) / wall, 2),
        "p50_ms": round(pct(0.50) * 1e3, 2),
        "p95_ms": round(pct(0.95) * 1e3, 2),
        "p99_ms": round(pct(0.99) * 1e3, 2),
        "max_ms": round(ordered[-1] * 1e3, 2),
    }


def run_topology(
    workers: int,
    hot: Sequence[Instance],
    stream: Sequence[Tuple[str, bytes]],
    threads: int,
    store_root: str,
    store_capacity: int = STORE_CAPACITY,
    max_disk_entries: int = MAX_DISK_ENTRIES,
) -> Dict[str, object]:
    """Warm a fresh ``workers``-worker cluster, replay ``stream``, report."""
    with LocalCluster(
        workers=workers,
        store_capacity=store_capacity,
        store_dir=f"{store_root}/w{workers}",
        max_disk_entries=max_disk_entries,
        max_pending=64,
    ) as cluster:
        warm_stream = [
            (
                "warm",
                json.dumps(
                    {"instance": bio.instance_to_dict(i), "wait": True}
                ).encode("utf-8"),
            )
            for i in hot
        ]
        warm = replay(cluster.url, warm_stream, threads)
        steady = replay(cluster.url, stream, threads)
        stores = [s.store.stats() for s in cluster.services]
        hits = sum(s["hits"] for s in stores)
        misses = sum(s["misses"] for s in stores)
        return {
            "workers": workers,
            "store_capacity_per_worker": store_capacity,
            "max_disk_entries_per_worker": max_disk_entries,
            "threads": threads,
            "warmup": warm,
            "steady": steady,
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
                "disk_hits": sum(s["disk_hits"] for s in stores),
                "disk_evictions": sum(s["disk_evictions"] for s in stores),
            },
        }


def kill_drill(
    workers: int, store_root: str, jobs: int = 40, threads: int = 8
) -> Dict[str, object]:
    """Kill one worker under a concurrent burst; count completed requests.

    Clients run with bounded retry, so the router's mark-dead + replay-on-
    next-replica path must complete every request: ``lost`` is the number
    that ultimately failed, and the acceptance bar is zero.
    """
    rng = random.Random(77)
    with LocalCluster(
        workers=workers,
        store_capacity=STORE_CAPACITY,
        store_dir=f"{store_root}/drill",
        max_pending=64,
    ) as cluster:
        bodies = [
            json.dumps(
                {
                    "instance": bio.instance_to_dict(
                        _quantized(
                            uniform_random_instance(
                                150, 3, seed=rng.randrange(1, 10**6)
                            )
                        )
                    ),
                    "wait": True,
                }
            ).encode("utf-8")
            for _ in range(jobs)
        ]
        completed: List[int] = []
        failures: List[str] = []
        lock = threading.Lock()
        cursor = {"next": 0}

        def client_loop() -> None:
            client = ReplayClient(cluster.url, retries=6)
            try:
                while True:
                    with lock:
                        index = cursor["next"]
                        if index >= len(bodies):
                            break
                        cursor["next"] = index + 1
                    try:
                        reply = client.solve(bodies[index])
                        if reply.get("status") == "done":
                            with lock:
                                completed.append(index)
                        else:  # pragma: no cover - would be a lost job
                            with lock:
                                failures.append(str(reply))
                    except RuntimeError as exc:  # pragma: no cover - lost job
                        with lock:
                            failures.append(str(exc))
            finally:
                client.close()

        pool = [threading.Thread(target=client_loop) for _ in range(threads)]
        for index, t in enumerate(pool):
            t.start()
            if index == 1:
                cluster.kill_worker(0)  # mid-burst, with requests in flight
        for t in pool:
            t.join()
        return {
            "workers": workers,
            "submitted": jobs,
            "completed": len(completed),
            "lost": len(failures),
            "failures": failures[:5],
        }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=4, help="cluster size to compare against 1"
    )
    parser.add_argument(
        "--passes", type=int, default=20,
        help="shuffled passes over the hot set (~%d requests each + cold "
        "singletons); 100 for the full tens-of-thousands run" % HOT_SET_SIZE,
    )
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument(
        "--hot-set", type=int, default=HOT_SET_SIZE,
        help="distinct hot canonical requests",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale: 3 passes (the hot set must stay larger than "
        "one worker's memory+disk budget, so only the pass count shrinks)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.5,
        help="acceptance bar on steady-state throughput ratio",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_cluster.json"
    )
    args = parser.parse_args()
    passes = 3 if args.quick else args.passes
    hot_size = args.hot_set

    hot = build_hot_set(hot_size)
    stream = build_stream(hot, passes)
    print(
        f"replay stream: {len(stream)} requests "
        f"({hot_size} hot x {passes} passes + cold singletons), "
        f"{args.threads} client threads"
    )
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        for workers in (1, args.workers):
            result = run_topology(
                workers, hot, stream, args.threads, tmp
            )
            results.append(result)
            steady = result["steady"]
            print(
                f"workers={workers}: {steady['throughput_rps']} req/s, "
                f"p50={steady['p50_ms']}ms p95={steady['p95_ms']}ms "
                f"p99={steady['p99_ms']}ms, "
                f"hit_rate={result['cache']['hit_rate']}"
            )
        drill = kill_drill(args.workers, tmp)
        print(
            f"kill-one-worker drill: {drill['completed']}/{drill['submitted']} "
            f"completed, {drill['lost']} lost"
        )

    single, cluster = results
    speedup = round(
        cluster["steady"]["throughput_rps"] / single["steady"]["throughput_rps"], 2
    )
    payload = {
        "experiment": "E20-cluster-replay",
        "description": (
            "Mixed hot/cold traffic replay against 1-vs-N-worker sharded "
            "cluster topologies with identical per-worker cache budgets; "
            "the throughput differential is the aggregate cache capacity "
            "the consistent-hash sharding buys"
        ),
        "generated_by": "scripts/stress_replay.py"
        + (" --quick" if args.quick else f" --passes {passes}"),
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "hot_set": hot_size,
        "stream_requests_per_topology": len(stream),
        "headline": {
            "cluster_workers": args.workers,
            "single_throughput_rps": single["steady"]["throughput_rps"],
            "cluster_throughput_rps": cluster["steady"]["throughput_rps"],
            "speedup": speedup,
            "single_p99_ms": single["steady"]["p99_ms"],
            "cluster_p99_ms": cluster["steady"]["p99_ms"],
            "drill_lost_jobs": drill["lost"],
        },
        "topologies": results,
        "kill_drill": drill,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"headline: {args.workers}-worker cluster {speedup}x single-worker "
        f"throughput (bar: >= {args.min_speedup}x)"
    )
    if drill["lost"]:
        raise SystemExit("kill-one-worker drill lost jobs")
    if speedup < args.min_speedup:
        raise SystemExit(
            f"cluster speedup {speedup}x below the {args.min_speedup}x bar"
        )


if __name__ == "__main__":
    main()
