#!/usr/bin/env python
"""Grooming on a ring network — the topology the paper's follow-up targets.

Metro optical networks are usually rings, not paths.  The paper solves the
path case (Section 4) and points to its follow-up for general topologies;
this example exercises the package's ring extension
(:mod:`busytime.optical.ring`): the ring is cut at its least-loaded link,
lightpaths crossing the cut (which pairwise share that link) are groomed with
the Appendix clique algorithm, and the remaining lightpaths are groomed as a
path instance with the Section 4 machinery.

The script sweeps the grooming factor on a 32-node ring with mixed local and
wrap-around traffic and reports regenerator counts, wavelength counts and the
share of traffic crossing the cut.

Run with::

    python examples/ring_grooming.py
"""

from __future__ import annotations

import numpy as np

from busytime.analysis import format_table
from busytime.optical.ring import RingNetwork, RingTraffic, groom_ring

NUM_NODES = 32
NUM_LIGHTPATHS = 160
SEED = 11


def generate_ring_traffic(g: int, seed: int = SEED) -> RingTraffic:
    """Mixed traffic: mostly short clockwise arcs, some long wrap-around ones."""
    rng = np.random.default_rng(seed)
    pairs = []
    for i in range(NUM_LIGHTPATHS):
        if i % 4 == 0:
            # long arc wrapping through the N-1 -> 0 link
            a = int(rng.integers(NUM_NODES // 2, NUM_NODES))
            b = int(rng.integers(1, NUM_NODES // 4))
        else:
            a = int(rng.integers(0, NUM_NODES - 1))
            hops = int(rng.integers(2, 9))
            b = (a + hops) % NUM_NODES
        if a == b:
            b = (b + 1) % NUM_NODES
        pairs.append((a, b))
    return RingTraffic.from_pairs(
        RingNetwork(NUM_NODES), pairs, g=g, name=f"ring-demo(g={g})"
    )


def main() -> None:
    rows = []
    for g in (1, 2, 4, 8, 16):
        traffic = generate_ring_traffic(g)
        assignment = groom_ring(traffic)
        assignment.validate()
        cut = assignment.meta["cut"]
        rows.append(
            {
                "g": g,
                "cut_link": f"{cut[0]}-{cut[1]}",
                "crossing_lightpaths": assignment.meta["crossing"],
                "path_side_lightpaths": assignment.meta["path_side"],
                "wavelengths": assignment.num_wavelengths,
                "regenerators": assignment.regenerators(),
                "no_grooming_regens": traffic.total_regenerator_demand(),
                "savings_factor": round(
                    traffic.total_regenerator_demand()
                    / max(assignment.regenerators(), 1),
                    2,
                ),
            }
        )
    print(
        format_table(
            rows,
            title=(
                f"Ring grooming on a {NUM_NODES}-node ring, {NUM_LIGHTPATHS} lightpaths "
                "(cut reduction to the Section 4 path algorithms)"
            ),
        )
    )
    print()
    print(
        "Shape: as on the path, regenerator counts drop roughly in proportion to "
        "the grooming factor; lightpaths crossing the cut are handled by the "
        "Appendix clique algorithm and the rest by the path dispatcher."
    )


if __name__ == "__main__":
    main()
