#!/usr/bin/env python
"""Quickstart: one solve session, start to finish.

This walks through the package's front door — the solve-session engine — in
~60 lines:

1. build a :class:`busytime.Instance` from plain ``(start, end)`` tuples,
2. wrap it in a :class:`busytime.SolveRequest` and hand it to
   :meth:`busytime.Engine.solve`,
3. read the :class:`busytime.SolveReport`: cost, lower bound, the exact
   optimum (the instance is tiny), which algorithm ran on each connected
   component and the proven-ratio certificate,
4. compare against the paper's FirstFit 4-approximation called as a plain
   function, and print the engine's assignment machine by machine.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from busytime import Engine, Instance, SolveRequest, first_fit


def main() -> None:
    # Ten jobs with fixed processing windows; at most g = 2 may share a machine.
    jobs = [
        (0, 4), (1, 5), (2, 6),      # a busy morning cluster
        (4, 7), (5, 9),              # midday overlap
        (8, 12), (9, 13), (10, 14),  # afternoon cluster
        (15, 16), (15.5, 17),        # two short evening jobs
    ]
    instance = Instance.from_intervals(jobs, g=2, name="quickstart")

    # One request carries the instance plus every option the engine needs;
    # compute_optimum is feasible here because the instance is tiny.
    request = SolveRequest(instance=instance, compute_optimum=True)
    report = Engine().solve(request)

    print(f"instance: {instance}")
    print(f"  span(J)        = {instance.span:.1f}")
    print(f"  len(J)         = {instance.total_length:.1f}")
    print(f"  clique number  = {instance.clique_number}")
    print(f"  best LB        = {report.lower_bound:.2f}")
    print()

    ff = first_fit(instance)  # every algorithm is still a plain function
    print(f"FirstFit  : busy time = {ff.total_busy_time:.2f} on {ff.num_machines} machines")
    print(f"Engine    : busy time = {report.cost:.2f} on {report.num_machines} machines")
    print(f"Optimum   : busy time = {report.optimum:.2f}")
    print(f"FirstFit / OPT = {ff.total_busy_time / report.optimum:.3f}  (Theorem 2.1 guarantees <= 4)")
    print(f"engine certificate: cost <= {report.proven_ratio:g} * OPT "
          f"(solved in {report.wall_time_seconds * 1000:.1f} ms)")
    print()

    print("engine decisions (one per connected component):")
    for decision in report.components:
        print(f"  {decision.component}: n={decision.n}  -> {decision.algorithm} "
              f"(cost {decision.cost:.1f}, proven ratio {decision.proven_ratio:g})")
    print()

    print("engine assignment:")
    for machine in report.schedule.machines:
        jobs_text = ", ".join(
            f"J{j.id}[{j.start:g},{j.end:g}]" for j in sorted(machine.jobs, key=lambda j: j.start)
        )
        print(f"  machine {machine.index}: busy {machine.busy_time:.1f}  <- {jobs_text}")


if __name__ == "__main__":
    main()
