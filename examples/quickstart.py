#!/usr/bin/env python
"""Quickstart: schedule a handful of jobs and inspect the result.

This walks through the core public API in ~60 lines:

1. build an :class:`busytime.Instance` from plain ``(start, end)`` tuples,
2. run the paper's FirstFit 4-approximation and the auto-dispatching
   portfolio,
3. compare against the Observation 1.1 lower bounds and (because the
   instance is tiny) the exact optimum,
4. print the assignment machine by machine.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from busytime import (
    Instance,
    auto_schedule,
    best_lower_bound,
    exact_optimal_cost,
    first_fit,
    parallelism_bound,
    span_bound,
)


def main() -> None:
    # Ten jobs with fixed processing windows; at most g = 2 may share a machine.
    jobs = [
        (0, 4), (1, 5), (2, 6),      # a busy morning cluster
        (4, 7), (5, 9),              # midday overlap
        (8, 12), (9, 13), (10, 14),  # afternoon cluster
        (15, 16), (15.5, 17),        # two short evening jobs
    ]
    instance = Instance.from_intervals(jobs, g=2, name="quickstart")

    print(f"instance: {instance}")
    print(f"  span(J)        = {instance.span:.1f}")
    print(f"  len(J)         = {instance.total_length:.1f}")
    print(f"  clique number  = {instance.clique_number}")
    print(f"  span bound     = {span_bound(instance):.2f}")
    print(f"  parallelism bd = {parallelism_bound(instance):.2f}")
    print(f"  best LB        = {best_lower_bound(instance):.2f}")
    print()

    ff = first_fit(instance)
    auto = auto_schedule(instance)
    opt = exact_optimal_cost(instance, initial_upper_bound=ff.total_busy_time)

    print(f"FirstFit  : busy time = {ff.total_busy_time:.2f} on {ff.num_machines} machines")
    print(f"Dispatcher: busy time = {auto.total_busy_time:.2f} on {auto.num_machines} machines")
    print(f"Optimum   : busy time = {opt:.2f}")
    print(f"FirstFit / OPT = {ff.total_busy_time / opt:.3f}  (Theorem 2.1 guarantees <= 4)")
    print()

    print("FirstFit assignment:")
    for machine in ff.machines:
        jobs_text = ", ".join(
            f"J{j.id}[{j.start:g},{j.end:g}]" for j in sorted(machine.jobs, key=lambda j: j.start)
        )
        print(f"  machine {machine.index}: busy {machine.busy_time:.1f}  <- {jobs_text}")


if __name__ == "__main__":
    main()
