#!/usr/bin/env python
"""Optical traffic grooming on a path network (the paper's Section 4 application).

Scenario: a metro optical network laid out as a 60-node path carries 180
lightpath requests.  The operator can groom up to ``g`` lightpaths onto one
wavelength per fibre link; lightpaths sharing a wavelength also share
regenerators at intermediate nodes.  The goal is to pick wavelengths so the
total number of regenerators (the dominant hardware cost, the paper's
``alpha = 1`` objective) is minimised.

The script:

1. generates hotspot-style traffic (most demands touch two hub nodes),
2. grooms it with the dispatcher (best proven algorithm per component) and
   with plain FirstFit,
3. compares against the no-grooming deployment and the scheduling lower
   bound, and sweeps the grooming factor ``g``,
4. prints the per-node regenerator placement for the best solution.

Run with::

    python examples/optical_grooming.py
"""

from __future__ import annotations

from busytime import first_fit, groom
from busytime.analysis import format_table
from busytime.core.bounds import best_lower_bound
from busytime.generators import hotspot_traffic
from busytime.optical import regenerators_per_node, traffic_to_instance

NUM_NODES = 60
NUM_LIGHTPATHS = 180
SEED = 2026


def main() -> None:
    rows = []
    best_assignment = None
    for g in (1, 2, 4, 8, 16):
        traffic = hotspot_traffic(
            NUM_NODES, NUM_LIGHTPATHS, g=g, num_hubs=2, hub_fraction=0.7, seed=SEED
        )
        instance = traffic_to_instance(traffic)
        lb = best_lower_bound(instance)

        auto_wa = groom(traffic)                       # dispatcher
        ff_wa = groom(traffic, algorithm=first_fit)    # plain FirstFit

        if g == 4:
            best_assignment = auto_wa

        rows.append(
            {
                "g": g,
                "no_grooming_regens": traffic.total_regenerator_demand(),
                "firstfit_regens": ff_wa.regenerators(),
                "dispatcher_regens": auto_wa.regenerators(),
                "lower_bound": round(lb, 1),
                "dispatcher_vs_lb": round(auto_wa.regenerators() / lb, 3),
                "wavelengths": auto_wa.num_wavelengths,
                "adms": auto_wa.adms(),
            }
        )

    print(
        format_table(
            rows,
            title=(
                "Regenerator minimisation on a "
                f"{NUM_NODES}-node path, {NUM_LIGHTPATHS} lightpaths (Section 4)"
            ),
        )
    )
    print()

    assert best_assignment is not None
    placement = regenerators_per_node(best_assignment)
    busiest = sorted(placement.items(), key=lambda kv: -kv[1])[:10]
    print("Ten busiest regenerator sites for g = 4 (node: regenerators):")
    print("  " + ", ".join(f"{node}: {count}" for node, count in busiest if count))
    print()
    print(
        "Shape reproduced from the paper: grooming cuts regenerators by roughly "
        "the grooming factor, and the dispatcher stays within its proven factor "
        "of the scheduling lower bound."
    )


if __name__ == "__main__":
    main()
