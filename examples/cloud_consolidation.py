#!/usr/bin/env python
"""Cloud / cluster consolidation: busy time as energy or rental cost.

The paper's introduction motivates the objective with "systems where service
costs depend on the busy times (or utilization) of the machines/servers".
The canonical modern instance of that sentence is VM or batch-job
consolidation: a physical host (or an on-demand cloud instance) is paid for
— in energy or in dollars — for every hour it is powered on, regardless of
how many of its slots are occupied, and each host can run at most ``g``
guests at a time.

This example:

1. generates a day of batch jobs from a Poisson arrival process (bursty
   office-hours traffic plus a background trickle),
2. packs them onto hosts with FirstFit, the dispatcher, the best-fit
   heuristic and the two strawmen (one job per host; fewest-hosts
   colouring),
3. reports powered-on hours, host count and cost relative to the lower
   bound, for several host capacities ``g``.

Run with::

    python examples/cloud_consolidation.py
"""

from __future__ import annotations

import numpy as np

from busytime import Instance, auto_schedule, best_fit, first_fit, machine_minimizing, singleton
from busytime.analysis import format_table
from busytime.core.bounds import best_lower_bound

HOURS = 24.0
NUM_JOBS = 300
SEED = 7


def generate_day_of_jobs(seed: int = SEED) -> list:
    """A day of batch jobs: office-hours bursts plus a background trickle."""
    rng = np.random.default_rng(seed)
    jobs = []
    # office-hours bursts around 9:00, 13:00, 16:00
    for centre, count in ((9.0, 120), (13.0, 90), (16.0, 60)):
        starts = rng.normal(centre, 0.75, size=count)
        durations = rng.exponential(1.2, size=count) + 0.1
        jobs += [(float(s), float(s + d)) for s, d in zip(starts, durations)]
    # background trickle
    starts = rng.uniform(0.0, HOURS - 1.0, size=NUM_JOBS - len(jobs))
    durations = rng.exponential(0.8, size=len(starts)) + 0.05
    jobs += [(float(s), float(s + d)) for s, d in zip(starts, durations)]
    # clamp to the day
    return [(max(0.0, s), min(HOURS, e)) for s, e in jobs if e > s]


def main() -> None:
    raw_jobs = generate_day_of_jobs()
    rows = []
    for g in (2, 4, 8, 16):
        instance = Instance.from_intervals(raw_jobs, g=g, name=f"day(g={g})")
        lb = best_lower_bound(instance)
        schedules = {
            "one job per host": singleton(instance),
            "fewest hosts (colouring)": machine_minimizing(instance),
            "FirstFit (paper, Sec. 2)": first_fit(instance),
            "BestFit heuristic": best_fit(instance),
            "dispatcher (portfolio)": auto_schedule(instance),
        }
        for label, sched in schedules.items():
            rows.append(
                {
                    "g": g,
                    "policy": label,
                    "powered_on_hours": round(sched.total_busy_time, 1),
                    "hosts_used": sched.num_machines,
                    "vs_lower_bound": round(sched.total_busy_time / lb, 3),
                }
            )

    print(
        format_table(
            rows,
            title=(
                f"Consolidating {len(raw_jobs)} batch jobs over a {HOURS:.0f}h day — "
                "powered-on host-hours by packing policy"
            ),
        )
    )
    print()
    print(
        "Shape reproduced from the paper: busy-time-aware packing (FirstFit and "
        "the dispatcher) pays a small constant factor over the lower bound; the "
        "no-sharing strawman wastes an order of magnitude, and machine-count "
        "minimisation — the polynomial objective the paper contrasts with — is "
        "consistently worse than the busy-time-aware algorithms because it "
        "ignores how long each host stays powered on."
    )


if __name__ == "__main__":
    main()
