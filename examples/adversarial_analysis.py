#!/usr/bin/env python
"""Reproduce the paper's worst-case analysis of FirstFit (Theorems 2.1–2.5).

The script regenerates, in one run, the three quantitative stories of
Section 2:

* **Fig. 4 / Theorem 2.4** — on the adversarial three-column instance,
  FirstFit's cost approaches ``3 * OPT`` as the parallelism ``g`` grows and
  the column offset ``eps'`` shrinks; the table prints measured ratio vs the
  closed-form prediction ``(3 - 2 eps') g / (g + 1)``.
* **Section 3.1 remark** — the ranked-shift *proper* variant of the same
  instance keeps FirstFit at ≈3 while the NextFit greedy achieves ratio ≈1.
* **Lemma 2.3 certificate** — on the adversarial run, the inequality
  ``len(J_i) >= (g/3) span(J_{i+1})`` that powers the upper-bound proof is
  extracted machine by machine.

Run with::

    python examples/adversarial_analysis.py
"""

from __future__ import annotations

from busytime import first_fit, proper_greedy
from busytime.analysis import format_table, lemma23_records
from busytime.generators import (
    fig4_reference_schedule,
    firstfit_lower_bound_instance,
    ranked_shift_proper_instance,
    theorem24_parameters,
)


def theorem_24_table() -> None:
    rows = []
    for g in (3, 5, 10, 20, 50):
        for eps_prime in (0.05, 0.01):
            inst = firstfit_lower_bound_instance(g, eps_prime)
            ff = first_fit(inst)
            ref = fig4_reference_schedule(inst)
            ratio = ff.total_busy_time / ref.total_busy_time
            rows.append(
                {
                    "g": g,
                    "eps'": eps_prime,
                    "jobs": inst.n,
                    "FirstFit": round(ff.total_busy_time, 2),
                    "OPT (<=)": round(ref.total_busy_time, 2),
                    "ratio": round(ratio, 4),
                    "predicted": round((3 - 2 * eps_prime) * g / (g + 1), 4),
                }
            )
    print(format_table(rows, title="Fig. 4 / Theorem 2.4 — FirstFit ratio approaches 3"))
    print()


def proper_variant_table() -> None:
    rows = []
    for g in (5, 10, 20, 40):
        inst = ranked_shift_proper_instance(g)
        ref = fig4_reference_schedule(inst).total_busy_time
        rows.append(
            {
                "g": g,
                "proper?": inst.is_proper(),
                "FirstFit ratio": round(first_fit(inst).total_busy_time / ref, 4),
                "Greedy ratio": round(proper_greedy(inst).total_busy_time / ref, 4),
            }
        )
    print(
        format_table(
            rows,
            title=(
                "Ranked-shift proper variant (Section 3.1 remark) — "
                "FirstFit stays ~3-bad, the greedy stays within 2"
            ),
        )
    )
    print()


def lemma_23_table() -> None:
    eps_prime, g = theorem24_parameters(0.5)
    inst = firstfit_lower_bound_instance(g, eps_prime)
    sched = first_fit(inst)
    rows = [
        {
            "machine i": r.machine_index,
            "len(J_i)": round(r.len_ji, 2),
            "(g/3) span(J_{i+1})": round(r.rhs, 2),
            "slack": round(r.slack, 2),
            "holds": r.holds,
        }
        for r in lemma23_records(sched)
    ]
    print(
        format_table(
            rows,
            title=f"Lemma 2.3 certificate on the adversarial FirstFit run (g={g})",
        )
    )
    print()
    print(
        "Every row satisfies the inequality, as the proof of Theorem 2.1 requires; "
        "the slack shows how much of the factor 4 the adversarial family actually uses."
    )


def main() -> None:
    theorem_24_table()
    proper_variant_table()
    lemma_23_table()


if __name__ == "__main__":
    main()
