"""E17 — dynamic workloads: churn traces under the three standard policies.

The paper's motivating systems (lightpath provisioning, cloud hosts) see
jobs *depart* as well as arrive.  This module regenerates the churn
benchmark behind the dynamic-workload subsystem
(:mod:`busytime.extensions.dynamic`):

* over a seeded corpus of dynamic traces drawn from the random families,
  periodic rolling-horizon re-optimization (via the solve engine, with the
  adopt-only-if-better guard) must report realized cost **at most** the
  pure-online never-migrate policy's, trace by trace — re-optimization pays
  for the machinery it adds;
* the migration-budget policy sits in between: its moves are individually
  improving, but a myopic gain can interact with *future* arrivals, so it is
  only held to a small stability tolerance over never-migrate;
* a 10,000-event trace (5000 arrivals + 5000 departures) must replay under
  each policy with the ``verify_schedule`` oracle cross-check cadence
  enabled, in seconds — the PR 2 sweep-line machine state is what keeps the
  mutation path (assign/unassign/migrate) cheap.

Every replay cross-checks the incrementally maintained machine profiles
against the slow-path oracle (at the check cadence, at every replan and at
the end of the trace); a drifting fast path raises
``ProfileOracleMismatchError`` and fails the benchmark.

The module is marked ``slow`` and skipped by default so tier-1 stays fast;
run it with ``pytest benchmarks/test_bench_dynamic.py --run-slow``.
"""

from __future__ import annotations

import time

import pytest

from busytime.extensions.dynamic import (
    MigrationBudget,
    NeverMigrate,
    RollingHorizon,
    Simulator,
    simulate,
)
from busytime.generators import (
    bursty_dynamic_trace,
    poisson_dynamic_trace,
    uniform_dynamic_trace,
)

pytestmark = pytest.mark.slow

#: Seeded corpus: (family label, maker, seeds).  Churn 0.35 and the default
#: replan period (an eighth of the horizon) — the regime where departures
#: leave enough slack for replanning to consolidate machines.
CHURN = 0.35
CORPUS = [
    ("uniform", uniform_dynamic_trace, (0, 1, 2)),
    ("poisson", poisson_dynamic_trace, (0, 1, 2, 3)),
    ("bursty", bursty_dynamic_trace, (0, 1, 2, 3)),
]

LARGE_TRACE = dict(n=5000, g=8, early_departure_fraction=0.3, seed=7)
LARGE_BUDGET_SECONDS = 30.0


def _corpus_traces():
    for family, maker, seeds in CORPUS:
        for seed in seeds:
            yield family, seed, maker(
                150, 3, early_departure_fraction=CHURN, seed=seed
            )


def test_rolling_horizon_beats_never_migrate(benchmark, attach_rows):
    """Replanning reports cost <= pure online, trace by trace, oracle-checked."""
    rows = []
    for family, seed, trace in _corpus_traces():
        never, rolling, budget = simulate(trace, oracle_check_every=64)
        assert rolling.realized_cost <= never.realized_cost + 1e-9, (
            f"{family} seed={seed}: rolling horizon {rolling.realized_cost} "
            f"worse than never-migrate {never.realized_cost}"
        )
        # Budgeted moves are individually improving but myopic: a gain taken
        # now can cost more against future arrivals, so the bounded policy is
        # held to a 2% stability tolerance rather than strict dominance.
        assert budget.realized_cost <= never.realized_cost * 1.02 + 1e-9, (
            f"{family} seed={seed}: migration budget {budget.realized_cost} "
            f"far worse than never-migrate {never.realized_cost}"
        )
        # Every policy respects the Observation 1.1 bound on what was run.
        for report in (never, rolling, budget):
            assert report.realized_cost >= report.lower_bound - 1e-9
        rows.append(
            {
                "family": family,
                "seed": seed,
                "never_migrate": round(never.realized_cost, 2),
                "rolling_horizon": round(rolling.realized_cost, 2),
                "migration_budget": round(budget.realized_cost, 2),
                "migrations": rolling.migrations,
                "gap_vs_offline": round(rolling.gap_vs_offline, 3),
            }
        )

    # Time one representative replay (the first corpus trace, full panel).
    _, _, trace = next(_corpus_traces())
    benchmark(lambda: simulate(trace, oracle_check_every=64, compare_offline=False))
    attach_rows(benchmark, rows, churn=CHURN)


@pytest.mark.parametrize(
    "policy_maker",
    [
        lambda period: NeverMigrate(),
        lambda period: RollingHorizon(period),
        lambda period: MigrationBudget(period, budget=8),
    ],
    ids=["never_migrate", "rolling_horizon", "migration_budget"],
)
def test_ten_thousand_event_trace_replays_in_seconds(policy_maker):
    """10k-event churn trace, oracle cross-checks on, per-policy time budget."""
    trace = uniform_dynamic_trace(horizon=2000.0, **LARGE_TRACE)
    assert trace.num_events == 10_000
    lo, hi = trace.horizon
    started = time.perf_counter()
    report = Simulator(
        trace,
        policy_maker((hi - lo) / 8.0),
        oracle_check_every=256,
        compare_offline=False,
    ).run()
    elapsed = time.perf_counter() - started
    assert report.oracle_checks >= trace.num_events // 256
    assert report.realized_cost >= report.lower_bound - 1e-9
    assert elapsed < LARGE_BUDGET_SECONDS, (
        f"{report.policy}: 10k-event replay took {elapsed:.1f}s "
        f"(budget {LARGE_BUDGET_SECONDS}s)"
    )


def test_rolling_horizon_beats_never_migrate_at_scale():
    """The corpus inequality also holds on the 10k-event trace."""
    trace = uniform_dynamic_trace(horizon=2000.0, **LARGE_TRACE)
    never, rolling, _ = simulate(trace, oracle_check_every=256, compare_offline=False)
    assert rolling.realized_cost <= never.realized_cost + 1e-9
