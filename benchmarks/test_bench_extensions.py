"""E13–E15 — extension experiments beyond the paper's core tables.

E13  Ring grooming (the direction of the paper's follow-up [9]): cut-based
     reduction of ring traffic to the path algorithms; shape: valid
     assignments, regenerator savings growing with ``g``, cost bounded by the
     no-grooming deployment.
E14  Online vs offline: the price of assigning jobs irrevocably in arrival
     order, measured against the offline algorithms and the lower bound.
E15  Ablation of FirstFit's ordering rule (the design choice Section 2 fixes
     as "longest first"): longest-first vs arrival-order vs shortest-first vs
     random order.  Shape: longest-first is the only ordering that retains
     the Fig. 4 behaviour ≈3 (the others are either better on that family or
     worse on random workloads), and on random workloads the orderings are
     within a few percent — evidence that the analysis, not typical-case
     cost, dictates the choice.
"""

from __future__ import annotations

import random
import statistics

import pytest

from busytime.algorithms import first_fit
from busytime.core.bounds import best_lower_bound
from busytime.core.instance import Instance
from busytime.core.schedule import ScheduleBuilder
from busytime.extensions import ONLINE_ALGORITHMS, online_first_fit
from busytime.generators import (
    fig4_reference_schedule,
    firstfit_lower_bound_instance,
    uniform_random_instance,
)
from busytime.optical.ring import RingNetwork, RingTraffic, groom_ring


# ---------------------------------------------------------------------------
# E13 — ring grooming
# ---------------------------------------------------------------------------


def _ring_traffic(num_nodes, n, g, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    pairs = []
    for i in range(n):
        a, b = sorted(int(x) for x in rng.choice(num_nodes, size=2, replace=False))
        if i % 3 == 0:
            a, b = b, a  # wrap-around arc
        pairs.append((a, b))
    return RingTraffic.from_pairs(RingNetwork(num_nodes), pairs, g=g)


def test_ring_grooming_savings(benchmark, attach_rows):
    rows = []
    base = None
    for g in (1, 2, 4, 8):
        traffic = _ring_traffic(40, 120, g, seed=11)
        assignment = groom_ring(traffic)
        assignment.validate()
        regens = assignment.regenerators()
        if g == 1:
            base = regens
        assert regens <= traffic.total_regenerator_demand()
        rows.append(
            {
                "g": g,
                "lightpaths": traffic.n,
                "crossing_cut": assignment.meta["crossing"],
                "regenerators": regens,
                "no_grooming": traffic.total_regenerator_demand(),
                "savings_vs_g1": round(base / max(regens, 1), 2),
                "wavelengths": assignment.num_wavelengths,
            }
        )
    regen_series = [r["regenerators"] for r in rows]
    assert regen_series == sorted(regen_series, reverse=True)
    traffic = _ring_traffic(40, 120, 4, seed=11)
    benchmark(lambda: groom_ring(traffic))
    attach_rows(benchmark, rows, experiment="E13-ring-grooming")


# ---------------------------------------------------------------------------
# E14 — online vs offline
# ---------------------------------------------------------------------------


def test_online_vs_offline(benchmark, attach_rows):
    rows = []
    for seed in range(4):
        inst = uniform_random_instance(150, g=4, seed=seed)
        lb = best_lower_bound(inst)
        offline = first_fit(inst).total_busy_time
        row = {"seed": seed, "offline_first_fit": round(offline, 1), "lb": round(lb, 1)}
        for name, algorithm in ONLINE_ALGORITHMS.items():
            sched = algorithm(inst)
            sched.validate()
            row[name] = round(sched.total_busy_time, 1)
            row[f"{name}_vs_lb"] = round(sched.total_busy_time / lb, 3)
        rows.append(row)
    # Shape: arrival-order FirstFit stays within the offline guarantee factor
    # of the lower bound on these dense workloads.
    assert all(r["online_first_fit_vs_lb"] <= 4.0 + 1e-9 for r in rows)
    inst = uniform_random_instance(150, g=4, seed=0)
    benchmark(lambda: online_first_fit(inst))
    attach_rows(benchmark, rows, experiment="E14-online-vs-offline")


# ---------------------------------------------------------------------------
# E15 — FirstFit ordering ablation
# ---------------------------------------------------------------------------


def _first_fit_with_order(instance: Instance, order) -> float:
    builder = ScheduleBuilder(instance, algorithm="ablation")
    for job in order:
        builder.assign_first_fit(job)
    return builder.freeze().total_busy_time


def _orders(instance: Instance):
    jobs = list(instance.jobs)
    rng = random.Random(0)
    shuffled = list(jobs)
    rng.shuffle(shuffled)
    return {
        "longest_first": sorted(jobs, key=lambda j: (-j.length, j.start, j.id)),
        "arrival_order": sorted(jobs, key=lambda j: (j.start, j.end, j.id)),
        "shortest_first": sorted(jobs, key=lambda j: (j.length, j.start, j.id)),
        "random_order": shuffled,
    }


def test_firstfit_ordering_ablation(benchmark, attach_rows):
    rows = []

    # (a) the Fig. 4 family: the ordering is what makes Theorem 2.4 bite
    fig4 = firstfit_lower_bound_instance(12, eps_prime=0.05)
    ref = fig4_reference_schedule(fig4).total_busy_time
    fig4_row = {"workload": "fig4(g=12)"}
    for name, order in _orders(fig4).items():
        fig4_row[name] = round(_first_fit_with_order(fig4, order) / ref, 3)
    rows.append(fig4_row)
    assert fig4_row["longest_first"] > 2.5  # the adversarial behaviour
    assert fig4_row["arrival_order"] < 2.0  # arrival order dodges it here

    # (b) random workloads: orderings are close; report mean ratios vs LB
    sums = {name: [] for name in ("longest_first", "arrival_order", "shortest_first", "random_order")}
    for seed in range(4):
        inst = uniform_random_instance(120, g=4, seed=seed)
        lb = best_lower_bound(inst)
        for name, order in _orders(inst).items():
            sums[name].append(_first_fit_with_order(inst, order) / lb)
    random_row = {"workload": "uniform(mean of 4 seeds)"}
    for name, values in sums.items():
        random_row[name] = round(statistics.mean(values), 3)
    rows.append(random_row)
    # Shape: every ordering stays under the factor-4 guarantee's worth of LB
    # on random workloads; differences are small.
    assert all(v <= 4.0 for v in list(random_row.values())[1:])

    inst = uniform_random_instance(120, g=4, seed=0)
    benchmark(lambda: first_fit(inst))
    attach_rows(benchmark, rows, experiment="E15-ordering-ablation")
