"""E4 — Section 3.1 closing remark: the ranked-shift proper variant of Fig. 4.

On this *proper* instance FirstFit is still ~3-bad while the Section 3.1
greedy honours its factor-2 guarantee.  The regenerated table shows, per
``g``, both algorithms' ratios against the reference (proof) solution; the
shape to reproduce is the widening separation as ``g`` grows.
"""

from __future__ import annotations

import pytest

from busytime.algorithms import first_fit, proper_greedy
from busytime.generators import fig4_reference_schedule, ranked_shift_proper_instance

G_SWEEP = [4, 8, 16, 32]


def test_separation_between_firstfit_and_greedy(benchmark, attach_rows):
    rows = []
    for g in G_SWEEP:
        inst = ranked_shift_proper_instance(g)
        assert inst.is_proper()
        ref = fig4_reference_schedule(inst).total_busy_time
        ff_ratio = first_fit(inst).total_busy_time / ref
        greedy_ratio = proper_greedy(inst).total_busy_time / ref
        assert greedy_ratio <= 2.0 + 1e-6  # Theorem 3.1
        assert ff_ratio > greedy_ratio  # the separation
        rows.append(
            {
                "g": g,
                "n": inst.n,
                "firstfit_ratio": round(ff_ratio, 4),
                "greedy_ratio": round(greedy_ratio, 4),
                "separation": round(ff_ratio - greedy_ratio, 4),
            }
        )
    # FirstFit's ratio tends to 3 on this family while greedy stays at ~1,
    # so the separation grows with g.
    seps = [r["separation"] for r in rows]
    assert seps == sorted(seps)
    assert rows[-1]["firstfit_ratio"] > 2.5

    g = G_SWEEP[-1]
    inst = ranked_shift_proper_instance(g)
    benchmark(lambda: proper_greedy(inst))
    attach_rows(benchmark, rows, experiment="E4-proper-fig4-variant")
