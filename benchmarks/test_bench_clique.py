"""E7 — Theorem A.1 + Fig. 5: the clique algorithm is a 2-approximation.

Regenerates, per (n, g), the clique algorithm's cost, the exact optimum
(small n) or the Appendix delta lower bound (large n), and the ratio, which
must never exceed 2.  The per-machine certificate of the proof
(busy interval inside ``[t - delta, t + delta]``) is also re-checked.
"""

from __future__ import annotations

import pytest

from busytime.algorithms import clique_schedule
from busytime.core.bounds import clique_bound
from busytime.exact import exact_optimal_cost
from busytime.generators import clique_instance

SMALL = [(8, 2), (9, 3)]
LARGE = [(100, 2), (200, 5), (400, 10)]


@pytest.mark.parametrize("n,g", SMALL, ids=[f"small-n{n}-g{g}" for n, g in SMALL])
def test_clique_vs_exact_optimum(benchmark, attach_rows, n, g):
    rows = []
    for seed in range(5):
        inst = clique_instance(n, g, seed=seed)
        sched = clique_schedule(inst)
        opt = exact_optimal_cost(inst, initial_upper_bound=sched.total_busy_time)
        ratio = sched.total_busy_time / opt
        assert ratio <= 2.0 + 1e-9  # Theorem A.1
        rows.append(
            {
                "n": n,
                "g": g,
                "seed": seed,
                "clique_alg": round(sched.total_busy_time, 3),
                "opt": round(opt, 3),
                "ratio": round(ratio, 3),
            }
        )
    inst = clique_instance(n, g, seed=0)
    benchmark(lambda: clique_schedule(inst))
    attach_rows(benchmark, rows, experiment="E7-theorem-A.1", paper_bound=2.0)


@pytest.mark.parametrize("n,g", LARGE, ids=[f"large-n{n}-g{g}" for n, g in LARGE])
def test_clique_vs_delta_bound_large(benchmark, attach_rows, n, g):
    rows = []
    for seed in range(3):
        inst = clique_instance(n, g, seed=seed)
        sched = clique_schedule(inst)
        lb = clique_bound(inst)
        ratio = sched.total_busy_time / lb
        assert ratio <= 2.0 + 1e-9
        # per-machine certificate of the proof
        t = sched.meta["common_point"]
        deltas = sched.meta["deltas"]
        for m in sched.machines:
            dmax = max(deltas[j.id] for j in m.jobs)
            assert m.busy_time <= 2 * dmax + 1e-9
        rows.append(
            {
                "n": n,
                "g": g,
                "seed": seed,
                "clique_alg": round(sched.total_busy_time, 3),
                "delta_bound": round(lb, 3),
                "ratio_vs_bound": round(ratio, 3),
                "machines": sched.num_machines,
            }
        )
    inst = clique_instance(n, g, seed=0)
    benchmark(lambda: clique_schedule(inst))
    attach_rows(benchmark, rows, experiment="E7-theorem-A.1-large", paper_bound=2.0)
