"""E19 — demand-aware FirstFit vs the flexible lower bound ([15]-style corpus).

The follow-up model of Khandekar–Schieber–Shachnai–Tamir [15] gives every
job a capacity demand ``s_j``; a machine may host any job set whose total
demand at each instant is at most ``g``.  PR 5 made that model a first-class
axis of the core: ``Job.demand``, the demand-weighted ``SweepProfile``
counters and the demand-aware ``fits`` check the greedy family runs on.

This module regenerates the cross-model comparison:

* demand-aware FirstFit on a rigid [15]-style corpus
  (:func:`busytime.generators.demand_loaded_instance`) produces feasible
  schedules (validated by the demand-aware ``verify_schedule`` oracle)
  whose cost respects the demand-weighted Observation 1.1 bound
  ``max(span(J), sum len_j s_j / g)``;
* the same bound computed through :mod:`busytime.extensions.flexible`'s
  :func:`flexible_lower_bound` on the rigid embedding agrees exactly —
  the extension and the core now share one demand model;
* the observed cost stays within the trivial ``len(J) <= g * LB`` net, the
  same last-resort inequality the rigid differential corpus pins.
"""

from __future__ import annotations

import pytest

from busytime.algorithms.first_fit import first_fit
from busytime.core.bounds import best_lower_bound
from busytime.core.schedule import verify_schedule
from busytime.extensions.flexible import FlexibleInstance, FlexibleJob, flexible_lower_bound
from busytime.generators import demand_loaded_instance

CORPUS = [
    dict(n=200, g=4, seed=31),
    dict(n=400, g=6, seed=32),
    dict(n=800, g=8, seed=33),
]


def _flexible_embedding(instance) -> FlexibleInstance:
    """The rigid instance as a (slack-free) flexible instance with demands."""
    return FlexibleInstance(
        jobs=tuple(
            FlexibleJob(
                id=j.id,
                release=j.start,
                due=j.end,
                processing=j.length,
                demand=float(j.demand),
            )
            for j in instance.jobs
        ),
        g=float(instance.g),
        name=instance.name,
    )


def test_demand_firstfit_vs_flexible_lower_bound(benchmark, attach_rows):
    rows = []
    for params in CORPUS:
        inst = demand_loaded_instance(**params)
        assert inst.has_demands
        schedule = first_fit(inst)
        verify_schedule(schedule)  # demand-aware slow-path oracle
        lb = best_lower_bound(inst)
        flexible_lb = flexible_lower_bound(_flexible_embedding(inst))
        # Core and extension price the same demand model: the bounds agree.
        assert lb == pytest.approx(flexible_lb)
        assert schedule.total_busy_time >= lb - 1e-9
        # Last-resort net: cost <= len(J) <= sum len_j s_j = g * (len_s/g).
        assert schedule.total_busy_time <= inst.g * lb + 1e-9
        rows.append(
            {
                **params,
                "max_demand": inst.max_demand,
                "peak_demand": inst.peak_demand,
                "machines": schedule.num_machines,
                "cost": round(schedule.total_busy_time, 3),
                "lower_bound": round(lb, 3),
                "ratio_vs_lb": round(schedule.total_busy_time / lb, 3),
            }
        )

    timed = demand_loaded_instance(**CORPUS[-1])
    schedule = benchmark(lambda: first_fit(timed))
    verify_schedule(schedule)
    attach_rows(
        benchmark,
        rows,
        experiment="E19-demand-aware-firstfit",
        validated_by_verify_schedule=True,
    )


def test_unit_demand_corpus_is_unchanged_by_the_axis(benchmark, attach_rows):
    """A demand corpus capped at demand 1 is bit-for-bit the rigid workload:
    same partitions whether demands are spelled out or absent."""
    from busytime.core.instance import Instance
    from busytime.core.intervals import Job

    inst = demand_loaded_instance(n=400, g=4, max_demand=1, seed=34)
    assert not inst.has_demands
    stripped = Instance(
        jobs=tuple(Job(id=j.id, interval=j.interval) for j in inst.jobs),
        g=inst.g,
        name=inst.name,
    )
    direct = first_fit(stripped)
    spelled = benchmark(lambda: first_fit(inst))
    verify_schedule(spelled)
    assert spelled.assignment() == direct.assignment()
    assert spelled.total_busy_time == direct.total_busy_time
    attach_rows(
        benchmark,
        [
            {
                "n": 400,
                "g": 4,
                "seed": 34,
                "machines": spelled.num_machines,
                "cost": round(spelled.total_busy_time, 3),
            }
        ],
        experiment="E19-demand-aware-firstfit",
    )
