"""E24 — tariff-aware placement: priced savings, oracle-verified.

The placement subsystem (:mod:`busytime.pricing`,
:mod:`busytime.algorithms.placement`) claims three things at once:

* sliding flex-window jobs toward cheap tariff bands strictly beats
  pricing the rigid FirstFit schedule, in aggregate over the corpus;
* the local-search descent never loses to its own greedy start, and
  every cost stays above the window-aware tariff lower bound;
* under a constant unit tariff on a rigid instance the whole machinery
  degenerates to the seed ``first_fit`` bit for bit.

This module regenerates those claims with the corpus runner from
``scripts/bench_tariff.py`` (the same harness behind
``BENCH_tariff.json``, at CI scale: the first four corpus cases).

The module is marked ``slow`` and skipped by default so tier-1 stays
fast; run it with ``pytest benchmarks/test_bench_tariff.py --run-slow``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

import bench_tariff  # noqa: E402

pytestmark = pytest.mark.slow

CASES = 4  # CI scale; the artifact runs the full twelve-case corpus


def test_tariff_placement_beats_fixed_baseline(benchmark, attach_rows):
    pin = bench_tariff.degeneration_pin()
    assert pin["ok"], pin

    rows = benchmark(lambda: bench_tariff.run_corpus(seed=0, cases=CASES))
    failures = bench_tariff.check_bars(rows, pin)
    assert not failures, failures

    total_fixed = sum(r["cost_fixed"] for r in rows)
    total_placed = sum(r["cost_placed"] for r in rows)
    assert total_placed < total_fixed
    attach_rows(
        benchmark,
        rows,
        degeneration_pin=pin,
        placement_savings=round(1 - total_placed / total_fixed, 4),
    )
