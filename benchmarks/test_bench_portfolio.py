"""E23 — anytime portfolio racing and the learned selector.

The portfolio layer (:mod:`busytime.portfolio`) makes three claims:

* racing is *anytime*: the winner's cost is non-increasing in the race
  budget, and every incumbent improvement the racer books is real
  (strictly decreasing timeline);
* the learned selector, trained offline on result-store history at seeds
  disjoint from the evaluation corpus, strictly beats the static
  ``best_ratio`` single pick in aggregate — without ever being worse on an
  instance or changing a proven-ratio certificate;
* every race winner passes the independent ``verify_schedule`` oracle and
  never loses to the static single pick it subsumes.

This module regenerates those claims with the corpus and runners from
``scripts/bench_portfolio.py`` (the same harness behind
``BENCH_portfolio.json``, at CI scale).

The module is marked ``slow`` and skipped by default so tier-1 stays fast;
run it with ``pytest benchmarks/test_bench_portfolio.py --run-slow``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

import bench_portfolio  # noqa: E402

from busytime.engine import Engine, SolveRequest

pytestmark = pytest.mark.slow


def test_portfolio_claims_hold_at_ci_scale(benchmark, attach_rows):
    engine = Engine()
    selector, train_stats = bench_portfolio.train_history_selector(
        engine, seeds_per_family=2
    )
    assert train_stats["samples"] > 0
    assert train_stats["skipped_corrupt"] == 0

    # The runners raise SystemExit on any claim violation, so reaching the
    # assertions below *is* the reproduction check.
    anytime = bench_portfolio.run_anytime(engine)
    comparison = bench_portfolio.run_selector_comparison(engine, selector)
    racing = bench_portfolio.run_racing_vs_static(engine)

    assert len(anytime) == len(bench_portfolio.eval_corpus())
    for row in anytime:
        costs = row["costs"]
        assert all(b <= a + 1e-9 for a, b in zip(costs, costs[1:]))

    assert comparison["learned_total"] < comparison["static_total"]
    assert comparison["instances_improved"] >= 1
    for row in comparison["rows"]:
        assert row["learned_cost"] <= row["static_cost"] + 1e-9

    assert all(r["raced_cost"] <= r["static_cost"] + 1e-9 for r in racing)
    assert all(r["decisive"] for r in racing)

    # Time one representative race (the whole-corpus runners above are the
    # reproduction; this is the perf datapoint).
    instance = bench_portfolio.eval_corpus()[0][1]
    request = SolveRequest(instance=instance, race=4)
    benchmark(lambda: engine.solve(request))
    attach_rows(
        benchmark,
        comparison["rows"],
        anytime=anytime,
        racing=racing,
        improvement=comparison["improvement"],
    )
