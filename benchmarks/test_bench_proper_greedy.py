"""E5 — Theorem 3.1: the greedy is a 2-approximation on proper instances.

Regenerates two tables:

* small proper instances, ratio against the exact optimum, together with the
  *stronger* inequality the proof establishes, ``ALG <= OPT + span``;
* large proper instances (n up to 500), cost against the lower bound and the
  ``LB + span`` relaxation of the proof's inequality.
"""

from __future__ import annotations

import pytest

from busytime.algorithms import proper_greedy
from busytime.core.bounds import best_lower_bound, span_bound
from busytime.exact import exact_optimal_cost
from busytime.generators import proper_instance, unit_interval_instance

SMALL = [(9, 2), (10, 3)]
LARGE = [(100, 3), (250, 5), (500, 10)]


@pytest.mark.parametrize("n,g", SMALL, ids=[f"small-n{n}-g{g}" for n, g in SMALL])
def test_greedy_vs_exact_optimum(benchmark, attach_rows, n, g):
    rows = []
    for seed in range(5):
        inst = proper_instance(n, g, horizon=25, seed=seed)
        sched = proper_greedy(inst)
        opt = exact_optimal_cost(inst, initial_upper_bound=sched.total_busy_time)
        assert sched.total_busy_time <= 2.0 * opt + 1e-9  # Theorem 3.1
        assert sched.total_busy_time <= opt + span_bound(inst) + 1e-9  # proof ineq.
        rows.append(
            {
                "n": n,
                "g": g,
                "seed": seed,
                "greedy": round(sched.total_busy_time, 3),
                "opt": round(opt, 3),
                "span": round(span_bound(inst), 3),
                "ratio": round(sched.total_busy_time / opt, 3),
            }
        )
    inst = proper_instance(n, g, horizon=25, seed=0)
    benchmark(lambda: proper_greedy(inst))
    attach_rows(benchmark, rows, experiment="E5-theorem-3.1", paper_bound=2.0)


@pytest.mark.parametrize("n,g", LARGE, ids=[f"large-n{n}-g{g}" for n, g in LARGE])
def test_greedy_large_proper_instances(benchmark, attach_rows, n, g):
    rows = []
    for maker, label in (
        (proper_instance, "proper"),
        (lambda n, g, seed: unit_interval_instance(n, g, seed=seed), "unit"),
    ):
        for seed in range(3):
            inst = maker(n, g, seed=seed)
            sched = proper_greedy(inst)
            lb = best_lower_bound(inst)
            assert sched.total_busy_time <= lb + span_bound(inst) + 1e-9
            rows.append(
                {
                    "workload": label,
                    "n": n,
                    "g": g,
                    "seed": seed,
                    "greedy": round(sched.total_busy_time, 3),
                    "lower_bound": round(lb, 3),
                    "ratio_vs_lb": round(sched.total_busy_time / lb, 3),
                }
            )
    inst = proper_instance(n, g, seed=0)
    benchmark(lambda: proper_greedy(inst))
    attach_rows(benchmark, rows, experiment="E5-theorem-3.1-large", paper_bound=2.0)
