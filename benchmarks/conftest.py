"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one experiment of EXPERIMENTS.md (one
theorem / figure / claim of the paper).  Modules follow the same pattern:

* build the experiment's workloads with :mod:`busytime.generators`;
* run the algorithms and *assert the shape* of the paper's claim (who wins,
  bound respected, where the ratio sits) — so ``pytest benchmarks/`` acts as
  a reproduction check, not just a timer;
* time the core algorithm call through the ``benchmark`` fixture and attach
  the measured table to ``benchmark.extra_info`` so the JSON produced by
  ``pytest benchmarks/ --benchmark-only --benchmark-json=...`` carries the
  reproduced rows next to the timings.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import pytest


@pytest.fixture
def attach_rows():
    """Fixture: callable storing experiment rows in the benchmark extra_info."""

    def _attach(benchmark, rows: Sequence[Mapping[str, object]], **extra) -> None:
        benchmark.extra_info["rows"] = [dict(r) for r in rows]
        for key, value in extra.items():
            benchmark.extra_info[key] = value

    return _attach
