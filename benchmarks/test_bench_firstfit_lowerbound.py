"""E3 — Theorem 2.4 + Fig. 4: FirstFit's ratio approaches 3 from below.

Regenerates the Fig. 4 family for growing ``g`` and decreasing ``eps'`` and
reports FirstFit's cost, the reference (proof) solution's cost ``g + 1`` and
their ratio ``(3 - 2 eps') g / (g + 1)``.  The shape to reproduce: the ratio
is increasing in ``g``, crosses ``3 - eps`` at the parameters prescribed by
the proof, and never exceeds 3.
"""

from __future__ import annotations

import pytest

from busytime.algorithms import first_fit
from busytime.generators import (
    fig4_reference_schedule,
    firstfit_lower_bound_instance,
    theorem24_parameters,
)

G_SWEEP = [3, 5, 10, 20, 40]


def test_ratio_increases_with_g(benchmark, attach_rows):
    eps_prime = 0.01
    rows = []
    for g in G_SWEEP:
        inst = firstfit_lower_bound_instance(g, eps_prime)
        ff = first_fit(inst)
        ref = fig4_reference_schedule(inst)
        ratio = ff.total_busy_time / ref.total_busy_time
        expected = (3 - 2 * eps_prime) * g / (g + 1)
        assert ratio == pytest.approx(expected, rel=1e-3)
        assert ratio < 3.0
        rows.append(
            {
                "g": g,
                "n": inst.n,
                "firstfit": round(ff.total_busy_time, 3),
                "reference_opt_ub": round(ref.total_busy_time, 3),
                "ratio": round(ratio, 4),
                "paper_prediction": round(expected, 4),
            }
        )
    ratios = [r["ratio"] for r in rows]
    assert ratios == sorted(ratios)  # increasing in g

    g = G_SWEEP[-1]
    inst = firstfit_lower_bound_instance(g, eps_prime)
    benchmark(lambda: first_fit(inst))
    attach_rows(benchmark, rows, experiment="E3-theorem-2.4", limit=3.0)


@pytest.mark.parametrize("eps", [0.5, 0.25, 0.1])
def test_ratio_exceeds_three_minus_eps(benchmark, attach_rows, eps):
    eps_prime, g = theorem24_parameters(eps)
    inst = firstfit_lower_bound_instance(g, eps_prime)
    ff_cost = first_fit(inst).total_busy_time
    ref_cost = fig4_reference_schedule(inst).total_busy_time
    ratio = ff_cost / ref_cost
    assert ratio > 3 - eps  # the statement of Theorem 2.4
    benchmark(lambda: first_fit(inst))
    attach_rows(
        benchmark,
        [
            {
                "eps": eps,
                "eps_prime": eps_prime,
                "g": g,
                "ratio": round(ratio, 4),
                "threshold": round(3 - eps, 4),
            }
        ],
        experiment="E3-theorem-2.4",
    )
