"""Scaling checks for the vectorized FirstFit kernel (experiment E21).

Three layers, by cost:

* a tier-1 **bit-identity pin** at n = 5000: the saturation-bitmask kernel
  must reproduce the builder path's schedule exactly (same processing
  order, same machine contents in the same order) — the property the whole
  bulk fast path rests on;
* a tier-1 **n = 50k smoke**: the kernel path end to end through the public
  ``first_fit`` API at its real routing threshold, validated with the
  vectorized batch oracle *and* the full python oracle;
* the **n = 10^6 scaling run** (marked ``slow``; ``--run-slow`` or
  ``BUSYTIME_RUN_SLOW=1`` to enable): FirstFit on one million jobs with a
  wall-clock regression guard.  The committed trajectory numbers live in
  ``BENCH_firstfit.json`` (written by ``scripts/bench_trajectory.py``);
  this test keeps the capability from silently rotting between bench runs.
"""

from __future__ import annotations

import importlib
import time

import pytest

from busytime.algorithms.first_fit import BULK_FIRST_FIT_MIN, first_fit

# ``busytime.algorithms`` re-exports the ``first_fit`` *function* under the
# submodule's name, so a plain ``import busytime.algorithms.first_fit as m``
# would bind the function; go through importlib for the module object.
_ff_module = importlib.import_module("busytime.algorithms.first_fit")
from busytime.core.bounds import best_lower_bound
from busytime.core.profile_index import profile_index
from busytime.core.schedule import verify_schedule
from busytime.generators import uniform_random_instance


@pytest.fixture(autouse=True)
def _bulk_routing_on():
    """Pin the flag on for this module: E21's claims are about the bulk
    kernel, so the ``BUSYTIME_PROFILE_INDEX=off`` CI leg must not turn
    these tests into builder-vs-builder no-ops."""
    with profile_index("on"):
        yield

#: Constant-density scaling family (n / horizon = 20, g = 10, seed = 7) —
#: the same points ``scripts/bench_trajectory.py`` extends the committed
#: trajectory with.
DENSITY = 20.0
G = 10
SEED = 7


def _instance(n: int):
    return uniform_random_instance(
        n=n, g=G, horizon=n / DENSITY, seed=SEED
    )


def test_bulk_kernel_bit_identical_to_builder_5k():
    inst = _instance(5000)
    builder_schedule = first_fit(inst)
    assert "kernel" not in builder_schedule.meta
    try:
        _ff_module.BULK_FIRST_FIT_MIN = 1
        kernel_schedule = first_fit(inst)
    finally:
        _ff_module.BULK_FIRST_FIT_MIN = BULK_FIRST_FIT_MIN
    assert kernel_schedule.meta.get("kernel") == "bulk"
    assert kernel_schedule.meta["processing_order"] == (
        builder_schedule.meta["processing_order"]
    )
    assert kernel_schedule.assignment() == builder_schedule.assignment()
    assert [tuple(j.id for j in m.jobs) for m in kernel_schedule.machines] == [
        tuple(j.id for j in m.jobs) for m in builder_schedule.machines
    ]
    assert kernel_schedule.total_busy_time == pytest.approx(
        builder_schedule.total_busy_time, rel=1e-12
    )
    verify_schedule(kernel_schedule)


def test_firstfit_50k_smoke():
    inst = _instance(50_000)
    schedule = first_fit(inst)
    # 50k is at the routing threshold, so this exercises the real gate.
    assert schedule.meta.get("kernel") == "bulk"
    assert schedule.num_machines > 0
    verify_schedule(schedule, mode="batch")
    verify_schedule(schedule)  # the full python oracle agrees
    lb = best_lower_bound(inst)
    assert lb - 1e-9 <= schedule.total_busy_time <= inst.g * lb + 1e-9


@pytest.mark.slow
def test_firstfit_one_million_jobs():
    inst = _instance(1_000_000)
    t0 = time.perf_counter()
    schedule = first_fit(inst)
    elapsed = time.perf_counter() - t0
    assert schedule.meta.get("kernel") == "bulk"
    verify_schedule(schedule, mode="batch")
    lb = best_lower_bound(inst)
    assert lb - 1e-9 <= schedule.total_busy_time <= inst.g * lb + 1e-9
    # The committed BENCH_firstfit.json budget is < 10s on the reference
    # machine; allow slack for slower CI hosts while still catching an
    # accidental fallback to the per-job path (minutes, not seconds).
    assert elapsed < 30.0, f"1M-job FirstFit took {elapsed:.1f}s"
