"""E22 — streaming-session soak: throughput, decision latency, fidelity.

The session layer (:mod:`busytime.service.sessions`) claims it can hold
many concurrent live sessions while keeping three promises at once:

* per-event decision latency stays interactive even with checkpoint-
  every-batch durability in the loop;
* concurrent posting threads never lose or double-apply an event
  (the manager-wide accepted counter must land exactly on the workload
  size);
* a streamed session is *bit-identical* to the offline
  :class:`busytime.extensions.dynamic.Simulator` replay of its trace.

This module regenerates those claims with the soak machinery from
``scripts/bench_sessions.py`` (the same harness behind
``BENCH_sessions.json``, at CI scale).

The module is marked ``slow`` and skipped by default so tier-1 stays fast;
run it with ``pytest benchmarks/test_bench_sessions.py --run-slow``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

import bench_sessions  # noqa: E402

pytestmark = pytest.mark.slow

SESSIONS = 200
THREADS = 8
# Generous ceiling: the decision path must stay interactive, not win races.
MAX_P99_MS = 250.0


def test_session_soak_throughput_latency_and_fidelity(benchmark, attach_rows):
    specs = bench_sessions.build_workload(SESSIONS)
    manager, report = bench_sessions.run_soak(specs, threads=THREADS)

    # No lost updates, no double-applies: the accepted-event counter lands
    # exactly on the workload size across all posting threads.
    total_events = sum(len(s["rows"]) for s in specs)
    assert report["events_applied"] == total_events
    assert report["events_total"] == total_events

    # Durability rode along: the default cadence checkpoints every batch.
    assert report["checkpoints"] >= report["batches"]

    # Decision latency stays interactive with the engine-replanning slice
    # of the policy mix included.
    assert report["decision_p99_ms"] <= MAX_P99_MS, report

    # Bit-identical fidelity on a closed sample (raises on divergence).
    checked = bench_sessions.verify_sample(manager, specs, sample_every=20)
    assert checked == SESSIONS // 20

    # Time the steady-state decision path itself: one batch through a
    # dedicated live session, each round a fresh arrive/depart pair so the
    # live set stays bounded and no event is ever a duplicate.
    from busytime.core.events import ARRIVE, DEPART, TraceEvent
    from busytime.core.intervals import Interval, Job
    from busytime.io import trace_event_to_dict
    from busytime.service.sessions import SessionConfig

    manager.create(
        SessionConfig(g=3, horizon=(0.0, 1e12)), session_id="bench-live"
    )
    cursor = {"t": 0.0, "id": 0}

    def one_batch() -> None:
        rows = []
        for _ in range(2):
            t, job_id = cursor["t"], cursor["id"]
            job = Job(id=job_id, interval=Interval(t, t + 1.0))
            rows.append(trace_event_to_dict(TraceEvent(time=t, kind=ARRIVE, job=job)))
            rows.append(
                trace_event_to_dict(TraceEvent(time=t + 0.5, kind=DEPART, job=job))
            )
            cursor["t"], cursor["id"] = t + 1.0, job_id + 1
        manager.apply_events("bench-live", rows)

    benchmark(one_batch)
    attach_rows(
        benchmark,
        [report],
        sessions=SESSIONS,
        verified_against_offline=checked,
    )
