"""E18 — solve-as-a-service throughput: cold vs cache-hit vs batched.

The service layer (:mod:`busytime.service`) exists to serve *repeated*
traffic: real workloads re-ask the same questions, dressed up with fresh
job ids and shifted time axes.  This module regenerates the serving claims:

* on a repeated-workload corpus (structured families, each instance
  re-requested several times as relabeled / time-translated variants),
  cache-hit requests complete **at least 20x faster** than the cold solves
  that populated the store — the canonicalization layer is what turns those
  disguised repeats into hits, and ``stats()`` must report the matching hit
  rate;
* every served report costs exactly what a direct ``Engine.solve`` of the
  same request costs — the cache can accelerate, never distort;
* micro-batching the queue through ``Engine.solve_many`` keeps distinct-
  instance throughput within a small factor of bare engine throughput (the
  service boundary adds canonicalization + bookkeeping, not another solve).

The module is marked ``slow`` and skipped by default so tier-1 stays fast;
run it with ``pytest benchmarks/test_bench_service.py --run-slow``.
"""

from __future__ import annotations

import random
import time

import pytest

from busytime import Engine, Instance, SolveRequest
from busytime.core.intervals import Interval, Job
from busytime.generators import clique_instance, proper_instance, uniform_random_instance
from busytime.service import SolveService, request_fingerprint

pytestmark = pytest.mark.slow

#: Repeated-workload corpus: structured families the paper's algorithms are
#: specialised for (and real schedulers see over and over), each distinct
#: instance re-requested REPEATS times in disguise.
CORPUS = [
    ("clique", clique_instance, 300, 4, (0, 1, 2)),
    ("proper", proper_instance, 600, 3, (0, 1, 2)),
]
REPEATS = 4
MIN_SPEEDUP = 20.0


def _quantized(instance: Instance) -> Instance:
    """Coordinates snapped to 1/16 units so translation is float-exact.

    The cache is an *exact* matcher: a time shift only round-trips bit-equal
    when the coordinates have mantissa room for it.  Quantizing request
    coordinates is the standard serving-side recipe (and changes each
    interval by < 1/16 of a time unit on a ~100-unit horizon).
    """
    return Instance(
        jobs=tuple(
            Job(
                id=j.id,
                interval=Interval(
                    round(j.start * 16.0) / 16.0,
                    max(round(j.end * 16.0), round(j.start * 16.0)) / 16.0,
                ),
                weight=j.weight,
                tag=j.tag,
            )
            for j in instance.jobs
        ),
        g=instance.g,
        name=instance.name,
    )


def _distinct_instances():
    for family, maker, n, g, seeds in CORPUS:
        for seed in seeds:
            yield family, seed, _quantized(maker(n, g, seed=seed))


def _disguised(instance: Instance, rng: random.Random) -> Instance:
    """A relabeled, time-translated variant: same problem, different bytes."""
    delta = float(rng.randrange(-4096, 4096)) / 16.0  # dyadic: exact shift
    jobs = list(instance.jobs)
    rng.shuffle(jobs)
    base = rng.randrange(100_000, 900_000)
    return Instance(
        jobs=tuple(
            Job(
                id=base + k,
                interval=Interval(j.start + delta, j.end + delta),
                weight=j.weight,
                tag=j.tag,
            )
            for k, j in enumerate(jobs)
        ),
        g=instance.g,
        name=f"{instance.name}@{delta:g}",
    )


def test_cache_hits_are_20x_faster_than_cold(benchmark, attach_rows):
    """Cold populates the store; disguised repeats must hit it, >=20x faster."""
    rng = random.Random(2009)
    distinct = list(_distinct_instances())
    with SolveService() as service:
        rows = []
        cold_total = hit_total = 0.0
        for family, seed, instance in distinct:
            started = time.perf_counter()
            cold_report = service.solve(SolveRequest(instance=instance), timeout=600)
            cold_seconds = time.perf_counter() - started

            variants = [_disguised(instance, rng) for _ in range(REPEATS)]
            started = time.perf_counter()
            hit_reports = [
                service.solve(SolveRequest(instance=v), timeout=600) for v in variants
            ]
            hit_seconds = (time.perf_counter() - started) / REPEATS

            # The cache accelerates, never distorts: every disguised repeat
            # costs exactly the cold answer, on the caller's own job ids.
            for variant, report in zip(variants, hit_reports):
                assert report.cost == pytest.approx(cold_report.cost)
                assert set(report.schedule.assignment()) == {
                    j.id for j in variant.jobs
                }
            cold_total += cold_seconds
            hit_total += hit_seconds
            rows.append(
                {
                    "family": family,
                    "seed": seed,
                    "n": instance.n,
                    "g": instance.g,
                    "cold_ms": round(cold_seconds * 1e3, 2),
                    "hit_ms": round(hit_seconds * 1e3, 2),
                    "speedup": round(cold_seconds / hit_seconds, 1),
                }
            )

        stats = service.stats()
        hits = stats["store"]["hits"]
        misses = stats["store"]["misses"]
        assert misses == len(distinct)
        assert hits == len(distinct) * REPEATS
        assert stats["store"]["hit_rate"] == pytest.approx(
            hits / (hits + misses)
        )

        aggregate = cold_total / hit_total
        assert aggregate >= MIN_SPEEDUP, (
            f"cache hits only {aggregate:.1f}x faster than cold solves "
            f"(need >= {MIN_SPEEDUP}x): {rows}"
        )

        # Time the steady state the service is built for: one disguised
        # repeat of the first corpus instance, answered from the store.
        _, _, first = distinct[0]
        benchmark(
            lambda: service.solve(
                SolveRequest(instance=_disguised(first, rng)), timeout=600
            )
        )
        attach_rows(
            benchmark,
            rows,
            aggregate_speedup=round(aggregate, 1),
            hit_rate=stats["store"]["hit_rate"],
        )


def test_fingerprinting_overhead_is_small_fraction_of_cold_solve():
    """Canonicalize+hash (the admission toll every request pays) stays cheap."""
    instance = proper_instance(600, 3, seed=9)
    request = SolveRequest(instance=instance)
    started = time.perf_counter()
    for _ in range(50):
        request_fingerprint(request)
    fingerprint_seconds = (time.perf_counter() - started) / 50
    started = time.perf_counter()
    Engine().solve(request)
    solve_seconds = time.perf_counter() - started
    assert fingerprint_seconds < solve_seconds / 10, (
        f"fingerprinting one request costs {fingerprint_seconds * 1e3:.2f}ms, "
        f"more than a tenth of a {solve_seconds * 1e3:.1f}ms cold solve"
    )


def test_batched_throughput_tracks_bare_engine():
    """Micro-batched service throughput on distinct instances stays within
    3x of handing the same batch straight to Engine.solve_many."""
    instances = [uniform_random_instance(200, 3, seed=s) for s in range(24)]
    requests = [SolveRequest(instance=i) for i in instances]

    engine = Engine()
    started = time.perf_counter()
    direct_reports = engine.solve_many(requests)
    direct_seconds = time.perf_counter() - started

    with SolveService(engine=engine, batch_size=8, batch_window=0.002) as service:
        started = time.perf_counter()
        jobs = [service.submit(r) for r in requests]
        served_reports = [service.result(j, timeout=600) for j in jobs]
        served_seconds = time.perf_counter() - started
        stats = service.stats()

    for direct, served in zip(direct_reports, served_reports):
        assert served.cost == pytest.approx(direct.cost)
    assert stats["batches"] >= 1
    assert stats["batched_requests"] == len(requests)
    assert served_seconds < direct_seconds * 3 + 0.5, (
        f"service overhead blew up: {served_seconds:.2f}s served vs "
        f"{direct_seconds:.2f}s direct"
    )
