"""E10 — Figures 1–3 / Observation 2.2 / Lemma 2.3: FirstFit's proof machinery.

The upper-bound proof of Theorem 2.1 rests on two structural facts about
FirstFit runs.  This benchmark extracts and verifies them on actual runs:

* for every job on machine ``M_i`` and every earlier machine ``M_k``, a
  witness time inside the job at which ``M_k`` runs ``g`` no-shorter jobs
  (Observation 2.2, Fig. 1);
* ``len(J_i) >= (g/3) span(J_{i+1})`` for consecutive machines (Lemma 2.3,
  Figs. 2–3), reported with the measured slack.
"""

from __future__ import annotations

import pytest

from busytime.algorithms import first_fit
from busytime.analysis import lemma23_records, verify_observation22
from busytime.generators import (
    bursty_instance,
    firstfit_lower_bound_instance,
    uniform_random_instance,
)

WORKLOADS = [
    ("uniform", lambda: uniform_random_instance(60, g=3, seed=1)),
    ("bursty", lambda: bursty_instance(60, g=3, seed=2)),
    ("fig4", lambda: firstfit_lower_bound_instance(8)),
]


@pytest.mark.parametrize(
    "label,maker", WORKLOADS, ids=[w[0] for w in WORKLOADS]
)
def test_lemma23_holds_with_slack(benchmark, attach_rows, label, maker):
    inst = maker()
    sched = first_fit(inst)
    records = lemma23_records(sched)
    rows = []
    for r in records:
        assert r.holds  # Lemma 2.3
        rows.append(
            {
                "workload": label,
                "machine_i": r.machine_index,
                "len_Ji": round(r.len_ji, 3),
                "g_span_next_over_3": round(r.rhs, 3),
                "slack": round(r.slack, 3),
            }
        )
    benchmark(lambda: lemma23_records(first_fit(inst)))
    attach_rows(benchmark, rows, experiment="E10-lemma-2.3")


def test_observation22_witness_extraction(benchmark, attach_rows):
    inst = uniform_random_instance(40, g=2, seed=5)
    sched = first_fit(inst)
    witnesses = verify_observation22(sched)  # raises if any witness is missing
    rows = [
        {
            "machines": sched.num_machines,
            "witness_pairs_checked": len(witnesses),
            "g": inst.g,
        }
    ]
    benchmark(lambda: verify_observation22(sched))
    attach_rows(benchmark, rows, experiment="E10-observation-2.2")
    assert witnesses
