"""E20 — sharded cluster vs single worker under replayed traffic.

The cluster layer (:mod:`busytime.service.cluster`) exists for one reason:
a consistent-hash shard map turns N workers' caches into one aggregate
cache.  This module regenerates that claim with the traffic-replay harness
from ``scripts/stress_replay.py`` (the same machinery behind
``BENCH_cluster.json``, at CI scale):

* a hot set of distinct canonical requests, each replayed as disguised
  variants (relabeled ids, translated time axes), is sized *above* one
  worker's memory+disk budget but *within* the 4-worker aggregate — with
  identical per-worker budgets and the same router in front of both
  topologies, the 4-worker cluster must sustain **at least 2.5x** the
  single-worker steady-state throughput;
* killing a worker mid-burst loses **zero** jobs: the router marks the
  worker dead, shards fail over to ring successors, and bounded client
  retry absorbs the transition.

The module is marked ``slow`` and skipped by default so tier-1 stays fast;
run it with ``pytest benchmarks/test_bench_cluster.py --run-slow``.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

import pytest

from busytime import io as bio
from busytime.service.cluster import LocalCluster

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

import stress_replay  # noqa: E402

pytestmark = pytest.mark.slow

PASSES = 2
MIN_SPEEDUP = 2.5
CLUSTER_WORKERS = 4
THREADS = 8


def test_cluster_sustains_2_5x_single_worker_throughput(
    benchmark, attach_rows, tmp_path
):
    """Same per-worker budgets, same router — sharding must buy >= 2.5x."""
    hot = stress_replay.build_hot_set()
    assert len(hot) > stress_replay.STORE_CAPACITY + stress_replay.MAX_DISK_ENTRIES, (
        "hot set must overflow a single worker's cache tiers, or the "
        "topologies are indistinguishable"
    )
    stream = stress_replay.build_stream(hot, PASSES)

    results = {
        workers: stress_replay.run_topology(
            workers, hot, stream, THREADS, str(tmp_path)
        )
        for workers in (1, CLUSTER_WORKERS)
    }
    single = results[1]["steady"]
    clustered = results[CLUSTER_WORKERS]["steady"]
    speedup = clustered["throughput_rps"] / single["throughput_rps"]
    assert speedup >= MIN_SPEEDUP, (
        f"{CLUSTER_WORKERS}-worker cluster only {speedup:.2f}x the "
        f"single-worker throughput (need >= {MIN_SPEEDUP}x): "
        f"single={single}, cluster={clustered}"
    )
    # The differential must come from cache capacity, visibly: the cluster
    # serves the hot set mostly from its aggregate tiers while the single
    # worker churns (a shuffled scan wider than LRU is LRU's worst case).
    assert results[CLUSTER_WORKERS]["cache"]["hit_rate"] > results[1]["cache"][
        "hit_rate"
    ] + 0.3

    # Time the path the cluster serves at steady state: one disguised hot
    # request, routed by fingerprint shard to the owning worker's memory tier.
    rng = random.Random(7)
    with LocalCluster(
        workers=2,
        store_capacity=stress_replay.STORE_CAPACITY,
        store_dir=str(tmp_path / "bench"),
    ) as cluster:
        client = stress_replay.ReplayClient(cluster.url)
        try:
            warm = json.dumps(
                {"instance": bio.instance_to_dict(hot[0]), "wait": True}
            ).encode("utf-8")
            assert client.solve(warm)["status"] == "done"
            bodies = [
                json.dumps(
                    {
                        "instance": bio.instance_to_dict(
                            stress_replay._disguised(hot[0], rng)
                        ),
                        "wait": True,
                    }
                ).encode("utf-8")
                for _ in range(64)
            ]
            cursor = iter(bodies * 64)
            benchmark(lambda: client.solve(next(cursor)))
        finally:
            client.close()

    attach_rows(
        benchmark,
        [
            {
                "workers": workers,
                "throughput_rps": result["steady"]["throughput_rps"],
                "p50_ms": result["steady"]["p50_ms"],
                "p95_ms": result["steady"]["p95_ms"],
                "p99_ms": result["steady"]["p99_ms"],
                "hit_rate": result["cache"]["hit_rate"],
            }
            for workers, result in sorted(results.items())
        ],
        speedup=round(speedup, 2),
        hot_set=len(hot),
        stream_requests=len(stream),
    )


def test_kill_one_worker_loses_zero_jobs(tmp_path):
    """Failover drill: a worker dies under a concurrent burst; every job
    still completes via ring-successor failover + bounded client retry."""
    drill = stress_replay.kill_drill(
        CLUSTER_WORKERS, str(tmp_path), jobs=32, threads=8
    )
    assert drill["lost"] == 0, f"drill lost jobs: {drill['failures']}"
    assert drill["completed"] == drill["submitted"]
