"""E6 — Theorem 3.2 + Lemma 3.3: Bounded_Length on bounded-length instances.

Two tables are regenerated:

* ratio of the Bounded_Length schedule against the exact optimum (small
  instances) and the Observation 1.1 lower bound (large instances), swept
  over the length bound ``d``;
* the Lemma 3.3 quantity: the cost of splitting a FirstFit schedule at the
  segment boundaries, divided by the unsplit cost — the paper proves this
  never exceeds 2, and the measured values show where real instances sit.
"""

from __future__ import annotations

import math

import pytest

from busytime.algorithms import bounded_length, first_fit
from busytime.core.bounds import best_lower_bound
from busytime.core.intervals import span
from busytime.exact import exact_optimal_cost
from busytime.generators import bounded_length_instance

D_SWEEP = [1.5, 2.0, 4.0]


@pytest.mark.parametrize("d", D_SWEEP, ids=[f"d{d}" for d in D_SWEEP])
def test_bounded_length_ratio_small(benchmark, attach_rows, d):
    rows = []
    for seed in range(4):
        inst = bounded_length_instance(10, g=2, d=d, horizon=10, seed=seed)
        sched = bounded_length(inst, d=d)
        opt = exact_optimal_cost(inst, initial_upper_bound=sched.total_busy_time)
        ratio = sched.total_busy_time / opt
        assert ratio <= 2.0 + 1e-9  # segments solved exactly -> Lemma 3.3 bound
        rows.append(
            {
                "d": d,
                "seed": seed,
                "n": inst.n,
                "bounded_length": round(sched.total_busy_time, 3),
                "opt": round(opt, 3),
                "ratio": round(ratio, 3),
            }
        )
    inst = bounded_length_instance(10, g=2, d=d, horizon=10, seed=0)
    benchmark(lambda: bounded_length(inst, d=d))
    attach_rows(benchmark, rows, experiment="E6-theorem-3.2", paper_bound="2+eps")


@pytest.mark.parametrize("d", D_SWEEP, ids=[f"d{d}" for d in D_SWEEP])
def test_bounded_length_ratio_large(benchmark, attach_rows, d):
    rows = []
    for seed in range(3):
        inst = bounded_length_instance(200, g=4, d=d, horizon=100, seed=seed)
        sched = bounded_length(inst, d=d)
        lb = best_lower_bound(inst)
        ratio = sched.total_busy_time / lb
        assert ratio <= 4.0 + 1e-9
        rows.append(
            {
                "d": d,
                "seed": seed,
                "n": inst.n,
                "bounded_length": round(sched.total_busy_time, 3),
                "lower_bound": round(lb, 3),
                "ratio_vs_lb": round(ratio, 3),
            }
        )
    inst = bounded_length_instance(200, g=4, d=d, horizon=100, seed=0)
    benchmark(lambda: bounded_length(inst, d=d))
    attach_rows(benchmark, rows, experiment="E6-theorem-3.2-large")


def test_lemma33_segment_split_factor(benchmark, attach_rows):
    """Splitting any schedule at segment boundaries at most doubles its cost."""
    d = 3.0
    rows = []
    for seed in range(5):
        inst = bounded_length_instance(120, g=3, d=d, horizon=60, seed=seed)
        ff = first_fit(inst)
        split_cost = 0.0
        for m in ff.machines:
            by_segment = {}
            for j in m.jobs:
                by_segment.setdefault(int(math.floor(j.start / d)), []).append(j)
            split_cost += sum(span(jobs) for jobs in by_segment.values())
        factor = split_cost / ff.total_busy_time
        assert factor <= 2.0 + 1e-9  # Lemma 3.3
        rows.append(
            {
                "seed": seed,
                "unsplit_cost": round(ff.total_busy_time, 3),
                "split_cost": round(split_cost, 3),
                "factor": round(factor, 3),
            }
        )
    inst = bounded_length_instance(120, g=3, d=d, horizon=60, seed=0)
    benchmark(lambda: bounded_length(inst, d=d))
    attach_rows(benchmark, rows, experiment="E6-lemma-3.3", paper_bound=2.0)
