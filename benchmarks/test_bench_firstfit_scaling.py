"""E16 — perf trajectory: sweep-line FirstFit vs the seed clip-and-rescan.

Theorem 2.1's FirstFit is the package's hot path: every "does job J fit on
machine M_i" query used to re-clip the machine's whole job list and re-sort
its endpoint events (``O(n * m * g log g)`` overall), which capped the
instance sizes the suite could reach.  The sweep-line machine state
(:class:`busytime.core.events.SweepProfile`) answers the same query from an
incrementally maintained load profile.

This module regenerates the comparison:

* ``_seed_first_fit`` below is a faithful copy of the seed implementation's
  feasibility check, kept here so the baseline survives future changes to
  the library;
* both implementations must produce *identical* schedules (same machine
  count, same cost) — the sweep line is an optimisation, not a behaviour
  change — and the sweep-line schedule is additionally validated by the
  independent ``verify_schedule`` oracle;
* the measured speedup at the head-to-head size must clear 5x (it is
  ~50-150x in practice; ``scripts/bench_trajectory.py`` records the full
  trajectory up to n=20000 in ``BENCH_firstfit.json``).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import List, Optional

import pytest

from busytime.algorithms.first_fit import first_fit, first_fit_order
from busytime.core.instance import Instance
from busytime.core.intervals import Interval, Job, max_point_load
from busytime.core.schedule import verify_schedule
from busytime.generators import uniform_random_instance

HEAD_TO_HEAD = dict(n=5000, g=10, horizon=1000.0, seed=7)
LARGE = dict(n=20000, g=10, horizon=1000.0, seed=7)
REQUIRED_SPEEDUP = 5.0

#: The demand generalisation must not regress the PR-2 sweep-line win: the
#: unit-demand n=20k run has to stay within this factor of the recorded
#: BENCH_firstfit.json time.  The guard only arms on the hardware that
#: recorded the artefact (platform string match) — absolute seconds are
#: meaningless across machines — and is made load-immune by calibrating
#: against the *frozen* seed clip-and-rescan baseline: `_seed_first_fit`
#: below never changes with the library, so re-timing it against its
#: recorded figure measures how much slower the machine is running right
#: now (co-tenant load, thermal state) rather than anything about the
#: code, and the budget scales by that factor.
BUDGET_FACTOR = 1.15
BENCH_RECORD = Path(__file__).resolve().parents[1] / "BENCH_firstfit.json"


def _machine_speed_factor(record: dict) -> Optional[float]:
    """Current-machine slowdown vs the artefact's recording conditions.

    Times the frozen seed baseline at n=1000 (three rounds, min) and
    divides by its recorded figure; >= 1.0 (a machine can't earn a stricter
    budget than the record).  ``None`` when the artefact lacks the row.
    """
    rows = {row.get("n"): row for row in record.get("trajectory", [])}
    reference = rows.get(1000, {}).get("baseline_clip_rescan_seconds")
    if not reference:
        return None
    inst = uniform_random_instance(n=1000, g=10, horizon=1000.0, seed=7)
    _seed_first_fit(inst)  # warm
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        _seed_first_fit(inst)
        best = min(best, time.perf_counter() - t0)
    return max(1.0, best / reference)


def _seed_fits(machine_jobs: List[Job], job: Job, g: int) -> bool:
    """The seed's per-query clip-and-rescan feasibility check (baseline)."""
    clipped: List[Interval] = []
    for other in machine_jobs:
        inter = other.interval.intersection(job.interval)
        if inter is not None:
            clipped.append(inter)
    if len(clipped) < g:
        return True
    return max_point_load(clipped) <= g - 1


def _seed_first_fit(instance: Instance) -> List[List[Job]]:
    """The seed FirstFit loop over the clip-and-rescan check."""
    machines: List[List[Job]] = []
    for job in first_fit_order(instance.jobs):
        target: Optional[int] = None
        for idx, mjobs in enumerate(machines):
            if _seed_fits(mjobs, job, instance.g):
                target = idx
                break
        if target is None:
            machines.append([job])
        else:
            machines[target].append(job)
    return machines


def test_firstfit_speedup_over_seed(benchmark, attach_rows):
    inst = uniform_random_instance(**HEAD_TO_HEAD)

    t0 = time.perf_counter()
    baseline_machines = _seed_first_fit(inst)
    baseline_seconds = time.perf_counter() - t0

    schedule = benchmark(lambda: first_fit(inst))
    sweep_seconds = benchmark.stats.stats.mean

    # Identical behaviour: same machine count, same partition cost.
    verify_schedule(schedule)  # independent slow-path oracle
    assert schedule.num_machines == len(baseline_machines)
    from busytime.core.intervals import span

    baseline_cost = sum(span(mjobs) for mjobs in baseline_machines)
    assert schedule.total_busy_time == pytest.approx(baseline_cost)

    speedup = baseline_seconds / sweep_seconds
    assert speedup >= REQUIRED_SPEEDUP, (
        f"sweep-line FirstFit only {speedup:.1f}x faster than the seed "
        f"clip-and-rescan baseline (required {REQUIRED_SPEEDUP}x)"
    )
    attach_rows(
        benchmark,
        [
            {
                **{k: HEAD_TO_HEAD[k] for k in ("n", "g", "seed")},
                "baseline_clip_rescan_seconds": round(baseline_seconds, 4),
                "sweep_profile_seconds": round(sweep_seconds, 4),
                "speedup": round(speedup, 1),
                "machines": schedule.num_machines,
                "total_busy_time": round(schedule.total_busy_time, 3),
            }
        ],
        experiment="E16-firstfit-scaling",
        required_speedup=REQUIRED_SPEEDUP,
        validated_by_verify_schedule=True,
    )


def test_firstfit_20k_jobs(benchmark, attach_rows):
    """n=20000 was out of reach for the seed (~90 s); now sub-second.

    Doubles as the demand-generalisation perf guard: on the machine that
    recorded ``BENCH_firstfit.json``, the measured unit-demand time must
    stay within ``BUDGET_FACTOR`` of the recorded headline — the
    demand-aware ``fits``/``add`` path (one ``is None`` check on the rigid
    fast path) is not allowed to erode the sweep-line win.
    """
    inst = uniform_random_instance(**LARGE)
    schedule = benchmark(lambda: first_fit(inst))
    verify_schedule(schedule)
    # Min over rounds: the load-robust estimator for "how fast can this
    # code go", which is what a regression budget is about.
    measured = benchmark.stats.stats.min
    budget_checked = False
    if BENCH_RECORD.exists():
        record = json.loads(BENCH_RECORD.read_text())
        headline = record.get("headline", {})
        recorded = headline.get("sweep_profile_seconds")
        if recorded and record.get("platform") == platform.platform():
            factor = _machine_speed_factor(record)
            if factor is not None:
                budget_checked = True
                budget = BUDGET_FACTOR * recorded * factor
                if measured > budget:
                    # One retry before failing: a co-tenant load spike
                    # between the calibration probe and the benchmark
                    # rounds shows up as a transient overshoot; a real
                    # code regression reproduces.  Re-run probe and
                    # workload back to back so both face the *same*
                    # conditions, and rescale the budget by whichever
                    # calibration saw the machine slower.
                    factor = max(factor, _machine_speed_factor(record) or factor)
                    budget = BUDGET_FACTOR * recorded * factor
                    best = measured
                    for _ in range(3):
                        t0 = time.perf_counter()
                        first_fit(inst)
                        best = min(best, time.perf_counter() - t0)
                    measured = best
                assert measured <= budget, (
                    f"unit-demand FirstFit at n=20k took {measured:.4f}s, "
                    f"above {BUDGET_FACTOR}x the recorded {recorded:.4f}s "
                    f"(load-calibrated budget {budget:.4f}s, machine speed "
                    f"factor {factor:.2f}; BENCH_firstfit.json) — the "
                    f"demand generalisation must not regress the "
                    f"sweep-line hot path"
                )
    attach_rows(
        benchmark,
        [
            {
                **{k: LARGE[k] for k in ("n", "g", "seed")},
                "sweep_profile_seconds": round(measured, 4),
                "machines": schedule.num_machines,
                "total_busy_time": round(schedule.total_busy_time, 3),
            }
        ],
        experiment="E16-firstfit-scaling",
        validated_by_verify_schedule=True,
        budget_factor=BUDGET_FACTOR,
        budget_checked=budget_checked,
    )
