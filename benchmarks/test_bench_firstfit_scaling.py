"""E16 — perf trajectory: sweep-line FirstFit vs the seed clip-and-rescan.

Theorem 2.1's FirstFit is the package's hot path: every "does job J fit on
machine M_i" query used to re-clip the machine's whole job list and re-sort
its endpoint events (``O(n * m * g log g)`` overall), which capped the
instance sizes the suite could reach.  The sweep-line machine state
(:class:`busytime.core.events.SweepProfile`) answers the same query from an
incrementally maintained load profile.

This module regenerates the comparison:

* ``_seed_first_fit`` below is a faithful copy of the seed implementation's
  feasibility check, kept here so the baseline survives future changes to
  the library;
* both implementations must produce *identical* schedules (same machine
  count, same cost) — the sweep line is an optimisation, not a behaviour
  change — and the sweep-line schedule is additionally validated by the
  independent ``verify_schedule`` oracle;
* the measured speedup at the head-to-head size must clear 5x (it is
  ~50-150x in practice; ``scripts/bench_trajectory.py`` records the full
  trajectory up to n=20000 in ``BENCH_firstfit.json``).
"""

from __future__ import annotations

import time
from typing import List, Optional

import pytest

from busytime.algorithms.first_fit import first_fit, first_fit_order
from busytime.core.instance import Instance
from busytime.core.intervals import Interval, Job, max_point_load
from busytime.core.schedule import verify_schedule
from busytime.generators import uniform_random_instance

HEAD_TO_HEAD = dict(n=5000, g=10, horizon=1000.0, seed=7)
LARGE = dict(n=20000, g=10, horizon=1000.0, seed=7)
REQUIRED_SPEEDUP = 5.0


def _seed_fits(machine_jobs: List[Job], job: Job, g: int) -> bool:
    """The seed's per-query clip-and-rescan feasibility check (baseline)."""
    clipped: List[Interval] = []
    for other in machine_jobs:
        inter = other.interval.intersection(job.interval)
        if inter is not None:
            clipped.append(inter)
    if len(clipped) < g:
        return True
    return max_point_load(clipped) <= g - 1


def _seed_first_fit(instance: Instance) -> List[List[Job]]:
    """The seed FirstFit loop over the clip-and-rescan check."""
    machines: List[List[Job]] = []
    for job in first_fit_order(instance.jobs):
        target: Optional[int] = None
        for idx, mjobs in enumerate(machines):
            if _seed_fits(mjobs, job, instance.g):
                target = idx
                break
        if target is None:
            machines.append([job])
        else:
            machines[target].append(job)
    return machines


def test_firstfit_speedup_over_seed(benchmark, attach_rows):
    inst = uniform_random_instance(**HEAD_TO_HEAD)

    t0 = time.perf_counter()
    baseline_machines = _seed_first_fit(inst)
    baseline_seconds = time.perf_counter() - t0

    schedule = benchmark(lambda: first_fit(inst))
    sweep_seconds = benchmark.stats.stats.mean

    # Identical behaviour: same machine count, same partition cost.
    verify_schedule(schedule)  # independent slow-path oracle
    assert schedule.num_machines == len(baseline_machines)
    from busytime.core.intervals import span

    baseline_cost = sum(span(mjobs) for mjobs in baseline_machines)
    assert schedule.total_busy_time == pytest.approx(baseline_cost)

    speedup = baseline_seconds / sweep_seconds
    assert speedup >= REQUIRED_SPEEDUP, (
        f"sweep-line FirstFit only {speedup:.1f}x faster than the seed "
        f"clip-and-rescan baseline (required {REQUIRED_SPEEDUP}x)"
    )
    attach_rows(
        benchmark,
        [
            {
                **{k: HEAD_TO_HEAD[k] for k in ("n", "g", "seed")},
                "baseline_clip_rescan_seconds": round(baseline_seconds, 4),
                "sweep_profile_seconds": round(sweep_seconds, 4),
                "speedup": round(speedup, 1),
                "machines": schedule.num_machines,
                "total_busy_time": round(schedule.total_busy_time, 3),
            }
        ],
        experiment="E16-firstfit-scaling",
        required_speedup=REQUIRED_SPEEDUP,
        validated_by_verify_schedule=True,
    )


def test_firstfit_20k_jobs(benchmark, attach_rows):
    """n=20000 was out of reach for the seed (~90 s); now sub-second."""
    inst = uniform_random_instance(**LARGE)
    schedule = benchmark(lambda: first_fit(inst))
    verify_schedule(schedule)
    attach_rows(
        benchmark,
        [
            {
                **{k: LARGE[k] for k in ("n", "g", "seed")},
                "sweep_profile_seconds": round(benchmark.stats.stats.mean, 4),
                "machines": schedule.num_machines,
                "total_busy_time": round(schedule.total_busy_time, 3),
            }
        ],
        experiment="E16-firstfit-scaling",
        validated_by_verify_schedule=True,
    )
