"""E1 — Observation 1.1: the parallelism and span lower bounds.

Reproduces the claim that every feasible schedule costs at least
``max(len(J)/g, span(J))``, across random workloads, all algorithms and a
range of ``g``.  The regenerated table reports, per (n, g), the two bounds,
the best algorithm's cost and the gap.
"""

from __future__ import annotations

import pytest

from busytime.algorithms import auto_schedule, first_fit
from busytime.core.bounds import best_lower_bound, parallelism_bound, span_bound
from busytime.generators import uniform_random_instance

GRID = [(n, g) for n in (10, 50, 200) for g in (2, 5, 10)]


@pytest.mark.parametrize("n,g", GRID, ids=[f"n{n}-g{g}" for n, g in GRID])
def test_bounds_hold_for_every_algorithm(benchmark, attach_rows, n, g):
    inst = uniform_random_instance(n, g, seed=n * 31 + g)
    rows = []
    costs = []
    for name, algorithm in (("first_fit", first_fit), ("auto", auto_schedule)):
        sched = algorithm(inst)
        p_bound = parallelism_bound(inst)
        s_bound = span_bound(inst)
        assert sched.total_busy_time >= p_bound - 1e-9
        assert sched.total_busy_time >= s_bound - 1e-9
        costs.append(sched.total_busy_time)
        rows.append(
            {
                "n": n,
                "g": g,
                "algorithm": name,
                "parallelism_bound": round(p_bound, 3),
                "span_bound": round(s_bound, 3),
                "cost": round(sched.total_busy_time, 3),
                "cost_over_best_lb": round(
                    sched.total_busy_time / best_lower_bound(inst), 3
                ),
            }
        )
    result = benchmark(lambda: best_lower_bound(inst))
    attach_rows(benchmark, rows, experiment="E1-observation-1.1")
    assert result <= min(costs) + 1e-9
