"""E12 — Runtime scalability of the algorithms.

The paper's algorithms are combinatorial and low-polynomial; this benchmark
records wall-clock time versus instance size so regressions in the
implementation are caught and the "laptop-scale" claim of the reproduction is
documented.  pytest-benchmark provides the statistics; the attached rows add
the resulting cost so throughput and quality can be read together.
"""

from __future__ import annotations

import pytest

from busytime.algorithms import auto_schedule, first_fit, proper_greedy
from busytime.generators import proper_instance, uniform_random_instance

SIZES = [100, 500, 2000]


@pytest.mark.parametrize("n", SIZES, ids=[f"n{n}" for n in SIZES])
def test_firstfit_scaling(benchmark, attach_rows, n):
    inst = uniform_random_instance(n, g=5, seed=n)
    sched = benchmark(lambda: first_fit(inst))
    attach_rows(
        benchmark,
        [{"n": n, "g": 5, "cost": round(sched.total_busy_time, 1), "machines": sched.num_machines}],
        experiment="E12-scalability-firstfit",
    )
    assert sched.num_machines >= 1


@pytest.mark.parametrize("n", SIZES, ids=[f"n{n}" for n in SIZES])
def test_proper_greedy_scaling(benchmark, attach_rows, n):
    inst = proper_instance(n, g=5, seed=n)
    sched = benchmark(lambda: proper_greedy(inst))
    attach_rows(
        benchmark,
        [{"n": n, "g": 5, "cost": round(sched.total_busy_time, 1), "machines": sched.num_machines}],
        experiment="E12-scalability-greedy",
    )
    assert sched.num_machines >= 1


@pytest.mark.parametrize("n", [100, 500], ids=["n100", "n500"])
def test_dispatcher_scaling(benchmark, attach_rows, n):
    inst = uniform_random_instance(n, g=5, seed=n + 1)
    sched = benchmark(lambda: auto_schedule(inst))
    attach_rows(
        benchmark,
        [{"n": n, "g": 5, "cost": round(sched.total_busy_time, 1), "machines": sched.num_machines}],
        experiment="E12-scalability-auto",
    )
    assert sched.num_machines >= 1
