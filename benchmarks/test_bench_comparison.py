"""E11 — Cross-algorithm comparison on a mixed workload suite.

Not a single table of the paper, but the head-to-head the paper's results
imply: on each instance class the specialised algorithm (or the dispatcher)
should match or beat plain FirstFit, and all of them should crush the
no-sharing and machine-count baselines on the busy-time objective.
"""

from __future__ import annotations

import pytest

from busytime.algorithms import (
    auto_schedule,
    best_fit,
    clique_schedule,
    first_fit,
    machine_minimizing,
    proper_greedy,
    singleton,
)
from busytime.analysis import ExperimentRunner
from busytime.core.bounds import best_lower_bound
from busytime.generators import (
    bursty_instance,
    clique_instance,
    proper_instance,
    uniform_random_instance,
)

ALGORITHMS = {
    "first_fit": first_fit,
    "best_fit": best_fit,
    "auto": auto_schedule,
    "machine_min": machine_minimizing,
    "singleton": singleton,
}

WORKLOADS = [
    ("uniform", lambda seed: uniform_random_instance(100, 4, seed=seed)),
    ("bursty", lambda seed: bursty_instance(100, 4, seed=seed)),
    ("proper", lambda seed: proper_instance(100, 4, seed=seed)),
    ("clique", lambda seed: clique_instance(100, 4, seed=seed)),
]


def test_head_to_head(benchmark, attach_rows):
    rows = []
    for label, maker in WORKLOADS:
        for seed in range(2):
            inst = maker(seed)
            lb = best_lower_bound(inst)
            costs = {}
            for name, algorithm in ALGORITHMS.items():
                sched = algorithm(inst)
                sched.validate()
                costs[name] = sched.total_busy_time
            row = {"workload": label, "seed": seed, "lower_bound": round(lb, 1)}
            row.update({name: round(c, 1) for name, c in costs.items()})
            row["auto_vs_lb"] = round(costs["auto"] / lb, 3)
            rows.append(row)

            # Shapes the paper implies:
            assert costs["auto"] <= costs["first_fit"] + 1e-9
            assert costs["auto"] <= costs["singleton"] + 1e-9
            assert costs["first_fit"] <= costs["singleton"] + 1e-9
            # (machine_min is sometimes competitive on busy time — see E9 for
            # the workload where it is provably wasteful — so no ordering is
            # asserted against it here, it is only reported.)

    inst = uniform_random_instance(100, 4, seed=0)
    benchmark(lambda: auto_schedule(inst))
    attach_rows(benchmark, rows, experiment="E11-head-to-head")


def test_specialised_algorithms_on_their_classes(benchmark, attach_rows):
    rows = []
    proper = proper_instance(120, 4, seed=7)
    clique = clique_instance(120, 4, seed=7)
    pg = proper_greedy(proper).total_busy_time
    ff_p = first_fit(proper).total_busy_time
    cs = clique_schedule(clique).total_busy_time
    ff_c = first_fit(clique).total_busy_time
    rows.append(
        {
            "class": "proper",
            "greedy": round(pg, 1),
            "first_fit": round(ff_p, 1),
            "greedy_vs_lb": round(pg / best_lower_bound(proper), 3),
        }
    )
    rows.append(
        {
            "class": "clique",
            "clique_alg": round(cs, 1),
            "first_fit": round(ff_c, 1),
            "clique_vs_lb": round(cs / best_lower_bound(clique), 3),
        }
    )
    # Guarantees: the specialised algorithms stay within their proven factors
    # of the lower bound on these dense workloads.
    assert rows[0]["greedy_vs_lb"] <= 2.0 + 1e-9
    assert rows[1]["clique_vs_lb"] <= 2.0 + 1e-9
    benchmark(lambda: proper_greedy(proper))
    attach_rows(benchmark, rows, experiment="E11-specialised")
