"""E9 — Section 1.1 remark: machine-count minimisation vs busy-time minimisation.

The paper notes that minimising the *number* of machines is polynomial
(colour the interval graph, bundle ``g`` colour classes per machine), in
contrast to the NP-hard busy-time objective.  The regenerated table shows,
per workload, that the colouring baseline indeed uses the provably minimum
number of machines — and how much busy time it wastes relative to FirstFit
and the dispatcher, which is precisely why the paper's objective needs its
own algorithms.
"""

from __future__ import annotations

import math

import pytest

from busytime.algorithms import auto_schedule, first_fit, machine_minimizing
from busytime.core.bounds import best_lower_bound
from busytime.core.instance import Instance
from busytime.generators import laminar_instance, uniform_random_instance


def _staggered_instance(k: int, g: int) -> Instance:
    """``k`` short/long pairs with staggered starts: colour bundling is wasteful.

    Each pair consists of a short job ``[i*eps, 10]`` and a long job
    ``[i*eps + eps/2, 30]``.  The greedy interval colouring (start order)
    alternates colours between shorts and longs, so bundling ``g``
    consecutive colour classes pairs every long job with short jobs and pays
    the long horizon on (almost) every machine; a busy-time-aware algorithm
    instead groups the long jobs together and the short jobs together, saving
    roughly a third of the total busy time (for ``g = 2``).
    """
    eps = 1e-3
    jobs = []
    for i in range(k):
        jobs.append((i * eps, 10.0))
        jobs.append((i * eps + eps / 2.0, 30.0))
    return Instance.from_intervals(jobs, g=g, name=f"staggered(k={k},g={g})")


GRID = [(40, 2), (80, 4)]


@pytest.mark.parametrize("n,g", GRID, ids=[f"n{n}-g{g}" for n, g in GRID])
def test_machine_min_vs_busy_time(benchmark, attach_rows, n, g):
    rows = []
    workloads = [
        ("uniform", uniform_random_instance(n, g, seed=n + g)),
        ("laminar", laminar_instance(n, g, seed=n + g)),
        ("staggered", _staggered_instance(n // 2, g)),
    ]
    for label, inst in workloads:
        mm = machine_minimizing(inst)
        ff = first_fit(inst)
        auto = auto_schedule(inst)
        assert mm.num_machines == math.ceil(inst.clique_number / g)  # optimal count
        assert mm.num_machines <= ff.num_machines
        rows.append(
            {
                "workload": label,
                "n": inst.n,
                "g": g,
                "machine_min_machines": mm.num_machines,
                "machine_min_busy": round(mm.total_busy_time, 2),
                "firstfit_machines": ff.num_machines,
                "firstfit_busy": round(ff.total_busy_time, 2),
                "auto_busy": round(auto.total_busy_time, 2),
                "busy_overhead": round(
                    mm.total_busy_time / max(auto.total_busy_time, 1e-9), 2
                ),
                "lower_bound": round(best_lower_bound(inst), 2),
            }
        )
    # Shape: on the staggered workload the machine-count optimum wastes a
    # substantial fraction of busy time relative to the busy-time-aware
    # dispatcher (≈1.5x for g = 2), even though its machine count is minimum.
    staggered = [r for r in rows if r["workload"] == "staggered"][0]
    assert staggered["busy_overhead"] >= 1.2

    inst = uniform_random_instance(n, g, seed=n + g)
    benchmark(lambda: machine_minimizing(inst))
    attach_rows(benchmark, rows, experiment="E9-machine-count-vs-busy-time")
