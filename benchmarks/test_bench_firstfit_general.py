"""E2 — Theorem 2.1 / 2.5 (upper bound): FirstFit is a 4-approximation.

Two regimes are regenerated:

* **small instances** (n <= 10): the ratio is measured against the *exact*
  optimum; the paper's guarantee ``FirstFit <= 4 OPT`` must hold on every
  single instance, and typical ratios sit well below 2;
* **large instances** (n up to 400): the ratio is measured against the
  Observation 1.1 lower bound (an over-estimate of the true ratio); it must
  stay below 4 on these random workloads and typically sits near 1.
"""

from __future__ import annotations

import statistics

import pytest

from busytime.algorithms import first_fit
from busytime.core.bounds import best_lower_bound
from busytime.exact import exact_optimal_cost
from busytime.generators import poisson_arrivals_instance, uniform_random_instance

SMALL = [(8, 2), (9, 3), (10, 2)]
LARGE = [(100, 2), (200, 5), (400, 10)]


@pytest.mark.parametrize("n,g", SMALL, ids=[f"small-n{n}-g{g}" for n, g in SMALL])
def test_firstfit_vs_exact_optimum(benchmark, attach_rows, n, g):
    rows = []
    for seed in range(5):
        inst = uniform_random_instance(n, g, horizon=25, seed=seed)
        ff = first_fit(inst)
        opt = exact_optimal_cost(inst, initial_upper_bound=ff.total_busy_time)
        ratio = ff.total_busy_time / opt
        assert ratio <= 4.0 + 1e-9  # Theorem 2.1
        rows.append(
            {
                "n": n,
                "g": g,
                "seed": seed,
                "firstfit": round(ff.total_busy_time, 3),
                "opt": round(opt, 3),
                "ratio": round(ratio, 3),
            }
        )
    mean_ratio = statistics.mean(r["ratio"] for r in rows)
    inst = uniform_random_instance(n, g, horizon=25, seed=0)
    benchmark(lambda: first_fit(inst))
    attach_rows(
        benchmark,
        rows,
        experiment="E2-theorem-2.1",
        mean_ratio=round(mean_ratio, 3),
        paper_bound=4.0,
    )


@pytest.mark.parametrize("n,g", LARGE, ids=[f"large-n{n}-g{g}" for n, g in LARGE])
def test_firstfit_vs_lower_bound_large(benchmark, attach_rows, n, g):
    rows = []
    for maker, label in (
        (uniform_random_instance, "uniform"),
        (lambda n, g, seed: poisson_arrivals_instance(n, g, seed=seed), "poisson"),
    ):
        for seed in range(3):
            inst = maker(n, g, seed=seed)
            ff = first_fit(inst)
            ratio = ff.total_busy_time / best_lower_bound(inst)
            assert ratio <= 4.0 + 1e-9
            rows.append(
                {
                    "workload": label,
                    "n": n,
                    "g": g,
                    "seed": seed,
                    "firstfit": round(ff.total_busy_time, 3),
                    "lower_bound": round(best_lower_bound(inst), 3),
                    "ratio_vs_lb": round(ratio, 3),
                }
            )
    inst = uniform_random_instance(n, g, seed=0)
    benchmark(lambda: first_fit(inst))
    attach_rows(benchmark, rows, experiment="E2-theorem-2.1-large", paper_bound=4.0)
