"""E8 — Section 4: regenerator minimisation on path networks.

Regenerates the four corollaries of Section 4.2 on synthetic lightpath
traffic:

(i)   general traffic         -> FirstFit grooming, ratio <= 4 vs LB;
(ii)  pairwise-sharing traffic-> clique algorithm, ratio <= 2;
(iii) proper traffic          -> Section 3.1 greedy, ratio <= 2;
(iv)  short-reach traffic     -> Bounded_Length, ratio <= 2 + eps.

Each row reports the regenerator count, the no-grooming deployment (one
regenerator per intermediate hop of every lightpath), the savings factor and
the scheduling lower bound mapped back to regenerators.
"""

from __future__ import annotations

import pytest

from busytime.algorithms import bounded_length, clique_schedule, first_fit, proper_greedy
from busytime.core.bounds import best_lower_bound
from busytime.generators import hotspot_traffic, local_traffic, uniform_traffic
from busytime.optical import PathNetwork, Traffic, groom, traffic_to_instance


def _clique_traffic(num_nodes: int, n: int, g: int, seed: int) -> Traffic:
    """Traffic in which every pair of lightpaths shares an edge (a clique)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    mid = num_nodes // 2
    pairs = []
    for _ in range(n):
        a = int(rng.integers(0, mid))
        b = int(rng.integers(mid + 1, num_nodes))
        pairs.append((a, b))
    return Traffic.from_pairs(PathNetwork(num_nodes), pairs, g=g, name="clique-traffic")


def _proper_traffic(num_nodes: int, n: int, g: int, hops: int) -> Traffic:
    """Equal-hop lightpaths sliding along the path (a proper instance)."""
    pairs = []
    for i in range(n):
        a = i % (num_nodes - hops)
        pairs.append((a, a + hops))
    return Traffic.from_pairs(PathNetwork(num_nodes), pairs, g=g, name="proper-traffic")


def test_result_i_general_traffic(benchmark, attach_rows):
    rows = []
    for seed in range(3):
        traffic = uniform_traffic(60, 150, g=4, seed=seed)
        wa = groom(traffic, algorithm=first_fit)
        wa.validate()
        lb = best_lower_bound(traffic_to_instance(traffic))
        rows.append(
            {
                "seed": seed,
                "lightpaths": traffic.n,
                "regenerators": wa.regenerators(),
                "no_grooming": traffic.total_regenerator_demand(),
                "savings_factor": round(
                    traffic.total_regenerator_demand() / max(wa.regenerators(), 1), 2
                ),
                "sched_lower_bound": round(lb, 1),
                "ratio_vs_lb": round(wa.regenerators() / lb, 3),
                "wavelengths": wa.num_wavelengths,
            }
        )
    for row in rows:
        assert row["ratio_vs_lb"] <= 4.0 + 1e-9  # result (i)
        assert row["savings_factor"] >= 1.0
    traffic = uniform_traffic(60, 150, g=4, seed=0)
    benchmark(lambda: groom(traffic, algorithm=first_fit))
    attach_rows(benchmark, rows, experiment="E8-result-i", paper_bound=4.0)


def test_result_ii_clique_traffic(benchmark, attach_rows):
    rows = []
    for seed in range(3):
        traffic = _clique_traffic(40, 80, g=3, seed=seed)
        inst = traffic_to_instance(traffic)
        assert inst.is_clique()
        wa = groom(traffic, algorithm=clique_schedule)
        wa.validate()
        lb = best_lower_bound(inst)
        ratio = wa.regenerators() / lb
        assert ratio <= 2.0 + 1e-9  # result (ii)
        rows.append(
            {
                "seed": seed,
                "lightpaths": traffic.n,
                "regenerators": wa.regenerators(),
                "lower_bound": round(lb, 1),
                "ratio": round(ratio, 3),
            }
        )
    traffic = _clique_traffic(40, 80, g=3, seed=0)
    benchmark(lambda: groom(traffic, algorithm=clique_schedule))
    attach_rows(benchmark, rows, experiment="E8-result-ii", paper_bound=2.0)


def test_result_iii_proper_traffic(benchmark, attach_rows):
    rows = []
    for hops in (5, 10):
        traffic = _proper_traffic(80, 150, g=4, hops=hops)
        inst = traffic_to_instance(traffic)
        assert inst.is_proper()
        wa = groom(traffic, algorithm=proper_greedy)
        wa.validate()
        lb = best_lower_bound(inst)
        ratio = wa.regenerators() / lb
        assert ratio <= 2.0 + 1e-9  # result (iii)
        rows.append(
            {
                "hops": hops,
                "lightpaths": traffic.n,
                "regenerators": wa.regenerators(),
                "lower_bound": round(lb, 1),
                "ratio": round(ratio, 3),
            }
        )
    traffic = _proper_traffic(80, 150, g=4, hops=5)
    benchmark(lambda: groom(traffic, algorithm=proper_greedy))
    attach_rows(benchmark, rows, experiment="E8-result-iii", paper_bound=2.0)


def test_result_iv_bounded_length_traffic(benchmark, attach_rows):
    rows = []
    for seed in range(3):
        traffic = local_traffic(100, 200, g=3, mean_hops=4, max_hops=6, seed=seed)
        inst = traffic_to_instance(traffic)
        wa = groom(traffic, algorithm=bounded_length)
        wa.validate()
        lb = best_lower_bound(inst)
        ratio = wa.regenerators() / lb
        rows.append(
            {
                "seed": seed,
                "lightpaths": traffic.n,
                "max_hops": 6,
                "regenerators": wa.regenerators(),
                "lower_bound": round(lb, 1),
                "ratio_vs_lb": round(ratio, 3),
            }
        )
    # Shape: stays well under the general 4-approximation and typically under
    # the (2 + eps) target even against the (weaker) lower bound.
    assert all(r["ratio_vs_lb"] <= 4.0 + 1e-9 for r in rows)
    traffic = local_traffic(100, 200, g=3, mean_hops=4, max_hops=6, seed=0)
    benchmark(lambda: groom(traffic, algorithm=bounded_length))
    attach_rows(benchmark, rows, experiment="E8-result-iv", paper_bound="2+eps")


def test_grooming_factor_sweep(benchmark, attach_rows):
    """Savings grow with the grooming factor g (the motivation of Section 4)."""
    rows = []
    base_regens = None
    for g in (1, 2, 4, 8):
        traffic = hotspot_traffic(50, 150, g=g, seed=3)
        wa = groom(traffic, algorithm=first_fit)
        wa.validate()
        if g == 1:
            base_regens = wa.regenerators()
        rows.append(
            {
                "g": g,
                "regenerators": wa.regenerators(),
                "wavelengths": wa.num_wavelengths,
                "savings_vs_g1": round(base_regens / max(wa.regenerators(), 1), 2),
            }
        )
    regens = [r["regenerators"] for r in rows]
    assert regens == sorted(regens, reverse=True)  # non-increasing in g
    traffic = hotspot_traffic(50, 150, g=4, seed=3)
    benchmark(lambda: groom(traffic, algorithm=first_fit))
    attach_rows(benchmark, rows, experiment="E8-g-sweep")
