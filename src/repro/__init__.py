"""Compatibility alias: ``repro`` re-exports the :mod:`busytime` public API.

The reproduction workspace was scaffolded under the package name ``repro``;
the library itself lives in :mod:`busytime`.  Importing ``repro`` gives you
the same names so both spellings work::

    import repro
    import busytime
    assert repro.first_fit is busytime.first_fit
"""

from busytime import *  # noqa: F401,F403
from busytime import __all__ as _busytime_all
from busytime import __version__  # noqa: F401

__all__ = list(_busytime_all)
