"""Exact polynomial-time solvers for special cases.

Two regimes of the problem are polynomial and are used both as fast OPT
references in experiments and as sanity oracles in the test suite:

* ``g = 1``: a machine processes one job at a time, so the jobs assigned to
  one machine are pairwise disjoint and the machine's busy time equals the
  sum of their lengths.  Consequently *every* feasible schedule costs exactly
  ``len(J)``; the singleton assignment is returned as a canonical optimum.

* disjoint instances (no two jobs overlap): any assignment packing at most
  ``g`` pairwise-disjoint jobs per machine has cost ``>= len(J)`` and putting
  each job alone (or all on one machine — same cost) achieves it.

* machine-count minimisation (Section 1.1 remark): the *number* of machines
  is minimised in polynomial time by colouring the interval graph with
  ``omega`` colours and bundling ``g`` colour classes per machine.  This is
  exposed here because it doubles as an exact solver for the "minimum number
  of machines" objective, and reused by the baselines module.
"""

from __future__ import annotations

import math
from typing import List

from ..core.instance import Instance
from ..core.intervals import Job
from ..core.schedule import Machine, Schedule
from ..graphs.interval_graph import greedy_interval_coloring

__all__ = [
    "solve_unit_parallelism",
    "solve_disjoint",
    "minimize_machine_count",
    "optimal_cost_if_polynomial",
]


def solve_unit_parallelism(instance: Instance) -> Schedule:
    """Exact optimum for ``g = 1`` (cost is forced to ``len(J)``)."""
    if instance.g != 1:
        raise ValueError("solve_unit_parallelism requires g == 1")
    machines = tuple(
        Machine(index=i, jobs=(job,)) for i, job in enumerate(instance.jobs)
    )
    return Schedule(
        instance=instance,
        machines=machines,
        algorithm="exact_g1",
        meta={"optimal": True},
    )


def solve_disjoint(instance: Instance) -> Schedule:
    """Exact optimum when no two jobs overlap (cost forced to ``len(J)``)."""
    if instance.clique_number > 1:
        raise ValueError("solve_disjoint requires pairwise-disjoint jobs")
    machines = tuple(
        Machine(index=i, jobs=(job,)) for i, job in enumerate(instance.jobs)
    )
    return Schedule(
        instance=instance,
        machines=machines,
        algorithm="exact_disjoint",
        meta={"optimal": True},
    )


def minimize_machine_count(instance: Instance) -> Schedule:
    """Minimum-*machine-count* schedule (Section 1.1): ``ceil(omega / g)`` machines.

    Colour the interval graph with ``omega`` colours, then place every ``g``
    consecutive colour classes on one machine.  The resulting schedule is
    feasible and uses the minimum possible number of machines; its *busy
    time*, however, can be far from optimal — experiment E9 quantifies that
    gap.
    """
    if instance.n == 0:
        return Schedule(instance=instance, machines=(), algorithm="machine_min")
    coloring = greedy_interval_coloring(instance.jobs)
    num_colors = max(coloring.values()) + 1
    num_machines = math.ceil(num_colors / instance.g)
    blocks: List[List[Job]] = [[] for _ in range(num_machines)]
    for job in instance.jobs:
        blocks[coloring[job.id] // instance.g].append(job)
    machines = tuple(
        Machine(index=i, jobs=tuple(b)) for i, b in enumerate(blocks) if b
    )
    schedule = Schedule(
        instance=instance,
        machines=machines,
        algorithm="machine_min",
        meta={"min_machine_count": True, "chromatic_number": num_colors},
    )
    schedule.validate()
    return schedule


def optimal_cost_if_polynomial(instance: Instance):
    """Return the exact optimal cost when a polynomial special case applies.

    Returns ``None`` when the instance is not covered by a polynomial case
    (callers then fall back to branch and bound or to lower bounds).
    """
    if instance.g == 1:
        return instance.total_length
    if instance.clique_number <= 1:
        return instance.total_length
    if instance.peak_demand <= instance.g:
        # All jobs fit on a single machine (total demand never exceeds g;
        # with unit demands this is the clique-number check); that machine's
        # span is span(J), which matches the span lower bound, hence optimal.
        return instance.span
    return None
