"""Exact optimum by exhaustive partition enumeration (tiny instances only).

The busy-time problem is NP-hard already for ``g = 2`` (Winkler & Zhang,
cited as [19] in the paper), so no polynomial exact algorithm is expected.
The experiment harness nevertheless needs *true* optima to measure
approximation ratios on small instances and to cross-validate the
branch-and-bound solver.  This module enumerates all set partitions of the
job set (restricted-growth-string order), filters infeasible ones, and
returns a best feasible partition.

Complexity is the Bell number ``B(n)``; keep ``n`` at 12 or below.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..core.instance import Instance
from ..core.intervals import Job, max_point_load, span
from ..core.schedule import Machine, Schedule

__all__ = ["brute_force_optimum", "iter_set_partitions"]

_MAX_BRUTE_FORCE_N = 13


def iter_set_partitions(items: Sequence) -> Iterator[List[List]]:
    """All set partitions of ``items`` (restricted growth string enumeration)."""
    n = len(items)
    if n == 0:
        yield []
        return
    # a[i] = block index of item i; valid strings satisfy a[i] <= 1 + max(a[:i])
    a = [0] * n
    while True:
        num_blocks = max(a) + 1
        blocks: List[List] = [[] for _ in range(num_blocks)]
        for idx, block in enumerate(a):
            blocks[block].append(items[idx])
        yield blocks
        # advance to next restricted growth string
        i = n - 1
        while i > 0:
            if a[i] <= max(a[:i]):
                a[i] += 1
                for j in range(i + 1, n):
                    a[j] = 0
                break
            i -= 1
        else:
            return


def brute_force_optimum(instance: Instance) -> Schedule:
    """The exact optimum schedule of a tiny instance.

    Raises
    ------
    ValueError
        if the instance has more than 13 jobs (Bell(14) ≈ 1.9e8 partitions).
    """
    if instance.n > _MAX_BRUTE_FORCE_N:
        raise ValueError(
            f"brute force limited to {_MAX_BRUTE_FORCE_N} jobs, got {instance.n}; "
            "use branch_and_bound_optimum instead"
        )
    if instance.n == 0:
        return Schedule(instance=instance, machines=(), algorithm="brute_force")

    g = instance.g
    best_cost = float("inf")
    best_blocks: Optional[List[List[Job]]] = None
    for blocks in iter_set_partitions(list(instance.jobs)):
        feasible = True
        cost = 0.0
        for block in blocks:
            if max_point_load(block) > g:
                feasible = False
                break
            cost += span(block)
            if cost >= best_cost:
                feasible = False
                break
        if feasible and cost < best_cost:
            best_cost = cost
            best_blocks = [list(b) for b in blocks]

    assert best_blocks is not None  # every instance has the singleton partition
    machines = tuple(
        Machine(index=i, jobs=tuple(block)) for i, block in enumerate(best_blocks)
    )
    schedule = Schedule(
        instance=instance,
        machines=machines,
        algorithm="brute_force",
        meta={"optimal": True},
    )
    schedule.validate()
    return schedule
