"""Exact optimum via branch and bound.

The search assigns jobs one at a time (in non-decreasing start order, which
keeps partial machine spans tight) either to one of the already-opened
machines that can still accommodate them or to a single fresh machine
(opening "the" new machine rather than any of infinitely many symmetric
copies breaks machine-relabelling symmetry).

Pruning uses three valid lower bounds on the cost of any completion of a
partial assignment:

* the sum of the spans of the currently opened machines (spans only grow);
* the global parallelism bound ``len(J)/g``;
* the global span bound ``span(J)``;
* additionally, the *remaining-length* bound: the unassigned jobs contribute
  at least ``len(unassigned)/g`` busy time, of which at most the currently
  opened machines' "free capacity" under their existing spans can be
  absorbed for free; we use the conservative variant
  ``max(committed, committed + (len(unassigned) - g * overlap_allowance)/g)``
  where the overlap allowance is the total span of opened machines times g
  minus the length already assigned to them.

An optional initial upper bound (e.g. a FirstFit schedule's cost) makes the
search considerably faster; callers that have one should pass it.

Per-machine state is an incrementally maintained
:class:`~busytime.core.events.SweepProfile`: pushing/popping a job during the
depth-first search updates the machine's load profile, busy time (span) and
assigned length in ``O(log k + w)``, so the feasibility test and both terms
of the lower bound are read off the maintained state instead of re-clipping
and re-sorting the machine's job list at every node.

Practical limit: roughly 18–22 jobs depending on structure and ``g``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.bounds import combined_bound
from ..core.events import SweepProfile
from ..core.profile_index import make_profile
from ..core.instance import Instance, connected_components
from ..core.intervals import Job, span
from ..core.schedule import Machine, Schedule

__all__ = ["branch_and_bound_optimum", "BranchAndBoundStats"]


@dataclass
class BranchAndBoundStats:
    """Search statistics reported in the schedule's ``meta``."""

    nodes_explored: int = 0
    nodes_pruned: int = 0
    incumbent_updates: int = 0


class _Searcher:
    def __init__(self, instance: Instance, initial_upper_bound: Optional[float]):
        self.instance = instance
        self.g = instance.g
        self.jobs: List[Job] = sorted(
            instance.jobs, key=lambda j: (j.start, j.end, j.id)
        )
        self.n = len(self.jobs)
        self.global_lb = combined_bound(instance)
        # The incumbent starts just *above* the supplied upper bound so that a
        # completion matching the bound exactly is still found (pruning uses a
        # strict "not better" test); the returned schedule is optimal either way.
        self.best_cost = (
            float("inf")
            if initial_upper_bound is None
            else float(initial_upper_bound) * (1.0 + 1e-12) + 1e-9
        )
        self.best_assignment: Optional[List[int]] = None
        self.stats = BranchAndBoundStats()
        # machine state stacks: one sweep profile + assigned-length counter
        # per opened machine, updated incrementally on push/pop.  Lengths are
        # demand-weighted (len * s_j): a machine of capacity g absorbs at
        # most g * span demand-weighted length, which is what the
        # free-capacity bound charges against.
        self.profiles: List[SweepProfile] = []
        # Every endpoint the search will ever push is an instance endpoint,
        # so the indexed backend (when the flag selects it) can size its
        # tree once up front and every push/pop stays O(log n).
        self._universe = sorted(
            {c for j in self.jobs for c in (j.start, j.end)}
        )
        self.machine_len: List[float] = []
        self.assignment: List[int] = [-1] * self.n
        # suffix_len[i] = demand-weighted length of jobs[i:], for bounding
        self.suffix_len: List[float] = [0.0] * (self.n + 1)
        for i in range(self.n - 1, -1, -1):
            self.suffix_len[i] = (
                self.suffix_len[i + 1]
                + self.jobs[i].length * self.jobs[i].demand
            )

    # -- bounding -------------------------------------------------------------

    # The maintained measures can carry ~1e-15 relative float drift after
    # push/pop cycles (removal subtracts segment lengths at a possibly finer
    # breakpoint granularity than addition credited them).  Incumbents are
    # therefore confirmed by an exact span recompute, and the prune test
    # keeps this much slack so drift can never cut the optimal branch.
    _DRIFT_GUARD = 1e-9

    def _committed_cost(self) -> float:
        return sum(p.measure for p in self.profiles)

    def _exact_cost(self) -> float:
        """Exact cost of the complete assignment (span per machine block)."""
        blocks: List[List[Job]] = [[] for _ in self.profiles]
        for pos, m_idx in enumerate(self.assignment):
            blocks[m_idx].append(self.jobs[pos])
        return sum(span(b) for b in blocks if b)

    def _lower_bound(self, next_index: int) -> float:
        committed = self._committed_cost()
        remaining_len = self.suffix_len[next_index]
        # Free capacity: opened machines can absorb more job length without
        # growing their span, up to g * span - assigned length each; both
        # terms are maintained incrementally by the push/pop operations.
        free_capacity = self.g * committed - sum(self.machine_len)
        extra = max(0.0, (remaining_len - free_capacity) / self.g)
        return max(committed + extra, self.global_lb)

    # -- feasibility ----------------------------------------------------------

    def _fits(self, machine_index: int, job: Job) -> bool:
        return self.profiles[machine_index].fits(
            job.start, job.end, self.g, demand=job.demand
        )

    # -- machine state --------------------------------------------------------

    def _push(self, machine_index: int, job: Job) -> None:
        self.profiles[machine_index].add(job.start, job.end, demand=job.demand)
        self.machine_len[machine_index] += job.length * job.demand

    def _pop(self, machine_index: int, job: Job) -> None:
        self.profiles[machine_index].remove(job.start, job.end, demand=job.demand)
        self.machine_len[machine_index] -= job.length * job.demand

    # -- search ---------------------------------------------------------------

    def search(self, index: int) -> None:
        self.stats.nodes_explored += 1
        if index == self.n:
            cost = self._committed_cost()
            guard = self._DRIFT_GUARD * max(1.0, abs(cost))
            if cost < self.best_cost + guard:
                exact = self._exact_cost()
                if exact < self.best_cost:
                    self.best_cost = exact
                    self.best_assignment = list(self.assignment)
                    self.stats.incumbent_updates += 1
            return
        bound = self._lower_bound(index)
        if bound - self._DRIFT_GUARD * max(1.0, abs(bound)) >= self.best_cost:
            self.stats.nodes_pruned += 1
            return

        job = self.jobs[index]

        # Try existing machines (in opening order; identical-content machines
        # could be skipped but detecting them costs more than it saves here).
        for m_idx in range(len(self.profiles)):
            if self._fits(m_idx, job):
                self._push(m_idx, job)
                self.assignment[index] = m_idx
                self.search(index + 1)
                self._pop(m_idx, job)
                self.assignment[index] = -1

        # Try a fresh machine (single representative of all unopened machines).
        self.profiles.append(make_profile(universe=self._universe))
        self.machine_len.append(0.0)
        self._push(len(self.profiles) - 1, job)
        self.assignment[index] = len(self.profiles) - 1
        self.search(index + 1)
        self.profiles.pop()
        self.machine_len.pop()
        self.assignment[index] = -1


def _solve_component(
    component: Instance, initial_upper_bound: Optional[float]
) -> Tuple[List[List[Job]], float, BranchAndBoundStats]:
    searcher = _Searcher(component, initial_upper_bound)
    searcher.search(0)
    assert searcher.best_assignment is not None
    num_machines = max(searcher.best_assignment) + 1 if searcher.best_assignment else 0
    blocks: List[List[Job]] = [[] for _ in range(num_machines)]
    for job_pos, m_idx in enumerate(searcher.best_assignment):
        blocks[m_idx].append(searcher.jobs[job_pos])
    return blocks, searcher.best_cost, searcher.stats


def branch_and_bound_optimum(
    instance: Instance,
    initial_upper_bound: Optional[float] = None,
    max_jobs: int = 24,
) -> Schedule:
    """Compute an exact optimum schedule by branch and bound.

    Parameters
    ----------
    instance:
        The instance to solve exactly.
    initial_upper_bound:
        A known feasible cost (e.g. from FirstFit); tightens pruning.  The
        returned schedule's cost never exceeds it.
    max_jobs:
        Safety limit; instances larger than this raise ``ValueError`` because
        the worst-case search space grows super-exponentially.

    Returns
    -------
    Schedule
        An optimal schedule with ``meta['optimal'] = True`` and the search
        statistics under ``meta['stats']``.
    """
    if instance.n > max_jobs:
        raise ValueError(
            f"branch and bound limited to {max_jobs} jobs, got {instance.n}"
        )
    if instance.n == 0:
        return Schedule(instance=instance, machines=(), algorithm="branch_and_bound")

    machines: List[Machine] = []
    total_stats = BranchAndBoundStats()
    # Solving per connected component is both valid (no optimal solution mixes
    # components) and exponentially cheaper.
    for component in connected_components(instance):
        blocks, _, stats = _solve_component(component, initial_upper_bound)
        total_stats.nodes_explored += stats.nodes_explored
        total_stats.nodes_pruned += stats.nodes_pruned
        total_stats.incumbent_updates += stats.incumbent_updates
        for block in blocks:
            if block:
                machines.append(Machine(index=len(machines), jobs=tuple(block)))

    schedule = Schedule(
        instance=instance,
        machines=tuple(machines),
        algorithm="branch_and_bound",
        meta={"optimal": True, "stats": total_stats},
    )
    schedule.validate()
    return schedule
