"""Exact solvers used as OPT references in experiments and tests."""

from typing import Optional

from ..core.instance import Instance
from ..core.schedule import Schedule
from .branch_and_bound import BranchAndBoundStats, branch_and_bound_optimum
from .brute_force import brute_force_optimum, iter_set_partitions
from .special_cases import (
    minimize_machine_count,
    optimal_cost_if_polynomial,
    solve_disjoint,
    solve_unit_parallelism,
)

__all__ = [
    "branch_and_bound_optimum",
    "BranchAndBoundStats",
    "brute_force_optimum",
    "iter_set_partitions",
    "solve_unit_parallelism",
    "solve_disjoint",
    "minimize_machine_count",
    "optimal_cost_if_polynomial",
    "exact_optimum",
    "exact_optimal_cost",
]


def exact_optimum(
    instance: Instance,
    initial_upper_bound: Optional[float] = None,
    max_jobs: int = 24,
) -> Schedule:
    """An exact optimum schedule, picking the cheapest applicable solver.

    Polynomial special cases (``g = 1``, pairwise-disjoint jobs, everything
    fits on one machine) are solved directly; otherwise branch and bound is
    used, optionally warm-started with ``initial_upper_bound``.
    """
    if instance.n == 0:
        return Schedule(instance=instance, machines=(), algorithm="exact")
    if instance.g == 1:
        return solve_unit_parallelism(instance)
    if instance.clique_number <= 1:
        return solve_disjoint(instance)
    return branch_and_bound_optimum(
        instance, initial_upper_bound=initial_upper_bound, max_jobs=max_jobs
    )


def exact_optimal_cost(
    instance: Instance,
    initial_upper_bound: Optional[float] = None,
    max_jobs: int = 24,
) -> float:
    """The exact optimal total busy time (convenience wrapper)."""
    poly = optimal_cost_if_polynomial(instance)
    if poly is not None:
        return poly
    return exact_optimum(
        instance, initial_upper_bound=initial_upper_bound, max_jobs=max_jobs
    ).total_busy_time
