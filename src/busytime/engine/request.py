"""Declarative solve requests.

A :class:`SolveRequest` captures *everything* the engine needs to produce a
:class:`~busytime.engine.report.SolveReport`: the instance, the objective,
how the algorithm is picked (a forced registry name or a selection policy),
an optional wall-clock budget and the report options.  Requests are frozen
dataclasses — picklable by construction so they can cross process boundaries
in :meth:`busytime.engine.Engine.solve_many` — and deliberately contain no
callables or open resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.instance import Instance
from ..core.objectives import CostModel, get_cost_model, registered_objectives

__all__ = ["SolveRequest", "RequestValidationError", "OBJECTIVES"]


def __getattr__(name: str):
    # `OBJECTIVES` keeps its historical tuple semantics ("busy_time" in
    # OBJECTIVES, iteration) but now reads the live registry of
    # :mod:`busytime.core.objectives` at access time, so objectives
    # registered at runtime become requestable with no engine change.
    # (`from ... import OBJECTIVES` binds a snapshot; use
    # `registered_objectives()` for a guaranteed-live view.)
    if name == "OBJECTIVES":
        return registered_objectives()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class RequestValidationError(ValueError):
    """Raised by :meth:`SolveRequest.validate` on an ill-formed request."""


@dataclass(frozen=True)
class SolveRequest:
    """One unit of work for the :class:`~busytime.engine.Engine`.

    Parameters
    ----------
    instance:
        The instance to schedule.
    objective:
        Name of the registered objective to minimise (see
        :mod:`busytime.core.objectives`): ``"busy_time"`` (the paper's
        objective, the default), ``"weighted_busy_time"``,
        ``"machines_plus_busy"``, or any objective registered at runtime.
    cost_model:
        Optional :class:`~busytime.core.objectives.CostModel` overriding the
        objective's registered default parameters (activation cost, busy
        rate, machine weight).  Its ``objective`` must match this request's;
        ``None`` uses the registered default.  Cost-model parameters enter
        the service fingerprint, so differently priced requests never share
        a cache line.
    algorithm:
        Force a specific registered algorithm on the whole instance
        (bypassing component dispatch), or ``None`` to let the selection
        policy choose per connected component.
    policy:
        Name of the selection policy (see :mod:`busytime.engine.policy`);
        ``None`` uses the engine's default.
    portfolio:
        Run every applicable portfolio algorithm per component and keep the
        cheapest feasible schedule (can only help; all candidates are
        feasible).  Ignored when ``algorithm`` is forced.
    time_limit:
        Soft wall-clock budget in seconds for *dispatched* solves.  Once
        exceeded, remaining components fall back to the cheapest-to-compute
        guarantee algorithm (FirstFit) and the report is flagged
        ``budget_exhausted``.  Ignored when ``algorithm`` is forced: a single
        running algorithm cannot be preempted mid-flight.
    race:
        Race the policy's top-``race`` ranked candidates on the whole
        instance instead of dispatching per component (see
        :mod:`busytime.portfolio.racer`): incumbent tracking, early
        acceptance against the lower bound, deterministic winners.  ``0``
        (the default) disables racing; values ``>= 2`` enable it
        (racing one candidate is just a slower single dispatch).
        Incompatible with a forced ``algorithm``.
    deadline:
        Shared wall-clock budget in seconds for a race: candidates still
        unresolved at the deadline are cancelled and the best finished
        schedule is returned (``budget_exhausted``, non-decisive).
        Requires ``race >= 2``; plain dispatched solves budget with
        ``time_limit`` instead.
    compute_optimum:
        Also compute the exact optimum (branch and bound) when the instance
        has at most ``max_jobs_for_optimum`` jobs.
    max_jobs_for_optimum:
        Size cap for the exact solver.
    validate_schedule:
        Re-validate the produced schedule against the instance (cheap; on by
        default).
    tags:
        Free-form labels echoed into the report (experiment ids, file names).
    """

    instance: Instance
    objective: str = "busy_time"
    cost_model: Optional[CostModel] = None
    algorithm: Optional[str] = None
    policy: Optional[str] = None
    portfolio: bool = True
    time_limit: Optional[float] = None
    race: int = 0
    deadline: Optional[float] = None
    compute_optimum: bool = False
    max_jobs_for_optimum: int = 16
    validate_schedule: bool = True
    tags: Mapping[str, object] = field(default_factory=dict)

    def resolved_cost_model(self) -> CostModel:
        """The cost model this request is priced under.

        The explicit ``cost_model`` when set, else the registered default
        for ``objective``.
        """
        if self.cost_model is not None:
            return self.cost_model
        return get_cost_model(self.objective)

    def validate(self, check_algorithm: bool = True) -> None:
        """Raise :class:`RequestValidationError` if the request is ill-formed.

        ``check_algorithm=False`` skips the registry lookup of ``algorithm``
        (used when the caller supplies a scheduler callable out of band, as
        the experiment harness does).
        """
        if not isinstance(self.instance, Instance):
            raise RequestValidationError(
                f"instance must be a busytime Instance, got {type(self.instance).__name__}"
            )
        if self.objective not in registered_objectives():
            raise RequestValidationError(
                f"unknown objective {self.objective!r}; supported: "
                f"{registered_objectives()}"
            )
        if self.cost_model is not None:
            if not isinstance(self.cost_model, CostModel):
                raise RequestValidationError(
                    f"cost_model must be a CostModel, got "
                    f"{type(self.cost_model).__name__}"
                )
            if self.cost_model.objective != self.objective:
                raise RequestValidationError(
                    f"cost_model prices objective {self.cost_model.objective!r} "
                    f"but the request asks for {self.objective!r}"
                )
        if self.time_limit is not None and self.time_limit < 0:
            raise RequestValidationError(
                f"time_limit must be non-negative, got {self.time_limit}"
            )
        if self.race < 0 or self.race == 1:
            raise RequestValidationError(
                f"race must be 0 (disabled) or >= 2 (candidates to race), "
                f"got {self.race}"
            )
        if self.race and self.algorithm is not None:
            raise RequestValidationError(
                "race and a forced algorithm are incompatible: racing asks "
                "the selection policy for candidates"
            )
        if self.deadline is not None:
            if self.deadline < 0:
                raise RequestValidationError(
                    f"deadline must be non-negative, got {self.deadline}"
                )
            if self.race < 2:
                raise RequestValidationError(
                    "deadline requires race >= 2 (plain dispatched solves "
                    "budget with time_limit)"
                )
        if self.max_jobs_for_optimum < 0:
            raise RequestValidationError(
                f"max_jobs_for_optimum must be non-negative, got {self.max_jobs_for_optimum}"
            )
        if self.algorithm is not None and check_algorithm:
            from ..algorithms.base import get_scheduler

            try:
                scheduler = get_scheduler(self.algorithm)
            except KeyError as exc:
                raise RequestValidationError(str(exc)) from None
            # A forced algorithm bypasses structural dispatch, but the
            # problem-model axis is not negotiable: an algorithm that
            # ignores demands would hand back a capacity-violating
            # schedule, and one that never heard of the objective would
            # optimise the wrong quantity.
            if self.instance.has_demands and not scheduler.demand_aware:
                raise RequestValidationError(
                    f"algorithm {self.algorithm!r} is not demand-aware but "
                    f"the instance carries capacity demands; demand-aware "
                    f"algorithms declare demand_aware=True"
                )
            if self.instance.is_flex and not scheduler.window_aware:
                raise RequestValidationError(
                    f"algorithm {self.algorithm!r} is not window-aware but "
                    f"the instance carries flex windows, a site capacity cap "
                    f"or background load; window-aware algorithms declare "
                    f"window_aware=True"
                )
            if not scheduler.supports_objective(self.objective):
                raise RequestValidationError(
                    f"algorithm {self.algorithm!r} does not declare support "
                    f"for objective {self.objective!r} (declared: "
                    f"{scheduler.supported_objectives})"
                )
        if self.policy is not None:
            from .policy import get_policy

            try:
                get_policy(self.policy)
            except KeyError as exc:
                raise RequestValidationError(str(exc)) from None

    def options_dict(self) -> dict:
        """The request's options (everything but the instance), JSON-ready.

        The *resolved* cost model is serialised (the registered default when
        no override was given), so two requests naming the same objective
        with equal parameters produce identical option documents — and
        therefore identical service fingerprints — regardless of whether the
        model was spelled out.
        """
        return {
            "objective": self.objective,
            "cost_model": self.resolved_cost_model().to_dict(),
            "algorithm": self.algorithm,
            "policy": self.policy,
            "portfolio": self.portfolio,
            "time_limit": self.time_limit,
            "race": self.race,
            "deadline": self.deadline,
            "compute_optimum": self.compute_optimum,
            "max_jobs_for_optimum": self.max_jobs_for_optimum,
            "validate_schedule": self.validate_schedule,
            "tags": dict(self.tags),
        }
