"""Declarative solve requests.

A :class:`SolveRequest` captures *everything* the engine needs to produce a
:class:`~busytime.engine.report.SolveReport`: the instance, the objective,
how the algorithm is picked (a forced registry name or a selection policy),
an optional wall-clock budget and the report options.  Requests are frozen
dataclasses — picklable by construction so they can cross process boundaries
in :meth:`busytime.engine.Engine.solve_many` — and deliberately contain no
callables or open resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.instance import Instance

__all__ = ["SolveRequest", "RequestValidationError", "OBJECTIVES"]

#: Objectives the engine understands.  The paper minimises total busy time;
#: the field exists so future objectives (weighted busy time, machine count)
#: plug into the same request shape.
OBJECTIVES = ("busy_time",)


class RequestValidationError(ValueError):
    """Raised by :meth:`SolveRequest.validate` on an ill-formed request."""


@dataclass(frozen=True)
class SolveRequest:
    """One unit of work for the :class:`~busytime.engine.Engine`.

    Parameters
    ----------
    instance:
        The instance to schedule.
    objective:
        Objective to minimise; only ``"busy_time"`` is currently supported.
    algorithm:
        Force a specific registered algorithm on the whole instance
        (bypassing component dispatch), or ``None`` to let the selection
        policy choose per connected component.
    policy:
        Name of the selection policy (see :mod:`busytime.engine.policy`);
        ``None`` uses the engine's default.
    portfolio:
        Run every applicable portfolio algorithm per component and keep the
        cheapest feasible schedule (can only help; all candidates are
        feasible).  Ignored when ``algorithm`` is forced.
    time_limit:
        Soft wall-clock budget in seconds for *dispatched* solves.  Once
        exceeded, remaining components fall back to the cheapest-to-compute
        guarantee algorithm (FirstFit) and the report is flagged
        ``budget_exhausted``.  Ignored when ``algorithm`` is forced: a single
        running algorithm cannot be preempted mid-flight.
    compute_optimum:
        Also compute the exact optimum (branch and bound) when the instance
        has at most ``max_jobs_for_optimum`` jobs.
    max_jobs_for_optimum:
        Size cap for the exact solver.
    validate_schedule:
        Re-validate the produced schedule against the instance (cheap; on by
        default).
    tags:
        Free-form labels echoed into the report (experiment ids, file names).
    """

    instance: Instance
    objective: str = "busy_time"
    algorithm: Optional[str] = None
    policy: Optional[str] = None
    portfolio: bool = True
    time_limit: Optional[float] = None
    compute_optimum: bool = False
    max_jobs_for_optimum: int = 16
    validate_schedule: bool = True
    tags: Mapping[str, object] = field(default_factory=dict)

    def validate(self, check_algorithm: bool = True) -> None:
        """Raise :class:`RequestValidationError` if the request is ill-formed.

        ``check_algorithm=False`` skips the registry lookup of ``algorithm``
        (used when the caller supplies a scheduler callable out of band, as
        the experiment harness does).
        """
        if not isinstance(self.instance, Instance):
            raise RequestValidationError(
                f"instance must be a busytime Instance, got {type(self.instance).__name__}"
            )
        if self.objective not in OBJECTIVES:
            raise RequestValidationError(
                f"unknown objective {self.objective!r}; supported: {OBJECTIVES}"
            )
        if self.time_limit is not None and self.time_limit < 0:
            raise RequestValidationError(
                f"time_limit must be non-negative, got {self.time_limit}"
            )
        if self.max_jobs_for_optimum < 0:
            raise RequestValidationError(
                f"max_jobs_for_optimum must be non-negative, got {self.max_jobs_for_optimum}"
            )
        if self.algorithm is not None and check_algorithm:
            from ..algorithms.base import get_scheduler

            try:
                get_scheduler(self.algorithm)
            except KeyError as exc:
                raise RequestValidationError(str(exc)) from None
        if self.policy is not None:
            from .policy import get_policy

            try:
                get_policy(self.policy)
            except KeyError as exc:
                raise RequestValidationError(str(exc)) from None

    def options_dict(self) -> dict:
        """The request's options (everything but the instance), JSON-ready."""
        return {
            "objective": self.objective,
            "algorithm": self.algorithm,
            "policy": self.policy,
            "portfolio": self.portfolio,
            "time_limit": self.time_limit,
            "compute_optimum": self.compute_optimum,
            "max_jobs_for_optimum": self.max_jobs_for_optimum,
            "validate_schedule": self.validate_schedule,
            "tags": dict(self.tags),
        }
