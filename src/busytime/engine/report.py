"""Structured solve reports.

A :class:`SolveReport` is the engine's response object: the schedule itself
plus everything a consumer (CLI table, experiment harness, JSON archive)
otherwise recomputed ad hoc — lower bounds, the per-component algorithm
decisions, the proven-ratio certificate and wall-clock telemetry.

Reports are frozen dataclasses and picklable, so the batch path can ship
them back from worker processes.  JSON round-tripping lives in
:mod:`busytime.io` (``solve_report_to_dict`` / ``solve_report_from_dict``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..core.schedule import Schedule

__all__ = ["ComponentDecision", "RaceCandidate", "RaceOutcome", "SolveReport"]


@dataclass(frozen=True)
class RaceCandidate:
    """One candidate's fate in a portfolio race.

    ``status`` is one of ``"finished"`` (produced a feasible schedule),
    ``"failed"`` (raised or returned an infeasible schedule — the slot is
    lost, nothing else), or ``"cancelled"`` (never resolved: either its
    task was revoked before running, or its result was deliberately
    discarded to keep winners timing-independent).  ``started`` records
    whether it began executing at all; ``wall_time``/``cost`` are ``None``
    unless it ran to completion.
    """

    algorithm: str
    rank: int
    status: str
    started: bool
    wall_time: Optional[float] = None
    cost: Optional[float] = None
    winner: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "rank": self.rank,
            "status": self.status,
            "started": self.started,
            "wall_time": self.wall_time,
            "cost": self.cost,
            "winner": self.winner,
        }


@dataclass(frozen=True)
class RaceOutcome:
    """The full outcome table of one portfolio race.

    ``decisive`` is the determinism flag: ``True`` means the winner was
    resolved by the timing-independent rules (first acceptable candidate
    in rank order, or minimum ``(cost, rank)`` over a complete race), so
    repeating the race reproduces it bit for bit; ``False`` means the
    shared deadline truncated the race and the winner is merely the best
    candidate that had finished — the report is also flagged
    ``budget_exhausted`` and the service layer never caches it.
    ``incumbent_timeline`` is the anytime trace: ``(elapsed_seconds,
    cost)`` pairs recorded whenever the best-so-far schedule improved
    (non-increasing in cost by construction).
    """

    candidates: Tuple[RaceCandidate, ...]
    deadline: Optional[float]
    accept_factor: float
    decisive: bool
    fallback: bool = False
    incumbent_timeline: Tuple[Tuple[float, float], ...] = ()

    @property
    def winner(self) -> Optional[RaceCandidate]:
        for candidate in self.candidates:
            if candidate.winner:
                return candidate
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "candidates": [c.as_dict() for c in self.candidates],
            "deadline": self.deadline,
            "accept_factor": self.accept_factor,
            "decisive": self.decisive,
            "fallback": self.fallback,
            "incumbent_timeline": [list(point) for point in self.incumbent_timeline],
        }


@dataclass(frozen=True)
class ComponentDecision:
    """What the engine did on one connected component.

    ``proven_ratio`` is the best approximation guarantee among the candidate
    algorithms that ran on the component: the kept schedule costs no more
    than any candidate's, so every candidate's guarantee transfers to it.
    ``None`` means no guarantee applies (e.g. a forced baseline algorithm).
    """

    component: str
    n: int
    algorithm: str
    cost: float
    proven_ratio: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "component": self.component,
            "n": self.n,
            "algorithm": self.algorithm,
            "cost": self.cost,
            "proven_ratio": self.proven_ratio,
        }


@dataclass(frozen=True)
class SolveReport:
    """The engine's structured response to one :class:`SolveRequest`.

    Attributes
    ----------
    schedule:
        The feasible schedule produced for the request's instance.
    algorithm:
        Overall producing algorithm: a forced registry name, or ``"auto"``
        for policy-dispatched solves.
    policy:
        Selection policy that made the per-component choices.
    portfolio:
        Whether the per-component portfolio ran.
    objective:
        The registered objective the request priced the solve under
        (``"busy_time"`` is the seed default).
    objective_value:
        The schedule's cost under the request's resolved cost model.  Equals
        :attr:`cost` exactly for the default model; ``None`` only on
        reports built before the engine priced them (old archives).
    lower_bound:
        Lower bound on the optimal *objective value* under the request's
        cost model; for the default model this is exactly the
        Observation 1.1 bound ``max(span, len/g)`` on OPT.
    optimum:
        Exact optimum when requested and small enough, else ``None``.
    components:
        Per-component algorithm decisions (empty for forced solves, which
        treat the instance as one unit).
    proven_ratio:
        Certificate: the schedule provably costs at most ``proven_ratio *
        OPT`` (the worst per-component guarantee — component optima add up,
        so the max transfers to the whole).  ``None`` when no guarantee
        applies.
    budget_exhausted:
        True when the request's ``time_limit`` expired mid-solve and the
        engine fell back to FirstFit for the remaining components, or when
        a race's shared ``deadline`` truncated it before the
        timing-independent winner could be resolved.
    race:
        The per-candidate outcome table and incumbent timeline when the
        solve was a portfolio race (``None`` otherwise).  Telemetry, like
        ``timings``: serialisation strips it together with timings, so
        cached report bytes stay deterministic.
    timings:
        Wall-clock telemetry in seconds: ``schedule`` (algorithm time),
        ``lower_bound``, optional ``optimum``, and ``total``.
    tags:
        The request's free-form labels, echoed back.
    """

    schedule: Schedule
    algorithm: str
    policy: str
    portfolio: bool
    lower_bound: float
    optimum: Optional[float] = None
    components: Tuple[ComponentDecision, ...] = ()
    proven_ratio: Optional[float] = None
    budget_exhausted: bool = False
    race: Optional[RaceOutcome] = None
    objective: str = "busy_time"
    objective_value: Optional[float] = None
    timings: Mapping[str, float] = field(default_factory=dict)
    tags: Mapping[str, object] = field(default_factory=dict)

    # -- derived -------------------------------------------------------------

    @property
    def cost(self) -> float:
        """The schedule's total busy time (the paper's objective)."""
        return self.schedule.total_busy_time

    @property
    def value(self) -> float:
        """The objective value under the request's cost model.

        Falls back to :attr:`cost` when the report predates pricing (the
        two are identical for the default ``busy_time`` model anyway).
        """
        return self.cost if self.objective_value is None else self.objective_value

    @property
    def num_machines(self) -> int:
        return self.schedule.num_machines

    @property
    def wall_time_seconds(self) -> float:
        """End-to-end solve time (0.0 when telemetry is absent)."""
        return float(self.timings.get("total", 0.0))

    @property
    def ratio_vs_lb(self) -> float:
        """Objective value over the lower bound (1.0 for degenerate zero
        bounds).  Both sides are priced under the same cost model, so the
        ratio stays meaningful across objectives."""
        if self.lower_bound <= 0:
            return 1.0 if self.value <= 0 else float("inf")
        return self.value / self.lower_bound

    @property
    def ratio_vs_opt(self) -> Optional[float]:
        """Objective value over the exact optimum, when computed (both sides
        priced under the request's cost model)."""
        if self.optimum is None or self.optimum <= 0:
            return None
        return self.value / self.optimum

    def summary(self) -> Dict[str, object]:
        """A flat dict for tables and logs (no machine assignment)."""
        out = {
            "instance": self.schedule.instance.name,
            "n": self.schedule.instance.n,
            "g": self.schedule.instance.g,
            "algorithm": self.algorithm,
            "cost": self.cost,
            "machines": self.num_machines,
            "lower_bound": self.lower_bound,
            "ratio_vs_lb": self.ratio_vs_lb,
            "optimum": self.optimum,
            "proven_ratio": self.proven_ratio,
            "wall_time_s": self.wall_time_seconds,
        }
        if self.objective != "busy_time":
            out["objective"] = self.objective
            out["objective_value"] = self.value
        if self.race is not None:
            out["raced"] = len(self.race.candidates)
            out["race_decisive"] = self.race.decisive
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveReport({self.algorithm}: cost={self.cost:g}, "
            f"machines={self.num_machines}, lb={self.lower_bound:g})"
        )
