"""The solve-session engine: ``SolveRequest -> Engine -> SolveReport``.

Every entry point of the package — :func:`busytime.auto_schedule`, the
experiment harness, the CLI, the examples — routes scheduling work through
:class:`Engine`, the one place that implements the orchestration loop the
paper's algorithms need around them:

1. split the instance into connected components (Section 1.4 w.l.o.g.);
2. per component, rank the applicable registered algorithms via the request's
   selection policy (capability metadata, see :mod:`busytime.engine.policy`);
3. run the preferred algorithm — or, with ``portfolio=True``, every
   applicable portfolio algorithm — and keep the cheapest feasible schedule;
4. assemble the merged schedule, the Observation 1.1 lower bound, the
   per-component decisions, the proven-ratio certificate and timings into a
   :class:`~busytime.engine.report.SolveReport`.

:meth:`Engine.solve_many` is the batch path: it preserves request order and
optionally fans out across a ``concurrent.futures`` process pool.  Requests
and reports are plain frozen dataclasses, so the pool ships them with
ordinary pickling and the parallel results are identical to the serial ones
(all selectable algorithms are deterministic).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import Scheduler, get_scheduler
from ..core.instance import Instance, connected_components
from ..core.objectives import CostModel
from ..core.schedule import Machine, Schedule
from .policy import DEFAULT_POLICY, SINGLE_MACHINE, SelectionPolicy, get_policy
from .report import ComponentDecision, SolveReport
from .request import RequestValidationError, SolveRequest

__all__ = ["Engine", "solve", "solve_many"]


def _single_machine_schedule(component: Instance) -> Schedule:
    """All jobs on one machine: cost ``span(J)``, matching the span bound,
    hence optimal — feasible exactly when the clique number is at most ``g``."""
    sched = Schedule(
        instance=component,
        machines=(Machine(index=0, jobs=component.jobs),),
        algorithm=SINGLE_MACHINE,
        meta={"optimal": True},
    )
    sched.validate()
    return sched


def _solve_component(
    component: Instance,
    portfolio: bool,
    policy: SelectionPolicy,
    objective: str,
    model: CostModel,
) -> Tuple[ComponentDecision, Schedule]:
    """Best schedule for one connected component under the given policy.

    Candidates are ranked for the requested *problem model* (objective +
    demand-awareness, see :meth:`Scheduler.handles`) and compared by their
    cost under the request's :class:`~busytime.core.objectives.CostModel` —
    for the default model that comparison is bit-for-bit the seed's
    total-busy-time comparison.
    """
    ranked = policy.rank(component, objective, model=model)
    if not ranked:
        raise RequestValidationError(
            f"no registered algorithm covers objective {objective!r} on "
            f"component {component.name or '(unnamed)'}"
            + (" (instance carries capacity demands)" if component.has_demands else "")
        )
    if ranked[0] == SINGLE_MACHINE:
        sched = _single_machine_schedule(component)
        decision = ComponentDecision(
            component=component.name,
            n=component.n,
            algorithm=SINGLE_MACHINE,
            cost=model.schedule_cost(sched),
            proven_ratio=1.0,
        )
        return decision, sched

    if portfolio:
        names = [n for n in ranked if get_scheduler(n).portfolio_member]
        if not names:
            # Every ranked algorithm opted out of the portfolio (possible
            # for a runtime objective whose only declarer is a
            # post-optimiser): run the policy's single pick rather than
            # handing min() an empty candidate list.
            names = [ranked[0]]
    else:
        names = [ranked[0]]
    # FirstFit is the guarantee of last resort wherever its declared
    # capabilities cover the component's problem model (always, for the
    # built-in objectives).
    if "first_fit" not in names and get_scheduler("first_fit").handles(
        component, objective
    ):
        names.append("first_fit")

    candidates = [
        (name, get_scheduler(name).schedule_under(component, model)) for name in names
    ]
    name, best = min(candidates, key=lambda c: model.schedule_cost(c[1]))
    # The kept schedule costs no more than any candidate's, so the best
    # guarantee among the candidates certifies it — provided the cost model
    # preserves busy-time ratios (a pure rescaling) *and* the instance is
    # rigid: the paper's approximation proofs cover the unit-demand model
    # only, so demand-carrying components get no certificate.
    proven = None
    if model.preserves_busy_time_ratios and not component.has_demands:
        proven = min(
            (
                get_scheduler(n).approximation_ratio
                for n in names
                if get_scheduler(n).approximation_ratio is not None
            ),
            default=None,
        )
    decision = ComponentDecision(
        component=component.name,
        n=component.n,
        algorithm=name,
        cost=model.schedule_cost(best),
        proven_ratio=proven,
    )
    return decision, best


class Engine:
    """Facade turning :class:`SolveRequest` objects into :class:`SolveReport` s.

    The engine is stateless apart from its default policy name, so one
    instance can be shared freely (and worker processes rebuild an equivalent
    one from nothing).
    """

    def __init__(self, default_policy: str = DEFAULT_POLICY) -> None:
        get_policy(default_policy)  # fail fast on unknown names
        self.default_policy = default_policy

    # -- single request -------------------------------------------------------

    def solve(
        self,
        request: SolveRequest,
        scheduler: Optional[Callable[[Instance], Schedule]] = None,
        *,
        deadline: Optional[float] = None,
        race: Optional[int] = None,
        executor=None,
    ) -> SolveReport:
        """Solve one request.

        ``scheduler`` optionally supplies the scheduling callable out of
        band (the experiment harness measures arbitrary callables this way);
        ``request.algorithm`` then only labels the report.

        ``deadline`` and ``race`` override the request's corresponding
        fields (convenience for callers holding a plain request):
        ``race >= 2`` races the policy's top candidates on the whole
        instance (see :mod:`busytime.portfolio.racer`) under the shared
        wall-clock ``deadline``.  ``executor`` optionally supplies a
        ``concurrent.futures`` executor for the race's candidates; without
        one they run serially in rank order (same winner either way —
        racing is deterministic except under deadline truncation).
        """
        if race is not None or deadline is not None:
            request = replace(
                request,
                race=request.race if race is None else race,
                deadline=request.deadline if deadline is None else deadline,
            )
        request.validate(check_algorithm=scheduler is None)
        started = time.monotonic()
        timings: Dict[str, float] = {}
        policy_name = request.policy or self.default_policy
        model = request.resolved_cost_model()

        forced = scheduler is not None or request.algorithm is not None
        if forced and scheduler is None and get_scheduler(request.algorithm).composite:
            # A forced *composite* (the "auto" dispatcher) is the engine's
            # own dispatch loop wearing a registry name; running it through
            # its plain `instance -> Schedule` function would rebuild a
            # default request and silently drop this request's objective,
            # cost model, policy and portfolio flag.  Route it through the
            # dispatcher directly so the problem model travels intact.
            forced = False
        if forced:
            report = self._solve_forced(request, scheduler, policy_name, timings, model)
        elif request.race >= 2 and request.instance.n > 0:
            report = self._solve_raced(request, policy_name, timings, model, executor)
        else:
            report = self._solve_dispatched(request, policy_name, timings, model)

        lb_started = time.monotonic()
        # The model lower bound: exactly the Observation 1.1 bound under the
        # default model, activation/rate-priced otherwise.
        lower_bound = model.lower_bound(request.instance)
        timings["lower_bound"] = time.monotonic() - lb_started

        optimum: Optional[float] = None
        if (
            request.compute_optimum
            and request.instance.n <= request.max_jobs_for_optimum
            # The exact solvers minimise busy time; their answer is the
            # model optimum only when the model is a positive rescaling of
            # busy time (activation-priced optima need a different search).
            and model.preserves_busy_time_ratios
            # They also assume fixed intervals and no site cap: on a flex
            # instance their value is the *fixed-placement* optimum, which
            # neither bounds nor certifies the placed one.
            and not request.instance.is_flex
        ):
            from ..exact import exact_optimal_cost

            opt_started = time.monotonic()
            optimum = exact_optimal_cost(
                request.instance,
                initial_upper_bound=report.schedule.total_busy_time,
                max_jobs=request.max_jobs_for_optimum,
            )
            # Price the busy-time optimum under the model (a no-op rescale
            # for the default model: * 1.0 is exact).
            optimum = model.price_busy_time(optimum)
            timings["optimum"] = time.monotonic() - opt_started

        timings["total"] = time.monotonic() - started
        return replace(
            report,
            lower_bound=lower_bound,
            optimum=optimum,
            objective=request.objective,
            objective_value=model.schedule_cost(report.schedule),
            timings=dict(timings),
            tags=dict(request.tags),
        )

    def _solve_forced(
        self,
        request: SolveRequest,
        scheduler: Optional[Callable[[Instance], Schedule]],
        policy_name: str,
        timings: Dict[str, float],
        model: CostModel,
    ) -> SolveReport:
        """Run one named (or supplied) algorithm on the whole instance."""
        if scheduler is None:
            scheduler = get_scheduler(request.algorithm)
        label = request.algorithm or getattr(scheduler, "name", "custom")
        started = time.monotonic()
        if isinstance(scheduler, Scheduler):
            # Registered algorithms receive the resolved cost model (the
            # tariff travels on the model); plain callables keep the bare
            # ``instance -> Schedule`` contract.
            schedule = scheduler.schedule_under(request.instance, model)
        else:
            schedule = scheduler(request.instance)
        timings["schedule"] = time.monotonic() - started
        if request.validate_schedule:
            schedule.validate()
        proven: Optional[float] = None
        if (
            isinstance(scheduler, Scheduler)
            and model.preserves_busy_time_ratios
            # The paper's ratio proofs cover the rigid (unit-demand) model
            # only; demand-carrying instances get no certificate.
            and not request.instance.has_demands
            and scheduler.handles(request.instance, request.objective)
        ):
            proven = scheduler.approximation_ratio
        return SolveReport(
            schedule=schedule,
            algorithm=label,
            policy=policy_name,
            portfolio=False,
            lower_bound=0.0,
            proven_ratio=proven,
        )

    def _solve_raced(
        self,
        request: SolveRequest,
        policy_name: str,
        timings: Dict[str, float],
        model: CostModel,
        executor,
    ) -> SolveReport:
        """Portfolio race on the whole instance (see the racer's contracts).

        The racer validates every finished candidate and runs the winning
        schedule through :func:`~busytime.core.schedule.verify_schedule`
        (the independent oracle), so no extra validation pass is needed
        here even with ``validate_schedule=False``.
        """
        from ..portfolio.racer import race_candidates

        started = time.monotonic()
        report = race_candidates(request, policy_name, model, executor=executor)
        timings["schedule"] = time.monotonic() - started
        return report

    def _solve_dispatched(
        self,
        request: SolveRequest,
        policy_name: str,
        timings: Dict[str, float],
        model: CostModel,
    ) -> SolveReport:
        """Component-wise dispatch through the selection policy."""
        instance = request.instance
        policy = get_policy(policy_name)
        started = time.monotonic()
        deadline = (
            started + request.time_limit if request.time_limit is not None else None
        )

        if instance.n == 0:
            timings["schedule"] = time.monotonic() - started
            return SolveReport(
                schedule=Schedule(instance=instance, machines=(), algorithm="auto"),
                algorithm="auto",
                policy=policy_name,
                portfolio=request.portfolio,
                lower_bound=0.0,
                proven_ratio=1.0,
            )

        machines: List[Machine] = []
        decisions: List[ComponentDecision] = []
        budget_exhausted = False
        for component in connected_components(instance):
            if deadline is not None and time.monotonic() >= deadline:
                # Budget gone: fall back to the cheapest-to-compute guarantee
                # algorithm so the solve still returns a feasible schedule
                # (FirstFit is demand-aware and declares every built-in
                # objective, so the fallback covers the whole model axis).
                budget_exhausted = True
                if not get_scheduler("first_fit").handles(
                    component, request.objective
                ):
                    # A runtime-registered objective FirstFit never
                    # declared: the no-coverage outcome must not depend on
                    # whether the deadline beat the component — run the
                    # policy's single pick (which raises the same
                    # RequestValidationError when nothing covers it).
                    decision, sched = _solve_component(
                        component, False, policy, request.objective, model
                    )
                else:
                    sched = get_scheduler("first_fit").schedule_under(component, model)
                    decision = ComponentDecision(
                        component=component.name,
                        n=component.n,
                        algorithm="first_fit",
                        cost=model.schedule_cost(sched),
                        proven_ratio=(
                            get_scheduler("first_fit").approximation_ratio
                            if model.preserves_busy_time_ratios
                            and not component.has_demands
                            else None
                        ),
                    )
            else:
                decision, sched = _solve_component(
                    component, request.portfolio, policy, request.objective, model
                )
            decisions.append(decision)
            for m in sched.machines:
                machines.append(Machine(index=len(machines), jobs=m.jobs))
        timings["schedule"] = time.monotonic() - started

        schedule = Schedule(
            instance=instance,
            machines=tuple(machines),
            algorithm="auto",
            meta={
                "components": [d.as_dict() for d in decisions],
                "portfolio": request.portfolio,
            },
        )
        if request.validate_schedule:
            schedule.validate()
        ratios = [d.proven_ratio for d in decisions]
        # Component optima add up, so the worst per-component guarantee
        # certifies the merged schedule.
        proven = max(ratios) if all(r is not None for r in ratios) else None
        return SolveReport(
            schedule=schedule,
            algorithm="auto",
            policy=policy_name,
            portfolio=request.portfolio,
            lower_bound=0.0,
            components=tuple(decisions),
            proven_ratio=proven,
            budget_exhausted=budget_exhausted,
        )

    # -- batch ----------------------------------------------------------------

    def solve_many(
        self,
        requests: Sequence[SolveRequest],
        max_workers: Optional[int] = None,
        chunksize: int = 1,
    ) -> List[SolveReport]:
        """Solve a batch of requests, preserving input order.

        **Order is part of the contract**: ``reports[i]`` answers
        ``requests[i]``, always.  This holds on the serial path, on the
        process-pool path (``pool.map`` is order-preserving regardless of
        task completion order), and for *mixed* batches where some
        requests race (``race >= 2``) and others dispatch a single
        candidate — a racing request that outlives its slower neighbours
        never shifts anyone's slot.  Raced requests run their candidates
        serially inside their worker (no pool-in-pool); their winners are
        the same as an executor-backed race would pick, because race
        winners are timing-independent by construction.

        ``max_workers`` > 1 fans the batch out across a process pool (one
        request per task, ``chunksize`` tunable for many small instances).
        Callers that batch repeatedly submit :func:`_pool_worker` tasks to
        their own long-lived pool instead (the service layer's
        ``_solve_batch`` does), amortising pool startup across batches.
        All selectable algorithms are deterministic, so the parallel path
        returns the same reports as the serial one, modulo wall-clock
        timings.

        Workers inherit the parent's registry via the ``fork`` start method
        where the platform offers it; elsewhere (spawn/forkserver) workers
        re-import the package from scratch, so algorithms and policies
        registered at *runtime* (e.g. via the ``register_scheduler``
        decorator in a script) are only available to the pool on fork
        platforms — register them at import time (in a module workers also
        import) to be portable.
        """
        prepared = []
        for request in requests:
            request.validate()
            if request.policy is None:
                # Resolve the engine's default into the request itself: the
                # pool workers rebuild their own engines, so the policy must
                # travel with the (picklable) request, never via engine state.
                request = replace(request, policy=self.default_policy)
            prepared.append(request)
        if max_workers is not None and max_workers > 1 and len(prepared) > 1:
            mp_context = None
            if "fork" in multiprocessing.get_all_start_methods():
                mp_context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=max_workers, mp_context=mp_context
            ) as pool:
                return list(pool.map(_pool_worker, prepared, chunksize=chunksize))
        return [self.solve(request) for request in prepared]


_WORKER_ENGINE: Optional[Engine] = None


def _pool_worker(request: SolveRequest) -> SolveReport:
    """Top-level (picklable) worker for the process-pool batch path.

    One engine is built per worker process and reused across tasks, instead
    of constructing (and re-validating) a fresh one per request.  The
    engine's own default policy is irrelevant here: ``solve_many`` resolves
    the parent's default into every shipped request before submission.
    """
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:
        _WORKER_ENGINE = Engine()
    return _WORKER_ENGINE.solve(request)


_DEFAULT_ENGINE: Optional[Engine] = None


def _default_engine() -> Engine:
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE


def solve(
    request: SolveRequest,
    scheduler: Optional[Callable[[Instance], Schedule]] = None,
    *,
    deadline: Optional[float] = None,
    race: Optional[int] = None,
    executor=None,
) -> SolveReport:
    """Module-level convenience: solve one request with the default engine."""
    return _default_engine().solve(
        request, scheduler=scheduler, deadline=deadline, race=race, executor=executor
    )


def solve_many(
    requests: Sequence[SolveRequest],
    max_workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[SolveReport]:
    """Module-level convenience: batch solve with the default engine."""
    return _default_engine().solve_many(
        requests, max_workers=max_workers, chunksize=chunksize
    )
