"""Unified solve-session API: ``SolveRequest -> Engine -> SolveReport``.

This package is the single orchestration seam of the library.  Build a
declarative :class:`SolveRequest`, hand it to an :class:`Engine` (or the
module-level :func:`solve` / :func:`solve_many`), and consume the structured
:class:`SolveReport` — schedule, lower bounds, per-component algorithm
decisions, proven-ratio certificate and timings — instead of re-implementing
component splitting, algorithm selection and bound computation at every call
site.  Later scaling work (caching, sharding, async backends) plugs in here.
"""

from .core import Engine, solve, solve_many
from .policy import (
    DEFAULT_POLICY,
    BestRatioPolicy,
    FirstFitPolicy,
    SelectionPolicy,
    available_policies,
    get_policy,
    register_policy,
)
from .report import ComponentDecision, RaceCandidate, RaceOutcome, SolveReport
from .request import RequestValidationError, SolveRequest


def __getattr__(name: str):
    # OBJECTIVES reads the live objective registry at access time (see
    # busytime.engine.request.__getattr__); an eager import here would
    # freeze the three built-ins and hide runtime-registered objectives
    # from callers feature-detecting through the public tuple.
    if name == "OBJECTIVES":
        from .request import OBJECTIVES

        return OBJECTIVES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Engine",
    "solve",
    "solve_many",
    "SolveRequest",
    "SolveReport",
    "ComponentDecision",
    "RaceCandidate",
    "RaceOutcome",
    "RequestValidationError",
    "OBJECTIVES",
    "SelectionPolicy",
    "BestRatioPolicy",
    "FirstFitPolicy",
    "register_policy",
    "get_policy",
    "available_policies",
    "DEFAULT_POLICY",
]
