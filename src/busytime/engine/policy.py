"""Algorithm selection policies.

A policy answers one question per connected component: *which registered
algorithms apply here, and in what order of preference?*  Policies rank by
querying the capability metadata every :class:`~busytime.algorithms.base.Scheduler`
declares (:meth:`handles`, ``approximation_ratio``, ``selection_priority``)
instead of hard-coding an if/elif chain, so registering a new algorithm with
the right capabilities makes it selectable with no engine change.

Two structural shortcuts live here rather than in the registry:

* an empty component is served by FirstFit (nothing to do);
* a component whose clique number is at most ``g`` fits on a single machine,
  which costs exactly ``span(J)`` and is therefore optimal — reported as the
  pseudo-algorithm ``"single_machine"`` that the engine materialises itself.
"""

from __future__ import annotations

import abc
from typing import Dict, List

from ..algorithms.base import Scheduler, all_schedulers
from ..core.instance import Instance

__all__ = [
    "SelectionPolicy",
    "BestRatioPolicy",
    "FirstFitPolicy",
    "register_policy",
    "get_policy",
    "available_policies",
    "DEFAULT_POLICY",
    "SINGLE_MACHINE",
]

#: Name of the structural single-machine shortcut (not a registry entry).
SINGLE_MACHINE = "single_machine"

#: Name of the default policy used when a request does not specify one.
DEFAULT_POLICY = "best_ratio"


class SelectionPolicy(abc.ABC):
    """Strategy ranking the applicable algorithms for one component.

    Rankings are per *problem model*: ``rank`` takes the requested objective
    alongside the instance, and policies only return algorithms whose
    declared capabilities cover both the instance's structure (including
    capacity demands) and the objective — see :meth:`Scheduler.handles`.
    """

    #: registry key
    name: str = "abstract"

    @abc.abstractmethod
    def rank(
        self,
        instance: Instance,
        objective: str = "busy_time",
        model=None,
    ) -> List[str]:
        """Applicable algorithm names, most preferred first.

        ``model`` is the request's *resolved*
        :class:`~busytime.core.objectives.CostModel` when the engine has
        one in hand (a request may override the objective's registered
        default parameters); ``None`` means "the registered default for
        ``objective``".  Empty only when no registered algorithm covers
        the instance/objective combination (the engine reports that as a
        request error rather than guessing).
        """

    def choose(self, instance: Instance, objective: str = "busy_time") -> str:
        """Name of the single preferred algorithm for ``instance``."""
        ranked = self.rank(instance, objective)
        if not ranked:
            raise LookupError(
                f"no registered algorithm covers objective {objective!r} "
                f"on this instance"
            )
        return ranked[0]


def _structural_shortcut(instance: Instance) -> List[str]:
    """The rankings shared by every policy, or [] when none applies.

    The single-machine shortcut is demand-aware — everything fits on one
    machine exactly when the *peak total demand* is at most ``g`` (the
    cardinality clique number when demands are unit) — and objective-proof:
    one machine with busy time ``span(J)`` simultaneously minimises machine
    count and busy time, hence every registered cost model.

    Flex instances (windows, site capacity or background load) skip the
    single-machine shortcut entirely: the nominal placement it materialises
    may violate a site cap, and under windows or a banded tariff its
    span-optimality argument no longer certifies the *placed* optimum.
    """
    if instance.n == 0:
        return ["first_fit"]
    if instance.is_flex:
        return []
    if instance.peak_demand <= instance.g:
        return [SINGLE_MACHINE]
    return []


class BestRatioPolicy(SelectionPolicy):
    """Prefer the applicable algorithm with the best proven ratio.

    Candidates are the registered, non-composite algorithms that carry an
    approximation guarantee and whose declared capabilities cover the
    component; ties on the ratio break by ``selection_priority`` (the
    specialised algorithms of Sections 3.1/3.2 and the Appendix come before
    the general-purpose FirstFit).  FirstFit always applies, so the ranking
    is never empty.
    """

    name = "best_ratio"

    def rank(
        self,
        instance: Instance,
        objective: str = "busy_time",
        model=None,
    ) -> List[str]:
        shortcut = _structural_shortcut(instance)
        if shortcut:
            return shortcut
        applicable = [
            s
            for s in all_schedulers()
            if not s.composite and s.deterministic and s.handles(instance, objective)
        ]
        candidates = [s for s in applicable if s.approximation_ratio is not None]
        candidates.sort(
            key=lambda s: (s.approximation_ratio, s.selection_priority, s.name)
        )
        ranked = [s.name for s in candidates]
        # Busy-time ratio certificates mean nothing under an
        # activation-priced cost model, but its *natural* ratio-less
        # declarers (machine_min for machines_plus_busy) do: append them so
        # the portfolio's model-priced comparison can let them win.  The
        # decision reads the request's *resolved* model when supplied — a
        # busy_time request priced with an activation override gets the
        # same candidates as the equivalent machines_plus_busy spelling —
        # and falls back to the objective's registered default otherwise.
        from ..core.objectives import get_cost_model

        if model is None:
            model = get_cost_model(objective)
        # Flex instances are only coverable by ratio-less window-aware
        # algorithms (fixed-interval certificates never transfer), so they
        # always get the extras appended too.
        if not model.preserves_busy_time_ratios or instance.is_flex:
            extras = sorted(
                (s for s in applicable if s.approximation_ratio is None),
                key=lambda s: (s.selection_priority, s.name),
            )
            ranked.extend(s.name for s in extras)
        return ranked


class FirstFitPolicy(SelectionPolicy):
    """Cheapest dispatch: FirstFit everywhere (after the structural shortcuts).

    Useful under tight latency budgets where classifying the component
    (properness, length ratios) costs more than it saves.  FirstFit is
    demand-aware and declares every built-in objective, so the ranking
    degrades to empty only for objectives registered at runtime that
    FirstFit never heard of.
    """

    name = "first_fit"

    def rank(
        self,
        instance: Instance,
        objective: str = "busy_time",
        model=None,
    ) -> List[str]:
        shortcut = _structural_shortcut(instance)
        if shortcut:
            return shortcut
        from ..algorithms.base import get_scheduler

        if get_scheduler("first_fit").handles(instance, objective):
            return ["first_fit"]
        # FirstFit never handles flex instances; its placement-aware
        # counterpart is the same greedy with candidate starts.
        if get_scheduler("placement_first_fit").handles(instance, objective):
            return ["placement_first_fit"]
        return []


_POLICIES: Dict[str, SelectionPolicy] = {}


def register_policy(policy: SelectionPolicy, overwrite: bool = False) -> SelectionPolicy:
    """Add a policy to the registry (keyed by its ``name``)."""
    if policy.name in _POLICIES and not overwrite:
        raise KeyError(f"policy {policy.name!r} already registered")
    _POLICIES[policy.name] = policy
    return policy


def get_policy(name: str) -> SelectionPolicy:
    """Look up a registered policy by name."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(_POLICIES)}"
        ) from None


def available_policies() -> List[str]:
    """Names of all registered policies, sorted."""
    return sorted(_POLICIES)


register_policy(BestRatioPolicy())
register_policy(FirstFitPolicy())
