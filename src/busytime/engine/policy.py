"""Algorithm selection policies.

A policy answers one question per connected component: *which registered
algorithms apply here, and in what order of preference?*  Policies rank by
querying the capability metadata every :class:`~busytime.algorithms.base.Scheduler`
declares (:meth:`handles`, ``approximation_ratio``, ``selection_priority``)
instead of hard-coding an if/elif chain, so registering a new algorithm with
the right capabilities makes it selectable with no engine change.

Two structural shortcuts live here rather than in the registry:

* an empty component is served by FirstFit (nothing to do);
* a component whose clique number is at most ``g`` fits on a single machine,
  which costs exactly ``span(J)`` and is therefore optimal — reported as the
  pseudo-algorithm ``"single_machine"`` that the engine materialises itself.
"""

from __future__ import annotations

import abc
from typing import Dict, List

from ..algorithms.base import Scheduler, all_schedulers
from ..core.instance import Instance

__all__ = [
    "SelectionPolicy",
    "BestRatioPolicy",
    "FirstFitPolicy",
    "register_policy",
    "get_policy",
    "available_policies",
    "DEFAULT_POLICY",
    "SINGLE_MACHINE",
]

#: Name of the structural single-machine shortcut (not a registry entry).
SINGLE_MACHINE = "single_machine"

#: Name of the default policy used when a request does not specify one.
DEFAULT_POLICY = "best_ratio"


class SelectionPolicy(abc.ABC):
    """Strategy ranking the applicable algorithms for one component."""

    #: registry key
    name: str = "abstract"

    @abc.abstractmethod
    def rank(self, instance: Instance) -> List[str]:
        """Applicable algorithm names, most preferred first (never empty)."""

    def choose(self, instance: Instance) -> str:
        """Name of the single preferred algorithm for ``instance``."""
        return self.rank(instance)[0]


def _structural_shortcut(instance: Instance) -> List[str]:
    """The rankings shared by every policy, or [] when none applies."""
    if instance.n == 0:
        return ["first_fit"]
    if instance.clique_number <= instance.g:
        return [SINGLE_MACHINE]
    return []


class BestRatioPolicy(SelectionPolicy):
    """Prefer the applicable algorithm with the best proven ratio.

    Candidates are the registered, non-composite algorithms that carry an
    approximation guarantee and whose declared capabilities cover the
    component; ties on the ratio break by ``selection_priority`` (the
    specialised algorithms of Sections 3.1/3.2 and the Appendix come before
    the general-purpose FirstFit).  FirstFit always applies, so the ranking
    is never empty.
    """

    name = "best_ratio"

    def rank(self, instance: Instance) -> List[str]:
        shortcut = _structural_shortcut(instance)
        if shortcut:
            return shortcut
        candidates = [
            s
            for s in all_schedulers()
            if s.approximation_ratio is not None
            and not s.composite
            and s.deterministic
            and s.handles(instance)
        ]
        candidates.sort(
            key=lambda s: (s.approximation_ratio, s.selection_priority, s.name)
        )
        return [s.name for s in candidates]


class FirstFitPolicy(SelectionPolicy):
    """Cheapest dispatch: FirstFit everywhere (after the structural shortcuts).

    Useful under tight latency budgets where classifying the component
    (properness, length ratios) costs more than it saves.
    """

    name = "first_fit"

    def rank(self, instance: Instance) -> List[str]:
        return _structural_shortcut(instance) or ["first_fit"]


_POLICIES: Dict[str, SelectionPolicy] = {}


def register_policy(policy: SelectionPolicy, overwrite: bool = False) -> SelectionPolicy:
    """Add a policy to the registry (keyed by its ``name``)."""
    if policy.name in _POLICIES and not overwrite:
        raise KeyError(f"policy {policy.name!r} already registered")
    _POLICIES[policy.name] = policy
    return policy


def get_policy(name: str) -> SelectionPolicy:
    """Look up a registered policy by name."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(_POLICIES)}"
        ) from None


def available_policies() -> List[str]:
    """Names of all registered policies, sorted."""
    return sorted(_POLICIES)


register_policy(BestRatioPolicy())
register_policy(FirstFitPolicy())
