"""Serialization of instances, schedules and optical traffic.

Plain-JSON (and CSV for job lists) round-trip support so instances and
results can be exchanged with other tools, checked into experiment
repositories, or fed to the command-line interface (:mod:`busytime.cli`).

The formats are deliberately boring:

``Instance`` JSON::

    {
      "format": "busytime-instance",
      "version": 2,
      "name": "...",
      "g": 3,
      "jobs": [{"id": 0, "start": 0.0, "end": 4.5, "weight": 1.0,
                "tag": "", "demand": 1}, ...]
    }

Version 2 added the per-job capacity ``demand`` (the [15] model; see
:mod:`busytime.core.objectives` for the matching cost-model axis).  Readers
accept version-1 documents — absent demands default to 1, which *is* the
version-1 semantics.

Version 3 added the flex extension: optional per-job ``release``/``deadline``
window fields, and optional instance-level ``site_capacity`` (int) and
``background`` (a :class:`~busytime.pricing.series.BackgroundLoad` document).
Writers stamp version 3 **only when a flex field is actually present** — a
window-free, uncapped instance serialises byte-identically to the version-2
writer, so archives, fingerprints and golden files of rigid instances are
unchanged.  Version-1/2 documents load with the defaults that *are* their
semantics (no windows, no cap, no background).

``Schedule`` version-3 documents additionally carry a ``placements`` table:
the placed ``[start, end]`` of every scheduled job whose interval differs
from its nominal one (window-aware algorithms slide jobs).  Loaders re-place
those jobs through :meth:`~busytime.core.intervals.Job.placed_at`, which
re-validates window containment and length preservation.

``Schedule`` JSON adds the machine partition (job ids per machine) and the
producing algorithm; ``Traffic`` JSON stores the path length, the grooming
factor and the lightpath endpoint pairs.  CSV files have a header row
``id,start,end[,weight][,tag]``.

``SolveReport`` JSON (the engine's response object, see
:mod:`busytime.engine`) wraps a schedule document with the solve metadata::

    {
      "format": "busytime-solve-report",
      "version": 2,
      "algorithm": "auto",            # overall producing algorithm
      "policy": "best_ratio",         # selection policy used
      "portfolio": true,
      "objective": "busy_time",       # cost-model axis (version 2)
      "objective_value": 14.0,        # cost under the request's model
      "lower_bound": 12.5,            # model-priced bound on OPT
      "optimum": null,                # exact optimum when computed
      "proven_ratio": 2.0,            # certificate: cost <= ratio * OPT
      "budget_exhausted": false,
      "components": [                 # per-component decisions
        {"component": "...", "n": 3, "algorithm": "clique",
         "cost": 4.0, "proven_ratio": 2.0}, ...
      ],
      "tags": {},                     # request labels, echoed back
      "timings": {"schedule": 0.01, "lower_bound": 0.0, "total": 0.01},
      "schedule": { ... }             # busytime-schedule document
    }

``timings`` is wall-clock telemetry and therefore not reproducible; pass
``include_timings=False`` to :func:`solve_report_to_dict` to obtain the
deterministic part only (two solves of the same request then serialise to
byte-identical JSON).
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from .core.events import ARRIVE, DEPART, DynamicTrace, TraceEvent
from .core.instance import Instance
from .core.intervals import Interval, Job
from .core.schedule import Machine, Schedule
from .engine.report import ComponentDecision, RaceCandidate, RaceOutcome, SolveReport
from .optical.lightpath import Lightpath, Traffic
from .pricing.series import BackgroundLoad
from .optical.network import PathNetwork

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "solve_report_to_dict",
    "solve_report_from_dict",
    "save_solve_report",
    "load_solve_report",
    "traffic_to_dict",
    "traffic_from_dict",
    "save_traffic",
    "load_traffic",
    "trace_event_to_dict",
    "trace_event_from_dict",
    "dynamic_trace_to_dict",
    "dynamic_trace_from_dict",
    "save_dynamic_trace",
    "load_dynamic_trace",
    "jobs_to_csv",
    "jobs_from_csv",
]

_PathLike = Union[str, Path]

#: Format name -> document versions this reader understands.  Writers stamp
#: the current (last) version; readers reject anything else up front, so an
#: on-disk archive written by a future format revision fails loudly instead
#: of being half-parsed (the service result store relies on this).  Version 2
#: added the problem-model axis (per-job demands; objective + objective
#: value on reports); version-1 documents load with the defaults that *are*
#: the version-1 semantics (demand 1, objective "busy_time").
#: Solve-report version 3 added the optional portfolio-race outcome table
#: (telemetry, carried only when timings are); versions 1/2 load with
#: ``race=None``, which *is* their semantics (racing did not exist).
_SUPPORTED_VERSIONS: Dict[str, tuple] = {
    "busytime-instance": (1, 2, 3),
    "busytime-schedule": (1, 2, 3),
    "busytime-solve-report": (1, 2, 3),
    "busytime-traffic": (1,),
    "busytime-trace": (1,),
}


def _check_header(data: Mapping[str, object], fmt: str) -> None:
    """Validate the ``format``/``version`` header of a busytime document."""
    if not isinstance(data, Mapping):
        # Valid JSON but not an object (a list, a number): still a format
        # error, not an AttributeError out of `.get` below.
        raise ValueError(
            f"not a {fmt} document: expected a JSON object, "
            f"got {type(data).__name__}"
        )
    if data.get("format") != fmt:
        raise ValueError(f"not a {fmt} document")
    supported = _SUPPORTED_VERSIONS[fmt]
    version = data.get("version", 1)
    if version not in supported:
        raise ValueError(
            f"unsupported {fmt} version {version!r}; this reader understands "
            f"version(s) {', '.join(str(v) for v in supported)}"
        )


# ---------------------------------------------------------------------------
# Instances
# ---------------------------------------------------------------------------


def _demand_from_field(value: object) -> int:
    """Parse a job's ``demand`` field, rejecting non-integral values.

    ``Job`` validates integrality; coercing ``2.5`` to ``2`` here would
    defeat that guard and silently alter the instance, so fractional —
    and non-finite (``json.loads`` accepts ``Infinity``/``NaN``) — demands
    fail loudly as ``ValueError`` like every other malformed document
    field (an ``OverflowError`` out of ``int(inf)`` would escape the
    frontend's 400 handler).
    """
    if isinstance(value, bool):
        # bool subclasses int; a client confusing a flag with a count must
        # fail loudly like Job's own validation does, not load as demand 1.
        raise ValueError(
            f"job demand must be an integral number of capacity units, "
            f"got {value!r}"
        )
    try:
        number = float(value)  # type: ignore[arg-type]
    except TypeError:
        # e.g. "demand": null — a malformed field, not an internal bug, so
        # it must surface as ValueError like the rest of the loader errors.
        raise ValueError(
            f"job demand must be an integral number of capacity units, "
            f"got {value!r}"
        ) from None
    if not math.isfinite(number) or number != int(number):
        raise ValueError(
            f"job demand must be an integral number of capacity units, "
            f"got {value!r}"
        )
    return int(number)


def instance_to_dict(instance: Instance) -> Dict[str, object]:
    """A JSON-serialisable dict describing the instance.

    Stamps version 3 only when a flex field (window, site cap, background)
    is present; rigid instances serialise byte-identically to version 2.
    """
    flex = instance.has_site_constraints
    jobs: List[Dict[str, object]] = []
    for j in instance.jobs:
        row: Dict[str, object] = {
            "id": j.id,
            "start": j.start,
            "end": j.end,
            "weight": j.weight,
            "tag": j.tag,
            "demand": j.demand,
        }
        if j.release is not None:
            row["release"] = j.release
            flex = True
        if j.deadline is not None:
            row["deadline"] = j.deadline
            flex = True
        jobs.append(row)
    doc: Dict[str, object] = {
        "format": "busytime-instance",
        "version": 3 if flex else 2,
        "name": instance.name,
        "g": instance.g,
        "jobs": jobs,
    }
    if instance.site_capacity is not None:
        doc["site_capacity"] = instance.site_capacity
    if instance.background is not None:
        doc["background"] = instance.background.to_dict()
    return doc


def _optional_time(row: Mapping[str, object], key: str) -> Optional[float]:
    value = row.get(key)
    return None if value is None else float(value)  # type: ignore[arg-type]


def instance_from_dict(data: Mapping[str, object]) -> Instance:
    """Rebuild an :class:`Instance` from :func:`instance_to_dict` output.

    Accepts version-1/2 documents: a job row without a ``demand`` field gets
    demand 1, one without window fields is a fixed job, and an instance
    without ``site_capacity``/``background`` is uncapped — the semantics
    every older document meant.
    """
    _check_header(data, "busytime-instance")
    jobs = tuple(
        Job(
            id=int(row["id"]),
            interval=Interval(float(row["start"]), float(row["end"])),
            weight=float(row.get("weight", 1.0)),
            tag=str(row.get("tag", "")),
            demand=_demand_from_field(row.get("demand", 1)),
            release=_optional_time(row, "release"),
            deadline=_optional_time(row, "deadline"),
        )
        for row in data["jobs"]  # type: ignore[index]
    )
    site_capacity = data.get("site_capacity")
    background = data.get("background")
    return Instance(
        jobs=jobs,
        g=int(data["g"]),
        name=str(data.get("name", "")),
        site_capacity=None if site_capacity is None else int(site_capacity),  # type: ignore[arg-type]
        background=(
            None
            if background is None
            else BackgroundLoad.from_dict(background)  # type: ignore[arg-type]
        ),
    )


def save_instance(instance: Instance, path: _PathLike) -> None:
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2))


def load_instance(path: _PathLike) -> Instance:
    return instance_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------


def schedule_to_dict(schedule: Schedule) -> Dict[str, object]:
    """A JSON-serialisable dict: the instance plus the machine partition.

    Version-3 documents (emitted only for flex instances) additionally
    carry the ``placements`` table: the placed interval of every scheduled
    job that was slid away from its nominal position.
    """
    nominal = {j.id: j.interval for j in schedule.instance.jobs}
    placements = [
        {"id": j.id, "start": j.start, "end": j.end}
        for m in schedule.machines
        for j in m.jobs
        if j.interval != nominal[j.id]
    ]
    instance_doc = instance_to_dict(schedule.instance)
    flex = placements or instance_doc["version"] == 3
    doc: Dict[str, object] = {
        "format": "busytime-schedule",
        "version": 3 if flex else 2,
        "algorithm": schedule.algorithm,
        "total_busy_time": schedule.total_busy_time,
        "instance": instance_doc,
        "machines": [
            {"index": m.index, "job_ids": [j.id for j in m.jobs]}
            for m in schedule.machines
        ],
    }
    if placements:
        doc["placements"] = placements
    return doc


def schedule_from_dict(data: Mapping[str, object]) -> Schedule:
    """Rebuild (and re-validate) a :class:`Schedule`.

    Placed jobs are rebuilt through
    :meth:`~busytime.core.intervals.Job.placed_at`, so a placement outside
    its job's window — or one that changed the length — fails loudly.
    """
    _check_header(data, "busytime-schedule")
    instance = instance_from_dict(data["instance"])  # type: ignore[arg-type]
    by_id = {j.id: j for j in instance.jobs}
    placed = dict(by_id)
    for row in data.get("placements", ()):  # type: ignore[union-attr]
        job = by_id[int(row["id"])]
        start, end = float(row["start"]), float(row["end"])
        if abs((end - start) - job.length) > 1e-9 * max(1.0, abs(job.length)):
            raise ValueError(
                f"placement of job {job.id} has length {end - start!r} but the "
                f"job runs for {job.length!r}"
            )
        placed[job.id] = job.placed_at(start)
    machines = []
    for row in data["machines"]:  # type: ignore[index]
        jobs = tuple(placed[int(job_id)] for job_id in row["job_ids"])
        machines.append(Machine(index=int(row["index"]), jobs=jobs))
    schedule = Schedule(
        instance=instance,
        machines=tuple(machines),
        algorithm=str(data.get("algorithm", "")),
    )
    schedule.validate()
    return schedule


def save_schedule(schedule: Schedule, path: _PathLike) -> None:
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: _PathLike) -> Schedule:
    return schedule_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Solve reports (busytime.engine)
# ---------------------------------------------------------------------------


def solve_report_to_dict(
    report: SolveReport, include_timings: bool = True
) -> Dict[str, object]:
    """A JSON-serialisable dict for a :class:`~busytime.engine.SolveReport`.

    ``include_timings=False`` drops the wall-clock telemetry — both the
    ``timings`` map and the race outcome table, whose per-candidate wall
    times and incumbent timestamps vary run to run — leaving only the
    deterministic fields (see the module docstring's schema notes).  The
    service result store serialises with ``include_timings=False``, so
    cached bytes for the same canonical request are identical across runs.
    """
    doc: Dict[str, object] = {
        "format": "busytime-solve-report",
        "version": 3,
        "algorithm": report.algorithm,
        "policy": report.policy,
        "portfolio": report.portfolio,
        "objective": report.objective,
        "objective_value": report.objective_value,
        "lower_bound": report.lower_bound,
        "optimum": report.optimum,
        "proven_ratio": report.proven_ratio,
        "budget_exhausted": report.budget_exhausted,
        "components": [d.as_dict() for d in report.components],
        "tags": dict(report.tags),
        "schedule": schedule_to_dict(report.schedule),
    }
    if include_timings:
        doc["timings"] = dict(report.timings)
        if report.race is not None:
            doc["race"] = report.race.as_dict()
    return doc


def _race_outcome_from_dict(data: Mapping[str, object]) -> RaceOutcome:
    deadline = data.get("deadline")
    return RaceOutcome(
        candidates=tuple(
            RaceCandidate(
                algorithm=str(row["algorithm"]),
                rank=int(row["rank"]),
                status=str(row["status"]),
                started=bool(row.get("started", False)),
                wall_time=(
                    None if row.get("wall_time") is None else float(row["wall_time"])
                ),
                cost=None if row.get("cost") is None else float(row["cost"]),
                winner=bool(row.get("winner", False)),
            )
            for row in data.get("candidates", ())  # type: ignore[union-attr]
        ),
        deadline=None if deadline is None else float(deadline),
        accept_factor=float(data.get("accept_factor", 1.0)),
        decisive=bool(data.get("decisive", True)),
        fallback=bool(data.get("fallback", False)),
        incumbent_timeline=tuple(
            (float(point[0]), float(point[1]))
            for point in data.get("incumbent_timeline", ())  # type: ignore[union-attr]
        ),
    )


def solve_report_from_dict(data: Mapping[str, object]) -> SolveReport:
    """Rebuild a :class:`~busytime.engine.SolveReport` (re-validating its schedule)."""
    _check_header(data, "busytime-solve-report")
    schedule = schedule_from_dict(data["schedule"])  # type: ignore[arg-type]
    components = tuple(
        ComponentDecision(
            component=str(row["component"]),
            n=int(row["n"]),
            algorithm=str(row["algorithm"]),
            cost=float(row["cost"]),
            proven_ratio=(
                None if row.get("proven_ratio") is None else float(row["proven_ratio"])
            ),
        )
        for row in data.get("components", ())  # type: ignore[union-attr]
    )
    optimum = data.get("optimum")
    proven = data.get("proven_ratio")
    objective_value = data.get("objective_value")
    return SolveReport(
        schedule=schedule,
        algorithm=str(data.get("algorithm", "")),
        policy=str(data.get("policy", "")),
        portfolio=bool(data.get("portfolio", False)),
        lower_bound=float(data.get("lower_bound", 0.0)),
        optimum=None if optimum is None else float(optimum),
        components=components,
        proven_ratio=None if proven is None else float(proven),
        budget_exhausted=bool(data.get("budget_exhausted", False)),
        race=(
            None
            if data.get("race") is None
            else _race_outcome_from_dict(data["race"])  # type: ignore[arg-type]
        ),
        # Version-1 documents predate the cost-model axis; their implied
        # model is the default.
        objective=str(data.get("objective", "busy_time")),
        objective_value=None if objective_value is None else float(objective_value),
        timings=dict(data.get("timings", {})),  # type: ignore[arg-type]
        tags=dict(data.get("tags", {})),  # type: ignore[arg-type]
    )


def save_solve_report(
    report: SolveReport, path: _PathLike, include_timings: bool = True
) -> None:
    Path(path).write_text(
        json.dumps(solve_report_to_dict(report, include_timings=include_timings), indent=2)
    )


def load_solve_report(path: _PathLike) -> SolveReport:
    return solve_report_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Optical traffic
# ---------------------------------------------------------------------------


def traffic_to_dict(traffic: Traffic) -> Dict[str, object]:
    return {
        "format": "busytime-traffic",
        "version": 1,
        "name": traffic.name,
        "num_nodes": traffic.network.num_nodes,
        "g": traffic.g,
        "lightpaths": [{"id": p.id, "a": p.a, "b": p.b} for p in traffic.lightpaths],
    }


def traffic_from_dict(data: Mapping[str, object]) -> Traffic:
    _check_header(data, "busytime-traffic")
    network = PathNetwork(int(data["num_nodes"]))
    lightpaths = tuple(
        Lightpath(id=int(row["id"]), a=int(row["a"]), b=int(row["b"]))
        for row in data["lightpaths"]  # type: ignore[index]
    )
    return Traffic(
        network=network,
        lightpaths=lightpaths,
        g=int(data["g"]),
        name=str(data.get("name", "")),
    )


def save_traffic(traffic: Traffic, path: _PathLike) -> None:
    Path(path).write_text(json.dumps(traffic_to_dict(traffic), indent=2))


def load_traffic(path: _PathLike) -> Traffic:
    return traffic_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Dynamic traces (arrive/depart event sequences)
# ---------------------------------------------------------------------------


def trace_event_to_dict(event: TraceEvent) -> Dict[str, object]:
    """One arrive/depart event as a JSON-serialisable row.

    This is also the wire shape the service's session endpoints accept —
    one row per streamed event, carrying the full job description on the
    arrival (departures only need the id, but echoing the job keeps rows
    self-contained and lets the server re-validate interval membership).
    """
    j = event.job
    return {
        "time": event.time,
        "kind": "arrive" if event.kind == ARRIVE else "depart",
        "job": {
            "id": j.id,
            "start": j.start,
            "end": j.end,
            "weight": j.weight,
            "tag": j.tag,
            "demand": j.demand,
        },
    }


def trace_event_from_dict(row: Mapping[str, object]) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from :func:`trace_event_to_dict` output."""
    kind_field = row.get("kind")
    if kind_field not in ("arrive", "depart"):
        raise ValueError(f"event kind must be 'arrive' or 'depart', got {kind_field!r}")
    job_row = row.get("job")
    if not isinstance(job_row, Mapping):
        raise ValueError("event row is missing its 'job' object")
    job = Job(
        id=int(job_row["id"]),
        interval=Interval(float(job_row["start"]), float(job_row["end"])),
        weight=float(job_row.get("weight", 1.0)),
        tag=str(job_row.get("tag", "")),
        demand=_demand_from_field(job_row.get("demand", 1)),
    )
    return TraceEvent(
        time=float(row["time"]),
        kind=ARRIVE if kind_field == "arrive" else DEPART,
        job=job,
    )


def dynamic_trace_to_dict(trace: DynamicTrace) -> Dict[str, object]:
    """A JSON-serialisable dict describing the full trace."""
    return {
        "format": "busytime-trace",
        "version": 1,
        "name": trace.name,
        "g": trace.g,
        "events": [trace_event_to_dict(e) for e in trace.events],
    }


def dynamic_trace_from_dict(data: Mapping[str, object]) -> DynamicTrace:
    """Rebuild a :class:`DynamicTrace` from :func:`dynamic_trace_to_dict` output."""
    _check_header(data, "busytime-trace")
    events = tuple(
        trace_event_from_dict(row)
        for row in data["events"]  # type: ignore[index]
    )
    return DynamicTrace(events=events, g=int(data["g"]), name=str(data.get("name", "")))


def save_dynamic_trace(trace: DynamicTrace, path: _PathLike) -> None:
    Path(path).write_text(json.dumps(dynamic_trace_to_dict(trace), indent=2))


def load_dynamic_trace(path: _PathLike) -> DynamicTrace:
    return dynamic_trace_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# CSV job lists
# ---------------------------------------------------------------------------


def jobs_to_csv(instance: Instance, path: _PathLike) -> None:
    """Write the job list as CSV (``id,start,end,weight,tag,demand``)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "start", "end", "weight", "tag", "demand"])
        for j in instance.jobs:
            writer.writerow([j.id, j.start, j.end, j.weight, j.tag, j.demand])


def jobs_from_csv(path: _PathLike, g: int, name: str = "") -> Instance:
    """Read a CSV job list (``id,start,end[,weight][,tag][,demand]``)."""
    jobs: List[Job] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not {"start", "end"} <= set(reader.fieldnames):
            raise ValueError("CSV must have at least 'start' and 'end' columns")
        for i, row in enumerate(reader):
            job_id = int(row["id"]) if row.get("id") not in (None, "") else i
            jobs.append(
                Job(
                    id=job_id,
                    interval=Interval(float(row["start"]), float(row["end"])),
                    weight=float(row.get("weight") or 1.0),
                    tag=row.get("tag") or "",
                    demand=_demand_from_field(row.get("demand") or 1),
                )
            )
    return Instance(jobs=tuple(jobs), g=g, name=name or str(path))
