"""Adversarial instance families from the paper's lower-bound proofs.

Theorem 2.4 (Fig. 4) exhibits instances on which FirstFit pays more than
``(3 - eps) * OPT``.  The construction has three "columns" of unit-length
jobs:

* ``g`` *left* jobs on ``[0, 1]``,
* ``g * (g - 1)`` *middle* jobs on ``[1 - eps', 2 - eps']``,
* ``g`` *right* jobs on ``[2 - 2eps', 3 - 2eps']``.

OPT serves the left column on one machine (busy 1), the right column on one
machine (busy 1) and the middle column on ``g - 1`` machines of ``g`` jobs
each (busy 1 each): ``OPT = g + 1``.  FirstFit, because all lengths are
equal, *may* process the jobs in an adversarial tie-breaking order that
interleaves one left job, ``g - 1`` middle jobs and one right job per
machine, producing ``g`` machines of span ``3 - 2eps'`` and total cost
``(3 - 2eps') * g``.  Choosing ``eps' = eps/4`` and ``g >= 6/eps - 1`` makes
the ratio exceed ``3 - eps``.

Our FirstFit implementation breaks length ties deterministically (by start
time), which happens to be *favourable* on the un-perturbed construction; the
generator therefore offers ``perturb=True`` (default), which stretches the
job lengths by strictly decreasing, negligibly small amounts along the
adversarial order so that the deterministic longest-first order *is* the
adversarial order.  The total perturbation is bounded by the ``perturbation``
argument, so OPT changes by at most ``(g + 1) * perturbation``.

The module also provides the *ranked-shift proper* variant mentioned at the
end of Section 3.1: shifting the jobs by distinct tiny offsets (and shrinking
them by even tinier amounts to force the adversarial FirstFit order) yields a
**proper** instance on which FirstFit is still ≈3-bad while the Section 3.1
greedy stays within its factor-2 guarantee — the separation experiment E4.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.instance import Instance
from ..core.intervals import Interval, Job

__all__ = [
    "firstfit_lower_bound_instance",
    "firstfit_lower_bound_opt_cost",
    "ranked_shift_proper_instance",
    "theorem24_parameters",
    "fig4_reference_schedule",
]


def theorem24_parameters(eps: float) -> Tuple[float, int]:
    """The ``(eps', g)`` choice used in the proof of Theorem 2.4.

    Returns ``eps' = eps / 4`` and the smallest integer
    ``g >= 6 / eps - 1`` so that ``(3 - 2eps') * g / (g + 1) > 3 - eps``.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must lie in (0, 1)")
    eps_prime = eps / 4.0
    g = int(-(-(6.0 / eps - 1.0) // 1))  # ceil
    return eps_prime, max(g, 2)


def _adversarial_columns(g: int, eps_prime: float) -> List[Tuple[str, Interval]]:
    """The Fig. 4 jobs listed in the adversarial FirstFit processing order."""
    left_iv = Interval(0.0, 1.0)
    mid_iv = Interval(1.0 - eps_prime, 2.0 - eps_prime)
    right_iv = Interval(2.0 - 2.0 * eps_prime, 3.0 - 2.0 * eps_prime)
    ordered: List[Tuple[str, Interval]] = []
    for _ in range(g):
        ordered.append(("left", left_iv))
        for _ in range(g - 1):
            ordered.append(("middle", mid_iv))
        ordered.append(("right", right_iv))
    return ordered


def firstfit_lower_bound_instance(
    g: int,
    eps_prime: float = 0.05,
    perturb: bool = True,
    perturbation: float = 1e-6,
) -> Instance:
    """The Fig. 4 instance for parallelism ``g`` and column offset ``eps_prime``.

    Parameters
    ----------
    g:
        Parallelism parameter; must be at least 2 (the construction has no
        middle jobs for ``g = 1`` and the problem is trivial there).
    eps_prime:
        The ``eps'`` of the construction, in ``(0, 1/2)``.
    perturb:
        Stretch job ends by strictly decreasing fractions of ``perturbation``
        along the adversarial order so a deterministic longest-first FirstFit
        reproduces the worst case.  Disable to obtain the exact unperturbed
        instance of the paper (on which tie-breaking decides the outcome).
    perturbation:
        Upper bound on any single job's stretch (kept tiny so OPT changes by
        at most ``(g + 1) * perturbation``).
    """
    if g < 2:
        raise ValueError("the Theorem 2.4 construction requires g >= 2")
    if not 0 < eps_prime < 0.5:
        raise ValueError("eps_prime must lie in (0, 0.5)")
    if perturbation <= 0:
        raise ValueError("perturbation must be positive")

    ordered = _adversarial_columns(g, eps_prime)
    total = len(ordered)
    jobs: List[Job] = []
    for slot, (tag, iv) in enumerate(ordered):
        stretch = ((total - slot) / total) * perturbation if perturb else 0.0
        jobs.append(Job(id=slot, interval=Interval(iv.start, iv.end + stretch), tag=tag))
    return Instance(
        jobs=tuple(jobs),
        g=g,
        name=f"fig4(g={g},eps'={eps_prime:g},perturb={perturb})",
    )


def firstfit_lower_bound_opt_cost(
    g: int, eps_prime: float = 0.05, perturb: bool = True, perturbation: float = 1e-6
) -> float:
    """An upper bound on OPT for the Fig. 4 instance (the paper's ``g + 1``).

    The grouping used in the proof (left column on one machine, right column
    on one machine, middle column on ``g - 1`` machines) is feasible for the
    generated instance and costs at most ``g + 1`` plus one perturbation per
    machine, so the returned value upper-bounds the optimum.  The benchmark
    divides FirstFit's cost by it, which *under*-estimates the true ratio and
    therefore keeps the reproduced lower bound honest.
    """
    slack = (g + 1) * perturbation if perturb else 0.0
    return (g + 1) + slack


def ranked_shift_proper_instance(
    g: int,
    eps_prime: float = 0.05,
    shift: Optional[float] = None,
    perturb: bool = True,
) -> Instance:
    """The proper-interval variant of Fig. 4 (remark at the end of Section 3.1).

    Every job is translated by a distinct tiny offset (its "rank") so that no
    two intervals share an endpoint, and — when ``perturb`` is set — lengths
    shrink by an even tinier amount along the adversarial order so that the
    deterministic longest-first FirstFit processes the jobs adversarially.
    Offsets grow and lengths shrink slowly enough that within each column both
    start *and* completion times are strictly increasing, hence no interval is
    properly contained in another: the instance is proper, and the Fig. 4
    overlap structure (left–middle and middle–right overlaps, left–right
    disjointness) is preserved.

    FirstFit is still ≈3-bad on this instance while the Section 3.1 greedy
    retains its factor-2 guarantee.
    """
    if g < 2:
        raise ValueError("the construction requires g >= 2")
    if not 0 < eps_prime < 0.5:
        raise ValueError("eps_prime must lie in (0, 0.5)")

    ordered = _adversarial_columns(g, eps_prime)
    total = len(ordered)
    # Column-rank translation keeps starts strictly increasing inside a
    # column; the per-slot shrink keeps lengths strictly decreasing along the
    # adversarial order.  sigma must dominate the largest possible shrink gap
    # between two members of one column, which is at most (g + 1) * delta.
    if shift is None:
        shift = eps_prime / (10.0 * total)
    sigma = shift
    if sigma <= 0:
        raise ValueError("shift must be positive")
    if sigma * total >= eps_prime:
        raise ValueError(
            "shift too large: the ranked shifts must stay well inside eps_prime "
            "so the Fig. 4 overlap structure is preserved"
        )
    delta = sigma / (4.0 * (g + 1)) if perturb else 0.0

    column_rank = {"left": 0, "middle": 0, "right": 0}
    jobs: List[Job] = []
    for slot, (tag, iv) in enumerate(ordered):
        rank = column_rank[tag]
        column_rank[tag] += 1
        start = iv.start + rank * sigma
        length = iv.length + (total - slot) * delta
        jobs.append(Job(id=slot, interval=Interval(start, start + length), tag=tag))
    instance = Instance(
        jobs=tuple(jobs),
        g=g,
        name=f"fig4-proper(g={g},eps'={eps_prime:g},shift={sigma:g})",
    )
    return instance


def fig4_reference_schedule(instance: Instance):
    """The proof's reference solution for a Fig. 4 (or ranked-shift) instance.

    Groups the jobs by column tag exactly as in the proof of Theorem 2.4: the
    whole left column on one machine, the whole right column on one machine,
    and the middle column in chunks of ``g`` per machine.  The returned
    schedule is feasible, costs ``≈ g + 1`` and therefore upper-bounds OPT;
    benchmarks use its cost as the denominator when measuring FirstFit's
    ratio, which can only *understate* the true ratio.
    """
    from ..core.schedule import Machine, Schedule  # deferred to avoid cycles

    lefts = [j for j in instance.jobs if j.tag == "left"]
    middles = [j for j in instance.jobs if j.tag == "middle"]
    rights = [j for j in instance.jobs if j.tag == "right"]
    if not lefts or not rights:
        raise ValueError("instance does not look like a Fig. 4 construction")
    machines = []
    machines.append(Machine(index=0, jobs=tuple(lefts)))
    machines.append(Machine(index=1, jobs=tuple(rights)))
    g = instance.g
    for i in range(0, len(middles), g):
        machines.append(
            Machine(index=len(machines), jobs=tuple(middles[i : i + g]))
        )
    schedule = Schedule(
        instance=instance,
        machines=tuple(machines),
        algorithm="fig4_reference",
        meta={"upper_bound_on_opt": True},
    )
    schedule.validate()
    return schedule
