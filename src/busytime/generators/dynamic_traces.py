"""Dynamic-workload traces: arrive/depart event sequences over instances.

The paper's motivating systems (lightpath provisioning, cloud hosts) have
churn: jobs depart as well as arrive.  This module turns the package's
static instance families — random (:mod:`.random_instances`), structured
(:mod:`.structured`), adversarial (:mod:`.adversarial`) and optical
(:mod:`.optical_traffic` via the Section 4.2 reduction) — into
:class:`~busytime.core.events.DynamicTrace` objects for the simulator in
:mod:`busytime.extensions.dynamic`.

Every job arrives at its start time revealing its full interval; a seeded
fraction of jobs *cancels early*, departing at a uniform point inside the
tail of their interval, the rest depart at their natural completion.  All
generators are deterministic given their ``seed``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.events import ARRIVE, DEPART, DynamicTrace, TraceEvent
from ..core.instance import Instance
from .adversarial import firstfit_lower_bound_instance
from .optical_traffic import hotspot_traffic, local_traffic, uniform_traffic
from .random_instances import (
    bursty_instance,
    poisson_arrivals_instance,
    uniform_random_instance,
)
from .structured import proper_instance

__all__ = [
    "trace_from_instance",
    "uniform_dynamic_trace",
    "poisson_dynamic_trace",
    "bursty_dynamic_trace",
    "proper_dynamic_trace",
    "adversarial_dynamic_trace",
    "optical_dynamic_trace",
    "DYNAMIC_TRACE_FAMILIES",
]


def trace_from_instance(
    instance: Instance,
    early_departure_fraction: float = 0.25,
    min_hold_fraction: float = 0.25,
    seed: Optional[int] = None,
    name: str = "",
) -> DynamicTrace:
    """The lifecycle trace of a static instance, with seeded early cancellations.

    Each job arrives at its start time.  With probability
    ``early_departure_fraction`` a job cancels early: its departure time is
    drawn uniformly from the last ``1 - min_hold_fraction`` of its interval
    (so a cancelled job still holds its machine for at least
    ``min_hold_fraction`` of its length).  All other jobs depart at their
    natural completion.  The result is sorted in ``(time, kind, job id)``
    order with arrivals before departures at equal times (closed-interval
    semantics) and passes :meth:`DynamicTrace.validate`.
    """
    if not 0.0 <= early_departure_fraction <= 1.0:
        raise ValueError("early_departure_fraction must lie in [0, 1]")
    if not 0.0 <= min_hold_fraction <= 1.0:
        raise ValueError("min_hold_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    events: List[TraceEvent] = []
    for job in instance.jobs:
        events.append(TraceEvent(time=job.start, kind=ARRIVE, job=job))
        depart = job.end
        if job.length > 0 and rng.random() < early_departure_fraction:
            hold = rng.uniform(min_hold_fraction, 1.0)
            depart = job.start + hold * job.length
        events.append(TraceEvent(time=float(depart), kind=DEPART, job=job))
    events.sort()  # TraceEvent orders by (time, kind, job id)
    trace = DynamicTrace(
        events=tuple(events),
        g=instance.g,
        name=name or f"trace({instance.name or 'instance'},churn={early_departure_fraction:g},seed={seed})",
    )
    trace.validate()
    return trace


def uniform_dynamic_trace(
    n: int,
    g: int,
    horizon: float = 100.0,
    early_departure_fraction: float = 0.25,
    seed: Optional[int] = None,
) -> DynamicTrace:
    """Trace over :func:`uniform_random_instance` (2n events)."""
    inst = uniform_random_instance(n, g, horizon=horizon, seed=seed)
    return trace_from_instance(
        inst, early_departure_fraction=early_departure_fraction, seed=seed
    )


def poisson_dynamic_trace(
    n: int,
    g: int,
    arrival_rate: float = 1.0,
    mean_duration: float = 5.0,
    early_departure_fraction: float = 0.25,
    seed: Optional[int] = None,
) -> DynamicTrace:
    """Trace over :func:`poisson_arrivals_instance` — the queueing-style churn
    workload closest to lightpath/VM request streams."""
    inst = poisson_arrivals_instance(
        n, g, arrival_rate=arrival_rate, mean_duration=mean_duration, seed=seed
    )
    return trace_from_instance(
        inst, early_departure_fraction=early_departure_fraction, seed=seed
    )


def bursty_dynamic_trace(
    n: int,
    g: int,
    early_departure_fraction: float = 0.25,
    seed: Optional[int] = None,
) -> DynamicTrace:
    """Trace over :func:`bursty_instance`; stresses replanning under load spikes."""
    inst = bursty_instance(n, g, seed=seed)
    return trace_from_instance(
        inst, early_departure_fraction=early_departure_fraction, seed=seed
    )


def proper_dynamic_trace(
    n: int,
    g: int,
    early_departure_fraction: float = 0.25,
    seed: Optional[int] = None,
) -> DynamicTrace:
    """Trace over :func:`~busytime.generators.structured.proper_instance`."""
    inst = proper_instance(n, g, seed=seed)
    return trace_from_instance(
        inst, early_departure_fraction=early_departure_fraction, seed=seed
    )


def adversarial_dynamic_trace(
    g: int,
    early_departure_fraction: float = 0.25,
    seed: Optional[int] = None,
) -> DynamicTrace:
    """Trace over the Fig. 4 FirstFit lower-bound family (``g*(g+1)`` jobs).

    The static construction punishes greedy arrival-order placement, so it is
    the natural adversary for the never-migrate policy; replanning gets to
    undo the trap.
    """
    inst = firstfit_lower_bound_instance(max(g, 2))
    return trace_from_instance(
        inst, early_departure_fraction=early_departure_fraction, seed=seed
    )


def optical_dynamic_trace(
    nodes: int,
    lightpaths: int,
    g: int,
    family: str = "uniform",
    early_departure_fraction: float = 0.25,
    seed: Optional[int] = None,
) -> DynamicTrace:
    """Trace over a path-network traffic family via the Section 4.2 reduction.

    Lightpath requests become busy-time jobs (:func:`busytime.optical.
    traffic_to_instance`); early departures model torn-down connections.
    """
    makers = {
        "uniform": uniform_traffic,
        "hotspot": hotspot_traffic,
        "local": local_traffic,
    }
    from ..optical import traffic_to_instance

    traffic = makers[family](nodes, lightpaths, g, seed=seed)
    inst = traffic_to_instance(traffic)
    return trace_from_instance(
        inst,
        early_departure_fraction=early_departure_fraction,
        seed=seed,
        name=f"trace(optical-{family}(nodes={nodes},paths={lightpaths},g={g}),seed={seed})",
    )


#: CLI-facing registry: family name -> ``maker(n, g, seed, churn)`` closure.
#: ``n`` is the number of *jobs* (the trace has 2n events); the adversarial
#: family sizes itself from ``g`` and the optical family derives a path
#: network from ``n``.
DYNAMIC_TRACE_FAMILIES: Dict[str, object] = {
    "uniform": lambda n, g, seed, churn: uniform_dynamic_trace(
        n, g, early_departure_fraction=churn, seed=seed
    ),
    "poisson": lambda n, g, seed, churn: poisson_dynamic_trace(
        n, g, early_departure_fraction=churn, seed=seed
    ),
    "bursty": lambda n, g, seed, churn: bursty_dynamic_trace(
        n, g, early_departure_fraction=churn, seed=seed
    ),
    "proper": lambda n, g, seed, churn: proper_dynamic_trace(
        n, g, early_departure_fraction=churn, seed=seed
    ),
    "adversarial": lambda n, g, seed, churn: adversarial_dynamic_trace(
        g, early_departure_fraction=churn, seed=seed
    ),
    "optical": lambda n, g, seed, churn: optical_dynamic_trace(
        max(8, n // 5), n, g, early_departure_fraction=churn, seed=seed
    ),
}
