"""Instance and traffic generators for experiments, examples and tests."""

from .dynamic_traces import (
    DYNAMIC_TRACE_FAMILIES,
    adversarial_dynamic_trace,
    bursty_dynamic_trace,
    optical_dynamic_trace,
    poisson_dynamic_trace,
    proper_dynamic_trace,
    trace_from_instance,
    uniform_dynamic_trace,
)
from .adversarial import (
    fig4_reference_schedule,
    firstfit_lower_bound_instance,
    firstfit_lower_bound_opt_cost,
    ranked_shift_proper_instance,
    theorem24_parameters,
)
from .optical_traffic import hotspot_traffic, local_traffic, uniform_traffic
from .random_instances import (
    bursty_instance,
    demand_loaded_instance,
    poisson_arrivals_instance,
    uniform_random_instance,
)
from .tariffs import (
    co2_intensity_tariff,
    flex_window_instance,
    office_background,
    tariff_corpus,
    tou_tariff,
)
from .structured import (
    bounded_length_instance,
    clique_instance,
    laminar_instance,
    proper_instance,
    stairs_instance,
    unit_interval_instance,
)

__all__ = [
    "uniform_random_instance",
    "poisson_arrivals_instance",
    "bursty_instance",
    "demand_loaded_instance",
    "proper_instance",
    "clique_instance",
    "bounded_length_instance",
    "laminar_instance",
    "unit_interval_instance",
    "stairs_instance",
    "firstfit_lower_bound_instance",
    "firstfit_lower_bound_opt_cost",
    "ranked_shift_proper_instance",
    "theorem24_parameters",
    "fig4_reference_schedule",
    "tou_tariff",
    "co2_intensity_tariff",
    "office_background",
    "flex_window_instance",
    "tariff_corpus",
    "uniform_traffic",
    "hotspot_traffic",
    "local_traffic",
    "trace_from_instance",
    "uniform_dynamic_trace",
    "poisson_dynamic_trace",
    "bursty_dynamic_trace",
    "proper_dynamic_trace",
    "adversarial_dynamic_trace",
    "optical_dynamic_trace",
    "DYNAMIC_TRACE_FAMILIES",
]
