"""Random instance generators.

All generators are deterministic given their ``seed`` (they draw from a
dedicated :class:`numpy.random.Generator`), return ready-to-use
:class:`~busytime.core.instance.Instance` objects and name them after their
parameters so experiment reports are self-describing.

Three families are provided:

* :func:`uniform_random_instance` — starts uniform over a horizon, lengths
  uniform in ``[min_length, max_length]``; the generic "general instance"
  workload of experiments E1/E2/E11/E12.
* :func:`poisson_arrivals_instance` — exponential inter-arrival times and
  exponential durations, the classic queueing-style trace (lightpath request
  arrivals in the optical application, VM arrivals in the consolidation
  example).
* :func:`bursty_instance` — arrivals clustered into bursts, producing high
  peak parallelism; stresses the parallelism bound rather than the span
  bound.
* :func:`demand_loaded_instance` — the [15]-style workload: uniform
  intervals whose jobs carry integral capacity demands in ``[1,
  max_demand]``, skewed towards small demands (most traffic is thin, a few
  requests are fat — the optical-grooming shape); exercises the
  demand-aware feasibility axis end to end.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.instance import Instance
from ..core.intervals import Interval, Job

__all__ = [
    "uniform_random_instance",
    "poisson_arrivals_instance",
    "bursty_instance",
    "demand_loaded_instance",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_random_instance(
    n: int,
    g: int,
    horizon: float = 100.0,
    min_length: float = 1.0,
    max_length: float = 20.0,
    seed: Optional[int] = None,
) -> Instance:
    """Jobs with uniform starts over ``[0, horizon)`` and uniform lengths.

    Parameters
    ----------
    n, g:
        Number of jobs and parallelism parameter.
    horizon:
        Start times are drawn uniformly from ``[0, horizon)``.
    min_length, max_length:
        Job lengths are uniform in ``[min_length, max_length]``.
    seed:
        Seed for reproducibility.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if min_length < 0 or max_length < min_length:
        raise ValueError("need 0 <= min_length <= max_length")
    rng = _rng(seed)
    starts = rng.uniform(0.0, horizon, size=n)
    lengths = rng.uniform(min_length, max_length, size=n)
    # The end coordinates are computed array-side and both columns converted
    # with one .tolist() each: python-float construction beats n per-element
    # numpy-scalar casts by ~3x at large n, with bit-identical values.
    s_list = starts.tolist()
    e_list = (starts + lengths).tolist()
    jobs = tuple(
        Job(id=i, interval=Interval(s, e))
        for i, (s, e) in enumerate(zip(s_list, e_list))
    )
    return Instance(
        jobs=jobs,
        g=g,
        name=f"uniform(n={n},g={g},h={horizon:g},len=[{min_length:g},{max_length:g}],seed={seed})",
    )


def demand_loaded_instance(
    n: int,
    g: int,
    horizon: float = 100.0,
    min_length: float = 1.0,
    max_length: float = 20.0,
    max_demand: Optional[int] = None,
    seed: Optional[int] = None,
) -> Instance:
    """Uniform intervals with integral capacity demands ([15]-style corpus).

    Demands are drawn from a geometric-flavoured distribution over
    ``[1, max_demand]`` (each extra unit halves the probability), clipped to
    ``g``: most jobs are thin, a few are fat, matching the optical-grooming
    motivation where a few connections consume several grooming slots.
    ``max_demand`` defaults to ``g`` (and is capped by it — a job demanding
    more than ``g`` could never be scheduled).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if min_length < 0 or max_length < min_length:
        raise ValueError("need 0 <= min_length <= max_length")
    cap = g if max_demand is None else min(max_demand, g)
    if cap < 1:
        raise ValueError("max_demand must be >= 1")
    rng = _rng(seed)
    starts = rng.uniform(0.0, horizon, size=n)
    lengths = rng.uniform(min_length, max_length, size=n)
    # Geometric(0.5) truncated to [1, cap]: P(d) halves per extra unit.
    demands = np.minimum(rng.geometric(0.5, size=n), cap)
    s_list = starts.tolist()
    e_list = (starts + lengths).tolist()
    d_list = demands.tolist()
    jobs = tuple(
        Job(id=i, interval=Interval(s, e), demand=d)
        for i, (s, e, d) in enumerate(zip(s_list, e_list, d_list))
    )
    return Instance(
        jobs=jobs,
        g=g,
        name=(
            f"demand(n={n},g={g},h={horizon:g},"
            f"len=[{min_length:g},{max_length:g}],dmax={cap},seed={seed})"
        ),
    )


def poisson_arrivals_instance(
    n: int,
    g: int,
    arrival_rate: float = 1.0,
    mean_duration: float = 5.0,
    seed: Optional[int] = None,
) -> Instance:
    """Poisson arrival process with exponential job durations.

    Inter-arrival times are ``Exp(arrival_rate)`` and durations
    ``Exp(1/mean_duration)``; the offered load (mean number of concurrently
    active jobs) is ``arrival_rate * mean_duration``.
    """
    if arrival_rate <= 0 or mean_duration <= 0:
        raise ValueError("arrival_rate and mean_duration must be positive")
    rng = _rng(seed)
    inter_arrivals = rng.exponential(1.0 / arrival_rate, size=n)
    starts = np.cumsum(inter_arrivals)
    durations = rng.exponential(mean_duration, size=n)
    s_list = starts.tolist()
    e_list = (starts + durations).tolist()
    jobs = tuple(
        Job(id=i, interval=Interval(s, e))
        for i, (s, e) in enumerate(zip(s_list, e_list))
    )
    return Instance(
        jobs=jobs,
        g=g,
        name=f"poisson(n={n},g={g},rate={arrival_rate:g},dur={mean_duration:g},seed={seed})",
    )


def bursty_instance(
    n: int,
    g: int,
    num_bursts: int = 5,
    burst_spread: float = 2.0,
    gap: float = 30.0,
    min_length: float = 1.0,
    max_length: float = 15.0,
    seed: Optional[int] = None,
) -> Instance:
    """Jobs arriving in tight bursts separated by long gaps.

    Each burst centre is ``gap`` apart; job starts are normally distributed
    around their burst centre with standard deviation ``burst_spread``.  The
    resulting instances have clique number close to ``n / num_bursts`` and
    exercise the parallelism bound.
    """
    if num_bursts < 1:
        raise ValueError("num_bursts must be at least 1")
    rng = _rng(seed)
    centres = np.arange(num_bursts) * gap
    assignment = rng.integers(0, num_bursts, size=n)
    starts = centres[assignment] + rng.normal(0.0, burst_spread, size=n)
    starts = np.maximum(starts, 0.0)
    lengths = rng.uniform(min_length, max_length, size=n)
    s_list = starts.tolist()
    e_list = (starts + lengths).tolist()
    jobs = tuple(
        Job(id=i, interval=Interval(s, e))
        for i, (s, e) in enumerate(zip(s_list, e_list))
    )
    return Instance(
        jobs=jobs,
        g=g,
        name=f"bursty(n={n},g={g},bursts={num_bursts},seed={seed})",
    )
