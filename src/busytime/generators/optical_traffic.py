"""Lightpath-traffic generators for the optical experiments (E8).

Traffic matrices on a path network are generated in three flavours:

* :func:`uniform_traffic` — endpoints drawn uniformly at random among all
  node pairs;
* :func:`hotspot_traffic` — a fraction of requests terminates at a small set
  of hub nodes (a metro-aggregation pattern), which concentrates link load
  around the hubs;
* :func:`local_traffic` — request lengths (hop counts) follow a truncated
  geometric distribution, modelling predominantly short-reach demands with a
  heavy-ish tail; the induced scheduling instances are bounded-length, so the
  Section 3.2 algorithm applies.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..optical.lightpath import Lightpath, Traffic
from ..optical.network import PathNetwork

__all__ = ["uniform_traffic", "hotspot_traffic", "local_traffic"]


def _make_traffic(
    network: PathNetwork, pairs, g: int, name: str
) -> Traffic:
    lightpaths = tuple(
        Lightpath(id=i, a=int(a), b=int(b)) for i, (a, b) in enumerate(pairs)
    )
    return Traffic(network=network, lightpaths=lightpaths, g=g, name=name)


def uniform_traffic(
    num_nodes: int,
    num_lightpaths: int,
    g: int,
    seed: Optional[int] = None,
) -> Traffic:
    """Uniformly random endpoint pairs on a path of ``num_nodes`` nodes."""
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = np.random.default_rng(seed)
    network = PathNetwork(num_nodes)
    pairs = []
    for _ in range(num_lightpaths):
        a, b = sorted(rng.choice(num_nodes, size=2, replace=False))
        pairs.append((a, b))
    return _make_traffic(
        network, pairs, g, f"uniform-traffic(N={num_nodes},n={num_lightpaths},g={g},seed={seed})"
    )


def hotspot_traffic(
    num_nodes: int,
    num_lightpaths: int,
    g: int,
    num_hubs: int = 2,
    hub_fraction: float = 0.7,
    seed: Optional[int] = None,
) -> Traffic:
    """Traffic where ``hub_fraction`` of requests touch one of ``num_hubs`` hubs."""
    if not 0.0 <= hub_fraction <= 1.0:
        raise ValueError("hub_fraction must lie in [0, 1]")
    if num_hubs < 1 or num_hubs >= num_nodes:
        raise ValueError("need 1 <= num_hubs < num_nodes")
    rng = np.random.default_rng(seed)
    network = PathNetwork(num_nodes)
    hubs = rng.choice(num_nodes, size=num_hubs, replace=False)
    pairs = []
    for _ in range(num_lightpaths):
        if rng.random() < hub_fraction:
            hub = int(rng.choice(hubs))
            other = int(rng.integers(0, num_nodes - 1))
            if other >= hub:
                other += 1
            a, b = min(hub, other), max(hub, other)
        else:
            a, b = sorted(rng.choice(num_nodes, size=2, replace=False))
        pairs.append((a, b))
    return _make_traffic(
        network,
        pairs,
        g,
        f"hotspot-traffic(N={num_nodes},n={num_lightpaths},g={g},hubs={num_hubs},seed={seed})",
    )


def local_traffic(
    num_nodes: int,
    num_lightpaths: int,
    g: int,
    mean_hops: float = 4.0,
    max_hops: Optional[int] = None,
    seed: Optional[int] = None,
) -> Traffic:
    """Short-reach traffic: hop counts ~ geometric(1/mean_hops), truncated.

    The resulting reduced scheduling instance has job lengths bounded by
    ``max_hops - 1``, i.e. it falls into the Section 3.2 bounded-length class.
    """
    if mean_hops < 1:
        raise ValueError("mean_hops must be at least 1")
    rng = np.random.default_rng(seed)
    network = PathNetwork(num_nodes)
    if max_hops is None:
        max_hops = min(num_nodes - 1, int(4 * mean_hops))
    max_hops = max(1, min(max_hops, num_nodes - 1))
    pairs = []
    for _ in range(num_lightpaths):
        hops = int(rng.geometric(1.0 / mean_hops))
        hops = max(1, min(hops, max_hops))
        a = int(rng.integers(0, num_nodes - hops))
        pairs.append((a, a + hops))
    return _make_traffic(
        network,
        pairs,
        g,
        f"local-traffic(N={num_nodes},n={num_lightpaths},g={g},mean_hops={mean_hops:g},seed={seed})",
    )
