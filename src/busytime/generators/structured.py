"""Generators for the structured instance classes studied in Section 3 and the Appendix.

Every special-case algorithm of the paper targets a structural class; these
generators produce random members of each class so the corresponding
experiments (E5 proper, E6 bounded length, E7 clique) have workloads whose
membership is guaranteed by construction:

* :func:`proper_instance` — no interval properly contains another
  (Section 3.1 regime): starts are sorted and lengths vary slowly enough that
  completion times remain increasing.
* :func:`clique_instance` — all intervals share a common point (Appendix
  regime, Fig. 5).
* :func:`bounded_length_instance` — integral start times and lengths in
  ``[1, d]`` (Section 3.2 regime).
* :func:`laminar_instance` — nested/disjoint families (related-work class).
* :func:`unit_interval_instance` — all lengths equal (the intersection of
  the proper and bounded-length classes).
* :func:`stairs_instance` — a deterministic "staircase" of shifted intervals,
  the textbook proper instance with tunable overlap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.instance import Instance
from ..core.intervals import Interval, Job

__all__ = [
    "proper_instance",
    "clique_instance",
    "bounded_length_instance",
    "laminar_instance",
    "unit_interval_instance",
    "stairs_instance",
]


def proper_instance(
    n: int,
    g: int,
    horizon: float = 100.0,
    base_length: float = 10.0,
    length_jitter: float = 0.5,
    seed: Optional[int] = None,
) -> Instance:
    """A random proper instance (no proper containments).

    Starts are sorted uniform draws; the length of the ``i``-th job (in start
    order) is ``base_length`` plus a bounded random walk step, clamped so
    that completion times stay strictly increasing — which is exactly the
    characterisation of properness used in Section 3.1.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    starts = np.sort(rng.uniform(0.0, horizon, size=n))
    # enforce strictly increasing starts to make the properness argument clean
    starts = starts + np.arange(n) * 1e-9
    jobs = []
    prev_end = -np.inf
    for i, s in enumerate(starts):
        length = base_length + rng.uniform(-length_jitter, length_jitter)
        length = max(length, 1e-6)
        end = s + length
        # properness: completion times must be strictly increasing
        if end <= prev_end:
            end = prev_end + 1e-6
        prev_end = end
        jobs.append(Job(id=i, interval=Interval(float(s), float(end))))
    return Instance(
        jobs=tuple(jobs),
        g=g,
        name=f"proper(n={n},g={g},seed={seed})",
    )


def clique_instance(
    n: int,
    g: int,
    common_point: float = 50.0,
    max_reach: float = 40.0,
    seed: Optional[int] = None,
) -> Instance:
    """A random clique instance: every interval contains ``common_point``.

    Left and right reaches from the common point are independent uniforms in
    ``[0, max_reach]`` (so the delta distribution of the Appendix analysis is
    non-trivial).
    """
    rng = np.random.default_rng(seed)
    left = rng.uniform(0.0, max_reach, size=n)
    right = rng.uniform(0.0, max_reach, size=n)
    jobs = tuple(
        Job(
            id=i,
            interval=Interval(float(common_point - l), float(common_point + r)),
        )
        for i, (l, r) in enumerate(zip(left, right))
    )
    return Instance(
        jobs=jobs,
        g=g,
        name=f"clique(n={n},g={g},seed={seed})",
    )


def bounded_length_instance(
    n: int,
    g: int,
    d: float = 4.0,
    horizon: int = 100,
    seed: Optional[int] = None,
) -> Instance:
    """Integral start times and lengths in ``[1, d]`` (Section 3.2 regime)."""
    if d < 1:
        raise ValueError("d must be at least 1")
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, max(horizon, 1), size=n)
    lengths = rng.uniform(1.0, d, size=n)
    jobs = tuple(
        Job(id=i, interval=Interval(float(s), float(s + l)))
        for i, (s, l) in enumerate(zip(starts, lengths))
    )
    return Instance(
        jobs=jobs,
        g=g,
        name=f"bounded(n={n},g={g},d={d:g},seed={seed})",
    )


def laminar_instance(
    n: int,
    g: int,
    root_length: float = 100.0,
    branching: int = 3,
    shrink: float = 0.45,
    seed: Optional[int] = None,
) -> Instance:
    """A laminar (nested/disjoint) family built by recursive subdivision.

    The root interval ``[0, root_length]`` is recursively split into
    ``branching`` children, each shrunk by ``shrink`` and placed inside its
    parent; generation stops once ``n`` intervals exist.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    intervals = []
    queue = [Interval(0.0, root_length)]
    while queue and len(intervals) < n:
        iv = queue.pop(0)
        intervals.append(iv)
        if iv.length * shrink < 1e-6:
            continue
        # Children live in disjoint equal slots of the parent, so siblings are
        # pairwise disjoint and each child is nested in the parent — laminar by
        # construction.
        slot_width = iv.length / max(branching, 1)
        child_width = slot_width * shrink
        for b in range(branching):
            slot_start = iv.start + b * slot_width
            offset = rng.uniform(0.0, slot_width - child_width)
            lo = slot_start + offset
            queue.append(Interval(float(lo), float(lo + child_width)))
    jobs = tuple(Job(id=i, interval=iv) for i, iv in enumerate(intervals[:n]))
    return Instance(jobs=jobs, g=g, name=f"laminar(n={n},g={g},seed={seed})")


def unit_interval_instance(
    n: int,
    g: int,
    horizon: float = 50.0,
    length: float = 1.0,
    seed: Optional[int] = None,
) -> Instance:
    """All jobs have the same length (unit interval graph)."""
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0.0, horizon, size=n)
    jobs = tuple(
        Job(id=i, interval=Interval(float(s), float(s + length)))
        for i, s in enumerate(starts)
    )
    return Instance(jobs=jobs, g=g, name=f"unit(n={n},g={g},seed={seed})")


def stairs_instance(
    n: int,
    g: int,
    length: float = 10.0,
    step: float = 1.0,
) -> Instance:
    """Deterministic staircase: job ``i`` occupies ``[i*step, i*step + length]``.

    A proper instance whose clique number is ``ceil(length/step)`` (for
    ``step <= length``); handy for predictable unit tests.
    """
    jobs = tuple(
        Job(id=i, interval=Interval(i * step, i * step + length)) for i in range(n)
    )
    return Instance(jobs=jobs, g=g, name=f"stairs(n={n},g={g},len={length},step={step})")
