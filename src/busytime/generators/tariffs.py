"""Tariff, background-load and flex-window generators.

The tariff-aware placement experiments (E24) need three ingredients the
rigid generators cannot produce:

* **time-of-use tariffs** — the utility-style day shape (off-peak /
  shoulder / peak / shoulder / off-peak) repeated over the horizon, and a
  noisier carbon-intensity trace for CO₂-weighted scheduling;
* **background load** — inflexible site consumption (building HVAC, the
  non-batch fleet) that eats into a site-wide capacity cap;
* **flex-window jobs** — batch jobs whose nominal interval can slide
  inside a ``[release, deadline]`` window.

All generators are deterministic given their ``seed`` (they draw from a
dedicated :class:`numpy.random.Generator`); the structured tariffs take no
seed at all.  :func:`tariff_corpus` bundles them into the named corpus the
benchmark script and the differential tests iterate over.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.instance import Instance
from ..core.intervals import Interval, Job
from ..core.objectives import CostModel
from ..pricing.series import BackgroundLoad, TariffSeries
from .random_instances import uniform_random_instance

__all__ = [
    "tou_tariff",
    "co2_intensity_tariff",
    "office_background",
    "flex_window_instance",
    "tariff_corpus",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def tou_tariff(
    horizon: float = 96.0,
    day: float = 24.0,
    off_peak: float = 1.0,
    shoulder: float = 2.0,
    peak: float = 4.0,
    name: str = "tou",
) -> TariffSeries:
    """A repeating time-of-use day tariff over ``[0, horizon]``.

    Each day of length ``day`` splits into the classic five bands (hours,
    scaled by ``day / 24``): off-peak until 07:00, shoulder 07:00–12:00,
    peak 12:00–18:00, shoulder 18:00–22:00, off-peak after.  Outside the
    horizon the rate stays at ``off_peak``, so translating an instance past
    the last generated day prices like night-time (cheap) rather than
    falling off a cliff.
    """
    if horizon <= 0 or day <= 0:
        raise ValueError("horizon and day must be positive")
    scale = day / 24.0
    edges_in_day = (7.0, 12.0, 18.0, 22.0)
    rates_in_day = (off_peak, shoulder, peak, shoulder)
    breakpoints: List[float] = []
    rates: List[float] = [off_peak]
    t = 0.0
    while t < horizon:
        for edge, rate_after in zip(edges_in_day, (shoulder, peak, shoulder, off_peak)):
            b = t + edge * scale
            if b >= horizon:
                break
            breakpoints.append(b)
            rates.append(rate_after)
        next_day = t + day
        if next_day < horizon and rates[-1] != off_peak:
            breakpoints.append(next_day)
            rates.append(off_peak)
        t = next_day
    del rates_in_day
    return TariffSeries(tuple(breakpoints), tuple(rates), name=name)


def co2_intensity_tariff(
    horizon: float = 96.0,
    step: float = 4.0,
    base: float = 2.0,
    swing: float = 1.5,
    seed: Optional[int] = None,
    name: str = "co2",
) -> TariffSeries:
    """A noisy piecewise-constant carbon-intensity trace.

    A sinusoidal daily shape (solar dip around mid-day) plus uniform noise,
    sampled every ``step`` time units and clipped away from zero — rates
    are intensities in arbitrary gCO₂-equivalent units.  Deterministic
    given ``seed``.
    """
    if horizon <= 0 or step <= 0:
        raise ValueError("horizon and step must be positive")
    if swing < 0 or base - swing <= 0:
        raise ValueError("need 0 <= swing < base so intensities stay positive")
    rng = _rng(seed)
    edges = np.arange(step, horizon, step)
    mids = np.arange(0.0, horizon, step) + step / 2.0
    shape = base + swing * np.sin(2.0 * np.pi * mids / 24.0)
    noise = rng.uniform(-swing / 4.0, swing / 4.0, size=mids.size)
    rates = np.maximum(shape + noise, base / 10.0)
    return TariffSeries(
        tuple(edges.tolist()), tuple(rates.tolist()[: edges.size + 1]), name=name
    )


def office_background(
    horizon: float = 96.0,
    day: float = 24.0,
    night_level: int = 1,
    day_level: int = 3,
    name: str = "office",
) -> BackgroundLoad:
    """Office-hours background load: ``day_level`` 08:00–20:00, else night.

    Zero outside ``[0, horizon]`` (the site predates and outlives nothing).
    """
    if horizon <= 0 or day <= 0:
        raise ValueError("horizon and day must be positive")
    if night_level < 0 or day_level < 0:
        raise ValueError("levels must be non-negative")
    scale = day / 24.0
    marks: List[Tuple[float, int]] = []
    t = 0.0
    while t < horizon:
        marks.append((t, night_level))
        marks.append((t + 8.0 * scale, day_level))
        marks.append((t + 20.0 * scale, night_level))
        t += day
    breakpoints: List[float] = [0.0]
    levels: List[int] = []
    current = night_level
    for time, level in marks:
        if time <= 0.0:
            current = level
            continue
        if time >= horizon:
            continue
        if level != current:
            breakpoints.append(time)
            levels.append(current)
            current = level
    breakpoints.append(horizon)
    levels.append(current)
    return BackgroundLoad(tuple(breakpoints), tuple(levels), name=name)


def flex_window_instance(
    n: int,
    g: int,
    horizon: float = 96.0,
    min_length: float = 1.0,
    max_length: float = 8.0,
    slack: float = 12.0,
    flex_fraction: float = 1.0,
    seed: Optional[int] = None,
) -> Instance:
    """Uniform random jobs, a ``flex_fraction`` of which get slack windows.

    Each flexible job's window extends its nominal interval by uniform
    draws in ``[0, slack]`` on both sides (clipped at 0 on the left), so
    ``slack=0`` — or ``flex_fraction=0`` — degenerates to the rigid
    :func:`~busytime.generators.random_instances.uniform_random_instance`
    with bit-identical nominal intervals.
    """
    if not 0.0 <= flex_fraction <= 1.0:
        raise ValueError("flex_fraction must be in [0, 1]")
    if slack < 0:
        raise ValueError("slack must be non-negative")
    base = uniform_random_instance(
        n, g, horizon=horizon, min_length=min_length, max_length=max_length, seed=seed
    )
    if slack == 0 or flex_fraction == 0:
        return base
    rng = _rng(None if seed is None else seed + 1)
    flex = rng.random(size=n) < flex_fraction
    left = rng.uniform(0.0, slack, size=n)
    right = rng.uniform(0.0, slack, size=n)
    jobs: List[Job] = []
    for i, j in enumerate(base.jobs):
        if flex[i]:
            jobs.append(
                Job(
                    id=j.id,
                    interval=j.interval,
                    weight=j.weight,
                    tag=j.tag,
                    demand=j.demand,
                    release=max(0.0, j.start - float(left[i])),
                    deadline=j.end + float(right[i]),
                )
            )
        else:
            jobs.append(j)
    return Instance(
        jobs=tuple(jobs),
        g=base.g,
        name=f"flex(n={n},g={g},slack={slack:g},seed={seed})",
    )


def tariff_corpus(seed: int = 0) -> List[Tuple[Instance, CostModel]]:
    """The named (instance, cost model) corpus of the E24 benchmark.

    Twelve cases crossing workload shape (uniform flex, bursty-window,
    sparse long-slack), tariff (TOU, CO₂ trace) and site constraints
    (uncapped; capped with office background).  Deterministic given
    ``seed``; every instance is feasible for the placement algorithms by
    construction (caps leave headroom above the background peak).
    """
    cases: List[Tuple[Instance, CostModel]] = []
    tariffs = [
        tou_tariff(),
        co2_intensity_tariff(seed=seed + 100),
    ]
    for t_index, tariff in enumerate(tariffs):
        model = CostModel(objective="tariff_busy_time", tariff=tariff)
        for case in range(3):
            s = seed + 10 * t_index + case
            inst = flex_window_instance(
                n=24 + 8 * case,
                g=3,
                slack=6.0 + 6.0 * case,
                flex_fraction=0.8,
                seed=s,
            )
            cases.append((replace_name(inst, f"{tariff.name}-flex-{case}"), model))
            background = office_background()
            capped = Instance(
                jobs=inst.jobs,
                g=3,
                name=f"{tariff.name}-capped-{case}",
                site_capacity=background.max_level + max(10, inst.peak_demand),
                background=background,
            )
            cases.append((capped, model))
    return cases


def replace_name(instance: Instance, name: str) -> Instance:
    """A copy of ``instance`` under a different name (fields unchanged)."""
    return Instance(
        jobs=instance.jobs,
        g=instance.g,
        name=name,
        site_capacity=instance.site_capacity,
        background=instance.background,
    )
