"""Traffic grooming on ring networks (the direction of the follow-up work [9]).

Section 4.2 of the paper handles the **path** topology; its closing remark
(and reference [9]) points to the generalisation to other topologies, rings
being the practically dominant one (SONET/WDM metro rings, the setting of the
original grooming papers [12, 6]).  This module provides that extension:

* a :class:`RingNetwork` with nodes ``0 .. N-1`` and links
  ``(i, (i+1) mod N)``;
* :class:`RingLightpath`: a clockwise arc from ``a`` to ``b`` (possibly
  wrapping around ``N-1 -> 0``), using one regenerator per intermediate node;
* :func:`groom_ring` — a cut-based reduction to the path algorithms:

  1. pick the *cut link* with the fewest crossing lightpaths (any fixed link
     works; the minimum-load one gives the best constant);
  2. the crossing lightpaths all share the cut link, so they pairwise share
     an edge: they are scheduled with the **clique algorithm** of the
     Appendix (2-approximation among themselves) on wavelengths reserved for
     them;
  3. the remaining lightpaths do not use the cut link, so cutting the ring
     there turns them into lightpaths on a **path** of ``N`` nodes; they are
     groomed with the path machinery of Section 4 (dispatcher by default) on
     a disjoint set of wavelengths.

  Regenerators are counted natively on the ring (shared per node per
  wavelength), so the reported cost is exact for the produced assignment even
  though the algorithm itself is a heuristic composition of the two
  guaranteed components.

This is a faithful "closest synthetic equivalent" of the follow-up's
direction rather than a reproduction of [9] itself (which is a different
paper); it exists so ring workloads exercise the same code paths and so the
benchmark E13 can compare ring grooming against the no-grooming deployment
and the path-derived lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..algorithms.clique import clique_schedule
from ..algorithms.dispatch import auto_schedule
from ..core.instance import Instance
from ..core.intervals import Interval, Job
from ..core.schedule import Schedule
from .lightpath import Lightpath, Traffic
from .network import PathNetwork

__all__ = [
    "RingNetwork",
    "RingLightpath",
    "RingTraffic",
    "RingWavelengthAssignment",
    "groom_ring",
]


@dataclass(frozen=True)
class RingNetwork:
    """A bidirectional ring with ``num_nodes`` nodes and as many links."""

    num_nodes: int

    def __post_init__(self) -> None:
        if self.num_nodes < 3:
            raise ValueError("a ring needs at least 3 nodes")

    @property
    def num_links(self) -> int:
        return self.num_nodes

    @property
    def links(self) -> List[Tuple[int, int]]:
        return [(i, (i + 1) % self.num_nodes) for i in range(self.num_nodes)]

    def validate_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside the ring 0..{self.num_nodes - 1}")


@dataclass(frozen=True)
class RingLightpath:
    """A clockwise lightpath from ``a`` to ``b`` on a ring of ``num_nodes`` nodes."""

    id: int
    a: int
    b: int
    num_nodes: int

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("lightpath endpoints must differ")
        if not (0 <= self.a < self.num_nodes and 0 <= self.b < self.num_nodes):
            raise ValueError("endpoints must be ring nodes")

    @property
    def hops(self) -> int:
        return (self.b - self.a) % self.num_nodes

    @property
    def wraps(self) -> bool:
        """True when the clockwise arc passes through the ``N-1 -> 0`` link."""
        return self.b < self.a

    @property
    def num_regenerators(self) -> int:
        return self.hops - 1

    def links(self) -> List[Tuple[int, int]]:
        return [
            ((self.a + k) % self.num_nodes, (self.a + k + 1) % self.num_nodes)
            for k in range(self.hops)
        ]

    def intermediate_nodes(self) -> List[int]:
        return [(self.a + k) % self.num_nodes for k in range(1, self.hops)]

    def uses_link(self, link: Tuple[int, int]) -> bool:
        return link in self.links()

    def rotated(self, offset: int) -> "RingLightpath":
        """The same lightpath with node labels rotated by ``offset``."""
        return RingLightpath(
            id=self.id,
            a=(self.a - offset) % self.num_nodes,
            b=(self.b - offset) % self.num_nodes,
            num_nodes=self.num_nodes,
        )


@dataclass(frozen=True)
class RingTraffic:
    """A set of ring lightpaths plus the grooming factor."""

    network: RingNetwork
    lightpaths: Tuple[RingLightpath, ...]
    g: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.g < 1:
            raise ValueError("grooming factor g must be >= 1")
        if not isinstance(self.lightpaths, tuple):
            object.__setattr__(self, "lightpaths", tuple(self.lightpaths))
        ids = [p.id for p in self.lightpaths]
        if len(set(ids)) != len(ids):
            raise ValueError("lightpath ids must be unique")
        for p in self.lightpaths:
            if p.num_nodes != self.network.num_nodes:
                raise ValueError("lightpath/network size mismatch")

    @classmethod
    def from_pairs(
        cls,
        network: RingNetwork,
        pairs: Iterable[Tuple[int, int]],
        g: int,
        name: str = "",
    ) -> "RingTraffic":
        lightpaths = tuple(
            RingLightpath(id=i, a=a, b=b, num_nodes=network.num_nodes)
            for i, (a, b) in enumerate(pairs)
        )
        return cls(network=network, lightpaths=lightpaths, g=g, name=name)

    @property
    def n(self) -> int:
        return len(self.lightpaths)

    def __iter__(self):
        return iter(self.lightpaths)

    def link_load(self, link: Tuple[int, int]) -> int:
        return sum(1 for p in self.lightpaths if p.uses_link(link))

    def min_load_link(self) -> Tuple[int, int]:
        """The link crossed by the fewest lightpaths (the default cut)."""
        return min(self.network.links, key=lambda link: (self.link_load(link), link))

    def total_regenerator_demand(self) -> int:
        return sum(p.num_regenerators for p in self.lightpaths)


@dataclass(frozen=True)
class RingWavelengthAssignment:
    """A wavelength per lightpath on the ring, plus cost accounting."""

    traffic: RingTraffic
    colors: Dict[int, int]
    algorithm: str = ""
    meta: Dict[str, object] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        missing = {p.id for p in self.traffic} - set(self.colors)
        if missing:
            raise ValueError(f"lightpaths without a wavelength: {sorted(missing)}")
        if self.meta is None:
            object.__setattr__(self, "meta", {})

    @property
    def num_wavelengths(self) -> int:
        return len(set(self.colors.values()))

    def color_classes(self) -> Dict[int, List[RingLightpath]]:
        classes: Dict[int, List[RingLightpath]] = {}
        for p in self.traffic:
            classes.setdefault(self.colors[p.id], []).append(p)
        return classes

    def validate(self) -> None:
        g = self.traffic.g
        for color, paths in self.color_classes().items():
            for link in self.traffic.network.links:
                load = sum(1 for p in paths if p.uses_link(link))
                if load > g:
                    raise ValueError(
                        f"wavelength {color} carries {load} lightpaths on link {link} "
                        f"> g = {g}"
                    )

    def regenerators(self) -> int:
        """Total regenerators: per wavelength, one per node used as intermediate."""
        total = 0
        for color, paths in self.color_classes().items():
            needed = set()
            for p in paths:
                needed.update(p.intermediate_nodes())
            total += len(needed)
        return total


def _crossing_and_rest(
    traffic: RingTraffic, cut: Tuple[int, int]
) -> Tuple[List[RingLightpath], List[RingLightpath]]:
    crossing = [p for p in traffic if p.uses_link(cut)]
    rest = [p for p in traffic if not p.uses_link(cut)]
    return crossing, rest


def groom_ring(
    traffic: RingTraffic,
    path_algorithm: Optional[Callable[[Instance], Schedule]] = None,
    cut: Optional[Tuple[int, int]] = None,
) -> RingWavelengthAssignment:
    """Groom ring traffic by cutting the ring at a light link.

    See the module docstring for the three-step construction.  The returned
    assignment is always feasible (validated); the crossing lightpaths use
    the clique algorithm, the rest the path dispatcher (or the supplied
    ``path_algorithm``), on disjoint wavelength ranges.
    """
    if path_algorithm is None:
        path_algorithm = auto_schedule
    if cut is None:
        cut = traffic.min_load_link()
    if cut not in traffic.network.links:
        raise ValueError(f"{cut} is not a link of the ring")

    crossing, rest = _crossing_and_rest(traffic, cut)
    colors: Dict[int, int] = {}
    next_color = 0

    # --- crossing lightpaths: pairwise share the cut link -> clique algorithm.
    # Rotate labels so the cut sits between node N-1 and node 0; a crossing
    # lightpath then wraps, and its "distance from the cut" on either side
    # plays the role of delta in the Appendix analysis.  Scheduling-wise we
    # simply model each crossing lightpath as the interval
    # [-(left reach), right reach] around the cut point 0.
    if crossing:
        offset = cut[1]  # relabel so the cut link becomes (N-1, 0)
        n_nodes = traffic.network.num_nodes
        jobs = []
        for p in crossing:
            q = p.rotated(offset)
            # q now runs from q.a (>= 1, before the cut) clockwise through
            # node 0 area... after rotation the cut is (N-1, 0); q wraps it,
            # i.e. q.a > q.b with the arc passing N-1 -> 0.
            left_reach = n_nodes - q.a  # hops from q.a to the cut end N-1..0
            right_reach = q.b
            # Unroll the ring at the cut: rotated node k sits at coordinate
            # k - N before the cut and at k after it, so the job interval is
            # [-(left_reach) + 1/2, right_reach - 1/2]; every crossing job
            # contains the cut-edge coordinate -1/2, and two crossing jobs
            # overlap exactly when they share a ring link.
            jobs.append(
                Job(
                    id=p.id,
                    interval=Interval(
                        -float(left_reach) + 0.5, float(right_reach) - 0.5
                    ),
                    tag="crossing",
                )
            )
        clique_instance = Instance(jobs=tuple(jobs), g=traffic.g, name="ring-crossing")
        sched = clique_schedule(clique_instance, strict=False)
        for machine in sched.machines:
            for job in machine.jobs:
                colors[job.id] = next_color + machine.index
        next_color += sched.num_machines

    # --- non-crossing lightpaths: cut the ring open into a path.
    if rest:
        offset = cut[1]
        path = PathNetwork(traffic.network.num_nodes)
        path_lightpaths = []
        for p in rest:
            q = p.rotated(offset)
            if q.a >= q.b:
                raise AssertionError(
                    "non-crossing lightpath still wraps after rotation; cut handling bug"
                )
            path_lightpaths.append(Lightpath(id=p.id, a=q.a, b=q.b))
        path_traffic = Traffic(
            network=path,
            lightpaths=tuple(path_lightpaths),
            g=traffic.g,
            name=f"{traffic.name}|cut-open",
        )
        from .grooming import schedule_to_assignment, traffic_to_instance

        instance = traffic_to_instance(path_traffic)
        sched = path_algorithm(instance)
        path_assignment = schedule_to_assignment(path_traffic, sched)
        for lp_id, color in path_assignment.colors.items():
            colors[lp_id] = next_color + color
        next_color += path_assignment.num_wavelengths

    assignment = RingWavelengthAssignment(
        traffic=traffic,
        colors=colors,
        algorithm="ring_cut",
        meta={"cut": cut, "crossing": len(crossing), "path_side": len(rest)},
    )
    assignment.validate()
    return assignment
