"""Lightpaths and traffic (sets of lightpath requests) on a path network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.intervals import Interval
from .network import PathNetwork

__all__ = ["Lightpath", "Traffic"]


@dataclass(frozen=True)
class Lightpath:
    """A lightpath request ``p_j = (a_j, b_j)`` on a path network.

    ``a < b`` is required; the lightpath uses links ``(a, a+1) .. (b-1, b)``
    and needs regenerators at the intermediate nodes ``a+1 .. b-1``.
    """

    id: int
    a: int
    b: int

    def __post_init__(self) -> None:
        if self.a >= self.b:
            raise ValueError(
                f"lightpath endpoints must satisfy a < b, got ({self.a}, {self.b})"
            )

    @property
    def hops(self) -> int:
        """Number of links used."""
        return self.b - self.a

    @property
    def num_regenerators(self) -> int:
        """Regenerators needed when the lightpath does not share any."""
        return self.b - self.a - 1

    def links(self) -> List[Tuple[int, int]]:
        return [(i, i + 1) for i in range(self.a, self.b)]

    def intermediate_nodes(self) -> List[int]:
        return list(range(self.a + 1, self.b))

    def uses_link(self, link: Tuple[int, int]) -> bool:
        return self.a <= link[0] and link[1] <= self.b

    def job_interval(self) -> Interval:
        """The Section 4.2 reduction interval ``[a + 1/2, b - 1/2]``."""
        return Interval(self.a + 0.5, self.b - 0.5)

    def shares_edge_with(self, other: "Lightpath") -> bool:
        """True when the two lightpaths use at least one common link."""
        return self.a < other.b and other.a < self.b

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"p{self.id}({self.a}->{self.b})"


@dataclass(frozen=True)
class Traffic:
    """A set of lightpath requests on a given path network plus grooming factor."""

    network: PathNetwork
    lightpaths: Tuple[Lightpath, ...]
    g: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.g < 1:
            raise ValueError("grooming factor g must be >= 1")
        if not isinstance(self.lightpaths, tuple):
            object.__setattr__(self, "lightpaths", tuple(self.lightpaths))
        ids = [p.id for p in self.lightpaths]
        if len(set(ids)) != len(ids):
            raise ValueError("lightpath ids must be unique")
        for p in self.lightpaths:
            self.network.validate_node(p.a)
            self.network.validate_node(p.b)

    @classmethod
    def from_pairs(
        cls,
        network: PathNetwork,
        pairs: Iterable[Tuple[int, int]],
        g: int,
        name: str = "",
    ) -> "Traffic":
        lightpaths = tuple(
            Lightpath(id=i, a=a, b=b) for i, (a, b) in enumerate(pairs)
        )
        return cls(network=network, lightpaths=lightpaths, g=g, name=name)

    @property
    def n(self) -> int:
        return len(self.lightpaths)

    def __len__(self) -> int:
        return len(self.lightpaths)

    def __iter__(self):
        return iter(self.lightpaths)

    def lightpath_by_id(self, lp_id: int) -> Lightpath:
        for p in self.lightpaths:
            if p.id == lp_id:
                return p
        raise KeyError(f"no lightpath with id {lp_id}")

    def link_load(self, link: Tuple[int, int]) -> int:
        """Number of lightpaths using the given link (ignoring wavelengths)."""
        return sum(1 for p in self.lightpaths if p.uses_link(link))

    def max_link_load(self) -> int:
        """The heaviest link load; ``ceil(load / g)`` wavelengths are necessary."""
        if not self.lightpaths:
            return 0
        return max(self.link_load(link) for link in self.network.links)

    def total_regenerator_demand(self) -> int:
        """Total regenerators with no sharing at all (the singleton baseline)."""
        return sum(p.num_regenerators for p in self.lightpaths)

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "num_nodes": self.network.num_nodes,
            "num_lightpaths": self.n,
            "g": self.g,
            "max_link_load": self.max_link_load(),
            "total_regenerator_demand": self.total_regenerator_demand(),
        }
