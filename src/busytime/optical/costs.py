"""Hardware cost accounting for wavelength assignments (Section 4.1).

Costs are computed *directly on the optical model* — per node, per wavelength
— rather than through the scheduling reduction, so that the reduction's
cost-preservation property (regenerators == total busy time) can be verified
by independent code paths in the tests.

Regenerators (the ``alpha = 1`` objective the paper's results apply to)
    A wavelength ``w`` needs a regenerator at node ``v`` when at least one
    lightpath coloured ``w`` has ``v`` as an intermediate node; ``g``
    lightpaths of one wavelength share that single regenerator, so the count
    per ``(v, w)`` pair is 0 or 1 — but if *more than g* same-wavelength
    lightpaths pass through ``v`` the assignment is invalid anyway (it would
    violate the per-link grooming constraint on the adjacent links).

Add-drop multiplexers (``alpha = 0``)
    A lightpath terminates at its two endpoints and needs an ADM at each.  At
    a node ``v`` and wavelength ``w``, lightpaths ending at ``v`` from the
    left (``b_j = v``) can share ADMs in groups of ``g``, likewise lightpaths
    starting at ``v`` (entering from the right); one physical ADM serves one
    group from each side simultaneously (the "two lightpaths with no common
    edge" rule of Section 4.1, generalised by the grooming factor), so the
    count per ``(v, w)`` is ``max(ceil(L/g), ceil(R/g))``.

The combined objective is ``alpha * |REG| + (1 - alpha) * |ADM|``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .grooming import WavelengthAssignment

__all__ = [
    "regenerator_count",
    "regenerators_per_node",
    "adm_count",
    "combined_cost",
]


def regenerators_per_node(assignment: "WavelengthAssignment") -> Dict[int, int]:
    """Number of regenerators installed at every node (summed over wavelengths)."""
    per_node: Dict[int, int] = {v: 0 for v in assignment.traffic.network.nodes}
    for color, paths in assignment.color_classes().items():
        needed = set()
        for p in paths:
            needed.update(p.intermediate_nodes())
        for v in needed:
            per_node[v] += 1
    return per_node


def regenerator_count(assignment: "WavelengthAssignment") -> int:
    """Total regenerators used by the assignment (the alpha = 1 objective)."""
    return sum(regenerators_per_node(assignment).values())


def adm_count(assignment: "WavelengthAssignment") -> int:
    """Total ADMs used by the assignment (the alpha = 0 objective)."""
    total = 0
    for color, paths in assignment.color_classes().items():
        # per node: lightpaths of this colour terminating from the left /right
        ending_here: Dict[int, int] = {}
        starting_here: Dict[int, int] = {}
        for p in paths:
            ending_here[p.b] = ending_here.get(p.b, 0) + 1
            starting_here[p.a] = starting_here.get(p.a, 0) + 1
        g = assignment.traffic.g
        for v in set(ending_here) | set(starting_here):
            left = math.ceil(ending_here.get(v, 0) / g)
            right = math.ceil(starting_here.get(v, 0) / g)
            total += max(left, right)
    return total


def combined_cost(assignment: "WavelengthAssignment", alpha: float = 1.0) -> float:
    """``alpha * regenerators + (1 - alpha) * ADMs`` for ``alpha`` in [0, 1]."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must lie in [0, 1]")
    return alpha * regenerator_count(assignment) + (1.0 - alpha) * adm_count(
        assignment
    )
