"""Wavelength assignment by reduction to busy-time scheduling (Section 4.2).

The reduction: a lightpath ``p_j = (a_j, b_j)`` becomes the job
``J_j = [a_j + 1/2, b_j - 1/2]`` and the grooming factor ``g`` becomes the
parallelism parameter.  Wavelengths (colours) correspond to machines, and the
regenerator at node ``i`` corresponds to the unit interval
``[i - 1/2, i + 1/2]``: a wavelength needs that regenerator exactly when the
union of its jobs covers the interval, so the number of regenerators used by
a colouring equals the total busy time of the corresponding schedule.

Consequently every approximation algorithm of the scheduling problem yields a
wavelength assignment with the same guarantee on the number of regenerators
(results (i)–(iv) of Section 4.2).

This module implements:

* the forward reduction (:func:`traffic_to_instance`),
* the inverse mapping from a schedule back to a wavelength assignment
  (:func:`schedule_to_assignment`),
* the end-to-end groomer (:func:`groom`) parameterised by the scheduling
  algorithm,
* validation of the grooming constraint (at most ``g`` lightpaths of one
  wavelength per link) and regenerator accounting, both computed directly on
  the optical side so the reduction's correctness can be *tested* rather than
  assumed (see ``tests/test_optical_grooming.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..algorithms.dispatch import auto_schedule
from ..core.instance import Instance
from ..core.intervals import Job
from ..core.schedule import Schedule
from .costs import adm_count, combined_cost, regenerator_count
from .lightpath import Lightpath, Traffic
from .network import PathNetwork

__all__ = [
    "WavelengthAssignment",
    "traffic_to_instance",
    "instance_to_traffic",
    "schedule_to_assignment",
    "groom",
]


@dataclass(frozen=True)
class WavelengthAssignment:
    """A wavelength (colour) for every lightpath of a traffic set."""

    traffic: Traffic
    colors: Mapping[int, int]  # lightpath id -> wavelength index
    algorithm: str = ""

    def __post_init__(self) -> None:
        missing = {p.id for p in self.traffic} - set(self.colors)
        if missing:
            raise ValueError(f"lightpaths without a wavelength: {sorted(missing)}")

    @property
    def num_wavelengths(self) -> int:
        return len(set(self.colors.values()))

    def lightpaths_of_color(self, color: int) -> List[Lightpath]:
        return [p for p in self.traffic if self.colors[p.id] == color]

    def color_classes(self) -> Dict[int, List[Lightpath]]:
        classes: Dict[int, List[Lightpath]] = {}
        for p in self.traffic:
            classes.setdefault(self.colors[p.id], []).append(p)
        return classes

    # -- validation -----------------------------------------------------------

    def is_valid(self) -> bool:
        try:
            self.validate()
        except ValueError:
            return False
        return True

    def validate(self) -> None:
        """Check the grooming constraint: ≤ g same-wavelength lightpaths per link."""
        g = self.traffic.g
        for color, paths in self.color_classes().items():
            for link in self.traffic.network.links:
                load = sum(1 for p in paths if p.uses_link(link))
                if load > g:
                    raise ValueError(
                        f"wavelength {color} carries {load} lightpaths on link "
                        f"{link}, exceeding the grooming factor g = {g}"
                    )

    # -- costs ---------------------------------------------------------------

    def regenerators(self) -> int:
        """Total number of regenerators used (the alpha = 1 objective)."""
        return regenerator_count(self)

    def adms(self) -> int:
        """Total number of ADMs used (the alpha = 0 objective)."""
        return adm_count(self)

    def cost(self, alpha: float = 1.0) -> float:
        """``alpha * regenerators + (1 - alpha) * ADMs`` (Section 4.1)."""
        return combined_cost(self, alpha)

    def summary(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "num_lightpaths": self.traffic.n,
            "g": self.traffic.g,
            "num_wavelengths": self.num_wavelengths,
            "regenerators": self.regenerators(),
            "adms": self.adms(),
        }


def traffic_to_instance(traffic: Traffic) -> Instance:
    """The Section 4.2 reduction: lightpaths to busy-time scheduling jobs."""
    jobs = tuple(
        Job(id=p.id, interval=p.job_interval(), tag=f"lightpath({p.a},{p.b})")
        for p in traffic
    )
    return Instance(jobs=jobs, g=traffic.g, name=f"reduction[{traffic.name}]")


def instance_to_traffic(
    instance: Instance, network: Optional[PathNetwork] = None, name: str = ""
) -> Traffic:
    """The inverse reduction for instances with half-integral endpoints.

    Every job ``[a + 1/2, b - 1/2]`` (with integral ``a < b``) becomes the
    lightpath ``(a, b)``.  Raises ``ValueError`` for jobs that are not of that
    form.  Useful for round-trip testing of the reduction.
    """
    pairs: List[Tuple[int, int]] = []
    max_node = 1
    for job in instance.jobs:
        a = job.start - 0.5
        b = job.end + 0.5
        if abs(a - round(a)) > 1e-9 or abs(b - round(b)) > 1e-9:
            raise ValueError(
                f"job {job.id} = [{job.start}, {job.end}] is not of the form "
                "[a + 1/2, b - 1/2] with integral a < b"
            )
        a_i, b_i = int(round(a)), int(round(b))
        if a_i < 0:
            raise ValueError(f"job {job.id} maps to a negative node {a_i}")
        pairs.append((a_i, b_i))
        max_node = max(max_node, b_i)
    if network is None:
        network = PathNetwork(max_node + 1)
    lightpaths = tuple(
        Lightpath(id=job.id, a=a, b=b)
        for job, (a, b) in zip(instance.jobs, pairs)
    )
    return Traffic(network=network, lightpaths=lightpaths, g=instance.g, name=name)


def schedule_to_assignment(
    traffic: Traffic, schedule: Schedule
) -> WavelengthAssignment:
    """Interpret a schedule of the reduced instance as a wavelength assignment.

    Machine indices become wavelength indices; the job/lightpath ids coincide
    by construction of :func:`traffic_to_instance`.
    """
    colors: Dict[int, int] = {}
    for machine in schedule.machines:
        for job in machine.jobs:
            colors[job.id] = machine.index
    assignment = WavelengthAssignment(
        traffic=traffic, colors=colors, algorithm=schedule.algorithm
    )
    assignment.validate()
    return assignment


def groom(
    traffic: Traffic,
    algorithm: Optional[Callable[[Instance], Schedule]] = None,
) -> WavelengthAssignment:
    """Assign wavelengths to the traffic, minimising regenerators.

    Parameters
    ----------
    traffic:
        The lightpath requests and grooming factor.
    algorithm:
        Any ``Instance -> Schedule`` function from
        :mod:`busytime.algorithms`; defaults to the dispatcher
        (:func:`busytime.algorithms.auto_schedule`), which applies the
        specialised algorithm with the best proven ratio per component.

    Returns
    -------
    WavelengthAssignment
        A validated assignment; its regenerator count equals the schedule's
        total busy time (the reduction's cost-preservation property).
    """
    if algorithm is None:
        algorithm = auto_schedule
    instance = traffic_to_instance(traffic)
    schedule = algorithm(instance)
    return schedule_to_assignment(traffic, schedule)
