"""Optical-network application: grooming / regenerator minimisation on paths."""

from .costs import adm_count, combined_cost, regenerator_count, regenerators_per_node
from .grooming import (
    WavelengthAssignment,
    groom,
    instance_to_traffic,
    schedule_to_assignment,
    traffic_to_instance,
)
from .lightpath import Lightpath, Traffic
from .network import PathNetwork

__all__ = [
    "PathNetwork",
    "Lightpath",
    "Traffic",
    "WavelengthAssignment",
    "traffic_to_instance",
    "instance_to_traffic",
    "schedule_to_assignment",
    "groom",
    "regenerator_count",
    "regenerators_per_node",
    "adm_count",
    "combined_cost",
]
