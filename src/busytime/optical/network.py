"""Path-topology optical network model (Section 4).

The paper's application is wavelength assignment ("traffic grooming") on an
optical network whose topology is a **path**: nodes ``0, 1, ..., N-1`` with a
fibre link between every pair of consecutive nodes.  A *lightpath* is a
simple path between two nodes; on a path topology it is fully described by
its two endpoints ``(a, b)`` with ``a < b`` and it uses exactly the links
``(a, a+1), ..., (b-1, b)``.

Hardware model (Section 4.1):

* every lightpath needs one **ADM** (add-drop multiplexer) at each endpoint;
* every lightpath needs one **regenerator** at each *intermediate* node;
* lightpaths are assigned wavelengths (colours); at most ``g`` lightpaths of
  the same wavelength may share a link (the grooming factor);
* ``g`` lightpaths of the same wavelength that need a regenerator at the same
  node can share one regenerator, and analogously for ADMs entering a node
  through the same link.

The busy-time scheduling results translate to the ``alpha = 1`` objective
(minimise the number of regenerators); :mod:`busytime.optical.grooming`
implements the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

__all__ = ["PathNetwork"]


@dataclass(frozen=True)
class PathNetwork:
    """A path (chain) topology with ``num_nodes`` nodes.

    Nodes are ``0 .. num_nodes - 1``; link ``e_i`` joins nodes ``i`` and
    ``i + 1`` for ``i`` in ``0 .. num_nodes - 2``.
    """

    num_nodes: int

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("a path network needs at least 2 nodes")

    @property
    def num_links(self) -> int:
        return self.num_nodes - 1

    @property
    def nodes(self) -> range:
        return range(self.num_nodes)

    @property
    def links(self) -> List[Tuple[int, int]]:
        """All links as ``(i, i + 1)`` pairs."""
        return [(i, i + 1) for i in range(self.num_nodes - 1)]

    def validate_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node {node} outside the path 0..{self.num_nodes - 1}"
            )

    def links_between(self, a: int, b: int) -> List[Tuple[int, int]]:
        """The links used by a lightpath from ``a`` to ``b`` (``a < b``)."""
        self.validate_node(a)
        self.validate_node(b)
        if a >= b:
            raise ValueError(f"lightpath endpoints must satisfy a < b, got ({a}, {b})")
        return [(i, i + 1) for i in range(a, b)]

    def intermediate_nodes(self, a: int, b: int) -> List[int]:
        """The nodes strictly between ``a`` and ``b`` (regenerator locations)."""
        self.validate_node(a)
        self.validate_node(b)
        if a >= b:
            raise ValueError(f"lightpath endpoints must satisfy a < b, got ({a}, {b})")
        return list(range(a + 1, b))
