"""Vectorized (numpy) bulk kernels for profiles, verification and FirstFit.

The per-operation machine state (:class:`~busytime.core.events.SweepProfile`
and :class:`~busytime.core.profile_index.IndexedSweepProfile`) answers one
query at a time.  The helpers here answer *many* at once: they trade the
incremental structure for whole-array numpy passes and are what lets the
library reach n = 10^6 jobs (experiment E21) without leaving pure Python.

Four groups of kernels:

* **array extraction** (:func:`job_arrays`) — jobs to ``(starts, ends,
  demands)`` float64/None arrays;
* **bulk profile construction** (:func:`profile_arrays`) — the vectorized
  twin of ``SweepProfile.from_intervals``'s rank counting, producing the
  exact same ``point``/``seg`` (and demand-weighted) arrays;
* **batch oracle sweeps** (:func:`machine_peaks`) — peak load, peak demand
  and span of one machine's job set via a single lexsort + cumsum sweep;
  used by ``verify_schedule(mode="batch")`` as the vectorized independent
  oracle (it never reads a profile);
* **the FirstFit saturation kernel** (:func:`first_fit_assign`) — the
  whole longest-first FirstFit loop over coordinate-compressed breakpoints
  with a per-breakpoint *saturation bitmask*: bit ``t`` of ``sat[p]`` is set
  exactly when machine ``t`` already runs ``g`` jobs at breakpoint ``p``, so
  the lowest fitting machine for a job is the lowest zero bit of the OR of
  ``sat`` over the job's window.  Produces assignments **bit-identical** to
  the per-job builder path (pinned by ``tests/test_profile_index.py`` and
  the differential corpus), at ~10^5 jobs/second.

Everything in this module is pure functions over arrays — no profile
object, no feature flag.  Callers (``first_fit``, ``verify_schedule``,
``SweepProfile.from_intervals``) decide when to route here; the
``BUSYTIME_PROFILE_INDEX=off`` leg never does.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "job_arrays",
    "profile_arrays",
    "merge_profile_arrays",
    "window_maxima",
    "machine_peaks",
    "first_fit_assign",
    "MAX_BITMASK_MACHINES",
]


def job_arrays(
    jobs: Sequence,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """``(starts, ends, demands)`` arrays of a job sequence.

    ``demands`` is ``None`` when every job has unit demand, so unit-demand
    callers keep their unweighted fast paths without an O(n) re-check.
    """
    n = len(jobs)
    starts = np.fromiter((j.start for j in jobs), dtype=np.float64, count=n)
    ends = np.fromiter((j.end for j in jobs), dtype=np.float64, count=n)
    demands = np.fromiter((j.demand for j in jobs), dtype=np.float64, count=n)
    if np.all(demands == 1.0):
        return starts, ends, None
    return starts, ends, demands


def profile_arrays(
    starts: np.ndarray,
    ends: np.ndarray,
    demands: Optional[np.ndarray] = None,
) -> Tuple[List[float], List[int], List[int], Optional[list], Optional[list], float]:
    """Vectorized sweep-profile arrays of a set of closed intervals.

    Returns ``(times, point, seg, dpoint, dseg, measure)`` with exactly the
    semantics of ``SweepProfile.from_intervals``'s rank counting: ``point[i]``
    is the closed load at breakpoint ``times[i]``, ``seg[i]`` the load on the
    open segment to its right, and the demand-weighted twins are ``None``
    while all demands are 1.  Integer counts are exact; ``measure`` is the
    covered length (Klee) of the union.
    """
    if len(starts) == 0:
        return [], [], [], None, None, 0.0
    s_sorted = np.sort(starts)
    e_sorted = np.sort(ends)
    times = np.unique(np.concatenate([starts, ends]))
    s_rank = np.searchsorted(s_sorted, times, side="right")
    point = s_rank - np.searchsorted(e_sorted, times, side="left")
    seg = s_rank - np.searchsorted(e_sorted, times, side="right")
    seg[-1] = 0  # nothing extends past the last breakpoint
    gaps = np.diff(times)
    measure = float(np.sum(gaps[seg[:-1] > 0]))
    dpoint = dseg = None
    if demands is not None:
        # Demand-weighted rank counting: prefix sums of demands over the
        # endpoint lists, sorted by (coordinate, demand) to match the
        # sequential reference bit for bit even with float demands.
        s_order = np.lexsort((demands, starts))
        e_order = np.lexsort((demands, ends))
        s_coords = starts[s_order]
        e_coords = ends[e_order]
        s_cum = np.concatenate([[0.0], np.cumsum(demands[s_order])])
        e_cum = np.concatenate([[0.0], np.cumsum(demands[e_order])])
        dpoint_arr = (
            s_cum[np.searchsorted(s_coords, times, side="right")]
            - e_cum[np.searchsorted(e_coords, times, side="left")]
        )
        dseg_arr = (
            s_cum[np.searchsorted(s_coords, times, side="right")]
            - e_cum[np.searchsorted(e_coords, times, side="right")]
        )
        dseg_arr[-1] = 0.0
        if np.all(demands == np.floor(demands)):
            dpoint = [int(v) for v in np.rint(dpoint_arr).tolist()]
            dseg = [int(v) for v in np.rint(dseg_arr).tolist()]
        else:
            dpoint = dpoint_arr.tolist()
            dseg = dseg_arr.tolist()
    return (
        times.tolist(),
        point.tolist(),
        seg.tolist(),
        dpoint,
        dseg,
        measure,
    )


def merge_profile_arrays(
    old_times: Sequence[float],
    old_point: Sequence[int],
    old_seg: Sequence[int],
    starts: np.ndarray,
    ends: np.ndarray,
    demands: Optional[np.ndarray] = None,
    old_dpoint: Optional[Sequence] = None,
    old_dseg: Optional[Sequence] = None,
) -> Tuple[List[float], List[int], List[int], Optional[list], Optional[list], float]:
    """Merge a batch of closed intervals into existing sweep-profile arrays.

    The vectorized twin of calling ``SweepProfile.add`` once per interval:
    the old ``point``/``seg`` step function is interpolated onto the union
    breakpoint grid (a point inside an old segment inherits that segment's
    coverage, exactly like ``_ensure_breakpoint``), then the batch's
    contribution is rank-counted on the same grid and added.  Requires a
    non-empty old profile and a non-empty batch (callers special-case the
    degenerate ends).

    Demand-weighted twins are merged when ``old_dpoint``/``old_dseg`` are
    given (pass copies of ``point``/``seg`` when upgrading a unit-demand
    profile).  Integer demands stay exact Python ints; float demands are
    merged in float64, which can differ from the sequential path by normal
    accumulation-order ulps.
    """
    m = len(old_times)
    ot = np.asarray(old_times, dtype=np.float64)
    op = np.asarray(old_point)
    osg = np.asarray(old_seg)
    times = np.unique(np.concatenate([ot, starts, ends]))
    u = len(times)
    # Old contribution, interpolated onto the union grid.
    j = np.searchsorted(ot, times, side="left")
    jc = np.minimum(j, m - 1)
    exact = ot[jc] == times
    inside = (~exact) & (j > 0) & (j < m)
    point = np.zeros(u, dtype=np.int64)
    point[exact] = op[jc[exact]]
    point[inside] = osg[j[inside] - 1]
    js = np.searchsorted(ot, times, side="right")
    seg = np.zeros(u, dtype=np.int64)
    sv = js > 0
    seg[sv] = osg[js[sv] - 1]  # old seg[-1] == 0 covers the past-the-end case
    # Batch contribution by rank counting on the union grid.
    ns = np.sort(starts)
    ne = np.sort(ends)
    sr = np.searchsorted(ns, times, side="right")
    er_left = np.searchsorted(ne, times, side="left")
    er_right = np.searchsorted(ne, times, side="right")
    point += sr - er_left
    seg += sr - er_right
    seg[-1] = 0
    gaps = np.diff(times)
    measure = float(np.sum(gaps[seg[:-1] > 0]))
    dpoint = dseg = None
    if old_dpoint is not None:
        odp = np.asarray(old_dpoint)
        ods = np.asarray(old_dseg)
        floaty = odp.dtype.kind == "f" or (
            demands is not None and not bool(np.all(demands == np.floor(demands)))
        )
        dp = np.zeros(u, dtype=np.float64)
        dp[exact] = odp[jc[exact]]
        dp[inside] = ods[j[inside] - 1]
        ds = np.zeros(u, dtype=np.float64)
        ds[sv] = ods[js[sv] - 1]
        if demands is None:
            dp += sr - er_left
            ds += sr - er_right
        else:
            s_order = np.lexsort((demands, starts))
            e_order = np.lexsort((demands, ends))
            s_coords = starts[s_order]
            e_coords = ends[e_order]
            s_cum = np.concatenate([[0.0], np.cumsum(demands[s_order])])
            e_cum = np.concatenate([[0.0], np.cumsum(demands[e_order])])
            dp += (
                s_cum[np.searchsorted(s_coords, times, side="right")]
                - e_cum[np.searchsorted(e_coords, times, side="left")]
            )
            ds += (
                s_cum[np.searchsorted(s_coords, times, side="right")]
                - e_cum[np.searchsorted(e_coords, times, side="right")]
            )
        ds[-1] = 0.0
        if floaty:
            dpoint = dp.tolist()
            dseg = ds.tolist()
        else:
            dpoint = [int(v) for v in np.rint(dp).tolist()]
            dseg = [int(v) for v in np.rint(ds).tolist()]
    return times.tolist(), point.tolist(), seg.tolist(), dpoint, dseg, measure


def window_maxima(
    times: Sequence[float],
    point: Sequence,
    seg: Sequence,
    qstarts: np.ndarray,
    qends: np.ndarray,
) -> np.ndarray:
    """Per-query maximum of a sweep profile over closed windows.

    ``out[k]`` is the profile's maximum over ``[qstarts[k], qends[k]]`` with
    exactly ``SweepProfile.max_load_in``'s semantics: the left-edge segment
    value when the window opens inside a segment, plus the maximum ``point``
    value over the breakpoints the window contains.  Range maxima come from
    a sparse table (one O(m log m) build per call, O(1) per query), so a
    batch of q queries costs O((m + q) log m) instead of q linear slices.
    """
    nq = len(qstarts)
    m = len(times)
    if nq == 0:
        return np.zeros(0, dtype=np.int64)
    if m == 0:
        return np.zeros(nq, dtype=np.int64)
    t = np.asarray(times, dtype=np.float64)
    p = np.asarray(point)
    s = np.asarray(seg)
    qs = np.asarray(qstarts, dtype=np.float64)
    qe = np.asarray(qends, dtype=np.float64)
    lo = np.searchsorted(t, qs, side="left")
    hi = np.searchsorted(t, qe, side="right") - 1
    loc = np.minimum(lo, m - 1)
    exact = t[loc] == qs
    inside = (~exact) & (lo > 0) & (lo < m)
    out = np.zeros(nq, dtype=p.dtype)
    out[inside] = s[lo[inside] - 1]
    valid = hi >= lo
    if np.any(valid):
        levels = [p]
        k = 1
        while (1 << k) <= m:
            prev = levels[-1]
            half = 1 << (k - 1)
            width = m - (1 << k) + 1
            levels.append(np.maximum(prev[:width], prev[half : half + width]))
            k += 1
        ql = lo[valid]
        qr = hi[valid]
        ks = np.floor(np.log2(qr - ql + 1)).astype(np.int64)
        res = np.empty(len(ql), dtype=p.dtype)
        for k in range(len(levels)):
            sel = ks == k
            if not np.any(sel):
                continue
            tab = levels[k]
            res[sel] = np.maximum(tab[ql[sel]], tab[qr[sel] - (1 << k) + 1])
        out[valid] = np.maximum(out[valid], res)
    return out


def machine_peaks(
    starts: np.ndarray,
    ends: np.ndarray,
    demands: Optional[np.ndarray] = None,
) -> Tuple[int, float, float]:
    """``(peak_load, peak_demand, measure)`` of one machine's job set.

    One lexsort + cumsum sweep over start/end events with closed-interval
    semantics (starts before ends at equal coordinates).  This is the
    vectorized counterpart of the :mod:`busytime.core.intervals` oracles
    (``max_point_load``, ``max_point_demand``, ``span``) — computed from the
    raw arrays, never from a profile — so ``verify_schedule(mode="batch")``
    stays an independent check of the fast-path machine state.
    """
    n = len(starts)
    if n == 0:
        return 0, 0.0, 0.0
    times = np.concatenate([starts, ends])
    kinds = np.concatenate(
        [np.zeros(n, dtype=np.int8), np.ones(n, dtype=np.int8)]
    )
    order = np.lexsort((kinds, times))
    t_ord = times[order]
    delta = np.where(kinds[order] == 0, 1, -1)
    active = np.cumsum(delta)
    peak_load = int(active.max())
    measure = float(np.sum(np.diff(t_ord)[active[:-1] > 0]))
    if demands is None:
        return peak_load, float(peak_load), measure
    ddelta = np.concatenate([demands, -demands])[order]
    peak_demand = float(np.cumsum(ddelta).max())
    return peak_load, peak_demand, measure


#: A machine index the saturation kernel can still encode: masks widen from
#: int32 to int64 once machine 31 opens; beyond 63 machines the kernel bails
#: out (callers fall back to the per-job builder path).
MAX_BITMASK_MACHINES = 63


def first_fit_assign(
    starts: np.ndarray,
    ends: np.ndarray,
    ids: np.ndarray,
    g: int,
) -> Optional[Tuple[List[int], List[int], int]]:
    """Longest-first FirstFit over unit-demand jobs, vectorized per query.

    Returns ``(order, assign, num_machines)`` where ``order`` lists job
    *positions* in processing order (non-increasing length, ties by start
    then id — exactly :func:`busytime.algorithms.first_fit.first_fit_order`)
    and ``assign[pos]`` is the machine index of the job at input position
    ``pos``; or ``None`` when more than :data:`MAX_BITMASK_MACHINES`
    machines open and the caller must fall back.

    How it stays exact: all endpoints are coordinate-compressed to the grid
    of distinct breakpoints.  Because every placed job's endpoints lie on
    the grid, a job covering any part of an open segment between adjacent
    breakpoints also covers both breakpoints, so the peak load inside a
    job's closed window is always attained *at a breakpoint* — checking the
    breakpoints inside the window suffices, exactly as ``SweepProfile``'s
    ``max_load_in`` does.  Per machine the kernel keeps an int8 load row
    over the grid; ``sat[p]`` packs "machine t is saturated (load == g) at
    breakpoint p" bits, so the FirstFit scan over *all* machines collapses
    to one ``bitwise_or.reduce`` over the window plus a lowest-zero-bit
    step, independent of the machine count.
    """
    n = len(starts)
    order_arr = np.lexsort((ids, starts, starts - ends))
    coords, inv = np.unique(
        np.concatenate([starts, ends]), return_inverse=True
    )
    lo = inv[:n].tolist()
    hi = (inv[n:] + 1).tolist()  # exclusive upper breakpoint index
    num_points = len(coords)
    or_reduce = np.bitwise_or.reduce
    sat = np.zeros(num_points, dtype=np.int32)
    cap = 30  # highest machine bit an int32 mask can carry (sign bit unused)
    rows: List[np.ndarray] = []
    assign = [0] * n
    num_machines = 0
    order = order_arr.tolist()
    for j in order:
        left = lo[j]
        right = hi[j]
        mask = int(or_reduce(sat[left:right]))
        target = (~mask & (mask + 1)).bit_length() - 1 if mask else 0
        if target >= num_machines:
            if target > cap:
                if cap == 30:
                    sat = sat.astype(np.int64)
                    cap = MAX_BITMASK_MACHINES
                else:
                    return None
            rows.append(np.zeros(num_points, dtype=np.int8))
            num_machines += 1
        window = rows[target][left:right]
        window += 1
        if window.max() == g:
            sat[left:right] |= (window == g) * (1 << target)
        assign[j] = target
    return order, assign, num_machines
