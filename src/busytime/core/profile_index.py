"""Indexed machine state: a lazy segment tree over compressed breakpoints.

:class:`IndexedSweepProfile` answers the same queries as the linear
:class:`~busytime.core.events.SweepProfile` — ``add``/``remove``/``fits``/
``load_at``/``max_load_in``/``covered_measure_in`` and their demand-weighted
twins — from a range-add / range-max / covered-length segment tree instead
of flat breakpoint arrays, so a mutation or a window query costs
``O(log n)`` instead of ``O(k)``/``O(w)``.

Layout
------
The time axis is coordinate-compressed to the sorted distinct breakpoints
``t_0 < t_1 < ... < t_{m-1}`` (the *universe*; ideally supplied up front —
every endpoint an algorithm will ever touch is known from its instance).
Tree leaves interleave point and segment positions::

    position 2i   <->  the point t_i            (length 0)
    position 2i+1 <->  the open segment (t_i, t_{i+1})   (length t_{i+1}-t_i)

A closed interval ``[t_a, t_b]`` with endpoints on the grid is the
contiguous position range ``[2a, 2b]``, so ``add``/``remove`` are single
range-adds and the feasibility query is a single range-max.  Each node ``v``
carries:

``add[v]``
    pending count delta applied to ``v``'s whole span (never pushed down);
``mx[v]``
    true maximum count in ``v``'s span, *including* ``add[v]`` but not the
    ancestors' tags (queries accumulate those on the way down);
``cov[v]``
    covered length of ``v``'s span (Klee): the full span length while
    ``add[v] > 0``, else the children's sum — ``cov[root]`` *is* the
    machine's busy time, maintained by the same updates.

The demand-weighted counters of the [15] capacity model live in a second
``(dadd, dmx)`` pair on the same nodes, materialised lazily by the first
non-unit-demand ``add`` exactly like ``SweepProfile``'s ``dpoint``/``dseg``
twins — unit-demand instances never touch them.

Coordinates outside the universe trigger a rebuild from the live interval
multiset (kept for this purpose); correct but ``O(k log k)``, so callers
that mutate incrementally should pass the full endpoint universe up front
(``ScheduleBuilder`` and the branch-and-bound searcher do).

The feature flag
----------------
:func:`profile_index_mode` reads ``BUSYTIME_PROFILE_INDEX``:

``on`` (default)
    numpy bulk kernels active everywhere; the per-operation tree replaces
    the linear profile only above :data:`INDEXED_UNIVERSE_MIN` breakpoints,
    where its asymptotics beat the linear structure's C-level constant
    factors (list inserts are memmoves, slice maxima are C loops — below
    ~10^5 breakpoints the flat arrays win wall-clock despite the worse
    complexity).
``off``
    the legacy linear path everywhere, bulk kernels included — the
    differential baseline CI keeps testing.
``force``
    the indexed tree everywhere regardless of size — what the differential
    suites run so every query is pinned against the linear profile and the
    brute-force oracle at equal inputs.

:func:`verify_schedule` deliberately never consults either profile
implementation; it stays the independent oracle both are checked against.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .bulk import job_arrays, profile_arrays
from .events import SweepProfile
from .intervals import Job, _as_interval

__all__ = [
    "IndexedSweepProfile",
    "PROFILE_INDEX_ENV",
    "profile_index_mode",
    "profile_index",
    "make_profile",
    "make_profile_from_intervals",
    "INDEXED_UNIVERSE_MIN",
]

#: Environment variable holding the backend mode: ``on`` / ``off`` / ``force``.
PROFILE_INDEX_ENV = "BUSYTIME_PROFILE_INDEX"

_MODES = ("on", "off", "force")

#: In ``on`` mode, route a profile to the indexed tree only when its
#: breakpoint universe is at least this large; below it the linear arrays
#: are faster in wall-clock (their per-op cost is C memmove/scan, the
#: tree's is Python-level log-depth walks).
INDEXED_UNIVERSE_MIN = 200_000

_override_stack: List[str] = []


def profile_index_mode() -> str:
    """The active backend mode (runtime override > environment > ``on``)."""
    if _override_stack:
        return _override_stack[-1]
    raw = os.environ.get(PROFILE_INDEX_ENV, "on").strip().lower()
    return raw if raw in _MODES else "on"


@contextmanager
def profile_index(mode: str):
    """Context manager forcing a backend mode for the enclosed block.

    ``with profile_index("force"): ...`` is how the differential tests pin
    every algorithm to the indexed tree (and ``"off"`` to the legacy path)
    without touching the process environment.
    """
    if mode not in _MODES:
        raise ValueError(
            f"profile index mode must be one of {_MODES}, got {mode!r}"
        )
    _override_stack.append(mode)
    try:
        yield
    finally:
        _override_stack.pop()


def make_profile(
    universe: Optional[Sequence[float]] = None,
    universe_size: Optional[int] = None,
):
    """A fresh machine profile honouring the backend flag.

    ``universe`` is the sorted distinct breakpoint coordinates the profile
    may ever see (pass it whenever known — the algorithms know it from
    their instance); required for the indexed tree to avoid rebuilds.  It
    may be a zero-argument callable producing the coordinates, so callers
    that open many machines only materialise the universe once the size
    gate actually selects the tree; ``universe_size`` (or an upper bound,
    e.g. ``2 * n`` endpoints) then drives the gate without forcing the
    callable.
    """
    mode = profile_index_mode()
    if universe_size is None and universe is not None and not callable(universe):
        universe_size = len(universe)
    use_indexed = mode == "force" or (
        mode == "on"
        and universe_size is not None
        and universe_size >= INDEXED_UNIVERSE_MIN
    )
    if not use_indexed:
        return SweepProfile()
    if callable(universe):
        universe = universe()
    return IndexedSweepProfile(universe=universe)


def make_profile_from_intervals(items: Sequence):
    """Batch-build a machine profile from intervals, honouring the flag."""
    mode = profile_index_mode()
    if mode == "force" or (
        mode == "on" and 2 * len(items) >= INDEXED_UNIVERSE_MIN
    ):
        return IndexedSweepProfile.from_intervals(items)
    return SweepProfile.from_intervals(items)


class IndexedSweepProfile:
    """Segment-tree machine state with :class:`SweepProfile` API parity.

    See the module docstring for the node layout.  Query-for-query the
    answers are identical to the linear profile's (the hypothesis suite in
    ``tests/test_profile_index.py`` drives both plus a brute-force oracle
    through random interleavings and asserts exact equality); the two
    deliberate representational differences are documented on
    :attr:`breakpoints` and :meth:`remove`.
    """

    __slots__ = (
        "_times",
        "_pos",
        "_size",
        "_num_positions",
        "_cumlen",
        "_add",
        "_mx",
        "_cov",
        "_len",
        "_dadd",
        "_dmx",
        "_count",
        "_live",
    )

    def __init__(self, universe: Optional[Sequence[float]] = None) -> None:
        #: Live interval multiset ``(start, end, demand) -> count`` — the
        #: ground truth a universe rebuild reconstructs the tree from.
        self._live: Dict[Tuple[float, float, float], int] = {}
        self._count = 0
        self._dadd: Optional[List] = None
        self._dmx: Optional[List] = None
        times = sorted(set(universe)) if universe else []
        self._init_tree(times)

    # -- tree scaffolding -----------------------------------------------------

    def _init_tree(self, times: List[float]) -> None:
        self._times = times
        self._pos = {t: i for i, t in enumerate(times)}
        m = len(times)
        num_positions = 2 * m - 1 if m else 0
        self._num_positions = num_positions
        size = 1
        while size < max(num_positions, 1):
            size *= 2
        self._size = size
        # Position lengths: points are 0, segment 2i+1 spans t_{i+1}-t_i.
        lengths = [0.0] * (2 * size)
        cumlen = [0.0] * (num_positions + 1)
        for i in range(m - 1):
            lengths[size + 2 * i + 1] = times[i + 1] - times[i]
        for p in range(num_positions):
            cumlen[p + 1] = cumlen[p] + lengths[size + p]
        for v in range(size - 1, 0, -1):
            lengths[v] = lengths[2 * v] + lengths[2 * v + 1]
        self._len = lengths
        self._cumlen = cumlen
        self._add = [0] * (2 * size)
        self._mx = [0] * (2 * size)
        self._cov = [0.0] * (2 * size)
        if self._dadd is not None:
            self._dadd = [0] * (2 * size)
            self._dmx = [0] * (2 * size)

    def _rebuild(self, extra_coords: Iterable[float]) -> None:
        """Re-anchor the tree on an enlarged universe (coords outside it)."""
        times = sorted(set(self._times).union(extra_coords))
        self._init_tree(times)
        count, live = self._count, self._live
        self._count, self._live = 0, {}
        for (start, end, demand), copies in live.items():
            for _ in range(copies):
                self.add(start, end, demand=demand)
        assert self._count == count

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_intervals(cls, items: Sequence) -> "IndexedSweepProfile":
        """Batch-build via the vectorized bulk kernel, then load the leaves."""
        pairs = [
            (_as_interval(it), it.demand if isinstance(it, Job) else 1)
            for it in items
        ]
        prof = cls()
        if not pairs:
            return prof
        import numpy as np

        starts = np.fromiter((iv.start for iv, _ in pairs), dtype=np.float64)
        ends = np.fromiter((iv.end for iv, _ in pairs), dtype=np.float64)
        demands = np.fromiter((d for _, d in pairs), dtype=np.float64)
        weighted = not bool(np.all(demands == 1.0))
        times, point, seg, dpoint, dseg, _ = profile_arrays(
            starts, ends, demands if weighted else None
        )
        prof._init_tree(times)
        prof._load_leaves(point, seg, prof._add, prof._mx, with_cov=True)
        if weighted:
            prof._dadd = [0] * (2 * prof._size)
            prof._dmx = [0] * (2 * prof._size)
            prof._load_leaves(dpoint, dseg, prof._dadd, prof._dmx)
        for iv, d in pairs:
            key = (iv.start, iv.end, d)
            prof._live[key] = prof._live.get(key, 0) + 1
        prof._count = len(pairs)
        return prof

    def _load_leaves(self, point, seg, add, mx, with_cov: bool = False) -> None:
        """Install per-position values as leaf maxima and pull up."""
        size = self._size
        for i, value in enumerate(point):
            mx[size + 2 * i] = value
        for i, value in enumerate(seg[:-1] if seg else []):
            mx[size + 2 * i + 1] = value
        cov, lengths = self._cov, self._len
        if with_cov:
            for p in range(self._num_positions):
                v = size + p
                cov[v] = lengths[v] if mx[v] > 0 else 0.0
        for v in range(size - 1, 0, -1):
            left, right = 2 * v, 2 * v + 1
            mx[v] = mx[left] if mx[left] >= mx[right] else mx[right]
            if with_cov:
                cov[v] = cov[left] + cov[right]

    def copy(self) -> "IndexedSweepProfile":
        """An independent snapshot (flat array copies, O(size))."""
        prof = IndexedSweepProfile.__new__(IndexedSweepProfile)
        prof._times = self._times
        prof._pos = self._pos
        prof._size = self._size
        prof._num_positions = self._num_positions
        prof._cumlen = self._cumlen
        prof._len = self._len
        prof._add = self._add[:]
        prof._mx = self._mx[:]
        prof._cov = self._cov[:]
        prof._dadd = None if self._dadd is None else self._dadd[:]
        prof._dmx = None if self._dmx is None else self._dmx[:]
        prof._count = self._count
        prof._live = dict(self._live)
        return prof

    # -- aggregates -----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of intervals currently stored."""
        return self._count

    @property
    def measure(self) -> float:
        """Covered length of the stored intervals — the machine's busy time.

        Read straight off the root's maintained covered-length aggregate.
        """
        return self._cov[1] if self._num_positions else 0.0

    @property
    def breakpoints(self) -> Tuple[float, ...]:
        """The universe coordinates (a superset of the endpoints actually
        stored, unlike the linear profile which only learns coordinates as
        they arrive)."""
        return tuple(self._times)

    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def has_demands(self) -> bool:
        """True once any stored interval carried a non-unit demand."""
        return self._dadd is not None

    # -- core tree operations -------------------------------------------------

    def _apply(self, v: int, delta, add, mx, with_cov: bool) -> None:
        add[v] += delta
        mx[v] += delta
        if with_cov:
            if add[v] > 0:
                self._cov[v] = self._len[v]
            elif v >= self._size:
                self._cov[v] = 0.0
            else:
                self._cov[v] = self._cov[2 * v] + self._cov[2 * v + 1]

    def _range_add(self, left: int, right: int, delta, add, mx, with_cov) -> None:
        """Add ``delta`` on positions ``[left, right)`` (bottom-up, no push)."""
        size = self._size
        l = left + size
        r = right + size
        climb_l, climb_r = l, r - 1
        while l < r:
            if l & 1:
                self._apply(l, delta, add, mx, with_cov)
                l += 1
            if r & 1:
                r -= 1
                self._apply(r, delta, add, mx, with_cov)
            l >>= 1
            r >>= 1
        cov, lengths = self._cov, self._len
        for p in (climb_l, climb_r):
            p >>= 1
            while p >= 1:
                lo_child, hi_child = 2 * p, 2 * p + 1
                child_max = (
                    mx[lo_child] if mx[lo_child] >= mx[hi_child] else mx[hi_child]
                )
                mx[p] = child_max + add[p]
                if with_cov:
                    cov[p] = (
                        lengths[p]
                        if add[p] > 0
                        else cov[lo_child] + cov[hi_child]
                    )
                p >>= 1

    def _range_max(self, left: int, right: int, add, mx):
        """Max count over positions ``[left, right)`` (0 on empty range)."""
        if left >= right:
            return 0
        return self._range_max_node(1, 0, self._size, left, right, 0, add, mx)

    def _range_max_node(self, v, node_lo, node_hi, left, right, acc, add, mx):
        if right <= node_lo or node_hi <= left:
            return 0
        if left <= node_lo and node_hi <= right:
            return mx[v] + acc
        mid = (node_lo + node_hi) // 2
        acc += add[v]
        a = self._range_max_node(2 * v, node_lo, mid, left, right, acc, add, mx)
        b = self._range_max_node(2 * v + 1, mid, node_hi, left, right, acc, add, mx)
        return a if a >= b else b

    def _point_value(self, position: int, add, mx):
        """Count at one position: leaf value plus the ancestors' tags."""
        v = position + self._size
        total = mx[v]
        v >>= 1
        while v:
            total += add[v]
            v >>= 1
        return total

    def _covered_in_positions(self, left: int, right: int) -> float:
        """Covered length over positions ``[left, right)`` (count tree)."""
        if left >= right:
            return 0.0
        return self._covered_node(1, 0, self._size, left, right, 0)

    def _covered_node(self, v, node_lo, node_hi, left, right, acc) -> float:
        if right <= node_lo or node_hi <= left:
            return 0.0
        if acc + self._add[v] > 0:
            lo = node_lo if node_lo > left else left
            hi = node_hi if node_hi < right else right
            num = self._num_positions
            lo = lo if lo < num else num
            hi = hi if hi < num else num
            return self._cumlen[hi] - self._cumlen[lo]
        if left <= node_lo and node_hi <= right:
            return self._cov[v]  # acc == 0 and add[v] == 0 here
        mid = (node_lo + node_hi) // 2
        acc += self._add[v]
        return self._covered_node(
            2 * v, node_lo, mid, left, right, acc
        ) + self._covered_node(2 * v + 1, mid, node_hi, left, right, acc)

    # -- mutation -------------------------------------------------------------

    def _upgrade_to_weighted(self) -> None:
        """Materialise the demand twins (all prior demands were 1, so the
        weighted tree starts as a copy of the count tree)."""
        self._dadd = self._add[:]
        self._dmx = self._mx[:]

    def add(self, start: float, end: float, demand=1) -> None:
        """Insert the closed interval ``[start, end]``; ``O(log n)`` when
        both endpoints lie in the universe, else a rebuild."""
        if end < start:
            raise ValueError(f"interval end ({end}) precedes start ({start})")
        pos = self._pos
        if start not in pos or end not in pos:
            self._rebuild((start, end))
            pos = self._pos
        if demand != 1 and self._dadd is None:
            self._upgrade_to_weighted()
        i = pos[start]
        j = pos[end]
        self._range_add(2 * i, 2 * j + 1, 1, self._add, self._mx, True)
        if self._dadd is not None:
            self._range_add(2 * i, 2 * j + 1, demand, self._dadd, self._dmx, False)
        key = (start, end, demand)
        self._live[key] = self._live.get(key, 0) + 1
        self._count += 1

    def remove(self, start: float, end: float, demand=1) -> None:
        """Remove a previously added interval (for backtracking).

        Stricter than the linear profile's breakpoint-existence check: the
        exact ``(start, end, demand)`` triple must be live (the linear
        structure cannot tell and lets mismatched removes corrupt counters
        silently; the tree keeps the live multiset anyway, so it refuses).
        """
        key = (start, end, demand)
        copies = self._live.get(key, 0)
        if not copies:
            if demand != 1 and self._dadd is None:
                raise KeyError(
                    f"interval [{start}, {end}] with demand {demand} was "
                    f"never added (profile holds only unit demands)"
                )
            raise KeyError(f"interval [{start}, {end}] was never added")
        i = self._pos[start]
        j = self._pos[end]
        self._range_add(2 * i, 2 * j + 1, -1, self._add, self._mx, True)
        if self._dadd is not None:
            self._range_add(2 * i, 2 * j + 1, -demand, self._dadd, self._dmx, False)
        if copies == 1:
            del self._live[key]
        else:
            self._live[key] = copies - 1
        self._count -= 1

    # -- window mapping -------------------------------------------------------

    def _window_positions(self, start: float, end: float) -> Tuple[int, int]:
        """Position range (inclusive) covering the closed window, or (1, 0).

        The left boundary is the point position of ``start`` when it is a
        breakpoint, else the segment position it falls in; the right
        boundary is the last breakpoint ``<= end`` (segment loads never
        exceed their bounding points, so stopping at the point is exact —
        the same argument ``SweepProfile.max_load_in`` rests on).
        """
        times = self._times
        m = len(times)
        if not m:
            return 1, 0
        i = bisect_left(times, start)
        if i < m and times[i] == start:
            left = 2 * i
        elif i == 0:
            left = 0
        elif i == m:
            return 1, 0  # window entirely after the universe
        else:
            left = 2 * i - 1  # the open segment start falls in
        j = bisect_right(times, end) - 1
        if j < 0:
            return 1, 0  # window entirely before the universe
        right = 2 * j
        if right < left:
            # Window strictly inside one segment: only its position matters.
            right = left
        return left, right

    # -- queries --------------------------------------------------------------

    def load_at(self, t: float) -> int:
        """Number of stored intervals active at instant ``t`` (closed)."""
        return self._value_at(t, self._add, self._mx)

    def _value_at(self, t: float, add, mx):
        times = self._times
        i = bisect_left(times, t)
        if i < len(times) and times[i] == t:
            return self._point_value(2 * i, add, mx)
        if 0 < i < len(times):
            return self._point_value(2 * i - 1, add, mx)
        return 0

    def max_load(self) -> int:
        """Peak load over all time — the clique number of the stored set."""
        return self._mx[1] if self._num_positions else 0

    def max_load_in(self, start: float, end: float) -> int:
        """Maximum load over the closed window ``[start, end]``."""
        left, right = self._window_positions(start, end)
        return self._range_max(left, right + 1, self._add, self._mx)

    def covered_measure_in(self, start: float, end: float) -> float:
        """Measure of ``[start, end]`` covered by at least one interval."""
        times = self._times
        m = len(times)
        if m < 2 or end <= start:
            return 0.0
        total = 0.0
        # Partial segment the window starts in.
        i = bisect_left(times, start)
        left_seg = -1
        if not (i < m and times[i] == start) and 0 < i < m:
            left_seg = i - 1
            if self._point_value(2 * left_seg + 1, self._add, self._mx) > 0:
                seg_end = times[i]
                clip = seg_end if seg_end < end else end
                total += clip - start
        # Partial segment the window ends in (unless it is the same segment
        # the window starts in, already fully accounted above).
        j = bisect_right(times, end) - 1
        if 0 <= j < m - 1 and times[j] < end and j != left_seg:
            if self._point_value(2 * j + 1, self._add, self._mx) > 0:
                seg_start = times[j]
                clip = seg_start if seg_start > start else start
                total += end - clip
        # Whole positions inside: breakpoints i..j and the segments between
        # them (positions 2*i .. 2*j); point positions have length 0, so
        # only the fully contained segments contribute.
        if m > i <= j:
            total += self._covered_in_positions(2 * i, 2 * j + 1)
        return total

    # -- demand-weighted queries ([15] capacity model) ------------------------

    def demand_at(self, t: float):
        """Total demand of the stored intervals active at instant ``t``."""
        if self._dadd is None:
            return self.load_at(t)
        return self._value_at(t, self._dadd, self._dmx)

    def max_demand(self):
        """Peak total demand over all time (== :meth:`max_load` when unit)."""
        if self._dadd is None:
            return self.max_load()
        return self._dmx[1] if self._num_positions else 0

    def max_demand_in(self, start: float, end: float):
        """Maximum total demand over the closed window ``[start, end]``."""
        if self._dadd is None:
            return self.max_load_in(start, end)
        left, right = self._window_positions(start, end)
        return self._range_max(left, right + 1, self._dadd, self._dmx)

    def fits(self, start: float, end: float, g: int, demand=1) -> bool:
        """True when adding ``[start, end]`` keeps the peak demand at most
        ``g`` — the same predicate, fast paths included, as the linear
        profile's :meth:`SweepProfile.fits`."""
        if self._dadd is None and demand == 1:
            if self._count < g:
                return True
            return self.max_load_in(start, end) < g
        return self.max_demand_in(start, end) + demand <= g

    def bulk_add(self, starts, ends, demands=None) -> None:
        """Batch :meth:`add` (API parity with ``SweepProfile.bulk_add``).

        Endpoints outside the universe are unioned in with a *single*
        rebuild up front, then every interval is an ``O(log n)`` range-add —
        the loop never degenerates to per-interval rebuilds.
        """
        starts = list(starts)
        ends = list(ends)
        for s, e in zip(starts, ends):
            if e < s:
                raise ValueError(f"interval end ({e}) precedes start ({s})")
        pos = self._pos
        fresh = [c for c in starts if c not in pos]
        fresh += [c for c in ends if c not in pos]
        if fresh:
            self._rebuild(fresh)
        if demands is None:
            for s, e in zip(starts, ends):
                self.add(s, e)
        else:
            for s, e, d in zip(starts, ends, demands):
                self.add(s, e, demand=d)

    def fits_many(self, starts, ends, g: int, demands=None) -> List[bool]:
        """Batch :meth:`fits` (API parity with ``SweepProfile.fits_many``)."""
        if demands is None:
            return [self.fits(s, e, g) for s, e in zip(starts, ends)]
        return [
            self.fits(s, e, g, demand=d)
            for s, e, d in zip(starts, ends, demands)
        ]

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndexedSweepProfile(count={self._count}, "
            f"measure={self.measure:g}, universe={len(self._times)})"
        )
