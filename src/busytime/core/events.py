"""Sweep-line event utilities shared by graph construction and analysis.

Interval algorithms in this package repeatedly need the same primitive: walk
the sorted start/end events of a set of jobs while maintaining the set of
currently active jobs.  This module centralises that sweep so the clique
number, the machine-count profile ``M_t``, the load profile ``N_t`` and the
piecewise-constant integrals used by the analysis all share one correct,
well-tested implementation.

Two layers are provided, mirroring the two ways the paper's quantities are
consumed:

* the **batch helpers** (:func:`sweep_events`, :func:`load_profile`,
  :func:`integrate_step_function`) re-derive a profile from scratch — the
  right tool for one-shot analysis such as the Theorem 3.1 integral
  ``OPT = ∫ M_t dt`` check;
* the **incremental machine state** (:class:`SweepProfile`) maintains the
  load profile ``N_t`` of one machine's job set *across assignments*, so
  the greedy algorithms (FirstFit of Theorem 2.1, NextFit of Theorem 3.1)
  and the branch-and-bound search answer "does job ``J`` still fit under
  the parallelism bound ``g``" from the maintained structure in
  ``O(log k + w)`` time (``k`` breakpoints on the machine, ``w`` of them
  inside ``J``'s window) instead of re-clipping and re-sorting the
  machine's whole job list per query.

Closed-interval semantics are used throughout: at a coordinate where one job
ends and another starts, both are considered active (start events are
processed before end events), matching the conflict model of the paper.
:func:`busytime.core.intervals.max_point_load` remains the independent
slow-path oracle; :func:`busytime.core.schedule.verify_schedule` cross-checks
every profile-derived answer against it.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .intervals import Interval, Job, _as_interval

#: Batch sizes below this stay on the sequential python paths — the numpy
#: kernel's fixed overhead (array allocation, sorting setup) only pays for
#: itself from a few dozen intervals up.
BULK_FROM_INTERVALS_MIN = 64


def _bulk_enabled() -> bool:
    """True unless the profile-index flag is ``off`` (the legacy CI leg)."""
    from .profile_index import profile_index_mode

    return profile_index_mode() != "off"


__all__ = [
    "Event",
    "SweepProfile",
    "BULK_FROM_INTERVALS_MIN",
    "TraceEvent",
    "DynamicTrace",
    "TraceValidator",
    "TraceValidationError",
    "ARRIVE",
    "DEPART",
    "sweep_events",
    "load_profile",
    "integrate_step_function",
    "breakpoints",
]


@dataclass(frozen=True, order=True)
class Event:
    """A single sweep event.

    Events order by ``(time, kind)`` with ``kind`` 0 for starts and 1 for
    ends so that, at equal coordinates, starts are processed first (closed
    intervals: a job starting exactly when another ends overlaps it).
    """

    time: float
    kind: int  # 0 = start, 1 = end
    job_id: int


def sweep_events(jobs: Iterable[Job]) -> List[Event]:
    """All start/end events of the given jobs in sweep order."""
    events: List[Event] = []
    for j in jobs:
        events.append(Event(j.start, 0, j.id))
        events.append(Event(j.end, 1, j.id))
    events.sort()
    return events


def breakpoints(jobs: Iterable[Job]) -> List[float]:
    """Sorted distinct endpoint coordinates of the given jobs."""
    pts = set()
    for j in jobs:
        pts.add(j.start)
        pts.add(j.end)
    return sorted(pts)


def load_profile(jobs: Sequence[Job]) -> List[Tuple[float, float, int]]:
    """The piecewise-constant function ``t -> N_t`` as ``(lo, hi, load)`` pieces.

    Only pieces of positive length are reported; the load on a piece is the
    number of jobs whose interval covers the piece's interior.  Degenerate
    (zero-length) jobs contribute to no positive-length piece but are still
    counted correctly by :func:`busytime.core.intervals.point_load`.
    """
    pts = breakpoints(jobs)
    profile: List[Tuple[float, float, int]] = []
    for lo, hi in zip(pts, pts[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        load = sum(1 for j in jobs if j.start <= mid <= j.end)
        profile.append((lo, hi, load))
    return profile


def integrate_step_function(
    jobs: Sequence[Job], value_at: Callable[[float], float]
) -> float:
    """Integrate ``value_at(t)`` over the breakpoint grid induced by ``jobs``.

    ``value_at`` must be constant on every open interval between consecutive
    breakpoints (it is evaluated at the midpoint of each piece).  Used by the
    Theorem 3.1 analysis check, which integrates the number of active
    machines ``M_t`` over time to recover the total busy time.
    """
    pts = breakpoints(jobs)
    total = 0.0
    for lo, hi in zip(pts, pts[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        total += (hi - lo) * value_at(mid)
    return total


#: Trace event kinds.  Arrivals order before departures at equal times,
#: matching the closed-interval convention of :class:`Event` (a job arriving
#: exactly when another departs overlaps it at that instant).
ARRIVE = 0
DEPART = 1


class TraceValidationError(ValueError):
    """Raised by :meth:`DynamicTrace.validate` on an ill-formed trace."""


@dataclass(frozen=True)
class TraceEvent:
    """One lifecycle event of a dynamic workload: a job arriving or departing.

    Events order by ``(time, kind, job.id)`` with :data:`ARRIVE` before
    :data:`DEPART`, so simultaneous arrival/departure keeps the closed-interval
    conflict semantics: the departing job is still live when the arrival is
    placed — and simultaneous same-kind events follow job ids, matching the
    online replay's ``(start, id)`` arrival tie-break.  ``sorted`` on events
    therefore yields exactly the order :meth:`DynamicTrace.validate` demands.

    ``job`` carries the *full* interval revealed at arrival.  A departure at
    ``time < job.end`` is an early cancellation: the machine stops being busy
    with the job from ``time`` on, so the job's *effective* interval — the
    part that actually occupied a machine — is ``[job.start, time]``.
    """

    time: float
    kind: int  # ARRIVE or DEPART
    job: Job

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.kind, self.job.id)

    def __lt__(self, other: "TraceEvent") -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.sort_key < other.sort_key

    @property
    def is_arrival(self) -> bool:
        return self.kind == ARRIVE


@dataclass(frozen=True)
class DynamicTrace:
    """An ordered arrive/depart event sequence plus the parallelism bound.

    The dynamic counterpart of :class:`~busytime.core.instance.Instance`:
    where an instance is a static job set, a trace is the job set's
    *lifecycle* — each job arrives once (revealing its interval) and departs
    once (at its natural completion or earlier, if cancelled).  Replayed by
    :class:`busytime.extensions.dynamic.Simulator`; generated by
    :mod:`busytime.generators.dynamic_traces`.
    """

    events: Tuple[TraceEvent, ...]
    g: int
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def num_jobs(self) -> int:
        return sum(1 for e in self.events if e.is_arrival)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> Tuple[float, float]:
        """Earliest and latest event time (``(0, 0)`` when empty)."""
        if not self.events:
            return (0.0, 0.0)
        return (self.events[0].time, self.events[-1].time)

    def departure_times(self) -> Dict[int, float]:
        """Job id -> departure time."""
        return {e.job.id: e.time for e in self.events if not e.is_arrival}

    def effective_jobs(self) -> Tuple[Job, ...]:
        """Each job truncated to the part that actually occupied a machine.

        A job departing at ``d < end`` effectively ran ``[start, d]``; a job
        departing on time ran its full interval.  The induced static
        instance (:meth:`effective_instance`) is the hindsight comparator
        the simulator reports its cost gap against.
        """
        departs = self.departure_times()
        out: List[Job] = []
        for e in self.events:
            if not e.is_arrival:
                continue
            job = e.job
            d = departs.get(job.id, job.end)
            if d < job.end:
                job = Job(id=job.id, interval=Interval(job.start, d), tag=job.tag)
            out.append(job)
        return tuple(out)

    def effective_instance(self, name: str = ""):
        """The static instance induced by :meth:`effective_jobs` (same ``g``)."""
        from .instance import Instance

        return Instance(
            jobs=self.effective_jobs(),
            g=self.g,
            name=name or (self.name and f"{self.name}#effective") or "effective",
        )

    def validate(self) -> None:
        """Raise :class:`TraceValidationError` unless the trace is well formed.

        Well formed means: events sorted in ``(time, kind, job id)`` order,
        every job arrives exactly once and departs exactly once, arrival at
        the job's start time, and departure inside ``[start, end]``.
        """
        validator = TraceValidator()
        for e in self.events:
            validator.feed(e)
        validator.finish()


class TraceValidator:
    """Incremental form of :meth:`DynamicTrace.validate`.

    Feeds one event at a time and raises :class:`TraceValidationError` the
    moment an invariant breaks: events must stay in ``(time, kind, job id)``
    order, each job arrives exactly once (at its start time) and departs at
    most once (inside ``[start, end]``).  :meth:`finish` adds the final
    whole-trace check — every arrived job departed.

    This is the admission gate streaming sessions
    (:mod:`busytime.service.sessions`) run each incoming event through
    *before* mutating machine state, so a malformed batch is refused without
    partially applying; :meth:`DynamicTrace.validate` is exactly
    feed-everything-then-finish, keeping the offline and streaming paths on
    one shared rule set.
    """

    __slots__ = ("_arrived", "_departed", "_prev_key")

    def __init__(self) -> None:
        self._arrived: set = set()
        self._departed: set = set()
        self._prev_key: Optional[Tuple[float, int, int]] = None

    @property
    def live_job_ids(self) -> frozenset:
        """Ids of jobs that arrived but have not departed yet."""
        return frozenset(self._arrived - self._departed)

    @property
    def events_seen(self) -> int:
        return len(self._arrived) + len(self._departed)

    def copy(self) -> "TraceValidator":
        """An independent snapshot (used to probe a batch before applying)."""
        twin = TraceValidator()
        twin._arrived = set(self._arrived)
        twin._departed = set(self._departed)
        twin._prev_key = self._prev_key
        return twin

    def feed(self, e: TraceEvent) -> None:
        """Accept one event or raise :class:`TraceValidationError`."""
        if self._prev_key is not None and e.sort_key < self._prev_key:
            raise TraceValidationError(
                f"events out of order at t={e.time} (job {e.job.id})"
            )
        if e.is_arrival:
            if e.job.id in self._arrived:
                raise TraceValidationError(f"job {e.job.id} arrives twice")
            if e.time != e.job.start:
                raise TraceValidationError(
                    f"job {e.job.id} arrives at {e.time} but starts at {e.job.start}"
                )
            self._arrived.add(e.job.id)
        else:
            if e.job.id not in self._arrived:
                raise TraceValidationError(
                    f"job {e.job.id} departs before arriving"
                )
            if e.job.id in self._departed:
                raise TraceValidationError(f"job {e.job.id} departs twice")
            if not (e.job.start <= e.time <= e.job.end):
                raise TraceValidationError(
                    f"job {e.job.id} departs at {e.time}, outside "
                    f"[{e.job.start}, {e.job.end}]"
                )
            self._departed.add(e.job.id)
        self._prev_key = e.sort_key

    def finish(self) -> None:
        """The whole-trace closing check: every arrived job departed."""
        missing = self._arrived - self._departed
        if missing:
            raise TraceValidationError(
                f"jobs never depart: {sorted(missing)}"
            )


class SweepProfile:
    """Incrementally maintained load profile of a set of closed intervals.

    This is the sweep-line *machine state* behind the hot feasibility
    queries: one instance per machine records how many of the machine's jobs
    are active at every instant, as a step function over the sorted distinct
    endpoint coordinates seen so far (*breakpoints*).

    Because closed intervals that merely touch at an endpoint do conflict
    (the paper's parallelism constraint counts both as active at the shared
    instant), the profile stores **two** numbers per breakpoint ``t_i``:

    ``point[i]``
        the load *at* the point ``t_i`` (closed semantics — a job ``[a, t_i]``
        and a job ``[t_i, b]`` both count), and
    ``seg[i]``
        the load on the open segment ``(t_i, t_{i+1})``.

    Every stored interval has both endpoints among the breakpoints, so a job
    covering any part of an open segment covers all of it; hence
    ``seg[i] <= min(point[i], point[i+1])`` and the maximum load over any
    closed query window is attained at a breakpoint or at the window's left
    edge.  That observation makes :meth:`max_load_in` — the core of the
    "does job J fit on machine M_i without a (g+1)-clique" test — a pair of
    bisections plus a slice maximum.

    Maintained aggregates:

    * :attr:`count` — number of stored intervals;
    * :attr:`measure` — ``span`` of the stored intervals (Definition 1.2),
      i.e. the machine's busy time, updated as segments gain/lose coverage.

    :meth:`add` is ``O(k)`` worst case (two sorted insertions plus counter
    updates over the window) and :meth:`remove` supports the backtracking
    branch-and-bound search; removal never deletes breakpoints, which keeps
    the arrays append-mostly and is harmless (stale breakpoints carry the
    coverage of their segment).

    **Demand awareness.**  The follow-up model of [15] gives every job a
    capacity demand ``s_j`` and replaces the cardinality constraint by
    ``sum of demands <= g`` at every instant.  The profile supports it with a
    second, *lazily materialised* pair of arrays (``dpoint``/``dseg``)
    holding the demand-weighted load.  While every stored interval has unit
    demand the weighted arrays stay ``None`` and every operation touches
    exactly the arrays the rigid model always used — the unit-demand case
    degenerates bit-for-bit (and at full speed) to the cardinality check.
    The first ``add`` with ``demand != 1`` upgrades the profile by copying
    the cardinality arrays (weighted == cardinality up to that point) and
    both pairs are maintained from then on.

    The brute-force counterpart of every query lives in
    :mod:`busytime.core.intervals` (``max_point_load``, ``span``,
    ``point_load``, ``max_point_demand``) and is used by ``verify_schedule``
    and the property tests to cross-check this structure.
    """

    __slots__ = ("_times", "_point", "_seg", "_dpoint", "_dseg", "_count", "_measure")

    def __init__(self) -> None:
        self._times: List[float] = []
        self._point: List[int] = []
        self._seg: List[int] = []
        # Demand-weighted twins of _point/_seg; None until a non-unit demand
        # is stored (the rigid fast path never allocates or touches them).
        self._dpoint: Optional[List[int]] = None
        self._dseg: Optional[List[int]] = None
        self._count: int = 0
        self._measure: float = 0.0

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_intervals(cls, items: Iterable) -> "SweepProfile":
        """Batch-build the profile of a set of intervals/jobs in ``O(k log k)``.

        Equivalent to ``add``-ing every interval one by one, but computes the
        ``point``/``seg`` arrays directly by rank counting over the sorted
        endpoint lists.  :class:`~busytime.core.intervals.Job` items carry
        their ``demand`` into the profile; bare intervals count as demand 1.
        """
        pairs = [
            (_as_interval(it), it.demand if isinstance(it, Job) else 1)
            for it in items
        ]
        ivs = [iv for iv, _ in pairs]
        prof = cls()
        if not ivs:
            return prof
        if len(ivs) >= BULK_FROM_INTERVALS_MIN and _bulk_enabled():
            import numpy as np

            from .bulk import profile_arrays

            n = len(ivs)
            s_arr = np.fromiter((iv.start for iv in ivs), np.float64, count=n)
            e_arr = np.fromiter((iv.end for iv in ivs), np.float64, count=n)
            d_arr = None
            if any(d != 1 for _, d in pairs):
                d_arr = np.fromiter((d for _, d in pairs), np.float64, count=n)
            times, point, seg, dpoint, dseg, measure = profile_arrays(
                s_arr, e_arr, d_arr
            )
            prof._times = times
            prof._point = point
            prof._seg = seg
            prof._dpoint = dpoint
            prof._dseg = dseg
            prof._count = n
            prof._measure = measure
            return prof
        starts = sorted(iv.start for iv in ivs)
        ends = sorted(iv.end for iv in ivs)
        times = sorted({*starts, *ends})
        point = [bisect_right(starts, t) - bisect_left(ends, t) for t in times]
        seg = [bisect_right(starts, t) - bisect_right(ends, t) for t in times]
        seg[-1] = 0  # nothing extends past the last breakpoint
        measure = sum(
            hi - lo for lo, hi, s in zip(times, times[1:], seg) if s > 0
        )
        prof._times = times
        prof._point = point
        prof._seg = seg
        prof._count = len(ivs)
        prof._measure = measure
        if any(d != 1 for _, d in pairs):
            # Demand-weighted rank counting: prefix sums of demands over the
            # endpoint lists replace the plain ranks above.
            wstarts = sorted((iv.start, d) for iv, d in pairs)
            wends = sorted((iv.end, d) for iv, d in pairs)
            s_coords = [c for c, _ in wstarts]
            e_coords = [c for c, _ in wends]
            s_cum = [0]
            for _, d in wstarts:
                s_cum.append(s_cum[-1] + d)
            e_cum = [0]
            for _, d in wends:
                e_cum.append(e_cum[-1] + d)
            prof._dpoint = [
                s_cum[bisect_right(s_coords, t)] - e_cum[bisect_left(e_coords, t)]
                for t in times
            ]
            dseg = [
                s_cum[bisect_right(s_coords, t)] - e_cum[bisect_right(e_coords, t)]
                for t in times
            ]
            dseg[-1] = 0
            prof._dseg = dseg
        return prof

    def copy(self) -> "SweepProfile":
        """An independent snapshot of the current state (O(k) array copies)."""
        prof = SweepProfile()
        prof._times = self._times[:]
        prof._point = self._point[:]
        prof._seg = self._seg[:]
        prof._dpoint = None if self._dpoint is None else self._dpoint[:]
        prof._dseg = None if self._dseg is None else self._dseg[:]
        prof._count = self._count
        prof._measure = self._measure
        return prof

    # -- aggregates -----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of intervals currently stored."""
        return self._count

    @property
    def measure(self) -> float:
        """``span`` of the stored intervals — the machine's busy time."""
        return self._measure

    @property
    def breakpoints(self) -> Tuple[float, ...]:
        """The sorted breakpoint coordinates (includes stale ones after remove)."""
        return tuple(self._times)

    def is_empty(self) -> bool:
        return self._count == 0

    # -- mutation -------------------------------------------------------------

    def _ensure_breakpoint(self, t: float) -> int:
        """Make ``t`` a breakpoint (splitting the segment it lands in)."""
        times = self._times
        i = bisect_left(times, t)
        if i < len(times) and times[i] == t:
            return i
        # A new breakpoint strictly inside an existing segment inherits that
        # segment's coverage for both its point load and the right half of
        # the split; at either end of the profile nothing covers it.
        inside = 0 < i < len(times)
        cover = self._seg[i - 1] if inside else 0
        times.insert(i, t)
        self._point.insert(i, cover)
        self._seg.insert(i, cover)
        if self._dpoint is not None:
            dcover = self._dseg[i - 1] if inside else 0
            self._dpoint.insert(i, dcover)
            self._dseg.insert(i, dcover)
        return i

    def _upgrade_to_weighted(self) -> None:
        """Materialise the demand-weighted arrays (all prior demands were 1)."""
        self._dpoint = self._point[:]
        self._dseg = self._seg[:]

    def add(self, start: float, end: float, demand: int = 1) -> None:
        """Insert the closed interval ``[start, end]`` into the profile.

        ``demand`` is the interval's capacity demand in the [15] model; the
        default 1 is the rigid case and touches only the cardinality arrays.
        """
        if end < start:
            raise ValueError(f"interval end ({end}) precedes start ({start})")
        if demand != 1 and self._dpoint is None:
            self._upgrade_to_weighted()
        lo = self._ensure_breakpoint(start)
        hi = self._ensure_breakpoint(end)  # inserting end never shifts lo
        point, seg, times = self._point, self._seg, self._times
        for k in range(lo, hi + 1):
            point[k] += 1
        gained = 0.0
        for k in range(lo, hi):
            if seg[k] == 0:
                gained += times[k + 1] - times[k]
            seg[k] += 1
        if self._dpoint is not None:
            dpoint, dseg = self._dpoint, self._dseg
            for k in range(lo, hi + 1):
                dpoint[k] += demand
            for k in range(lo, hi):
                dseg[k] += demand
        self._measure += gained
        self._count += 1

    def remove(self, start: float, end: float, demand: int = 1) -> None:
        """Remove a previously :meth:`add`-ed interval (for backtracking).

        ``demand`` must match the value the interval was added with (jobs
        carry their demand, so callers route the same number both ways).
        Breakpoints are kept (possibly at zero coverage); only the counters
        and the maintained measure shrink.
        """
        times = self._times
        lo = bisect_left(times, start)
        hi = bisect_left(times, end)
        if (
            lo >= len(times)
            or hi >= len(times)
            or times[lo] != start
            or times[hi] != end
        ):
            raise KeyError(f"interval [{start}, {end}] was never added")
        if demand != 1 and self._dpoint is None:
            raise KeyError(
                f"interval [{start}, {end}] with demand {demand} was never "
                f"added (profile holds only unit demands)"
            )
        point, seg = self._point, self._seg
        for k in range(lo, hi + 1):
            point[k] -= 1
        lost = 0.0
        for k in range(lo, hi):
            seg[k] -= 1
            if seg[k] == 0:
                lost += times[k + 1] - times[k]
        if self._dpoint is not None:
            dpoint, dseg = self._dpoint, self._dseg
            for k in range(lo, hi + 1):
                dpoint[k] -= demand
            for k in range(lo, hi):
                dseg[k] -= demand
        self._measure -= lost
        self._count -= 1

    def bulk_add(self, starts, ends, demands=None) -> None:
        """Insert a whole batch of closed intervals in one vectorized pass.

        Equivalent to calling :meth:`add` once per ``(starts[k], ends[k],
        demands[k])`` triple, but rebuilt with numpy rank counting: the
        existing profile is interpolated onto the union breakpoint grid and
        the batch's contribution is added array-wise, so a load of ``b``
        intervals costs ``O((k + b) log (k + b))`` instead of ``O(k * b)``.
        ``demands=None`` means all-unit (the rigid model).  Under
        ``BUSYTIME_PROFILE_INDEX=off`` the sequential path is used instead,
        so the legacy CI leg keeps exercising per-operation ``add``.
        """
        import numpy as np

        s_arr = np.asarray(starts, dtype=np.float64)
        e_arr = np.asarray(ends, dtype=np.float64)
        n = len(s_arr)
        if n == 0:
            return
        bad = np.nonzero(e_arr < s_arr)[0]
        if bad.size:
            i = int(bad[0])
            raise ValueError(
                f"interval end ({e_arr[i]}) precedes start ({s_arr[i]})"
            )
        d_arr = None
        if demands is not None:
            d_arr = np.asarray(demands, dtype=np.float64)
            if bool(np.all(d_arr == 1.0)):
                d_arr = None
        if not _bulk_enabled():
            d_list = d_arr.tolist() if d_arr is not None else None
            for k in range(n):
                self.add(
                    float(s_arr[k]),
                    float(e_arr[k]),
                    demand=d_list[k] if d_list is not None else 1,
                )
            return
        from .bulk import merge_profile_arrays, profile_arrays

        if d_arr is not None and self._dpoint is None:
            self._upgrade_to_weighted()
        if not self._times:
            times, point, seg, dpoint, dseg, measure = profile_arrays(
                s_arr, e_arr, d_arr
            )
        else:
            times, point, seg, dpoint, dseg, measure = merge_profile_arrays(
                self._times,
                self._point,
                self._seg,
                s_arr,
                e_arr,
                d_arr,
                old_dpoint=self._dpoint,
                old_dseg=self._dseg,
            )
        self._times = times
        self._point = point
        self._seg = seg
        if self._dpoint is not None:
            self._dpoint = dpoint
            self._dseg = dseg
        self._measure = measure
        self._count += n

    # -- queries --------------------------------------------------------------

    def load_at(self, t: float) -> int:
        """Number of stored intervals active at instant ``t`` (closed)."""
        times = self._times
        i = bisect_left(times, t)
        if i < len(times) and times[i] == t:
            return self._point[i]
        if 0 < i < len(times):
            return self._seg[i - 1]
        return 0

    def max_load(self) -> int:
        """Peak load over all time — the clique number of the stored set."""
        return max(self._point, default=0)

    def max_load_in(self, start: float, end: float) -> int:
        """Maximum load over the closed window ``[start, end]``.

        The load function only increases at breakpoints, so the maximum is
        ``max(load_at(start), max(point[i] for start <= t_i <= end))``.
        """
        times = self._times
        lo = bisect_left(times, start)
        best = 0
        if not (lo < len(times) and times[lo] == start) and 0 < lo < len(times):
            best = self._seg[lo - 1]  # window starts inside a segment
        hi = bisect_right(times, end) - 1
        if hi >= lo:
            window_max = max(self._point[lo : hi + 1])
            if window_max > best:
                best = window_max
        return best

    def covered_measure_in(self, start: float, end: float) -> float:
        """Measure of ``[start, end]`` covered by at least one stored interval.

        The marginal busy-time growth of adding ``[start, end]`` to the
        machine is ``(end - start) - covered_measure_in(start, end)`` —
        the query behind BestFit-style placement policies.
        """
        times, seg = self._times, self._seg
        n = len(times) - 1
        if n < 1 or end <= start:
            return 0.0
        k = bisect_right(times, start) - 1
        if k < 0:
            k = 0
        total = 0.0
        while k < n and times[k] < end:
            if seg[k] > 0:
                lo = times[k] if times[k] > start else start
                hi = times[k + 1] if times[k + 1] < end else end
                if hi > lo:
                    total += hi - lo
            k += 1
        return total

    # -- demand-weighted queries ([15] capacity model) ------------------------

    @property
    def has_demands(self) -> bool:
        """True once any stored interval carried a non-unit demand."""
        return self._dpoint is not None

    def demand_at(self, t: float) -> int:
        """Total demand of the stored intervals active at instant ``t``."""
        if self._dpoint is None:
            return self.load_at(t)
        times = self._times
        i = bisect_left(times, t)
        if i < len(times) and times[i] == t:
            return self._dpoint[i]
        if 0 < i < len(times):
            return self._dseg[i - 1]
        return 0

    def max_demand(self) -> int:
        """Peak total demand over all time (== :meth:`max_load` when unit)."""
        if self._dpoint is None:
            return self.max_load()
        return max(self._dpoint, default=0)

    def max_demand_in(self, start: float, end: float) -> int:
        """Maximum total demand over the closed window ``[start, end]``.

        The demand-weighted twin of :meth:`max_load_in`; identical to it
        while only unit demands are stored.
        """
        if self._dpoint is None:
            return self.max_load_in(start, end)
        times = self._times
        lo = bisect_left(times, start)
        best = 0
        if not (lo < len(times) and times[lo] == start) and 0 < lo < len(times):
            best = self._dseg[lo - 1]  # window starts inside a segment
        hi = bisect_right(times, end) - 1
        if hi >= lo:
            window_max = max(self._dpoint[lo : hi + 1])
            if window_max > best:
                best = window_max
        return best

    def fits(self, start: float, end: float, g: int, demand: int = 1) -> bool:
        """True when adding ``[start, end]`` keeps the peak demand at most ``g``.

        This is the FirstFit/NextFit feasibility predicate: only instants
        inside the new job's window can become overloaded, so the test is
        ``max_demand_in(start, end) <= g - demand``.  While the profile holds
        only unit demands and the new interval has demand 1 — the rigid
        model — this is exactly the seed's cardinality check
        (``max_load_in(start, end) <= g - 1``) with an O(1) fast path when
        fewer than ``g`` intervals are stored at all.
        """
        if self._dpoint is None and demand == 1:
            if self._count < g:
                return True
            return self.max_load_in(start, end) < g
        return self.max_demand_in(start, end) + demand <= g

    def fits_many(self, starts, ends, g: int, demands=None) -> List[bool]:
        """Batch :meth:`fits`: one bool per query window, vectorized.

        ``demands=None`` means every query asks about a unit-demand job.
        All queries are answered against the *current* profile state (the
        batch does not insert anything).  Under ``BUSYTIME_PROFILE_INDEX=off``
        this degenerates to a python loop over :meth:`fits`.
        """
        if not _bulk_enabled():
            if demands is None:
                return [self.fits(s, e, g) for s, e in zip(starts, ends)]
            return [
                self.fits(s, e, g, demand=d)
                for s, e, d in zip(starts, ends, demands)
            ]
        import numpy as np

        from .bulk import window_maxima

        qs = np.asarray(starts, dtype=np.float64)
        qe = np.asarray(ends, dtype=np.float64)
        unit = demands is None or bool(np.all(np.asarray(demands) == 1))
        if self._dpoint is None and unit:
            if self._count < g:
                return [True] * len(qs)
            wmax = window_maxima(self._times, self._point, self._seg, qs, qe)
            return (wmax < g).tolist()
        if self._dpoint is None:
            dpoint, dseg = self._point, self._seg
        else:
            dpoint, dseg = self._dpoint, self._dseg
        d = 1 if demands is None else np.asarray(demands)
        wmax = window_maxima(self._times, dpoint, dseg, qs, qe)
        return (wmax + d <= g).tolist()

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SweepProfile(count={self._count}, measure={self._measure:g}, "
            f"breakpoints={len(self._times)})"
        )
