"""Sweep-line event utilities shared by graph construction and analysis.

Interval algorithms in this package repeatedly need the same primitive: walk
the sorted start/end events of a set of jobs while maintaining the set of
currently active jobs.  This module centralises that sweep so the clique
number, the machine-count profile ``M_t``, the load profile ``N_t`` and the
piecewise-constant integrals used by the analysis all share one correct,
well-tested implementation.

Closed-interval semantics are used throughout: at a coordinate where one job
ends and another starts, both are considered active (start events are
processed before end events), matching the conflict model of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from .intervals import Interval, Job

__all__ = [
    "Event",
    "sweep_events",
    "load_profile",
    "integrate_step_function",
    "breakpoints",
]


@dataclass(frozen=True, order=True)
class Event:
    """A single sweep event.

    Events order by ``(time, kind)`` with ``kind`` 0 for starts and 1 for
    ends so that, at equal coordinates, starts are processed first (closed
    intervals: a job starting exactly when another ends overlaps it).
    """

    time: float
    kind: int  # 0 = start, 1 = end
    job_id: int


def sweep_events(jobs: Iterable[Job]) -> List[Event]:
    """All start/end events of the given jobs in sweep order."""
    events: List[Event] = []
    for j in jobs:
        events.append(Event(j.start, 0, j.id))
        events.append(Event(j.end, 1, j.id))
    events.sort()
    return events


def breakpoints(jobs: Iterable[Job]) -> List[float]:
    """Sorted distinct endpoint coordinates of the given jobs."""
    pts = set()
    for j in jobs:
        pts.add(j.start)
        pts.add(j.end)
    return sorted(pts)


def load_profile(jobs: Sequence[Job]) -> List[Tuple[float, float, int]]:
    """The piecewise-constant function ``t -> N_t`` as ``(lo, hi, load)`` pieces.

    Only pieces of positive length are reported; the load on a piece is the
    number of jobs whose interval covers the piece's interior.  Degenerate
    (zero-length) jobs contribute to no positive-length piece but are still
    counted correctly by :func:`busytime.core.intervals.point_load`.
    """
    pts = breakpoints(jobs)
    profile: List[Tuple[float, float, int]] = []
    for lo, hi in zip(pts, pts[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        load = sum(1 for j in jobs if j.start <= mid <= j.end)
        profile.append((lo, hi, load))
    return profile


def integrate_step_function(
    jobs: Sequence[Job], value_at: Callable[[float], float]
) -> float:
    """Integrate ``value_at(t)`` over the breakpoint grid induced by ``jobs``.

    ``value_at`` must be constant on every open interval between consecutive
    breakpoints (it is evaluated at the midpoint of each piece).  Used by the
    Theorem 3.1 analysis check, which integrates the number of active
    machines ``M_t`` over time to recover the total busy time.
    """
    pts = breakpoints(jobs)
    total = 0.0
    for lo, hi in zip(pts, pts[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        total += (hi - lo) * value_at(mid)
    return total
