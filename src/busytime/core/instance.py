"""Problem instances: a set of jobs plus the parallelism parameter ``g``.

An :class:`Instance` bundles the job set :math:`\\mathcal{J}` with the
parallelism (grooming) parameter :math:`g \\ge 1` and exposes the structural
queries the algorithms and the analysis need:

* classification (proper / clique / laminar / bounded-length / connected),
* connected components of the induced interval graph (the paper assumes
  w.l.o.g. a connected instance; the solvers split on components),
* the ``len``/``span`` aggregates of Definition 1.1/1.2,
* canonical construction helpers (from raw tuples, from jobs, re-indexing).

Instances are immutable once built; algorithms never mutate their input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..pricing.series import BackgroundLoad
from .intervals import (
    Interval,
    Job,
    max_point_demand,
    max_point_load,
    point_demand,
    point_load,
    span,
    total_demand_length,
    total_length,
    union_intervals,
)

__all__ = ["Instance", "connected_components"]


def _build_jobs(intervals: Iterable, g: int) -> Tuple[Job, ...]:
    jobs: List[Job] = []
    for idx, item in enumerate(intervals):
        if isinstance(item, Job):
            jobs.append(item)
        elif isinstance(item, Interval):
            jobs.append(Job(id=idx, interval=item))
        elif isinstance(item, tuple) and len(item) == 2:
            jobs.append(Job(id=idx, interval=Interval(float(item[0]), float(item[1]))))
        else:
            raise TypeError(
                "instance items must be Job, Interval or (start, end) tuples; "
                f"got {item!r}"
            )
    return tuple(jobs)


@dataclass(frozen=True)
class Instance:
    """An immutable busy-time scheduling instance ``(J, g)``.

    Parameters
    ----------
    jobs:
        The job set.  Construct via :meth:`from_intervals` or pass
        :class:`~busytime.core.intervals.Job` objects directly.
    g:
        Parallelism parameter: the maximum number of jobs a machine may
        process simultaneously.  Must be ≥ 1.
    name:
        Optional label used by generators and experiment reports.
    site_capacity:
        Optional site-wide capacity cap: the total demand of *all* running
        jobs across every machine, plus the background load, must stay at
        or below this at every instant (FlexMeasures' site power limit).
        ``None`` means unconstrained.
    background:
        Optional inflexible :class:`~busytime.pricing.series.BackgroundLoad`
        pre-occupying site capacity.  Only meaningful together with
        ``site_capacity``; it never counts against a single machine's ``g``.
    """

    jobs: Tuple[Job, ...]
    g: int
    name: str = ""
    site_capacity: Optional[int] = None
    background: Optional[BackgroundLoad] = None

    # -- construction -------------------------------------------------------

    def __post_init__(self) -> None:
        if self.g < 1:
            raise ValueError(f"parallelism parameter g must be >= 1, got {self.g}")
        if not isinstance(self.jobs, tuple):
            object.__setattr__(self, "jobs", tuple(self.jobs))
        ids = [j.id for j in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique within an instance")
        for j in self.jobs:
            if j.demand > self.g:
                raise ValueError(
                    f"job {j.id} demands {j.demand} capacity units but g = "
                    f"{self.g}; such a job can never be scheduled"
                )
        if self.site_capacity is not None:
            if isinstance(self.site_capacity, bool) or not isinstance(
                self.site_capacity, int
            ):
                raise ValueError(
                    f"site_capacity must be an integer, got {self.site_capacity!r}"
                )
            if self.site_capacity < 1:
                raise ValueError(
                    f"site_capacity must be >= 1, got {self.site_capacity}"
                )
            for j in self.jobs:
                if j.demand > self.site_capacity:
                    raise ValueError(
                        f"job {j.id} demands {j.demand} units but the site "
                        f"capacity cap is {self.site_capacity}; such a job "
                        "can never be scheduled"
                    )
        if self.background is not None and not isinstance(
            self.background, BackgroundLoad
        ):
            raise ValueError(
                f"background must be a BackgroundLoad, got "
                f"{type(self.background).__name__}"
            )

    def _memo(self, key: str, compute):
        """Cache a structural query on this (immutable) instance.

        The engine's selection policies probe the same classifications
        (properness, clique number, length ratio) once per registered
        algorithm; memoising keeps that O(n log n) work to once per instance.
        Safe because instances are frozen and the cache bypasses dataclass
        equality/repr (it lives in ``__dict__``, not in the fields).
        """
        try:
            return self.__dict__[key]
        except KeyError:
            value = compute()
            object.__setattr__(self, key, value)
            return value

    @classmethod
    def from_intervals(
        cls,
        intervals: Iterable,
        g: int,
        name: str = "",
    ) -> "Instance":
        """Build an instance from ``(start, end)`` tuples, Intervals or Jobs."""
        return cls(jobs=_build_jobs(intervals, g), g=g, name=name)

    def with_g(self, g: int) -> "Instance":
        """A copy of this instance with a different parallelism parameter."""
        return Instance(
            jobs=self.jobs,
            g=g,
            name=self.name,
            site_capacity=self.site_capacity,
            background=self.background,
        )

    def restricted_to(self, job_ids: Iterable[int], name: str = "") -> "Instance":
        """The sub-instance induced by the given job ids (same ``g``)."""
        wanted = set(job_ids)
        sub = tuple(j for j in self.jobs if j.id in wanted)
        missing = wanted - {j.id for j in sub}
        if missing:
            raise KeyError(f"unknown job ids: {sorted(missing)}")
        return Instance(
            jobs=sub,
            g=self.g,
            name=name or self.name,
            site_capacity=self.site_capacity,
            background=self.background,
        )

    # -- basic accessors -----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of jobs."""
        return len(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    def job_by_id(self, job_id: int) -> Job:
        for j in self.jobs:
            if j.id == job_id:
                return j
        raise KeyError(f"no job with id {job_id}")

    @property
    def job_ids(self) -> Tuple[int, ...]:
        return tuple(j.id for j in self.jobs)

    # -- aggregates (Definitions 1.1 / 1.2) ----------------------------------

    @property
    def total_length(self) -> float:
        """``len(J)``: sum of job lengths."""
        return total_length(self.jobs)

    @property
    def span(self) -> float:
        """``span(J)``: measure of the union of all job intervals."""
        return span(self.jobs)

    @property
    def horizon(self) -> Tuple[float, float]:
        """Earliest start and latest completion over all jobs."""
        if not self.jobs:
            return (0.0, 0.0)
        return (min(j.start for j in self.jobs), max(j.end for j in self.jobs))

    def load_at(self, t: float) -> int:
        """Number of jobs active at time ``t`` (``N_t`` in Theorem 3.1's proof)."""
        return point_load(self.jobs, t)

    def demand_at(self, t: float) -> int:
        """Total capacity demand of the jobs active at time ``t``."""
        return point_demand(self.jobs, t)

    @property
    def clique_number(self) -> int:
        """Maximum number of simultaneously active jobs (interval-graph ω)."""
        return self._memo("_clique_number", lambda: max_point_load(self.jobs))

    # -- demand model ([15]) -------------------------------------------------

    @property
    def has_demands(self) -> bool:
        """True when any job carries a non-unit capacity demand."""
        return self._memo(
            "_has_demands", lambda: any(j.demand != 1 for j in self.jobs)
        )

    # -- flex extension (windows / site capacity) ----------------------------

    @property
    def has_windows(self) -> bool:
        """True when any job's window admits more than one placement."""
        return self._memo(
            "_has_windows", lambda: any(j.has_window for j in self.jobs)
        )

    @property
    def has_site_constraints(self) -> bool:
        """True when a site-wide capacity cap or background load applies."""
        return self.site_capacity is not None or self.background is not None

    @property
    def is_flex(self) -> bool:
        """True when the instance leaves the paper's fixed-interval model
        (windows, a site cap, or background load)."""
        return self.has_windows or self.has_site_constraints

    @property
    def max_demand(self) -> int:
        """Largest single-job capacity demand (1 for rigid instances)."""
        return max((j.demand for j in self.jobs), default=1)

    @property
    def peak_demand(self) -> int:
        """Peak total demand over all time (== ``clique_number`` when unit).

        The demand-weighted clique number: an instance fits on a single
        machine exactly when ``peak_demand <= g``.  Unit-demand instances
        delegate to the :attr:`clique_number` memo — the two sweeps compute
        the same number, so the structural shortcut and the classifiers
        share one O(n log n) pass.
        """
        if not self.has_demands:
            return self.clique_number
        return self._memo("_peak_demand", lambda: max_point_demand(self.jobs))

    @property
    def total_demand_length(self) -> float:
        """Demand-weighted work volume ``sum_j len(J_j) * s_j``.

        Equals :attr:`total_length` bit-for-bit on unit-demand instances;
        the [15] generalisation of the parallelism bound divides this by
        ``g``.
        """
        return total_demand_length(self.jobs)

    @property
    def max_length(self) -> float:
        return max((j.length for j in self.jobs), default=0.0)

    @property
    def min_length(self) -> float:
        return min((j.length for j in self.jobs), default=0.0)

    # -- classification ------------------------------------------------------

    def is_proper(self) -> bool:
        """True when no job interval is properly contained in another.

        Such instances induce *proper interval graphs* and admit the
        2-approximation of Section 3.1.  The check runs in ``O(n log n)``:
        after removing duplicate intervals, two intervals sharing a start
        point are a containment, and with all starts distinct the instance is
        proper exactly when the completion times are strictly increasing in
        start-time order (the paper uses this fact in Section 3.1: sorting by
        start time also sorts by completion time).
        """
        return self._memo("_is_proper", self._compute_is_proper)

    def _compute_is_proper(self) -> bool:
        unique = sorted({(j.start, j.end) for j in self.jobs})
        for i in range(1, len(unique)):
            if unique[i][0] == unique[i - 1][0]:
                # same start, different (larger) end -> proper containment
                return False
        running_max_end = float("-inf")
        for _, end in unique:
            if end <= running_max_end:
                return False
            running_max_end = end
        return True

    def is_clique(self) -> bool:
        """True when every pair of job intervals intersects.

        By the Helly property of intervals this is equivalent to all jobs
        sharing a common point:  max of starts <= min of ends.
        """
        if not self.jobs:
            return True
        return self._memo(
            "_is_clique",
            lambda: max(j.start for j in self.jobs) <= min(j.end for j in self.jobs),
        )

    def common_point(self) -> Optional[float]:
        """A point contained in every job interval, if one exists."""
        if not self.jobs:
            return None
        lo = max(j.start for j in self.jobs)
        hi = min(j.end for j in self.jobs)
        if lo > hi:
            return None
        return lo

    def is_laminar(self) -> bool:
        """True when every two job intervals are disjoint or nested.

        Laminar families are one of the special cases highlighted by the
        follow-up work cited in Section 1.3; the classifier is provided for
        completeness and used by the dispatcher.
        """
        return self._memo("_is_laminar", self._compute_is_laminar)

    def _compute_is_laminar(self) -> bool:
        jobs = sorted(self.jobs, key=lambda j: (j.start, -j.end))
        stack: List[Job] = []
        for j in jobs:
            # Laminarity is judged with *open*-overlap semantics: intervals
            # that merely touch at an endpoint are treated as disjoint, which
            # is the standard definition of a laminar family.
            while stack and stack[-1].end <= j.start:
                stack.pop()
            if stack and j.end > stack[-1].end:
                return False  # overlapping but not nested
            stack.append(j)
        return True

    def length_ratio(self) -> float:
        """Ratio between the longest and shortest job length (``d`` in §3.2).

        Returns ``inf`` when some job has zero length but another does not,
        and 1.0 for empty instances.
        """
        if not self.jobs:
            return 1.0
        return self._memo("_length_ratio", self._compute_length_ratio)

    def _compute_length_ratio(self) -> float:
        longest = self.max_length
        shortest = self.min_length
        if shortest == 0:
            return float("inf") if longest > 0 else 1.0
        return longest / shortest

    def is_bounded_length(self, d: float) -> bool:
        """True when every job length lies in ``[1, d]`` after normalising
        the shortest job to length 1 (the Section 3.2 regime)."""
        return self.length_ratio() <= d

    def is_connected(self) -> bool:
        """True when the induced interval graph is connected."""
        return len(connected_components(self)) <= 1

    def classify(self) -> str:
        """A coarse label used by the dispatcher and by experiment reports."""
        if self.is_clique():
            return "clique"
        if self.is_proper():
            return "proper"
        if self.is_laminar():
            return "laminar"
        return "general"

    # -- misc ----------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """A plain-dict snapshot used by reports and logs."""
        out: Dict[str, object] = {
            "name": self.name,
            "n": self.n,
            "g": self.g,
            "span": self.span,
            "total_length": self.total_length,
            "clique_number": self.clique_number,
            "class": self.classify(),
        }
        if self.has_demands:
            out["max_demand"] = self.max_demand
            out["peak_demand"] = self.peak_demand
        if self.has_windows:
            out["windowed_jobs"] = sum(1 for j in self.jobs if j.has_window)
        if self.site_capacity is not None:
            out["site_capacity"] = self.site_capacity
        if self.background is not None:
            out["background_peak"] = self.background.max_level
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "instance"
        return f"{label}(n={self.n}, g={self.g})"


def connected_components(instance: Instance) -> List[Instance]:
    """Split an instance into the connected components of its interval graph.

    The paper assumes w.l.o.g. that the interval graph is connected
    (Section 1.4); an optimal solution never mixes jobs from different
    components on one machine (splitting such a machine can only reduce cost),
    so every solver first decomposes into components.

    Components are computed by a sweep over the union of the job intervals:
    jobs whose intervals fall into the same maximal union segment form one
    component (touching intervals are considered overlapping, matching the
    closed-interval conflict semantics).

    Flex instances are *not* split: a windowed job may slide out of its
    nominal union segment, and a site-wide capacity cap couples components
    that are time-disjoint only at their nominal placements — either breaks
    the never-mix-components optimality argument, so such instances are
    returned whole.
    """
    if not instance.jobs:
        return []
    if instance.is_flex:
        return [instance]
    segments = union_intervals(instance.jobs)
    buckets: List[List[Job]] = [[] for _ in segments]
    # Segments are sorted and disjoint; binary search for the segment whose
    # start is <= job.start.
    starts = [seg.start for seg in segments]
    import bisect

    for job in instance.jobs:
        idx = bisect.bisect_right(starts, job.start) - 1
        buckets[idx].append(job)
    out = []
    for k, bucket in enumerate(buckets):
        if bucket:
            out.append(
                Instance(
                    jobs=tuple(bucket),
                    g=instance.g,
                    name=f"{instance.name or 'instance'}#cc{k}",
                )
            )
    return out
