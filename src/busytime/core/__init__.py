"""Core data model: intervals, jobs, instances, schedules and lower bounds."""

from .bounds import (
    best_lower_bound,
    clique_bound,
    combined_bound,
    component_bound,
    parallelism_bound,
    span_bound,
)
from .events import (
    Event,
    breakpoints,
    integrate_step_function,
    load_profile,
    sweep_events,
)
from .instance import Instance, connected_components
from .intervals import (
    Interval,
    Job,
    interval_contains,
    intervals_overlap,
    length,
    max_point_load,
    merge_intervals,
    point_load,
    properly_contains,
    span,
    total_length,
    union_intervals,
)
from .schedule import (
    InfeasibleScheduleError,
    Machine,
    Schedule,
    ScheduleBuilder,
    verify_schedule,
)

__all__ = [
    "Interval",
    "Job",
    "Instance",
    "Machine",
    "Schedule",
    "ScheduleBuilder",
    "InfeasibleScheduleError",
    "verify_schedule",
    "connected_components",
    "length",
    "total_length",
    "span",
    "union_intervals",
    "merge_intervals",
    "point_load",
    "max_point_load",
    "intervals_overlap",
    "interval_contains",
    "properly_contains",
    "parallelism_bound",
    "span_bound",
    "combined_bound",
    "component_bound",
    "clique_bound",
    "best_lower_bound",
    "Event",
    "sweep_events",
    "breakpoints",
    "load_profile",
    "integrate_step_function",
]
