"""Pluggable objectives: the cost-model axis of the problem space.

The paper's objective — minimise the sum of machine busy times — is one
point in a family.  Its own motivation (Section 4) prices optical hardware
by *activation* plus busy time, and the follow-up work [15] generalises the
capacity model.  This module makes the family a first-class, serialisable
API axis:

* a frozen :class:`CostModel` prices one machine as
  ``machine_weight * (activation_cost + busy_rate * busy_time)`` and a
  schedule as the sum over its non-empty machines;
* a registry maps *objective names* to default cost models.  Three ship
  built in:

  ``busy_time``
      the seed semantics and the default: ``activation_cost = 0``,
      ``busy_rate = 1`` — a schedule's cost is exactly its total busy time,
      bit-for-bit (``1.0 * b`` and ``0.0 + b`` are exact in IEEE floats and
      the summation order matches :attr:`Schedule.total_busy_time`);
  ``weighted_busy_time``
      busy time under a configurable per-unit rate (an energy price, a
      tariff); the default rate is 1 and callers override it through a
      request's ``cost_model``;
  ``machines_plus_busy``
      the optical-grooming shape: every opened machine pays a fixed
      activation cost ``a`` (default 1) on top of its busy time.

Everything downstream — :meth:`Schedule.cost_under`, the engine's candidate
selection and report values, the analysis ratios, the service fingerprint —
evaluates through a :class:`CostModel`, so a new objective plugs in by
registering a model and declaring algorithm support
(:attr:`busytime.algorithms.base.AlgorithmInfo.supported_objectives`).

Lower bounds generalise too: any feasible schedule opens at least
``ceil(peak_demand / g)`` machines (at the demand peak) and accrues at
least the Observation 1.1 busy time, so
``machine_weight * (activation_cost * ceil(peak/g) + busy_rate * LB)``
lower-bounds the optimal model cost (:meth:`CostModel.lower_bound`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..pricing.series import TariffSeries

__all__ = [
    "CostModel",
    "DEFAULT_OBJECTIVE",
    "register_objective",
    "get_cost_model",
    "registered_objectives",
]

#: The seed objective; requests that name nothing get this.
DEFAULT_OBJECTIVE = "busy_time"


@dataclass(frozen=True)
class CostModel:
    """A pricing rule for schedules: the serialisable problem-model axis.

    Parameters
    ----------
    objective:
        The registered objective name this model instantiates.
    activation_cost:
        Fixed cost ``a`` paid once per opened (non-empty) machine — the
        optical-grooming activation term.  Must be >= 0.
    busy_rate:
        Price per unit of machine busy time.  Must be >= 0.
    machine_weight:
        Optional uniform multiplier on every machine's priced cost (a
        heterogeneity hook for fleet-wide scaling).  Must be > 0.
    tariff:
        Optional :class:`~busytime.pricing.series.TariffSeries` making the
        per-unit price *time-varying*: a machine's busy measure is priced
        band by band (``busy_rate`` multiplies the tariff).  ``None`` keeps
        the flat rate; a constant tariff is still a rescaling of busy time.
    """

    objective: str = DEFAULT_OBJECTIVE
    activation_cost: float = 0.0
    busy_rate: float = 1.0
    machine_weight: float = 1.0
    tariff: Optional[TariffSeries] = None

    def __post_init__(self) -> None:
        if not self.objective or not isinstance(self.objective, str):
            raise ValueError("objective must be a non-empty string")
        if self.activation_cost < 0:
            raise ValueError(
                f"activation_cost must be >= 0, got {self.activation_cost}"
            )
        if self.busy_rate < 0:
            raise ValueError(f"busy_rate must be >= 0, got {self.busy_rate}")
        if self.machine_weight <= 0:
            raise ValueError(
                f"machine_weight must be > 0, got {self.machine_weight}"
            )
        if self.tariff is not None and not isinstance(self.tariff, TariffSeries):
            raise ValueError(
                f"tariff must be a TariffSeries, got {type(self.tariff).__name__}"
            )

    # -- evaluation ----------------------------------------------------------

    def machine_cost(self, busy_time: float) -> float:
        """The priced cost of one opened machine with the given busy time."""
        return self.machine_weight * (
            self.activation_cost + self.busy_rate * busy_time
        )

    def priced_busy_measure(self, machine) -> float:
        """One machine's busy measure priced by the tariff (rate 1 busy_rate).

        Without a tariff this is the machine's busy time unchanged.  A
        constant tariff multiplies it (exact ``1.0 * b`` for the unit
        tariff); a time-varying tariff integrates the machine profile's
        covered measure band by band, which works against both the linear
        :class:`~busytime.core.events.SweepProfile` and the indexed tree.
        """
        if self.tariff is None:
            return machine.busy_time
        if self.tariff.is_constant:
            return self.tariff.rates[0] * machine.busy_time
        lo = min(j.start for j in machine.jobs)
        hi = max(j.end for j in machine.jobs)
        return self.tariff.coverage_cost(machine.profile, lo, hi)

    def schedule_cost(self, schedule) -> float:
        """The priced cost of a schedule: sum over its non-empty machines.

        Under the default model this equals
        :attr:`~busytime.core.schedule.Schedule.total_busy_time` exactly
        (same summands, same order).
        """
        if self.tariff is None:
            return sum(
                self.machine_cost(m.busy_time) for m in schedule.machines if m.jobs
            )
        return sum(
            self.machine_cost(self.priced_busy_measure(m))
            for m in schedule.machines
            if m.jobs
        )

    def lower_bound(self, instance) -> float:
        """A valid lower bound on the optimal model cost of ``instance``.

        ``machine_weight * (activation_cost * min_machines + busy_rate *
        busy_LB)`` where ``min_machines = ceil(peak_demand / g)`` and
        ``busy_LB`` is the (demand-aware) Observation 1.1 bound of
        :func:`busytime.core.bounds.best_lower_bound`.  Both terms hold for
        every feasible schedule simultaneously, so their priced sum does
        too.  Degenerates exactly to ``busy_LB`` under the default model.

        A time-varying tariff swaps ``busy_LB`` for the window-aware
        bounds of :mod:`busytime.pricing.bounds` (tariff-weighted
        parallelism, per-band mandatory demand); a constant tariff simply
        rescales the flat bound.
        """
        from .bounds import best_lower_bound, min_machines_bound

        if self.tariff is None:
            busy = best_lower_bound(instance)
        elif self.tariff.is_constant:
            busy = self.tariff.rates[0] * best_lower_bound(instance)
        else:
            from ..pricing.bounds import tariff_lower_bound

            busy = tariff_lower_bound(instance, self.tariff)
        return self.machine_weight * (
            self.activation_cost * min_machines_bound(instance)
            + self.busy_rate * busy
        )

    # -- properties the engine branches on ------------------------------------

    @property
    def preserves_busy_time_ratios(self) -> bool:
        """True when the model is a positive scalar multiple of busy time.

        For such models every ``ALG <= c * OPT`` guarantee proved for the
        busy-time objective transfers verbatim (both sides scale by
        ``machine_weight * busy_rate``), so proven-ratio certificates and
        busy-time optima remain meaningful.  A time-varying tariff prices
        equal busy times differently depending on *where* they fall, so it
        breaks the rescaling; a constant tariff does not.
        """
        return (
            self.activation_cost == 0
            and self.busy_rate > 0
            and (
                self.tariff is None
                or (self.tariff.is_constant and self.tariff.rates[0] > 0)
            )
        )

    def price_busy_time(self, busy_time: float) -> float:
        """Price a *total busy time* under this model — valid only when
        :attr:`preserves_busy_time_ratios` holds.

        Used to translate a busy-time optimum (the exact solvers minimise
        busy time) into the model's units: with no activation term the
        model cost of any schedule is ``machine_weight * busy_rate *
        total_busy_time``, a multiplication by ``1.0`` (exact) for the
        default model.  An activation-priced model has no such rescaling —
        its optimum needs a different search — hence the guard.
        """
        if not self.preserves_busy_time_ratios:
            raise ValueError(
                f"cost model for {self.objective!r} is not a rescaling of "
                f"busy time (activation_cost={self.activation_cost}, "
                f"tariff={'set' if self.tariff is not None else 'none'}); a "
                f"busy-time optimum cannot be priced under it"
            )
        if self.tariff is None:
            return self.machine_weight * (self.busy_rate * busy_time)
        return self.machine_weight * (
            self.busy_rate * (self.tariff.rates[0] * busy_time)
        )

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict (inverse of :meth:`from_dict`).

        The ``tariff`` key appears only when a tariff is set, so documents
        and fingerprints of flat-rate models are byte-identical to the
        pre-tariff era.
        """
        out: Dict[str, object] = {
            "objective": self.objective,
            "activation_cost": self.activation_cost,
            "busy_rate": self.busy_rate,
            "machine_weight": self.machine_weight,
        }
        if self.tariff is not None:
            out["tariff"] = self.tariff.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CostModel":
        """Rebuild a model from :meth:`to_dict` output (unknown keys rejected)."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"cost model must be a JSON object, got {type(data).__name__}"
            )
        unknown = set(data) - {
            "objective",
            "activation_cost",
            "busy_rate",
            "machine_weight",
            "tariff",
        }
        if unknown:
            raise ValueError(f"unknown cost-model fields: {sorted(unknown)}")
        kwargs: Dict[str, object] = {}
        if "objective" in data:
            kwargs["objective"] = data["objective"]
        for key in ("activation_cost", "busy_rate", "machine_weight"):
            if key in data:
                value = data[key]
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ValueError(
                        f"cost-model field {key!r} must be a number, got "
                        f"{type(value).__name__}"
                    )
                kwargs[key] = float(value)
        if "tariff" in data and data["tariff"] is not None:
            kwargs["tariff"] = TariffSeries.from_dict(data["tariff"])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Objective registry
# ---------------------------------------------------------------------------

_OBJECTIVES: Dict[str, CostModel] = {}


def register_objective(model: CostModel, overwrite: bool = False) -> CostModel:
    """Register ``model`` as the default for its objective name."""
    if model.objective in _OBJECTIVES and not overwrite:
        raise KeyError(f"objective {model.objective!r} already registered")
    _OBJECTIVES[model.objective] = model
    return model


def get_cost_model(objective: str) -> CostModel:
    """The registered default :class:`CostModel` for an objective name."""
    try:
        return _OBJECTIVES[objective]
    except KeyError:
        raise KeyError(
            f"unknown objective {objective!r}; registered: "
            f"{registered_objectives()}"
        ) from None


def registered_objectives() -> Tuple[str, ...]:
    """All registered objective names, default first then alphabetical."""
    rest = sorted(name for name in _OBJECTIVES if name != DEFAULT_OBJECTIVE)
    if DEFAULT_OBJECTIVE in _OBJECTIVES:
        return (DEFAULT_OBJECTIVE, *rest)
    return tuple(rest)


register_objective(CostModel(objective="busy_time"))
register_objective(CostModel(objective="weighted_busy_time"))
register_objective(CostModel(objective="machines_plus_busy", activation_cost=1.0))
# Time-of-use pricing: the registry default is the unit tariff (exactly
# busy_time semantics); callers attach a real TariffSeries through their
# request's cost_model.
register_objective(CostModel(objective="tariff_busy_time"))
