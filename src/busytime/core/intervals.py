"""Interval and job primitives (Definitions 1.1 and 1.2 of the paper).

The paper models every job :math:`J_j` as a closed interval
:math:`[s_j, c_j]` on the real line along which the job *must* be processed
(no slack, no preemption).  Two quantities defined on intervals and sets of
intervals drive the whole analysis:

``len``
    the length of a single interval, :math:`c - s`, extended additively to a
    set of intervals (Definition 1.1);

``span``
    the measure of the union of a set of intervals,
    :math:`span(\\mathcal{I}) = len(\\cup \\mathcal{I})` (Definition 1.2).

``span(I) <= len(I)`` always holds, with equality exactly when the intervals
are pairwise disjoint — this is Observation-level material in the paper and
is exercised heavily by the property-based tests.

This module contains only plain, immutable value objects and pure functions;
all algorithmic content lives in :mod:`busytime.algorithms`.

The point-load helpers here (:func:`point_load`, :func:`max_point_load`,
:func:`span`) recompute their answer from scratch on every call.  That is
deliberate: they serve as the independent slow-path *oracle* against which
the incrementally maintained :class:`busytime.core.events.SweepProfile`
machine state — the hot-path answer to the same questions — is
cross-checked by ``verify_schedule`` and the property-based tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Interval",
    "Job",
    "length",
    "total_length",
    "total_demand_length",
    "union_intervals",
    "span",
    "intervals_overlap",
    "interval_contains",
    "properly_contains",
    "merge_intervals",
    "point_load",
    "max_point_load",
    "point_demand",
    "max_point_demand",
]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[start, end]`` on the real line.

    Ordering is lexicographic on ``(start, end)`` which is convenient both
    for the proper-interval greedy (sort by start time) and for canonical
    output.

    Raises
    ------
    ValueError
        if ``end < start`` (zero-length intervals are allowed; the Fig. 4
        construction and the Bounded_Length analysis use degenerate busy
        intervals of length zero).
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if math.isnan(self.start) or math.isnan(self.end):
            raise ValueError("interval endpoints must not be NaN")
        if self.end < self.start:
            raise ValueError(
                f"interval end ({self.end}) must not precede start ({self.start})"
            )

    @property
    def length(self) -> float:
        """``len(I) = end - start`` (Definition 1.1)."""
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True when the two closed intervals share at least one point.

        Closed-interval semantics match the paper: two jobs that merely touch
        at an endpoint *do* conflict (both are "active" at the shared
        instant), which is what the clique/parallelism constraint counts.
        """
        return self.start <= other.end and other.start <= self.end

    def overlaps_openly(self, other: "Interval") -> bool:
        """True when the two intervals share an interval of positive length."""
        return self.start < other.end and other.start < self.end

    def contains_point(self, t: float) -> bool:
        """True when ``t`` lies inside the closed interval."""
        return self.start <= t <= self.end

    def contains(self, other: "Interval") -> bool:
        """True when ``other`` is (not necessarily properly) contained in ``self``."""
        return self.start <= other.start and other.end <= self.end

    def properly_contains(self, other: "Interval") -> bool:
        """True when ``other ⊂ self`` with at least one strict endpoint.

        Proper-interval instances (Section 3.1) are exactly those with no
        properly contained pair.
        """
        return self.contains(other) and (
            self.start < other.start or other.end < self.end
        )

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """The overlap of the two intervals, or ``None`` if disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        """The smallest interval containing both (the busy interval of the pair)."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def shifted(self, delta: float) -> "Interval":
        """A copy translated by ``delta``."""
        return Interval(self.start + delta, self.end + delta)

    def scaled(self, factor: float) -> "Interval":
        """A copy with both endpoints multiplied by ``factor`` (must be ≥ 0)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return Interval(self.start * factor, self.end * factor)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.start, self.end)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start:g}, {self.end:g}]"


@dataclass(frozen=True)
class Job:
    """A job: an interval plus an identifier and optional metadata.

    Parameters
    ----------
    id:
        Any hashable identifier; generators use consecutive integers, the
        optical reduction uses the originating lightpath id.
    interval:
        The processing window ``[s_j, c_j]``.
    weight:
        Unused by the paper's objective but carried through for downstream
        cost accounting; defaults to 1.
    tag:
        Free-form label used by generators and the optical reduction.
    demand:
        Machine-capacity demand ``s_j`` in the follow-up model of [15]
        (Khandekar–Schieber–Shachnai–Tamir): a machine may host any job set
        whose *total demand* at each instant is at most ``g``.  Demands are
        integral capacity units so the feasibility counters stay exact; the
        default ``1`` degenerates to the paper's cardinality constraint.
    release / deadline:
        An optional flex window: the job may be *placed* anywhere inside
        ``[release, deadline]`` (so ``length <= deadline - release``).
        ``interval`` is always the job's *placed* position — algorithms
        slide a job by building a copy via :meth:`placed_at`.  ``None``
        (the default) pins the corresponding side to the placed interval,
        so a job with neither field set is the paper's fixed job — the
        degenerate window ``[start, end]``.
    """

    id: int
    interval: Interval
    weight: float = 1.0
    tag: str = ""
    demand: int = 1
    release: Optional[float] = None
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("job weight must be positive")
        if isinstance(self.demand, bool) or not isinstance(self.demand, int):
            raise ValueError(
                f"job demand must be an integer (capacity units), got "
                f"{self.demand!r}"
            )
        if self.demand < 1:
            raise ValueError(f"job demand must be >= 1, got {self.demand}")
        if self.release is not None:
            if math.isnan(self.release):
                raise ValueError("job release must not be NaN")
            if self.release > self.interval.start:
                raise ValueError(
                    f"job release ({self.release}) must not exceed the placed "
                    f"start ({self.interval.start})"
                )
        if self.deadline is not None:
            if math.isnan(self.deadline):
                raise ValueError("job deadline must not be NaN")
            if self.deadline < self.interval.end:
                raise ValueError(
                    f"job deadline ({self.deadline}) must not precede the "
                    f"placed end ({self.interval.end})"
                )

    @property
    def start(self) -> float:
        return self.interval.start

    @property
    def end(self) -> float:
        return self.interval.end

    @property
    def length(self) -> float:
        return self.interval.length

    @property
    def window_release(self) -> float:
        """The earliest feasible start (the placed start for fixed jobs)."""
        return self.interval.start if self.release is None else self.release

    @property
    def window_deadline(self) -> float:
        """The latest feasible completion (the placed end for fixed jobs)."""
        return self.interval.end if self.deadline is None else self.deadline

    @property
    def has_window(self) -> bool:
        """True when the window admits more than one placement."""
        if self.release is None and self.deadline is None:
            return False
        return self.window_deadline - self.window_release > self.length

    def window(self) -> Interval:
        """The flex window ``[release, deadline]`` as an interval."""
        return Interval(self.window_release, self.window_deadline)

    def placed_at(self, new_start: float, tol: float = 1e-9) -> "Job":
        """A copy placed at ``new_start`` (same id, length, window, metadata).

        The requested position is clamped into the window when it is
        within ``tol`` of a boundary (candidate starts like
        ``deadline - length`` are derived arithmetic), and rejected when
        genuinely outside.
        """
        if not self.has_window:
            if new_start == self.interval.start:
                return self
            raise ValueError(f"job {self.id} is fixed; cannot place at {new_start}")
        lo = self.window_release
        hi = self.window_deadline - self.length
        if new_start < lo - tol or new_start > hi + tol:
            raise ValueError(
                f"start {new_start} outside window [{lo}, {hi}] of job {self.id}"
            )
        start = min(max(new_start, lo), hi)
        end = start + self.length
        if self.deadline is not None and end > self.deadline:
            # (deadline - length) + length can overshoot deadline by one
            # ulp; snap to the boundary rather than fail validation.
            end = self.deadline
        return Job(
            id=self.id,
            interval=Interval(start, end),
            weight=self.weight,
            tag=self.tag,
            demand=self.demand,
            release=self.release,
            deadline=self.deadline,
        )

    def mandatory_interval(self) -> Optional["Interval"]:
        """The times the job occupies under *every* feasible placement.

        A job of length ``l`` in window ``[r, d]`` is busy throughout
        ``[d - l, r + l]`` whenever that interval is non-degenerate
        (i.e. slack < length); fixed jobs return their interval exactly.
        Window-aware lower bounds integrate demand over mandatory parts —
        the windowed analogue of the paper's ``N_t`` counting.
        """
        if not self.has_window:
            return self.interval
        lo = self.window_deadline - self.length
        hi = self.window_release + self.length
        if lo > hi:
            return None
        return Interval(lo, hi)

    def overlaps(self, other: "Job") -> bool:
        return self.interval.overlaps(other.interval)

    def active_at(self, t: float) -> bool:
        return self.interval.contains_point(t)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"J{self.id}{self.interval}"


# ---------------------------------------------------------------------------
# Pure functions on intervals / jobs (Definitions 1.1, 1.2)
# ---------------------------------------------------------------------------


def _as_interval(obj) -> Interval:
    """Accept either an :class:`Interval` or a :class:`Job`."""
    if isinstance(obj, Job):
        return obj.interval
    if isinstance(obj, Interval):
        return obj
    raise TypeError(f"expected Interval or Job, got {type(obj).__name__}")


def length(obj) -> float:
    """``len`` of a single interval or job (Definition 1.1)."""
    return _as_interval(obj).length


def total_length(items: Iterable) -> float:
    """``len`` of a set of intervals/jobs: the sum of individual lengths."""
    return sum(_as_interval(it).length for it in items)


def union_intervals(items: Iterable) -> List[Interval]:
    """The union of a set of intervals as a sorted list of disjoint intervals.

    Touching intervals (one ends exactly where the next starts) are merged,
    matching the closed-interval semantics used throughout.
    """
    ivs = sorted((_as_interval(it) for it in items), key=lambda iv: (iv.start, iv.end))
    merged: List[Interval] = []
    for iv in ivs:
        if merged and iv.start <= merged[-1].end:
            if iv.end > merged[-1].end:
                merged[-1] = Interval(merged[-1].start, iv.end)
        else:
            merged.append(iv)
    return merged


def merge_intervals(items: Iterable) -> List[Interval]:
    """Alias of :func:`union_intervals` (kept for readability at call sites)."""
    return union_intervals(items)


def span(items: Iterable) -> float:
    """``span(I) = len(∪ I)`` (Definition 1.2).

    The busy time of a machine equals the span of the jobs assigned to it
    (once the w.l.o.g. contiguity argument of Section 1.1 is applied — our
    cost accounting uses the union measure directly, which is exactly the
    total busy time after splitting a machine at its idle gaps).
    """
    return sum(iv.length for iv in union_intervals(items))


def intervals_overlap(a, b) -> bool:
    """True when the two intervals/jobs share at least one point."""
    return _as_interval(a).overlaps(_as_interval(b))


def interval_contains(outer, inner) -> bool:
    """True when ``inner`` is contained in ``outer``."""
    return _as_interval(outer).contains(_as_interval(inner))


def properly_contains(outer, inner) -> bool:
    """True when ``inner`` is properly contained in ``outer``."""
    return _as_interval(outer).properly_contains(_as_interval(inner))


def point_load(items: Sequence, t: float) -> int:
    """Number of intervals/jobs active at time ``t`` (the paper's ``N_t``)."""
    return sum(1 for it in items if _as_interval(it).contains_point(t))


def _demand_of(obj) -> int:
    """The capacity demand of an item: ``Job.demand``, or 1 for bare intervals."""
    return obj.demand if isinstance(obj, Job) else 1


def total_demand_length(items: Iterable) -> float:
    """Demand-weighted length ``sum_j len(J_j) * s_j`` (the [15] work volume).

    With unit demands this reduces bit-for-bit to :func:`total_length`
    (``len * 1`` is exact and the summation order is identical).
    """
    return sum(_as_interval(it).length * _demand_of(it) for it in items)


def point_demand(items: Sequence, t: float) -> int:
    """Total demand of the intervals/jobs active at time ``t``.

    The demand-weighted counterpart of :func:`point_load`; equal to it on
    unit-demand sets.
    """
    return sum(
        _demand_of(it) for it in items if _as_interval(it).contains_point(t)
    )


def max_point_demand(items: Sequence) -> int:
    """Peak total demand over all time (the [15] capacity constraint's LHS).

    The demand-weighted counterpart of :func:`max_point_load`, computed by
    the same closed-interval endpoint sweep (starts before ends at equal
    coordinates); equal to it on unit-demand sets.  This is the *slow-path
    oracle* for the demand-aware machine feasibility check —
    ``verify_schedule`` cross-checks the maintained
    :class:`busytime.core.events.SweepProfile` answers against it.
    """
    events: List[Tuple[float, int, int]] = []
    for it in items:
        iv = _as_interval(it)
        d = _demand_of(it)
        events.append((iv.start, 0, d))
        events.append((iv.end, 1, d))
    events.sort(key=lambda e: (e[0], e[1]))
    load = best = 0
    for _, kind, d in events:
        if kind == 0:
            load += d
            if load > best:
                best = load
        else:
            load -= d
    return best


def max_point_load(items: Sequence) -> int:
    """The maximum number of simultaneously active intervals.

    For an interval set this equals the clique number of the induced interval
    graph (Helly property of intervals), computed here by a left-to-right
    sweep over endpoint events.  Closed-interval semantics: an interval that
    starts exactly when another ends counts as overlapping, so start events
    are processed before end events at equal coordinates.
    """
    events: List[Tuple[float, int]] = []
    for it in items:
        iv = _as_interval(it)
        # start events get priority 0, end events priority 1 so that at a
        # shared coordinate the start is counted before the end is released.
        events.append((iv.start, 0))
        events.append((iv.end, 1))
    events.sort()
    load = best = 0
    for _, kind in events:
        if kind == 0:
            load += 1
            best = max(best, load)
        else:
            load -= 1
    return best
