"""Schedules: assignments of jobs to machines, their cost and feasibility.

A *schedule* is simply a partition of the job set into machines; machine
``M_i`` becomes busy at the earliest start of any job assigned to it and
stays busy until the latest completion (Section 1.1's w.l.o.g. contiguity
argument).  The cost of a machine is the span of its job set and the cost of
the schedule is the sum over machines — exactly the quantity the paper
minimises.

Feasibility of a machine means that at no instant more than ``g`` of its jobs
overlap (the parallelism constraint), i.e. the clique number of the induced
interval graph of the machine's jobs is at most ``g``.

The :class:`ScheduleBuilder` is the mutable companion used by the algorithms
while they assign jobs; :meth:`ScheduleBuilder.freeze` yields the immutable
:class:`Schedule` handed back to callers.

Hot-path queries — ``fits``, ``can_accommodate``, ``busy_time``,
``peak_parallelism``, ``machines_active_at`` — are answered from an
incrementally maintained :class:`~busytime.core.events.SweepProfile` per
machine rather than by re-deriving the load profile from the job list on
every call.  :func:`verify_schedule` deliberately does *not* use the
profiles: it recomputes feasibility and busy time from the raw job lists
with the slow-path primitives of :mod:`busytime.core.intervals` and asserts
the profile-backed answers agree, so every validated schedule cross-checks
the fast path against the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .events import SweepProfile
from .instance import Instance
from .profile_index import make_profile, make_profile_from_intervals
from .intervals import (
    Interval,
    Job,
    max_point_demand,
    max_point_load,
    span,
    union_intervals,
)

__all__ = [
    "Machine",
    "Schedule",
    "ScheduleBuilder",
    "InfeasibleScheduleError",
    "ProfileOracleMismatchError",
    "verify_schedule",
]


class InfeasibleScheduleError(ValueError):
    """Raised when a schedule violates the parallelism or coverage rules."""


class ProfileOracleMismatchError(RuntimeError):
    """Raised when a sweep-profile answer disagrees with the slow-path oracle.

    This signals an *internal* inconsistency of the fast-path machine state,
    not an infeasible schedule — deliberately a :class:`RuntimeError` so it
    is never swallowed by callers that branch on
    :meth:`Schedule.is_feasible`.
    """


@dataclass(frozen=True)
class Machine:
    """One machine of a schedule: an index and the jobs assigned to it."""

    index: int
    jobs: Tuple[Job, ...]

    @property
    def busy_intervals(self) -> Tuple[Interval, ...]:
        """The (possibly non-contiguous) union of the assigned job intervals.

        The paper's w.l.o.g. step splits a machine with idle gaps into one
        machine per contiguous piece; the busy-time cost is identical either
        way, so we keep the jobs together and account the union measure.
        """
        return tuple(union_intervals(self.jobs))

    @property
    def busy_interval(self) -> Optional[Interval]:
        """The hull ``[min start, max completion]`` of the machine, or None."""
        if not self.jobs:
            return None
        return Interval(min(j.start for j in self.jobs), max(j.end for j in self.jobs))

    @property
    def profile(self):
        """The machine's sweep-line load profile, built once and cached.

        ``Machine`` is immutable, so the profile is derived lazily from the
        job tuple on first access and reused by every subsequent query
        (``busy_time``, ``peak_parallelism``, ``can_accommodate``, ...).
        The backend — linear :class:`~busytime.core.events.SweepProfile` or
        the indexed tree — follows the ``BUSYTIME_PROFILE_INDEX`` flag; both
        answer the same API.
        """
        prof = self.__dict__.get("_profile")
        if prof is None:
            prof = make_profile_from_intervals(self.jobs)
            object.__setattr__(self, "_profile", prof)
        return prof

    @property
    def busy_time(self) -> float:
        """``busy_i``: the total busy time of this machine (span of its jobs)."""
        return self.profile.measure

    @property
    def load(self) -> int:
        """Number of jobs assigned to this machine."""
        return len(self.jobs)

    @property
    def peak_parallelism(self) -> int:
        """Maximum number of this machine's jobs active at any instant."""
        return self.profile.max_load()

    @property
    def peak_demand(self) -> int:
        """Peak total capacity demand of this machine's jobs at any instant.

        Equals :attr:`peak_parallelism` on unit-demand machines; the
        demand-aware feasibility constraint of [15] is
        ``peak_demand <= g``.
        """
        return self.profile.max_demand()

    def active_job_count(self, t: float) -> int:
        return self.profile.load_at(t)

    def is_feasible(self, g: int) -> bool:
        """True when the machine's total demand never exceeds ``g``.

        With unit demands this is the paper's "never more than ``g`` jobs
        at once" cardinality constraint.
        """
        return self.peak_demand <= g

    def can_accommodate(self, job: Job, g: int) -> bool:
        """True when adding ``job`` keeps the machine feasible for ``g``.

        Only instants inside ``job``'s interval can become overloaded, so the
        check asks the maintained profile for the peak demand inside
        ``job``'s window and requires ``job``'s own demand to still fit
        under ``g`` (the cardinality check of the rigid model when all
        demands are 1).
        """
        return self.profile.fits(job.start, job.end, g, demand=job.demand)

    def without_job(self, job_id: int) -> "Machine":
        """A copy of this machine with one job removed.

        The removal is routed through
        :meth:`~busytime.core.events.SweepProfile.remove` on a snapshot of
        the cached profile (when one exists), so the derived machine keeps
        answering its hot-path queries from incrementally maintained state
        rather than a rebuild — the same first-class ``unassign`` path the
        mutable :class:`ScheduleBuilder` uses.
        """
        remaining = tuple(j for j in self.jobs if j.id != job_id)
        if len(remaining) == len(self.jobs):
            raise KeyError(f"machine {self.index} does not process job {job_id}")
        removed = next(j for j in self.jobs if j.id == job_id)
        machine = Machine(index=self.index, jobs=remaining)
        cached = self.__dict__.get("_profile")
        if cached is not None:
            profile = cached.copy()
            profile.remove(removed.start, removed.end, demand=removed.demand)
            object.__setattr__(machine, "_profile", profile)
        return machine

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"M{self.index}({len(self.jobs)} jobs, busy={self.busy_time:g})"


@dataclass(frozen=True)
class Schedule:
    """An immutable solution: the instance plus the machine partition.

    Attributes
    ----------
    instance:
        The instance the schedule solves.
    machines:
        The machines, in the order they were opened by the algorithm.
    algorithm:
        Name of the producing algorithm (for reports).
    meta:
        Free-form metadata (e.g. parameters, certificates) attached by the
        producing algorithm.
    """

    instance: Instance
    machines: Tuple[Machine, ...]
    algorithm: str = ""
    meta: Mapping[str, object] = field(default_factory=dict)

    # -- cost ----------------------------------------------------------------

    @property
    def total_busy_time(self) -> float:
        """The paper's objective value: sum of machine busy times."""
        return sum(m.busy_time for m in self.machines)

    @property
    def cost(self) -> float:
        """The seed objective (total busy time); see :meth:`cost_under` for
        the general cost-model axis."""
        return self.total_busy_time

    def cost_under(self, model) -> float:
        """The schedule's cost under a :class:`~busytime.core.objectives.CostModel`.

        ``cost_under(get_cost_model("busy_time"))`` equals
        :attr:`total_busy_time` exactly (same summands, same order); other
        models add activation / rate / weight terms per machine.
        """
        return model.schedule_cost(self)

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def num_contiguous_machines(self) -> int:
        """Number of machines after splitting idle gaps (the paper's w.l.o.g.
        contiguous-machine normal form); the cost is unchanged by the split."""
        return sum(len(m.busy_intervals) for m in self.machines)

    def machine_of(self, job_id: int) -> int:
        """Index of the machine processing the given job."""
        for m in self.machines:
            for j in m.jobs:
                if j.id == job_id:
                    return m.index
        raise KeyError(f"job {job_id} is not scheduled")

    def assignment(self) -> Dict[int, int]:
        """Mapping job id -> machine index."""
        out: Dict[int, int] = {}
        for m in self.machines:
            for j in m.jobs:
                out[j.id] = m.index
        return out

    def machines_active_at(self, t: float) -> int:
        """``M_t``: number of machines with at least one active job at ``t``."""
        return sum(1 for m in self.machines if m.active_job_count(t) > 0)

    @property
    def peak_parallelism(self) -> int:
        """Largest per-machine parallelism anywhere in the schedule.

        Feasibility (Theorem 2.1's capacity constraint) is exactly
        ``peak_parallelism <= g``; answered from the per-machine profiles.
        """
        return max((m.peak_parallelism for m in self.machines), default=0)

    # -- feasibility ---------------------------------------------------------

    def is_feasible(self) -> bool:
        try:
            self.validate()
        except InfeasibleScheduleError:
            return False
        return True

    def validate(self) -> None:
        """Raise :class:`InfeasibleScheduleError` if the schedule is invalid.

        Checks: every job of the instance is scheduled exactly once, no
        foreign jobs appear, and every machine respects the parallelism
        parameter ``g``.
        """
        verify_schedule(self)

    # -- misc ----------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm or "unknown",
            "instance": self.instance.name,
            "n": self.instance.n,
            "g": self.instance.g,
            "machines": self.num_machines,
            "total_busy_time": self.total_busy_time,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule({self.algorithm or 'unknown'}: "
            f"{self.num_machines} machines, busy={self.total_busy_time:g})"
        )


def verify_schedule(schedule: Schedule, mode: str = "full") -> None:
    """Validate a schedule against its instance (module-level helper).

    This is the deliberate *slow path*: it recomputes feasibility with
    :func:`~busytime.core.intervals.max_point_load` and busy time with
    :func:`~busytime.core.intervals.span` directly from the raw job lists,
    independently of the :class:`~busytime.core.events.SweepProfile` fast
    path — and then asserts the profile-backed answers agree, so every
    validated schedule cross-checks the sweep-line machine state against
    the brute-force oracle.

    ``mode="batch"`` keeps exactly the same checks but computes the
    per-machine oracle quantities with one vectorized lexsort + cumsum
    sweep per machine (:func:`~busytime.core.bulk.machine_peaks`) instead
    of the pure-python event sweeps — the same numbers from the same raw
    job arrays, never from a profile, so independence from both profile
    backends is preserved.  It is what makes validating the n = 10^6
    trajectory point tractable.
    """
    if mode not in ("full", "batch"):
        raise ValueError(f"verify mode must be 'full' or 'batch', got {mode!r}")
    instance = schedule.instance
    expected_ids = set(instance.job_ids)
    by_id = {j.id: j for j in instance.jobs}
    tol = 1e-9
    seen: Dict[int, int] = {}
    for m in schedule.machines:
        for j in m.jobs:
            if j.id not in expected_ids:
                raise InfeasibleScheduleError(
                    f"machine {m.index} schedules unknown job id {j.id}"
                )
            if j.id in seen:
                raise InfeasibleScheduleError(
                    f"job {j.id} scheduled on machines {seen[j.id]} and {m.index}"
                )
            seen[j.id] = m.index
            # Window check: the assigned interval must be a valid *placement*
            # of the instance job — same length, inside [release, deadline].
            # Fixed jobs (the degenerate window) must sit exactly at their
            # nominal interval.  Checked from the raw intervals, independent
            # of any profile.
            ref = by_id[j.id]
            if j.interval != ref.interval:
                if not ref.has_window:
                    raise InfeasibleScheduleError(
                        f"job {j.id} is fixed at {ref.interval} but scheduled "
                        f"at {j.interval}"
                    )
                scale = max(1.0, abs(ref.length))
                if abs(j.length - ref.length) > tol * scale:
                    raise InfeasibleScheduleError(
                        f"job {j.id} has length {ref.length} but is scheduled "
                        f"with length {j.length}"
                    )
                lo, hi = ref.window_release, ref.window_deadline
                if j.start < lo - tol * scale or j.end > hi + tol * scale:
                    raise InfeasibleScheduleError(
                        f"job {j.id} placed at {j.interval}, outside its "
                        f"window [{lo}, {hi}]"
                    )
    missing = expected_ids - set(seen)
    if missing:
        raise InfeasibleScheduleError(f"jobs never scheduled: {sorted(missing)}")
    if instance.site_capacity is not None:
        # Site-wide capacity oracle ([15]'s demand sweep over *all* machines
        # plus the inflexible background bands): total running demand must
        # never exceed the cap.  Demands and levels are integers, so the
        # comparison is exact.
        items: List[Job] = [j for m in schedule.machines for j in m.jobs]
        if instance.background is not None:
            fake = -1
            for lo, hi, level in instance.background.bands():
                items.append(
                    Job(id=fake, interval=Interval(lo, hi), demand=level)
                )
                fake -= 1
        site_peak = max_point_demand(items)
        if site_peak > instance.site_capacity:
            raise InfeasibleScheduleError(
                f"site demand peaks at {site_peak} but the site capacity "
                f"cap is {instance.site_capacity}"
            )
    for m in schedule.machines:
        if mode == "batch":
            from .bulk import job_arrays, machine_peaks

            b_starts, b_ends, b_demands = job_arrays(m.jobs)
            demanding = b_demands is not None
            peak, demand_peak, oracle_busy = machine_peaks(
                b_starts, b_ends, b_demands
            )
            if not demanding:
                demand_peak = peak
        else:
            peak = max_point_load(m.jobs)
            demanding = any(j.demand != 1 for j in m.jobs)
            # Demand-aware capacity constraint ([15]): total demand <= g at
            # every instant.  On unit-demand machines the demand peak *is*
            # the cardinality peak, so the oracle sweep below is skipped and
            # the error message keeps the paper's wording.
            demand_peak = max_point_demand(m.jobs) if demanding else peak
            oracle_busy = None
        if demand_peak > instance.g + (1e-9 if mode == "batch" and demanding else 0):
            if demanding:
                raise InfeasibleScheduleError(
                    f"machine {m.index} reaches total demand {demand_peak} "
                    f"but g = {instance.g}"
                )
            raise InfeasibleScheduleError(
                f"machine {m.index} runs {peak} jobs simultaneously "
                f"but g = {instance.g}"
            )
        # Cross-check the sweep-profile fast path against the oracle.
        if m.peak_parallelism != peak:
            raise ProfileOracleMismatchError(
                f"machine {m.index}: profile peak {m.peak_parallelism} "
                f"disagrees with oracle peak {peak}"
            )
        demand_tol = 1e-9 if (mode == "batch" and demanding) else 0
        if abs(m.peak_demand - demand_peak) > demand_tol:
            raise ProfileOracleMismatchError(
                f"machine {m.index}: profile demand peak {m.peak_demand} "
                f"disagrees with oracle demand peak {demand_peak}"
            )
        if oracle_busy is None:
            oracle_busy = span(m.jobs)
        if abs(m.busy_time - oracle_busy) > 1e-9 * max(1.0, abs(oracle_busy)):
            raise ProfileOracleMismatchError(
                f"machine {m.index}: profile busy time {m.busy_time!r} "
                f"disagrees with oracle span {oracle_busy!r}"
            )


class ScheduleBuilder:
    """Mutable helper the algorithms use to build schedules incrementally.

    The builder maintains, per machine, the list of assigned jobs *and* an
    incrementally updated :class:`~busytime.core.events.SweepProfile`, so the
    feasibility query the greedy algorithms need (``fits``) is answered from
    the maintained machine state in ``O(log k + w)`` instead of re-clipping
    the machine's whole job list per query.  Machines are indexed from 0 in
    order of opening, matching the paper's ``M_1, M_2, ...`` numbering
    shifted by one.
    """

    def __init__(self, instance: Instance, algorithm: str = "") -> None:
        self.instance = instance
        self.algorithm = algorithm
        self._machines: List[List[Job]] = []
        self._profiles: List = []
        self._assigned: Dict[int, int] = {}
        self._universe: Optional[List[float]] = None
        self.meta: Dict[str, object] = {}
        # Site-wide capacity state: one extra profile over *all* machines,
        # pre-seeded with the inflexible background bands, consulted by
        # ``fits`` alongside the per-machine check.  Placed coordinates are
        # not known up front (windowed jobs slide), so this one stays on the
        # universe-free path.
        self._site = None
        if instance.site_capacity is not None:
            self._site = make_profile()
            if instance.background is not None:
                for lo, hi, level in instance.background.bands():
                    self._site.add(lo, hi, demand=level)

    def _endpoint_universe(self) -> List[float]:
        """All distinct endpoint coordinates of the instance (computed once).

        Every interval a machine profile will ever store has its endpoints
        here, so handing this to :func:`make_profile` lets the indexed
        backend build its tree once instead of rebuilding per coordinate.
        """
        if self._universe is None:
            self._universe = sorted(
                {c for j in self.instance.jobs for c in (j.start, j.end)}
            )
        return self._universe

    # -- queries --------------------------------------------------------------

    @property
    def num_machines(self) -> int:
        return len(self._machines)

    def jobs_on(self, machine_index: int) -> Sequence[Job]:
        return tuple(self._machines[machine_index])

    def profile_of(self, machine_index: int):
        """The maintained sweep profile of one machine (read-only use)."""
        return self._profiles[machine_index]

    def machine_busy_time(self, machine_index: int) -> float:
        """Current busy time (span) of one machine, from its profile."""
        return self._profiles[machine_index].measure

    @property
    def total_busy_time(self) -> float:
        """Objective value of the partial schedule built so far."""
        return sum(p.measure for p in self._profiles)

    def marginal_busy_increase(self, machine_index: int, job: Job) -> float:
        """Busy-time growth if ``job`` were assigned to the machine.

        The part of the job's window the machine is not already busy in,
        read off the maintained profile — the query behind BestFit-style
        placement policies.
        """
        return job.length - self._profiles[machine_index].covered_measure_in(
            job.start, job.end
        )

    def marginal_busy_release(self, job: Job) -> float:
        """Busy-time the current machine would shed if ``job`` left it.

        The part of ``job``'s window covered by no other job on its machine,
        measured by a remove/re-add round trip on the maintained profile
        (both operations are exact counter updates, so the round trip leaves
        the profile bit-identical).  This is the query behind
        migration-ranking policies in the dynamic simulator.
        """
        machine_index = self.machine_of(job.id)
        profile = self._profiles[machine_index]
        before = profile.measure
        profile.remove(job.start, job.end, demand=job.demand)
        released = before - profile.measure
        profile.add(job.start, job.end, demand=job.demand)
        return released

    def machine_of(self, job_id: int) -> int:
        """Index of the machine currently processing ``job_id``."""
        try:
            return self._assigned[job_id]
        except KeyError:
            raise KeyError(f"job {job_id} is not assigned") from None

    @property
    def assigned_job_ids(self) -> Tuple[int, ...]:
        """Ids of all currently assigned jobs (arbitrary but stable order)."""
        return tuple(self._assigned)

    def site_fits(self, job: Job) -> bool:
        """True when the site-wide capacity cap leaves room for ``job``.

        Trivially true without a cap.  Checked against the maintained
        site profile (all machines' jobs plus the background bands), so it
        also gates *opening a new machine* for the job.
        """
        if self._site is None:
            return True
        return self._site.fits(
            job.start, job.end, self.instance.site_capacity, demand=job.demand
        )

    def fits(self, machine_index: int, job: Job) -> bool:
        """True when adding ``job`` to the machine keeps it feasible.

        Demand-aware: the machine's total demand inside ``job``'s window
        must leave room for ``job.demand`` under ``g`` (the cardinality
        check of the rigid model when all demands are 1).  Under a
        site-wide capacity cap the site profile must admit the job too.
        """
        if not self._profiles[machine_index].fits(
            job.start, job.end, self.instance.g, demand=job.demand
        ):
            return False
        return self.site_fits(job)

    def first_fitting_machine(self, job: Job) -> Optional[int]:
        """Lowest-index machine that can accommodate ``job``, or None."""
        for idx in range(len(self._machines)):
            if self.fits(idx, job):
                return idx
        return None

    # -- mutation --------------------------------------------------------------

    def open_machine(self) -> int:
        """Open a new, empty machine; returns its index."""
        self._machines.append([])
        self._profiles.append(
            make_profile(
                universe=self._endpoint_universe,
                universe_size=2 * self.instance.n,
            )
        )
        return len(self._machines) - 1

    def assign(self, machine_index: int, job: Job) -> None:
        """Assign ``job`` to an existing machine (no feasibility re-check)."""
        if job.id in self._assigned:
            raise InfeasibleScheduleError(
                f"job {job.id} already assigned to machine {self._assigned[job.id]}"
            )
        if not 0 <= machine_index < len(self._machines):
            raise IndexError(f"no machine with index {machine_index}")
        self._machines[machine_index].append(job)
        self._profiles[machine_index].add(job.start, job.end, demand=job.demand)
        if self._site is not None:
            self._site.add(job.start, job.end, demand=job.demand)
        self._assigned[job.id] = machine_index

    def assign_first_fit(self, job: Job) -> int:
        """Assign ``job`` to the first machine that fits, opening one if needed."""
        idx = self.first_fitting_machine(job)
        if idx is None:
            idx = self.open_machine()
        self.assign(idx, job)
        return idx

    def assign_new_machine(self, jobs: Iterable[Job]) -> int:
        """Open a machine and assign all given jobs to it."""
        idx = self.open_machine()
        for job in jobs:
            self.assign(idx, job)
        return idx

    def unassign(self, job: Job) -> int:
        """Remove ``job`` from its machine; returns the machine index.

        The exact inverse of :meth:`assign`: the job leaves the machine's
        job list and its interval is removed from the machine's maintained
        :class:`~busytime.core.events.SweepProfile` (stale breakpoints are
        kept at zero coverage, which is harmless — see
        :meth:`SweepProfile.remove`).  This is the mutation path behind job
        departures and migrations in the dynamic-workload simulator
        (:mod:`busytime.extensions.dynamic`); ``verify_schedule`` on a
        subsequent :meth:`freeze_partial` stays the slow-path oracle for it.
        """
        machine_index = self.machine_of(job.id)
        jobs = self._machines[machine_index]
        for pos, stored in enumerate(jobs):
            if stored.id == job.id:
                removed = jobs.pop(pos)
                break
        self._profiles[machine_index].remove(
            removed.start, removed.end, demand=removed.demand
        )
        if self._site is not None:
            self._site.remove(removed.start, removed.end, demand=removed.demand)
        del self._assigned[job.id]
        return machine_index

    # -- output ----------------------------------------------------------------

    def freeze(self, validate: bool = True) -> Schedule:
        """Produce the immutable :class:`Schedule` (optionally validating it).

        The incrementally maintained profiles are handed to the frozen
        machines (re-indexed densely in case empty machines were opened and
        never used), so the validation cross-check exercises the *same*
        machine state that answered the ``fits`` queries during
        construction, not a freshly rebuilt one.
        """
        return self._freeze_against(self.instance, validate)

    def freeze_partial(self, validate: bool = True, name: str = "") -> Schedule:
        """Freeze the schedule of the *currently assigned* jobs only.

        After departures (:meth:`unassign`) the builder's live job set is a
        subset of the instance; this freezes against the induced
        sub-instance so ``verify_schedule`` — which insists every instance
        job is scheduled exactly once — can keep playing oracle after every
        mutation.  Used by the dynamic simulator's cross-check cadence.
        """
        live = Instance(
            jobs=tuple(
                job for machine in self._machines for job in machine
            ),
            g=self.instance.g,
            name=name or (self.instance.name and f"{self.instance.name}#live") or "live",
            site_capacity=self.instance.site_capacity,
            background=self.instance.background,
        )
        return self._freeze_against(live, validate)

    def _freeze_against(self, instance: Instance, validate: bool) -> Schedule:
        machines: List[Machine] = []
        for jobs, profile in zip(self._machines, self._profiles):
            if not jobs:
                continue
            m = Machine(index=len(machines), jobs=tuple(jobs))
            # Snapshot so later builder mutations cannot alias the frozen
            # machine's state; the arrays are still the incrementally built
            # ones, so validation cross-checks the real hot path.
            object.__setattr__(m, "_profile", profile.copy())
            machines.append(m)
        sched = Schedule(
            instance=instance,
            machines=tuple(machines),
            algorithm=self.algorithm,
            meta=dict(self.meta),
        )
        if validate:
            sched.validate()
        return sched
