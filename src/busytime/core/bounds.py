"""Lower bounds on the optimal total busy time (Observation 1.1 and friends).

The paper's entire analysis hangs on two elementary lower bounds:

* the **parallelism bound** ``OPT(J) >= len(J) / g`` — no machine can ever
  run more than ``g`` jobs at once, so each unit of busy time "pays for" at
  most ``g`` units of job length;
* the **span bound** ``OPT(J) >= span(J)`` — wherever at least one job is
  active, at least one machine is busy.

We also provide two slightly sharper bounds used by the exact solvers for
pruning and by the experiment harness as a tighter OPT proxy:

* the **component-wise combined bound**: the combined bound applied to each
  connected component separately and summed (valid because an optimal
  solution never mixes components on a machine);
* the **clique bound** for pairwise-intersecting instances: sorting the
  per-job distances ``delta_j`` from a common point (Fig. 5) and charging one
  machine per ``g`` jobs gives ``OPT >= sum_i delta^{(i)}`` over machine
  indices ``i`` where ``delta^{(i)}`` is the ``(g(i-1)+1)``-th largest
  distance — this is the inequality proved inside Theorem A.1.
"""

from __future__ import annotations

import math
from typing import List

from .instance import Instance, connected_components
from .intervals import max_point_demand, span as span_of

__all__ = [
    "mandatory_items",
    "parallelism_bound",
    "span_bound",
    "combined_bound",
    "component_bound",
    "clique_bound",
    "min_machines_bound",
    "best_lower_bound",
]


def parallelism_bound(instance: Instance) -> float:
    """``sum_j len(J_j) * s_j / g`` — Observation 1.1's first bullet,
    demand-weighted as in [15].

    No machine can serve more than ``g`` capacity units at once, so each
    unit of busy time pays for at most ``g`` units of demand-weighted job
    length.  On unit-demand instances this is bit-for-bit the paper's
    ``len(J) / g``.
    """
    return instance.total_demand_length / instance.g


def mandatory_items(instance: Instance) -> List:
    """Demand-carrying mandatory parts for window-aware bounds.

    A job of length ``l`` in window ``[r, d]`` occupies ``[d - l, r + l]``
    under *every* feasible placement (its mandatory part); jobs with more
    slack than length contribute nothing.  Fixed jobs contribute their
    whole interval, so on window-free instances these items reproduce the
    nominal job set exactly.  Returned as lightweight jobs so the
    demand-weighted oracle sweeps apply unchanged.
    """
    from .intervals import Job

    out: List = []
    for j in instance.jobs:
        iv = j.mandatory_interval()
        if iv is not None:
            out.append(Job(id=j.id, interval=iv, demand=j.demand))
    return out


def span_bound(instance: Instance) -> float:
    """``span(J)`` (second bullet of Observation 1.1).

    Windowed jobs can slide, so only their *mandatory parts* are certain
    to be covered; the windowed variant takes the span of those (which is
    the nominal span again for fixed jobs).
    """
    if instance.has_windows:
        return span_of(mandatory_items(instance))
    return instance.span


def combined_bound(instance: Instance) -> float:
    """The maximum of the two Observation 1.1 bounds."""
    return max(parallelism_bound(instance), span_bound(instance))


def component_bound(instance: Instance) -> float:
    """Combined bound applied per connected component and summed.

    Always at least :func:`combined_bound` and still a valid lower bound,
    because no machine of an optimal solution serves two components.
    """
    comps = connected_components(instance)
    if len(comps) <= 1:
        return combined_bound(instance)
    return sum(combined_bound(c) for c in comps)


def clique_bound(instance: Instance) -> float:
    """The Theorem A.1 lower bound for pairwise-intersecting instances.

    Let ``t`` be a common point of all intervals and ``delta_j`` the largest
    distance of an endpoint of job ``j`` from ``t``.  Any solution uses at
    least ``ceil(n/g)`` machines, and the machine containing the ``i``-th
    group of ``g`` jobs (in non-increasing ``delta`` order) has busy time at
    least the largest ``delta`` among jobs it serves; summing the
    ``(g(i-1)+1)``-th largest distances over ``i`` lower-bounds ``OPT``.

    Returns the combined bound unchanged when the instance is not a clique —
    or when it carries non-unit demands: the machine-per-``g``-jobs charging
    argument groups *jobs*, not capacity units, so the refinement is only
    proved for the rigid model.  Windowed instances also fall back: the
    common point and the distances are nominal-placement artefacts.
    """
    t = instance.common_point()
    if t is None or instance.n == 0 or instance.has_demands or instance.has_windows:
        return combined_bound(instance)
    deltas = sorted(
        (max(t - j.start, j.end - t) for j in instance.jobs), reverse=True
    )
    g = instance.g
    bound = sum(deltas[i] for i in range(0, len(deltas), g))
    return max(bound, combined_bound(instance))


def min_machines_bound(instance: Instance) -> int:
    """``ceil(peak_demand / g)``: a lower bound on the number of machines.

    At the instant of peak total demand every feasible schedule has that
    demand spread over machines of capacity ``g`` each.  Used by cost
    models with a per-machine activation term
    (:meth:`busytime.core.objectives.CostModel.lower_bound`).

    On windowed instances the nominal peak can be avoided by sliding, so
    the peak is taken over the mandatory parts instead (and every
    non-empty instance still opens at least one machine).
    """
    if instance.n == 0:
        return 0
    if instance.has_windows:
        peak = max_point_demand(mandatory_items(instance))
        return max(1, math.ceil(peak / instance.g))
    return math.ceil(instance.peak_demand / instance.g)


def best_lower_bound(instance: Instance) -> float:
    """The strongest lower bound this module knows for the given instance.

    Memoised on the (immutable) instance: the engine attaches this bound to
    every report and the experiment harness asks once per algorithm, so the
    component sweep should only ever run once per instance.
    """
    return instance._memo(
        "_best_lower_bound", lambda: _compute_best_lower_bound(instance)
    )


def _compute_best_lower_bound(instance: Instance) -> float:
    candidates: List[float] = [component_bound(instance)]
    if instance.is_clique() and not instance.has_windows:
        candidates.append(clique_bound(instance))
    return max(candidates)
