"""Bipartite b-matching (degree-constrained subgraph), used by Bounded_Length.

Step 2(d)–(e) of the Bounded_Length algorithm (Section 3.2) builds a
bipartite graph between machines and independent sets and solves a maximum
*b-matching*: every machine vertex may be matched to at most ``g`` independent
sets, every independent-set vertex to at most one machine.  The paper cites
Gabow's reduction [11]; a bipartite b-matching is a textbook maximum-flow
problem, which is how we solve it here (integral capacities, so the max flow
is integral and decomposes into the desired matching).

Correctness rests on two textbook facts:

* **integrality** — the flow network has integral capacities, so a maximum
  flow is integral and decomposes into a matching meeting the degree bounds
  exactly (this is the reduction the paper attributes to Gabow [11]);
* **optimality** — max-flow value equals the maximum b-matching size, so
  Step 2(e)'s "every independent set matched" test is exact: if the solver
  matches fewer than all sets, no assignment of threads to the guessed
  machines exists and the caller must fall back.

The module is written against plain adjacency data so it can be reused
outside the scheduling context (it is a generic substrate); a thin wrapper
over :mod:`networkx`'s preflow-push solver does the heavy lifting, with
``O(V^2 sqrt(E))`` worst-case complexity — negligible next to the segment
enumeration it serves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Set, Tuple

import networkx as nx

__all__ = ["BMatchingResult", "max_bipartite_b_matching", "is_valid_b_matching"]


@dataclass(frozen=True)
class BMatchingResult:
    """Result of a maximum bipartite b-matching computation.

    Attributes
    ----------
    edges:
        The matched edges as ``(u, v)`` pairs with ``u`` from the left side
        and ``v`` from the right side.
    size:
        Number of matched edges (the objective value).
    """

    edges: Tuple[Tuple[Hashable, Hashable], ...]
    size: int

    def matched_right_of(self, u: Hashable) -> List[Hashable]:
        return [v for (a, v) in self.edges if a == u]

    def matched_left_of(self, v: Hashable) -> List[Hashable]:
        return [u for (u, b) in self.edges if b == v]


def max_bipartite_b_matching(
    left_capacities: Mapping[Hashable, int],
    right_capacities: Mapping[Hashable, int],
    edges: Iterable[Tuple[Hashable, Hashable]],
) -> BMatchingResult:
    """Maximum b-matching of a bipartite graph via max flow.

    Parameters
    ----------
    left_capacities:
        ``b(u)`` for every left vertex ``u`` (machines: ``g``).
    right_capacities:
        ``b(v)`` for every right vertex ``v`` (independent sets: ``1``).
    edges:
        Admissible pairs ``(u, v)``; an edge may appear at most once in the
        matching.

    Returns
    -------
    BMatchingResult
        The matched edge set; its size is maximum among all b-matchings.
    """
    edge_list = list(dict.fromkeys(edges))  # dedupe, keep order
    for u, v in edge_list:
        if u not in left_capacities:
            raise KeyError(f"edge endpoint {u!r} missing from left_capacities")
        if v not in right_capacities:
            raise KeyError(f"edge endpoint {v!r} missing from right_capacities")
    for side, caps in (("left", left_capacities), ("right", right_capacities)):
        for node, cap in caps.items():
            if cap < 0:
                raise ValueError(f"{side} capacity of {node!r} is negative")

    graph = nx.DiGraph()
    source, sink = ("__source__",), ("__sink__",)
    for u, cap in left_capacities.items():
        graph.add_edge(source, ("L", u), capacity=int(cap))
    for v, cap in right_capacities.items():
        graph.add_edge(("R", v), sink, capacity=int(cap))
    for u, v in edge_list:
        graph.add_edge(("L", u), ("R", v), capacity=1)

    if not edge_list:
        return BMatchingResult(edges=(), size=0)

    flow_value, flow_dict = nx.maximum_flow(graph, source, sink)
    matched: List[Tuple[Hashable, Hashable]] = []
    for u, v in edge_list:
        if flow_dict.get(("L", u), {}).get(("R", v), 0) >= 1:
            matched.append((u, v))
    return BMatchingResult(edges=tuple(matched), size=len(matched))


def is_valid_b_matching(
    result: BMatchingResult,
    left_capacities: Mapping[Hashable, int],
    right_capacities: Mapping[Hashable, int],
    edges: Iterable[Tuple[Hashable, Hashable]],
) -> bool:
    """Check degree constraints and edge admissibility of a matching."""
    allowed: Set[Tuple[Hashable, Hashable]] = set(edges)
    left_deg: Dict[Hashable, int] = {}
    right_deg: Dict[Hashable, int] = {}
    seen: Set[Tuple[Hashable, Hashable]] = set()
    for u, v in result.edges:
        if (u, v) not in allowed or (u, v) in seen:
            return False
        seen.add((u, v))
        left_deg[u] = left_deg.get(u, 0) + 1
        right_deg[v] = right_deg.get(v, 0) + 1
    return all(
        left_deg.get(u, 0) <= cap for u, cap in left_capacities.items()
    ) and all(right_deg.get(v, 0) <= cap for v, cap in right_capacities.items())
