"""Interval-graph machinery.

The paper states the scheduling problem as a graph-partitioning problem on
the interval graph induced by the jobs (Section 1.1): partition the vertices
into groups whose induced clique number is at most ``g`` while minimising the
sum of the group spans.  This module builds that interval graph and provides
the classical poly-time primitives on it that the algorithms and baselines
need:

* intersection-graph construction (as a :class:`networkx.Graph`),
* clique number / a maximum clique (via the sweep; intervals have the Helly
  property so a maximum clique is realised at a point),
* minimum proper colouring (intervals are perfect graphs — the greedy sweep
  colours with exactly ``omega`` colours), which underlies the
  machine-minimisation baseline of Section 1.1,
* partition of a job set into ``k`` independent sets ("threads"), the
  operation used in the proof of Lemma 2.3 and inside Bounded_Length.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.instance import Instance
from ..core.intervals import Job, max_point_load

__all__ = [
    "build_interval_graph",
    "clique_number",
    "maximum_clique",
    "greedy_interval_coloring",
    "chromatic_number",
    "partition_into_independent_sets",
    "independent_set_count_lower_bound",
]


def build_interval_graph(jobs: Sequence[Job]) -> nx.Graph:
    """The intersection graph of the job intervals.

    Vertices are job ids; an edge joins two jobs whose closed intervals
    intersect.  Construction is the straightforward :math:`O(n^2)` pairwise
    check — instances in this package are at most a few thousand jobs, and
    the graph is only materialised for analysis/baselines, never on the hot
    path of the approximation algorithms.
    """
    graph = nx.Graph()
    for j in jobs:
        graph.add_node(j.id, start=j.start, end=j.end, length=j.length)
    ordered = sorted(jobs, key=lambda j: (j.start, j.end))
    # Sweep: keep a heap of (end, id) for active jobs; all active jobs whose
    # end >= next start overlap the next job.
    active: List[Tuple[float, int]] = []
    for j in ordered:
        # Pop jobs that end strictly before this one starts (closed intervals:
        # equality means they still touch and therefore overlap).
        while active and active[0][0] < j.start:
            heapq.heappop(active)
        for _, other_id in active:
            graph.add_edge(other_id, j.id)
        heapq.heappush(active, (j.end, j.id))
    return graph


def clique_number(jobs: Sequence[Job]) -> int:
    """``omega`` of the interval graph = maximum number of overlapping jobs."""
    return max_point_load(jobs)


def maximum_clique(jobs: Sequence[Job]) -> List[Job]:
    """One maximum clique, as the set of jobs active at a densest point."""
    if not jobs:
        return []
    events: List[Tuple[float, int, Job]] = []
    for j in jobs:
        events.append((j.start, 0, j))
        events.append((j.end, 1, j))
    events.sort(key=lambda e: (e[0], e[1]))
    active: Dict[int, Job] = {}
    best: List[Job] = []
    for _, kind, job in events:
        if kind == 0:
            active[job.id] = job
            if len(active) > len(best):
                best = list(active.values())
        else:
            active.pop(job.id, None)
    return best


def greedy_interval_coloring(jobs: Sequence[Job]) -> Dict[int, int]:
    """A minimum proper colouring of the interval graph.

    Jobs sorted by start time are assigned the smallest free colour; for
    interval graphs this classic sweep uses exactly ``omega`` colours.
    Returns a mapping job id -> colour index (0-based).
    """
    ordered = sorted(jobs, key=lambda j: (j.start, j.end))
    coloring: Dict[int, int] = {}
    # Heap of (end, colour) for currently running jobs; free colours recycled.
    running: List[Tuple[float, int]] = []
    free: List[int] = []
    next_color = 0
    for j in ordered:
        while running and running[0][0] < j.start:
            _, col = heapq.heappop(running)
            heapq.heappush(free, col)
        if free:
            col = heapq.heappop(free)
        else:
            col = next_color
            next_color += 1
        coloring[j.id] = col
        heapq.heappush(running, (j.end, col))
    return coloring


def chromatic_number(jobs: Sequence[Job]) -> int:
    """``chi`` of the interval graph; equals :func:`clique_number` (perfect)."""
    if not jobs:
        return 0
    coloring = greedy_interval_coloring(jobs)
    return max(coloring.values()) + 1


def partition_into_independent_sets(
    jobs: Sequence[Job], k: Optional[int] = None
) -> List[List[Job]]:
    """Partition jobs into ``k`` pairwise-disjoint "threads".

    Each returned list is an independent set of the interval graph (no two of
    its jobs overlap).  When ``k`` is ``None`` the minimum possible number of
    threads (the clique number) is used.  This is exactly the decomposition
    invoked in the proof of Lemma 2.3 ("the g threads of execution of machine
    M_i") and in Step 2(c) of Bounded_Length.

    Raises
    ------
    ValueError
        if ``k`` is smaller than the clique number (no such partition exists).
    """
    omega = clique_number(jobs)
    if k is None:
        k = omega
    if k < omega:
        raise ValueError(
            f"cannot partition into {k} independent sets: clique number is {omega}"
        )
    coloring = greedy_interval_coloring(jobs)
    by_id = {j.id: j for j in jobs}
    threads: List[List[Job]] = [[] for _ in range(max(k, 1))]
    for job_id, col in coloring.items():
        threads[col].append(by_id[job_id])
    for thread in threads:
        thread.sort(key=lambda j: (j.start, j.end))
    return threads


def independent_set_count_lower_bound(jobs: Sequence[Job], g: int) -> int:
    """``ceil(omega / g)``: minimum number of machines any solution needs."""
    omega = clique_number(jobs)
    return -(-omega // g) if omega else 0
