"""Structural classification of interval instances.

Thin, graph-level wrappers over the classification predicates of
:class:`busytime.core.instance.Instance`, plus a couple of checks that are
genuinely graph-theoretic (connectivity of the intersection graph, laminar
forest extraction).  The algorithm dispatcher uses these to route an instance
to the specialised algorithm with the best proven ratio:

=====================  =======================================  =========
instance class         algorithm                                 ratio
=====================  =======================================  =========
clique                 Appendix clique algorithm                 2
proper                 Section 3.1 NextFit greedy                2
bounded length (d)     Section 3.2 Bounded_Length                2 + eps
general                Section 2 FirstFit                        4
=====================  =======================================  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.instance import Instance, connected_components
from ..core.intervals import Job
from .interval_graph import build_interval_graph, clique_number

__all__ = [
    "InstanceProfile",
    "profile_instance",
    "is_proper_instance",
    "is_clique_instance",
    "is_laminar_instance",
    "is_connected_instance",
    "laminar_forest",
]


@dataclass(frozen=True)
class InstanceProfile:
    """A structural snapshot of an instance used by reports and the dispatcher."""

    n: int
    g: int
    clique_number: int
    num_components: int
    proper: bool
    clique: bool
    laminar: bool
    length_ratio: float
    span: float
    total_length: float

    @property
    def recommended_algorithm(self) -> str:
        """Name of the specialised algorithm with the best proven ratio."""
        if self.clique:
            return "clique"
        if self.proper:
            return "proper_greedy"
        if self.length_ratio != float("inf") and self.length_ratio <= 8:
            return "bounded_length"
        return "first_fit"


def profile_instance(instance: Instance) -> InstanceProfile:
    """Compute the :class:`InstanceProfile` of an instance."""
    return InstanceProfile(
        n=instance.n,
        g=instance.g,
        clique_number=instance.clique_number,
        num_components=len(connected_components(instance)),
        proper=instance.is_proper(),
        clique=instance.is_clique(),
        laminar=instance.is_laminar(),
        length_ratio=instance.length_ratio(),
        span=instance.span,
        total_length=instance.total_length,
    )


def is_proper_instance(instance: Instance) -> bool:
    """No interval properly contained in another (Section 3.1 regime)."""
    return instance.is_proper()


def is_clique_instance(instance: Instance) -> bool:
    """All intervals pairwise intersect (Appendix regime)."""
    return instance.is_clique()


def is_laminar_instance(instance: Instance) -> bool:
    """Any two intervals disjoint or nested."""
    return instance.is_laminar()


def is_connected_instance(instance: Instance) -> bool:
    """The induced interval graph is connected (the paper's w.l.o.g.)."""
    return instance.is_connected()


def laminar_forest(instance: Instance) -> nx.DiGraph:
    """The containment forest of a laminar instance.

    Nodes are job ids; an arc ``u -> v`` means job ``v`` is nested directly
    inside job ``u``.  Roots are the maximal intervals.  Raises
    ``ValueError`` when the instance is not laminar.
    """
    if not instance.is_laminar():
        raise ValueError("instance is not laminar")
    forest = nx.DiGraph()
    for j in instance.jobs:
        forest.add_node(j.id, start=j.start, end=j.end)
    jobs = sorted(instance.jobs, key=lambda j: (j.start, -j.end))
    stack: List[Job] = []
    for j in jobs:
        while stack and stack[-1].end <= j.start:
            stack.pop()
        if stack and stack[-1].interval.contains(j.interval):
            forest.add_edge(stack[-1].id, j.id)
        stack.append(j)
    return forest
