"""Interval-graph substrate: intersection graphs, colouring, b-matching."""

from .bmatching import BMatchingResult, is_valid_b_matching, max_bipartite_b_matching
from .interval_graph import (
    build_interval_graph,
    chromatic_number,
    clique_number,
    greedy_interval_coloring,
    independent_set_count_lower_bound,
    maximum_clique,
    partition_into_independent_sets,
)
from .properties import (
    InstanceProfile,
    is_clique_instance,
    is_connected_instance,
    is_laminar_instance,
    is_proper_instance,
    laminar_forest,
    profile_instance,
)

__all__ = [
    "build_interval_graph",
    "clique_number",
    "maximum_clique",
    "greedy_interval_coloring",
    "chromatic_number",
    "partition_into_independent_sets",
    "independent_set_count_lower_bound",
    "BMatchingResult",
    "max_bipartite_b_matching",
    "is_valid_b_matching",
    "InstanceProfile",
    "profile_instance",
    "is_proper_instance",
    "is_clique_instance",
    "is_laminar_instance",
    "is_connected_instance",
    "laminar_forest",
]
