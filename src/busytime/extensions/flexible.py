"""Flexible (real-time) busy-time scheduling — the follow-up model of [15].

Section 1.3 of the paper points to the follow-up work (Khandekar, Schieber,
Shachnai, Tamir, cited as [15]) that generalises the rigid-interval model in
two directions:

* every job has a **release time** ``r_j``, a **due date** ``d_j`` and a
  **processing time** ``p_j`` with ``r_j + p_j <= d_j`` — the scheduler also
  picks *when* the job runs, anywhere inside its window;
* every job has a **demand** ``s_j`` for machine capacity, and a machine can
  host any job set whose *total demand* at each instant is at most ``g``
  (the rigid model is the special case ``s_j = 1``).

That follow-up proves a 5-approximation by fixing start times first and then
running (a demand-aware) FirstFit; this module implements that two-phase
scheme as an *extension* of the core library so downstream users can handle
malleable workloads with the same API:

1. **Start-time fixing** (:func:`fix_start_times`): each job is anchored
   greedily — in non-increasing order of ``p_j * s_j`` — at the position
   inside its window that minimises the marginal growth of the union of
   already-anchored jobs (ties broken towards the release time).  Anchoring
   turns the flexible instance into a rigid :class:`busytime.core.Instance`
   whose jobs carry the chosen intervals.
2. **Demand-aware packing** (:func:`flexible_first_fit`): longest-first
   FirstFit where "fits" means the *demand profile* of the machine never
   exceeds ``g`` (generalising the cardinality check of the rigid model).

Lower bounds generalise directly: the demand-weighted parallelism bound
``sum_j p_j s_j / g`` and the span bound over the *mandatory parts*
``[d_j - p_j, r_j + p_j]`` (the portion of the window every feasible start
covers), both provided by :func:`flexible_lower_bound`.

Guarantees, for orientation:

* the cited follow-up [15] proves a **5-approximation** for this model via
  exactly this fix-then-pack structure; our anchoring heuristic differs in
  the fixing rule, so the implementation inherits feasibility and the lower
  bounds but makes no ratio claim of its own (experiment E14 measures it);
* the rigid special case ``s_j = 1``, ``r_j + p_j = d_j`` degenerates to
  the paper's model, where the packing phase *is* longest-first FirstFit
  and Theorem 2.1's factor 4 applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.events import SweepProfile
from ..core.instance import Instance
from ..core.intervals import Interval, Job, span, union_intervals
from ..core.profile_index import make_profile

__all__ = [
    "FlexibleJob",
    "FlexibleInstance",
    "FlexibleSchedule",
    "fix_start_times",
    "flexible_first_fit",
    "flexible_lower_bound",
    "demand_profile_peak",
]


@dataclass(frozen=True)
class FlexibleJob:
    """A malleable job: window ``[release, due]``, processing time, demand."""

    id: int
    release: float
    due: float
    processing: float
    demand: float = 1.0

    def __post_init__(self) -> None:
        if self.processing < 0:
            raise ValueError("processing time must be non-negative")
        if self.demand <= 0:
            raise ValueError("demand must be positive")
        if self.release + self.processing > self.due + 1e-12:
            raise ValueError(
                f"job {self.id}: window [{self.release}, {self.due}] too short for "
                f"processing time {self.processing}"
            )

    @property
    def slack(self) -> float:
        """How much the start time can move: ``due - release - processing``."""
        return self.due - self.release - self.processing

    @property
    def is_rigid(self) -> bool:
        """True when the window admits exactly one start time."""
        return self.slack <= 1e-12

    @property
    def mandatory_part(self) -> Optional[Interval]:
        """The sub-interval covered by *every* feasible placement, if any."""
        lo = self.due - self.processing
        hi = self.release + self.processing
        if hi <= lo:
            return None
        return Interval(lo, hi)

    def interval_if_started_at(self, start: float) -> Interval:
        if start < self.release - 1e-12 or start + self.processing > self.due + 1e-12:
            raise ValueError(
                f"start {start} outside feasible window of job {self.id}"
            )
        return Interval(start, start + self.processing)


@dataclass(frozen=True)
class FlexibleInstance:
    """A flexible busy-time instance: jobs plus machine capacity ``g``."""

    jobs: Tuple[FlexibleJob, ...]
    g: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.g <= 0:
            raise ValueError("capacity g must be positive")
        if not isinstance(self.jobs, tuple):
            object.__setattr__(self, "jobs", tuple(self.jobs))
        ids = [j.id for j in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique")
        for job in self.jobs:
            if job.demand > self.g + 1e-12:
                raise ValueError(
                    f"job {job.id} demands {job.demand} > machine capacity {self.g}"
                )

    @classmethod
    def from_tuples(
        cls,
        rows: Iterable[Tuple[float, float, float]],
        g: float,
        demands: Optional[Sequence[float]] = None,
        name: str = "",
    ) -> "FlexibleInstance":
        """Build from ``(release, due, processing)`` triples."""
        rows = list(rows)
        if demands is None:
            demands = [1.0] * len(rows)
        jobs = tuple(
            FlexibleJob(id=i, release=r, due=d, processing=p, demand=s)
            for i, ((r, d, p), s) in enumerate(zip(rows, demands))
        )
        return cls(jobs=jobs, g=g, name=name)

    @classmethod
    def from_rigid(cls, instance: Instance) -> "FlexibleInstance":
        """Embed a rigid instance (windows equal to the job intervals, demand 1)."""
        jobs = tuple(
            FlexibleJob(
                id=j.id,
                release=j.start,
                due=j.end,
                processing=j.length,
                demand=1.0,
            )
            for j in instance.jobs
        )
        return cls(jobs=jobs, g=float(instance.g), name=instance.name)

    @property
    def n(self) -> int:
        return len(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    @property
    def total_work(self) -> float:
        """Demand-weighted processing volume ``sum p_j * s_j``."""
        return sum(j.processing * j.demand for j in self.jobs)

    def is_rigid(self) -> bool:
        return all(j.is_rigid for j in self.jobs)


@dataclass(frozen=True)
class FlexibleSchedule:
    """A solution: a start time and a machine for every job."""

    instance: FlexibleInstance
    starts: Mapping[int, float]
    machine_of: Mapping[int, int]
    algorithm: str = ""

    def interval_of(self, job_id: int) -> Interval:
        job = next(j for j in self.instance.jobs if j.id == job_id)
        return job.interval_if_started_at(self.starts[job_id])

    @property
    def num_machines(self) -> int:
        return len(set(self.machine_of.values())) if self.machine_of else 0

    def jobs_on(self, machine: int) -> List[FlexibleJob]:
        return [j for j in self.instance.jobs if self.machine_of[j.id] == machine]

    @property
    def total_busy_time(self) -> float:
        total = 0.0
        for machine in set(self.machine_of.values()):
            intervals = [self.interval_of(j.id) for j in self.jobs_on(machine)]
            total += span(intervals)
        return total

    def validate(self) -> None:
        """Check windows, coverage and the capacity constraint on every machine."""
        expected = {j.id for j in self.instance.jobs}
        if set(self.starts) != expected or set(self.machine_of) != expected:
            raise ValueError("every job needs exactly one start time and one machine")
        for job in self.instance.jobs:
            start = self.starts[job.id]
            if start < job.release - 1e-9 or start + job.processing > job.due + 1e-9:
                raise ValueError(f"job {job.id} scheduled outside its window")
        for machine in set(self.machine_of.values()):
            jobs = self.jobs_on(machine)
            placed = [
                (self.interval_of(j.id), j.demand) for j in jobs if j.processing > 0
            ]
            peak = demand_profile_peak(placed)
            if peak > self.instance.g + 1e-9:
                raise ValueError(
                    f"machine {machine} reaches demand {peak} > capacity {self.instance.g}"
                )

    def to_rigid_schedule(self):
        """Project to a rigid :class:`busytime.core.Schedule` (demand-1 check only)."""
        from ..core.schedule import Machine, Schedule

        rigid_jobs = {
            j.id: Job(id=j.id, interval=self.interval_of(j.id), weight=j.demand)
            for j in self.instance.jobs
        }
        rigid_instance = Instance(
            jobs=tuple(rigid_jobs.values()),
            g=max(1, int(self.instance.g)),
            name=self.instance.name,
        )
        machines = []
        for machine in sorted(set(self.machine_of.values())):
            machines.append(
                Machine(
                    index=len(machines),
                    jobs=tuple(
                        rigid_jobs[j.id] for j in self.jobs_on(machine)
                    ),
                )
            )
        return Schedule(
            instance=rigid_instance,
            machines=tuple(machines),
            algorithm=self.algorithm or "flexible",
        )


def demand_profile_peak(placed: Sequence[Tuple[Interval, float]]) -> float:
    """Peak of the step function ``t -> sum of demands of intervals covering t``."""
    events: List[Tuple[float, int, float]] = []
    for interval, demand in placed:
        events.append((interval.start, 0, demand))
        events.append((interval.end, 1, demand))
    events.sort(key=lambda e: (e[0], e[1]))
    load = peak = 0.0
    for _, kind, demand in events:
        if kind == 0:
            load += demand
            peak = max(peak, load)
        else:
            load -= demand
    return peak


def flexible_lower_bound(instance: FlexibleInstance) -> float:
    """Lower bound on the optimal total busy time of a flexible instance.

    The demand-weighted parallelism bound plus the mandatory-part span bound
    (the flexible analogues of Observation 1.1).
    """
    work_bound = instance.total_work / instance.g
    mandatory = [j.mandatory_part for j in instance.jobs]
    span_bound = span([m for m in mandatory if m is not None])
    return max(work_bound, span_bound)


def fix_start_times(
    instance: FlexibleInstance, resolution: int = 8
) -> Dict[int, float]:
    """Phase 1: anchor every job inside its window.

    Jobs are processed in non-increasing order of ``p_j * s_j`` (big rocks
    first); each is placed at the candidate start — the release time, the
    latest feasible start, the starts aligning either end with the current
    union, and ``resolution`` evenly spaced intermediate positions — that
    minimises the growth of the union of already-anchored intervals.
    """
    starts: Dict[int, float] = {}
    anchored: List[Interval] = []
    order = sorted(
        instance.jobs, key=lambda j: (-(j.processing * j.demand), j.release, j.id)
    )
    for job in order:
        earliest = job.release
        latest = job.due - job.processing
        candidates = {earliest, latest}
        for k in range(1, resolution):
            candidates.add(earliest + (latest - earliest) * k / resolution)
        # align with existing union edges when they fall inside the window
        for seg in anchored:
            for anchor in (seg.start, seg.end - job.processing, seg.end, seg.start - job.processing):
                if earliest - 1e-12 <= anchor <= latest + 1e-12:
                    candidates.add(min(max(anchor, earliest), latest))
        best_start = earliest
        best_growth = float("inf")
        base = span(anchored)
        for candidate in sorted(candidates):
            trial = anchored + [job.interval_if_started_at(candidate)]
            growth = span(trial) - base
            if growth < best_growth - 1e-12:
                best_growth = growth
                best_start = candidate
        starts[job.id] = best_start
        anchored = union_intervals(anchored + [job.interval_if_started_at(best_start)])
    return starts


def flexible_first_fit(
    instance: FlexibleInstance,
    starts: Optional[Mapping[int, float]] = None,
) -> FlexibleSchedule:
    """Phase 2: demand-aware longest-first FirstFit over anchored jobs.

    With ``starts`` omitted, :func:`fix_start_times` is used, giving the full
    two-phase heuristic in the spirit of the 5-approximation of [15].  The
    result is validated before being returned.

    The packing phase runs on the *core* demand-aware machine state: each
    machine maintains a :class:`~busytime.core.events.SweepProfile` and the
    "does this job fit" query reads the peak demand inside the job's window
    off the maintained profile — the same check the rigid algorithms use —
    instead of the module's former private clip-and-rescan loop.  The
    profiles only ever grow here (packing never unplaces a job), so float
    demands are safe; :func:`demand_profile_peak` stays the independent
    slow-path oracle through :meth:`FlexibleSchedule.validate`.
    """
    if starts is None:
        starts = fix_start_times(instance)
    placed: Dict[int, Interval] = {
        j.id: j.interval_if_started_at(starts[j.id]) for j in instance.jobs
    }
    order = sorted(
        instance.jobs, key=lambda j: (-j.processing, starts[j.id], j.id)
    )
    machines: List[List[FlexibleJob]] = []
    profiles: List[SweepProfile] = []
    machine_of: Dict[int, int] = {}
    # Anchored endpoints are fixed before packing starts, so the whole
    # breakpoint universe is known here — the indexed backend (when the
    # flag selects it) never needs a mid-run rebuild.
    universe = sorted({c for iv in placed.values() for c in (iv.start, iv.end)})
    for job in order:
        window = placed[job.id]
        target = None
        for idx, profile in enumerate(profiles):
            # Peak demand already on the machine inside the job's window,
            # plus the job's own demand, within capacity (tolerance matches
            # the validator's: demands are caller-supplied floats here).
            if (
                profile.max_demand_in(window.start, window.end) + job.demand
                <= instance.g + 1e-12
            ):
                target = idx
                break
        if target is None:
            machines.append([])
            profiles.append(make_profile(universe=universe))
            target = len(machines) - 1
        machines[target].append(job)
        profiles[target].add(window.start, window.end, demand=job.demand)
        machine_of[job.id] = target
    schedule = FlexibleSchedule(
        instance=instance,
        starts=dict(starts),
        machine_of=machine_of,
        algorithm="flexible_first_fit",
    )
    schedule.validate()
    return schedule
